"""Cross-job isolation: messages never leak between concurrent jobs.

The engine multiplexes every job over one shared set of per-rank
mailboxes, separated only by context-id-scoped tags.  These tests
attack that separation directly: concurrent jobs using the *same* user
tags and overlapping pool ranks, marker payloads to catch any
cross-delivery, and leak sweeps verified by the mailboxes' pending
counts returning to zero.
"""

import threading

import pytest

from repro.engine import Engine
from repro.errors import SpmdError
from repro.runtime import spmd_run
from repro.runtime.world import World, cid_root


def echo_ring(comm, marker):
    """Pass rank-stamped markers around a ring on a fixed user tag; every
    hop asserts the payload came from this job (same marker) and the
    expected neighbour."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    token = (marker, comm.rank)
    for _ in range(4):
        comm.send(token, dest=right, tag=7)  # same tag in every job
        token = comm.recv(source=left, tag=7)
        got_marker, got_rank = token
        assert got_marker == marker, (
            f"job {marker!r} received job {got_marker!r}'s message"
        )
        assert got_rank == left
        token = (marker, comm.rank)
    return marker


class TestNoCrossJobLeaks:
    def test_same_tags_overlapping_ranks(self):
        """Many concurrent rings, identical tags, shared pool ranks."""
        with Engine(8) as engine:
            handles = [
                engine.submit(
                    echo_ring, nprocs=4, args=(f"job-{i}",), label=f"ring-{i}"
                )
                for i in range(16)
            ]
            for i, h in enumerate(handles):
                assert h.result().returns == [f"job-{i}"] * 4
            # Every queue fully drained: nothing left to leak.
            assert all(
                mb.pending_count() == 0 for mb in engine.world.mailboxes
            )
            assert engine.stats()["leaked_messages_drained"] == 0

    def test_many_client_threads_same_tags(self):
        errors = []

        def client(engine, idx):
            try:
                for k in range(5):
                    marker = f"c{idx}-{k}"
                    res = engine.submit(
                        echo_ring, nprocs=4, args=(marker,)
                    ).result()
                    assert res.returns == [marker] * 4
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        with Engine(8) as engine:
            threads = [
                threading.Thread(target=client, args=(engine, i))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert all(
                mb.pending_count() == 0 for mb in engine.world.mailboxes
            )

    def test_failed_job_leftovers_swept(self):
        """A job that dies mid-collective leaves sent-but-unreceived
        messages behind; finalization must sweep them so the shared
        mailboxes stay clean for later tenants."""

        def dies_after_send(comm):
            comm.send(comm.rank, dest=(comm.rank + 1) % comm.size, tag=3)
            if comm.rank == 0:
                raise RuntimeError("die with messages in flight")
            comm.recv(source=(comm.rank - 1) % comm.size, tag=3)
            return comm.rank

        with Engine(4) as engine:
            with pytest.raises(SpmdError):
                engine.submit(dies_after_send).result()
            stats = engine.stats()
            assert all(
                mb.pending_count() == 0 for mb in engine.world.mailboxes
            )
            # At least rank 0's unreceived message had to be swept.
            assert stats["leaked_messages_drained"] >= 1
            # And the pool still serves clean jobs on the same tag.
            res = engine.submit(echo_ring, args=("after",)).result()
            assert res.returns == ["after"] * 4


class TestContextAllocation:
    def test_concurrent_allocation_unique(self):
        world = World(4)
        seen = []
        lock = threading.Lock()

        def grab():
            got = [world.allocate_context_id() for _ in range(200)]
            with lock:
                seen.extend(got)

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 1600

    def test_cid_root_unwraps_derived_contexts(self):
        # Tags carry nested cids of the form ("d", ("s", base, ...)) etc.;
        # cid_root must find the job's base cid at any depth.
        assert cid_root(5) == 5
        assert cid_root(("d", 5)) == 5
        assert cid_root(("s", ("d", 5), 2)) == 5

    def test_job_worlds_get_distinct_base_cids(self):
        with Engine(4) as engine:
            def job(comm):
                return comm._cid

            cids = {
                engine.submit(job, nprocs=2).result().returns[0]
                for _ in range(10)
            }
        assert len(cids) == 10
