"""Tests that every library DSL operator matches its hand-written twin."""

import numpy as np
import pytest

from repro.core import check_operator, global_reduce, global_scan
from repro.errors import ReproError
from repro.ops import (
    CountsOp,
    MaxiOp,
    MaxKOp,
    MeanVarOp,
    MiniOp,
    MinKOp,
    SortedOp,
    SumOp,
)
from repro.rsmpi import load_operator, operator_names
from repro.runtime import spmd_run
from tests.conftest import PAPER_DATA, block_split, gather_scan, run_all

INT_MAX = np.iinfo(np.int64).max
INT_MIN = np.iinfo(np.int64).min


def _reduce_all(op, data, p):
    return run_all(
        lambda comm: global_reduce(
            comm, op, block_split(data, comm.size, comm.rank)
        ),
        p,
    )[0]


class TestLibraryMatchesNative:
    @pytest.mark.parametrize("p", [1, 3, 6])
    def test_sorted(self, p):
        dsl = load_operator("sorted")
        for data in (list(range(40)), [3, 1] + list(range(38))):
            assert bool(_reduce_all(dsl, data, p)) == _reduce_all(
                SortedOp(), data, p
            )

    @pytest.mark.parametrize("p", [1, 4])
    def test_mink_maxk(self, p, rng):
        data = [int(v) for v in rng.integers(0, 10_000, 90)]
        mk = _reduce_all(load_operator("mink", k=5), data, p)
        assert list(mk) == _reduce_all(MinKOp(5, INT_MAX), data, p).tolist()
        xk = _reduce_all(load_operator("maxk", k=5), data, p)
        assert list(xk) == _reduce_all(MaxKOp(5, INT_MIN), data, p).tolist()

    @pytest.mark.parametrize("p", [1, 2, 5])
    def test_counts_reduce_and_scan(self, p):
        dsl = load_operator("counts", k=8, base=1)
        assert list(_reduce_all(dsl, PAPER_DATA, p)) == _reduce_all(
            CountsOp(8), PAPER_DATA, p
        ).tolist()
        rank_dsl = gather_scan(
            lambda comm: global_scan(
                comm, dsl, block_split(PAPER_DATA, comm.size, comm.rank)
            ),
            p,
        )
        assert rank_dsl == [1, 1, 2, 1, 1, 1, 2, 1, 3, 2]

    @pytest.mark.parametrize("p", [1, 4])
    def test_mini_maxi(self, p):
        data = [5.0, 2.0, 9.0, 2.0, 7.0]
        pairs = [(v, i) for i, v in enumerate(data)]
        s = _reduce_all(load_operator("mini"), pairs, p)
        assert (s.val, s.loc) == _reduce_all(MiniOp(), pairs, p)
        s = _reduce_all(load_operator("maxi"), pairs, p)
        assert (s.val, s.loc) == _reduce_all(MaxiOp(), pairs, p)

    @pytest.mark.parametrize("p", [1, 3])
    def test_sum_and_range(self, p, rng):
        data = [float(v) for v in rng.integers(-50, 50, 40)]
        assert _reduce_all(load_operator("sum"), data, p) == pytest.approx(
            sum(data)
        )
        s = _reduce_all(load_operator("range"), data, p)
        assert (s.lo, s.hi) == (min(data), max(data))

    @pytest.mark.parametrize("p", [1, 4])
    def test_meanvar(self, p, rng):
        data = [float(v) for v in rng.normal(5, 2, 60)]
        s = _reduce_all(load_operator("meanvar"), data, p)
        ref = _reduce_all(MeanVarOp(), data, p)
        assert s.n == ref.n
        assert s.mean == pytest.approx(ref.mean)
        assert s.m2 / s.n == pytest.approx(ref.variance)


class TestLibraryMachinery:
    def test_names_listed(self):
        names = operator_names()
        assert "sorted" in names and "mink" in names
        assert names == sorted(names)

    def test_unknown_name(self):
        with pytest.raises(ReproError, match="unknown library operator"):
            load_operator("nope")

    def test_param_override(self):
        op = load_operator("mink", k=3)
        s = op.ident()
        assert len(s.v) == 3

    def test_all_sources_compile(self):
        for name in operator_names():
            load_operator(name)

    def test_all_pass_law_checks(self, rng):
        data_by_name = {
            "sorted": sorted(int(v) for v in rng.integers(0, 99, 20)),
            "mink": [int(v) for v in rng.integers(0, 99, 20)],
            "maxk": [int(v) for v in rng.integers(0, 99, 20)],
            "counts": [int(v) for v in rng.integers(1, 9, 20)],
            "mini": [(float(v), i) for i, v in enumerate(rng.integers(0, 99, 20))],
            "maxi": [(float(v), i) for i, v in enumerate(rng.integers(0, 99, 20))],
            "sum": [float(v) for v in rng.integers(-9, 9, 20)],
            "range": [float(v) for v in rng.integers(-9, 9, 20)],
            "meanvar": [float(v) for v in rng.integers(-9, 9, 20)],
        }
        for name in operator_names():
            check_operator(load_operator(name), data_by_name[name], n_trials=6)
