"""Service-level engine telemetry: lifecycles, metrics, exports.

Covers the ISSUE 6 tentpole: wall-clock job lifecycle stamps, scheduler
counters/gauges, quantile-bearing latency histograms, per-rank busy
timelines feeding the Chrome-trace exporter, JSONL snapshot rings,
Prometheus rendering — and the cost disciplines: registry thread-safety
under concurrent multi-client submits, and the allocation-free disabled
path (poison-tested like the disabled tracer).
"""

import json
import threading

import numpy as np
import pytest

from repro import global_reduce
from repro.analysis import engine_session_to_chrome_trace
from repro.engine import Engine
from repro.errors import EngineSaturated
from repro.obs import render_prometheus
from repro.obs.telemetry import (
    LIFECYCLE_STATES,
    NULL_ENGINE_TELEMETRY,
    EngineTelemetry,
    SnapshotRing,
)
from repro.ops import SumOp


def _job(comm):
    return global_reduce(comm, SumOp(), np.arange(8.0) + comm.rank)


def _failing_job(comm):
    raise RuntimeError("boom")


def _gated_job(gate):
    """A job that holds its ranks until ``gate`` is set — deterministic
    way to keep the pool busy while a test inspects queue behavior."""

    def fn(comm):
        gate.wait(10.0)
        return comm.rank

    return fn


class TestJobLifecycle:
    def test_completed_job_walks_all_stamps(self):
        with Engine(4, telemetry=True) as eng:
            h = eng.submit(_job, nprocs=2, session="tenant-a")
            h.result()
            lc = h.lifecycle
        assert lc is not None
        assert lc.state == "completed"
        assert lc.state in LIFECYCLE_STATES
        assert lc.session == "tenant-a"
        assert lc.nprocs == 2
        assert lc.job_id == h.job_id
        assert not lc.has_fault_plan
        # Monotone stamp chain: submitted <= queued <= assembled <=
        # running <= done.
        assert (lc.t_submitted <= lc.t_queued <= lc.t_assembled
                <= lc.t_running <= lc.t_done)
        assert lc.queue_wait >= 0.0
        assert lc.exec_seconds > 0.0
        assert lc.e2e_seconds >= lc.exec_seconds
        assert lc.virtual_seconds > 0.0

    def test_failed_job_terminal_state(self):
        with Engine(2, telemetry=True) as eng:
            h = eng.submit(_failing_job, nprocs=2)
            with pytest.raises(Exception):
                h.result()
            assert h.lifecycle.state == "failed"
            assert eng.telemetry.registry.counter(
                "engine.jobs.failed"
            ).value == 1

    def test_cancelled_pending_job(self):
        gate = threading.Event()
        with Engine(2, telemetry=True) as eng:
            blocker = eng.submit(_gated_job(gate), nprocs=2)
            victim = eng.submit(_job, nprocs=2)
            # The victim queues behind the blocker; cancel it while pending.
            assert victim.cancel()
            gate.set()
            blocker.result()
            lc = victim.lifecycle
        assert lc.state == "cancelled"
        assert lc.t_assembled is None  # never dispatched
        assert lc.t_done is not None

    def test_saturated_submit_records_rejection(self):
        gate = threading.Event()
        with Engine(2, telemetry=True, queue_depth=1) as eng:
            tel = eng.telemetry
            blocker = eng.submit(_gated_job(gate), nprocs=2)
            eng.submit(_job, nprocs=2, block=False)  # fills the queue
            with pytest.raises(EngineSaturated):
                eng.submit(_job, nprocs=2, block=False, session="t")
            assert tel.registry.counter("engine.jobs.rejected").value == 1
            rejected = [
                lc for lc in tel.recent_jobs() if lc.state == "saturated"
            ]
            assert len(rejected) == 1
            assert rejected[0].session == "t"
            gate.set()
            blocker.result()

    def test_to_record_is_json_serializable(self):
        with Engine(2, telemetry=True) as eng:
            h = eng.submit(_job, nprocs=2, label="my-label")
            h.result()
            rec = h.lifecycle.to_record()
        text = json.dumps(rec, allow_nan=False)
        back = json.loads(text)
        assert back["type"] == "job"
        assert back["label"] == "my-label"
        assert back["state"] == "completed"
        assert back["e2e_s"] > 0

    def test_set_telemetry_swaps_series(self):
        """A quiescent swap starts a fresh measurement series — the
        throughput benchmark excludes warm-up traffic this way."""
        with Engine(2, telemetry=True) as eng:
            eng.submit(_job, nprocs=2).result()  # "warm-up"
            old = eng.telemetry
            eng.set_telemetry(True)
            fresh = eng.telemetry
            assert fresh is not old
            eng.submit(_job, nprocs=2).result()
            assert old.registry.counter("engine.jobs.submitted").value == 1
            assert fresh.registry.counter(
                "engine.jobs.submitted"
            ).value == 1
            assert fresh.latency_summary()["e2e_s"]["count"] == 1
            eng.set_telemetry(False)
            h = eng.submit(_job, nprocs=2)
            h.result()
            assert h.lifecycle is None
            assert eng.telemetry is NULL_ENGINE_TELEMETRY

    def test_disabled_engine_has_no_lifecycle(self):
        with Engine(2) as eng:
            h = eng.submit(_job, nprocs=2)
            h.result()
            assert h.lifecycle is None
            assert eng.telemetry is NULL_ENGINE_TELEMETRY
            assert eng.stats()["telemetry_enabled"] is False


class TestSchedulerMetrics:
    def test_counters_and_gauges_settle(self):
        with Engine(4, telemetry=True) as eng:
            handles = [eng.submit(_job, nprocs=2) for _ in range(6)]
            for h in handles:
                h.result()
            snap = eng.telemetry.snapshot()
        c = snap["metrics"]["counters"]
        assert c["engine.jobs.submitted"] == 6
        assert c["engine.jobs.completed"] == 6
        assert c["engine.jobs.failed"] == 0
        g = snap["metrics"]["gauges"]
        assert g["engine.queue.depth"] == 0
        assert g["engine.jobs.inflight"] == 0
        assert g["engine.ranks.free"] == 4

    def test_schedule_cache_mirrored_into_gauges(self):
        with Engine(4, telemetry=True) as eng:
            for _ in range(4):
                eng.submit(_job, nprocs=2).result()
            snap = eng.telemetry.snapshot()
        g = snap["metrics"]["gauges"]
        cache = snap["engine"]["schedule_cache"]
        assert g["engine.schedule_cache.hits"] == cache["hits"]
        assert g["engine.schedule_cache.misses"] == cache["misses"]
        assert cache["hits"] > 0  # repeats of one shape must hit

    def test_latency_histograms_have_quantiles(self):
        with Engine(4, telemetry=True) as eng:
            for _ in range(8):
                eng.submit(_job, nprocs=2).result()
            lat = eng.telemetry.latency_summary()
        for key in ("queue_wait_s", "exec_s", "e2e_s", "virtual_s"):
            s = lat[key]
            assert s["count"] == 8
            assert s["p50"] is not None
            assert s["p50"] <= s["p99"] * (1 + 1e-9)

    def test_utilization_and_intervals(self):
        with Engine(4, telemetry=True) as eng:
            for _ in range(5):
                eng.submit(_job, nprocs=2).result()
            tel = eng.telemetry
            util = tel.utilization()
            intervals = tel.intervals()
        assert len(util) == 4
        assert all(0.0 <= u <= 1.0 for u in util)
        assert sum(util) > 0.0
        # One interval per (job, member): 5 jobs x 2 members.
        assert len(intervals) == 10
        for rank, t0, t1, job_id, label in intervals:
            assert 0 <= rank < 4
            assert t1 >= t0
        assert tel.interval_drops == 0

    def test_interval_ring_is_bounded(self):
        tel = EngineTelemetry(2, max_intervals=4)
        with Engine(2, telemetry=tel) as eng:
            for _ in range(6):
                eng.submit(_job, nprocs=2).result()
        assert len(tel.intervals()) == 4
        assert tel.interval_drops == 6 * 2 - 4


class TestRegistryThreadSafety:
    def test_concurrent_multi_client_submits(self):
        """Counters must not lose increments when many sessions hammer
        one telemetry-enabled engine concurrently."""
        n_clients, jobs_each = 6, 10
        with Engine(4, telemetry=True) as eng:
            def client(idx):
                with eng.session(label=f"c{idx}") as s:
                    hs = [s.submit(_job, nprocs=2) for _ in range(jobs_each)]
                    for h in hs:
                        h.result()

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            snap = eng.telemetry.snapshot()
        total = n_clients * jobs_each
        c = snap["metrics"]["counters"]
        assert c["engine.jobs.submitted"] == total
        assert c["engine.jobs.completed"] == total
        lat = snap["metrics"]["histograms"]["engine.job.e2e_seconds"]
        assert lat["count"] == total
        # Every member interval was accounted (2 members per job).
        assert sum(snap["jobs_per_rank"]) == total * 2

    def test_concurrent_histogram_observe(self):
        """Raw registry hammering from plain threads (no engine lock)."""
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        hist = reg.histogram("x")
        counter = reg.counter("n")
        n_threads, per_thread = 8, 500

        def work(seed):
            rng = np.random.default_rng(seed)
            for v in rng.uniform(0, 1, size=per_thread):
                hist.observe(float(v))
                counter.inc()

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread
        s = hist.summary()
        assert s["count"] == n_threads * per_thread
        assert 0.0 <= s["p50"] <= 1.0


class TestDisabledTelemetryAllocatesNothing:
    """ISSUE 6 cost discipline: a telemetry-off engine must build zero
    telemetry objects on the submit/schedule path — the disabled branch
    is an ``enabled`` attribute check plus the shared null object."""

    @pytest.fixture
    def poisoned(self, monkeypatch):
        from repro.obs import telemetry as telemetry_mod

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError(
                "telemetry object constructed with telemetry disabled"
            )

        monkeypatch.setattr(telemetry_mod.JobLifecycle, "__init__", boom)
        monkeypatch.setattr(telemetry_mod.EngineTelemetry, "__init__", boom)
        monkeypatch.setattr(telemetry_mod.SnapshotRing, "__init__", boom)

    def test_submit_path_is_clean(self, poisoned):
        with Engine(4) as eng:
            handles = [eng.submit(_job, nprocs=2) for _ in range(4)]
            results = [h.result() for h in handles]
        assert all(h.lifecycle is None for h in handles)
        assert len(results) == 4

    def test_spmd_run_compat_shim_is_clean(self, poisoned):
        from repro import spmd_run

        res = spmd_run(_job, 4)
        assert len(res.returns) == 4

    def test_saturated_path_is_clean(self, poisoned):
        gate = threading.Event()
        with Engine(2, queue_depth=1) as eng:
            blocker = eng.submit(_gated_job(gate), nprocs=2)
            eng.submit(_job, nprocs=2, block=False)
            with pytest.raises(EngineSaturated):
                eng.submit(_job, nprocs=2, block=False)
            gate.set()
            blocker.result()


class TestSnapshotRing:
    def test_sample_and_write(self, tmp_path):
        with Engine(2, telemetry=True) as eng:
            ring = SnapshotRing(eng.telemetry, interval=0.01, capacity=3)
            for _ in range(3):
                eng.submit(_job, nprocs=2).result()
            for _ in range(5):
                ring.sample()
            frames = ring.frames()
            assert len(frames) == 3  # bounded
            out = tmp_path / "telemetry.jsonl"
            n = ring.write(str(out))
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(lines) == n
        kinds = {l["type"] for l in lines}
        assert kinds == {"snapshot", "job", "metrics"}
        jobs = [l for l in lines if l["type"] == "job"]
        assert len(jobs) == 3
        assert all(j["state"] == "completed" for j in jobs)

    def test_thread_samples_periodically(self):
        with Engine(2, telemetry=True) as eng:
            with SnapshotRing(eng.telemetry, interval=0.02) as ring:
                eng.submit(_job, nprocs=2).result()
                import time

                time.sleep(0.15)
            assert len(ring.frames()) >= 2

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SnapshotRing(EngineTelemetry(1), interval=0.0)


class TestChromeTraceFeed:
    def test_engine_session_trace(self):
        with Engine(4, telemetry=True) as eng:
            for k in range(4):
                eng.submit(_job, nprocs=2, label=f"j{k}").result()
            doc = engine_session_to_chrome_trace(eng.telemetry)
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(slices) == 8  # 4 jobs x 2 members
        assert {e["name"] for e in slices} == {"j0", "j1", "j2", "j3"}
        assert all(e["dur"] >= 0 for e in slices)
        # One thread-name metadata row per pool rank.
        meta = [
            e for e in doc["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        ]
        assert len(meta) == 4
        assert doc["otherData"]["clock"] == "wall"
        json.dumps(doc)  # must serialize

    def test_write_engine_session_trace(self, tmp_path):
        from repro.analysis import write_engine_session_trace

        with Engine(2, telemetry=True) as eng:
            eng.submit(_job, nprocs=2).result()
            out = tmp_path / "session.json"
            write_engine_session_trace(eng.telemetry, str(out))
        doc = json.loads(out.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])


class TestPrometheusRendering:
    def test_counters_gauges_summaries(self):
        with Engine(4, telemetry=True) as eng:
            for _ in range(5):
                eng.submit(_job, nprocs=2).result()
            text = render_prometheus(eng.telemetry)
        assert "# TYPE repro_engine_jobs_submitted_total counter" in text
        assert "repro_engine_jobs_submitted_total 5" in text
        assert "# TYPE repro_engine_queue_depth gauge" in text
        assert "# TYPE repro_engine_job_e2e_seconds summary" in text
        assert 'repro_engine_job_e2e_seconds{quantile="0.5"}' in text
        assert "repro_engine_job_e2e_seconds_count 5" in text
        assert 'repro_engine_rank_busy_fraction{rank="3"}' in text
        # Text exposition 0.0.4: every line is NAME VALUE or a comment.
        for line in text.strip().splitlines():
            assert line.startswith("#") or len(line.split(" ")) == 2, line

    def test_disabled_telemetry_renders_stub(self):
        assert render_prometheus(NULL_ENGINE_TELEMETRY) == (
            "# telemetry disabled\n"
        )

    def test_bare_registry_renders(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("my.count").inc(3)
        reg.gauge("my.level").set(0.5)
        text = render_prometheus(reg)
        assert "repro_my_count_total 3" in text
        assert "repro_my_level 0.5" in text
