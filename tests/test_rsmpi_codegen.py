"""Tests for DSL code generation: C semantics, scoping, param constants."""

import pytest

from repro.errors import DslSemanticError
from repro.rsmpi.preprocessor.codegen import (
    C_CONSTANTS,
    _c_div,
    _c_mod,
    generate_python,
)
from repro.rsmpi.preprocessor.parser import parse_operator


def compile_fns(src: str, params=None):
    return generate_python(parse_operator(src), params)


def _wrap_fn(body: str, params: str = "state s, int i") -> str:
    return f"""
    rsmpi operator t {{
      state {{ int a; int b; }}
      void accum({params}) {{ {body} }}
      void combine(state s1, state s2) {{ ; }}
    }}
    """


class State:
    """Loose stand-in for StateRecord in codegen-only tests."""

    def __init__(self, **kw):
        self.__dict__.update(kw)


class TestCSemantics:
    def test_c_div_truncates_toward_zero(self):
        assert _c_div(7, 2) == 3
        assert _c_div(-7, 2) == -3  # Python's // would give -4
        assert _c_div(7, -2) == -3
        assert _c_div(7.0, 2) == 3.5  # floats divide normally

    def test_c_mod_sign_of_dividend(self):
        assert _c_mod(7, 3) == 1
        assert _c_mod(-7, 3) == -1  # Python's % would give 2
        assert _c_mod(7, -3) == 1

    def test_division_in_dsl(self):
        c = compile_fns(_wrap_fn("s->a = -7 / 2; s->b = -7 % 3;"))
        s = State(a=0, b=0)
        c.namespace["accum"](s, 0)
        assert s.a == -3 and s.b == -1

    def test_logical_ops_yield_ints_and_short_circuit(self):
        c = compile_fns(
            _wrap_fn("s->a = (i > 0) && (10 / i > 1); s->b = (i == 0) || (i > 2);")
        )
        s = State(a=None, b=None)
        c.namespace["accum"](s, 0)  # 10/0 must not be evaluated
        assert s.a == 0 and s.b == 1
        c.namespace["accum"](s, 5)
        assert s.a == 1 and s.b == 1

    def test_not_operator(self):
        c = compile_fns(_wrap_fn("s->a = !i; s->b = !!i;"))
        s = State(a=None, b=None)
        c.namespace["accum"](s, 7)
        assert (s.a, s.b) == (0, 1)

    def test_ternary(self):
        c = compile_fns(_wrap_fn("s->a = i > 3 ? 100 : 200;"))
        s = State(a=0)
        c.namespace["accum"](s, 5)
        assert s.a == 100
        c.namespace["accum"](s, 1)
        assert s.a == 200

    def test_compound_assignment_ops(self):
        c = compile_fns(
            _wrap_fn("s->a += i; s->a *= 2; s->a -= 1; s->b = 12; s->b &= 10;")
        )
        s = State(a=1, b=0)
        c.namespace["accum"](s, 4)
        assert s.a == 9 and s.b == 8

    def test_for_loop_with_incdec(self):
        c = compile_fns(
            _wrap_fn("int j; s->a = 0; for (j = 0; j < i; j++) s->a += j;")
        )
        s = State(a=None)
        c.namespace["accum"](s, 5)
        assert s.a == 10

    def test_while_loop(self):
        c = compile_fns(
            _wrap_fn("s->a = 0; while (i > 0) { s->a += i; i -= 1; }")
        )
        s = State(a=None)
        c.namespace["accum"](s, 4)
        assert s.a == 10

    def test_local_array_declaration(self):
        c = compile_fns(
            _wrap_fn("int tmp[3]; tmp[0] = i; tmp[2] = tmp[0] * 2; s->a = tmp[2];")
        )
        s = State(a=0)
        c.namespace["accum"](s, 6)
        assert s.a == 12

    def test_true_false_literals(self):
        c = compile_fns(_wrap_fn("s->a = true; s->b = false;"))
        s = State(a=None, b=None)
        c.namespace["accum"](s, 0)
        assert (s.a, s.b) == (1, 0)

    def test_builtin_math_functions(self):
        c = compile_fns(_wrap_fn("s->a = abs(-5) + max(2, 3) + min(7, i);"))
        s = State(a=0)
        c.namespace["accum"](s, 1)
        assert s.a == 5 + 3 + 1


class TestConstants:
    def test_c_limits_available(self):
        assert C_CONSTANTS["INT_MAX"] == 2**31 - 1
        c = compile_fns(_wrap_fn("s->a = INT_MAX; s->b = INT_MIN;"))
        s = State(a=0, b=0)
        c.namespace["accum"](s, 0)
        assert s.a == 2**31 - 1 and s.b == -(2**31)

    def test_param_default_and_override(self):
        src = """
        rsmpi operator t {
          param int k = 4;
          state { int a; }
          void accum(state s, int i) { s->a = k * i; }
          void combine(state s1, state s2) { ; }
        }
        """
        c1 = compile_fns(src)
        s = State(a=0)
        c1.namespace["accum"](s, 2)
        assert s.a == 8
        c2 = compile_fns(src, params={"k": 10})
        c2.namespace["accum"](s, 2)
        assert s.a == 20

    def test_param_without_default_requires_value(self):
        src = """
        rsmpi operator t {
          param int k;
          state { int a; }
          void accum(state s, int i) { s->a = k; }
          void combine(state s1, state s2) { ; }
        }
        """
        with pytest.raises(DslSemanticError, match="no default"):
            compile_fns(src)
        c = compile_fns(src, params={"k": 3})
        assert c.params["k"] == 3

    def test_unknown_param_rejected(self):
        with pytest.raises(DslSemanticError, match="unknown params"):
            compile_fns(_wrap_fn("s->a = 0;"), params={"nope": 1})

    def test_param_expression_default(self):
        src = """
        rsmpi operator t {
          param int k = 2 * 3 + 1;
          state { int a; }
          void accum(state s, int i) { s->a = k; }
          void combine(state s1, state s2) { ; }
        }
        """
        assert compile_fns(src).params["k"] == 7


class TestScoping:
    def test_unknown_name_rejected_at_compile_time(self):
        with pytest.raises(DslSemanticError, match="unknown name"):
            compile_fns(_wrap_fn("s->a = undeclared;"))

    def test_locals_scoped_to_function(self):
        src = """
        rsmpi operator t {
          state { int a; }
          void accum(state s, int i) { int local_x; local_x = i; s->a = local_x; }
          void combine(state s1, state s2) { s1->a = local_x; }
        }
        """
        with pytest.raises(DslSemanticError, match="unknown name"):
            compile_fns(src)

    def test_sibling_function_callable(self):
        src = """
        rsmpi operator t {
          state { int a; }
          void helper(state s, int v) { s->a += v; }
          void accum(state s, int i) { helper(s, i); helper(s, i); }
          void combine(state s1, state s2) { ; }
        }
        """
        c = compile_fns(src)
        s = State(a=0)
        c.namespace["accum"](s, 3)
        assert s.a == 6

    def test_assignment_inside_expression_rejected(self):
        with pytest.raises(DslSemanticError, match="statements"):
            compile_fns(_wrap_fn("s->a = (s->b = 1) + 2;"))

    def test_source_is_inspectable(self):
        c = compile_fns(_wrap_fn("s->a = i;"))
        assert "def accum(s, i):" in c.source


class TestBreakContinue:
    def test_break_in_for(self):
        c = compile_fns(
            _wrap_fn(
                "int j; s->a = 0; "
                "for (j = 0; j < 100; j++) { if (j == i) break; s->a += 1; }"
            )
        )
        s = State(a=None)
        c.namespace["accum"](s, 7)
        assert s.a == 7

    def test_break_in_while(self):
        c = compile_fns(
            _wrap_fn("s->a = 0; while (true) { s->a += 1; if (s->a >= i) break; }")
        )
        s = State(a=None)
        c.namespace["accum"](s, 4)
        assert s.a == 4

    def test_continue_in_while(self):
        c = compile_fns(
            _wrap_fn(
                "int j; j = 0; s->a = 0; "
                "while (j < i) { j += 1; if (j % 2 == 0) continue; s->a += j; }"
            )
        )
        s = State(a=None)
        c.namespace["accum"](s, 6)
        assert s.a == 1 + 3 + 5

    def test_continue_in_for_rejected(self):
        with pytest.raises(DslSemanticError, match="continue"):
            compile_fns(
                _wrap_fn(
                    "int j; for (j = 0; j < i; j++) { continue; }"
                )
            )

    def test_break_outside_loop_rejected(self):
        with pytest.raises(DslSemanticError, match="break"):
            compile_fns(_wrap_fn("break;"))

    def test_nested_loops_break_inner_only(self):
        c = compile_fns(
            _wrap_fn(
                "int j, kk; s->a = 0; "
                "for (j = 0; j < 3; j++) { "
                "  kk = 0; "
                "  while (true) { kk += 1; if (kk >= 2) break; } "
                "  s->a += kk; "
                "}"
            )
        )
        s = State(a=None)
        c.namespace["accum"](s, 0)
        assert s.a == 6
