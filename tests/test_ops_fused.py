"""Tests for operator fusion (FusedOp) and the one-sided k-extrema ops."""

import numpy as np
import pytest

from repro.core import check_operator, global_reduce, global_scan
from repro.errors import OperatorError
from repro.ops import (
    CountsOp,
    FusedOp,
    MaxKLocOp,
    MaxKOp,
    MeanVarOp,
    MinKLocOp,
    MinKOp,
    SortedOp,
    SumOp,
)
from repro.runtime import spmd_run
from tests.conftest import block_split, gather_scan, run_all

SIZES = [1, 2, 3, 5, 8]
INT_MAX = np.iinfo(np.int64).max
INT_MIN = np.iinfo(np.int64).min


class TestFusedOp:
    @pytest.mark.parametrize("p", SIZES)
    def test_one_pass_many_answers(self, p, rng):
        data = rng.integers(0, 1000, 120)
        op = FusedOp([SumOp(), MinKOp(3, INT_MAX), MaxKOp(3, INT_MIN)])

        def prog(comm):
            return global_reduce(
                comm, op, block_split(data, comm.size, comm.rank)
            )

        for total, mins, maxs in run_all(prog, p):
            assert total == data.sum()
            assert mins.tolist() == np.sort(data)[:3][::-1].tolist()
            assert maxs.tolist() == np.sort(data)[-3:].tolist()

    def test_single_reduction_call(self, rng):
        data = rng.integers(0, 100, 40)
        op = FusedOp([SumOp(), MeanVarOp()])
        res = spmd_run(
            lambda comm: global_reduce(
                comm, op, block_split(data, comm.size, comm.rank)
            ),
            8,
        )
        # fusion == one combine tree: exactly one reduction collective
        assert res.traces[0].collective_calls["allreduce"] == 1

    def test_commutativity_contagion(self):
        assert FusedOp([SumOp(), MinKOp(2)]).commutative is True
        assert FusedOp([SumOp(), SortedOp()]).commutative is False

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_fused_with_noncommutative_member(self, p):
        data = np.arange(30)
        op = FusedOp([SumOp(), SortedOp()])

        def prog(comm):
            return global_reduce(
                comm, op, block_split(data, comm.size, comm.rank)
            )

        for total, ok in run_all(prog, p):
            assert total == data.sum() and ok is True

    @pytest.mark.parametrize("p", SIZES)
    def test_fused_scan(self, p, paper_data):
        op = FusedOp([SumOp(), CountsOp(8)])
        out = gather_scan(
            lambda comm: global_scan(
                comm, op, block_split(paper_data, comm.size, comm.rank)
            ),
            p,
        )
        sums = [int(t[0]) for t in out]
        ranks = [t[1] for t in out]
        assert sums == [6, 13, 19, 22, 30, 32, 40, 44, 52, 55]
        assert ranks == [1, 1, 2, 1, 1, 1, 2, 1, 3, 2]

    def test_projections(self, rng):
        # fuse stats over value with mink over key, from (key, value) rows
        data = [(int(k), float(v)) for k, v in
                zip(rng.integers(0, 50, 30), rng.normal(size=30))]
        op = FusedOp(
            [MinKOp(2, INT_MAX), MeanVarOp()],
            projections=[lambda t: t[0], lambda t: t[1]],
        )
        out = run_all(
            lambda comm: global_reduce(
                comm, op, block_split(data, comm.size, comm.rank)
            ),
            4,
        )[0]
        keys = sorted(k for k, _ in data)
        vals = np.array([v for _, v in data])
        assert out[0].tolist() == keys[:2][::-1]
        assert out[1].mean == pytest.approx(vals.mean())

    def test_law_check_passes(self, rng):
        op = FusedOp([SumOp(), MinKOp(3, INT_MAX), CountsOp(100, base=0)])
        check_operator(op, list(rng.integers(0, 100, 30)), n_trials=10)

    def test_validation(self):
        with pytest.raises(OperatorError):
            FusedOp([])
        with pytest.raises(OperatorError):
            FusedOp([SumOp()], projections=[None, None])
        with pytest.raises(OperatorError):
            FusedOp([lambda a, b: a])

    def test_zran3_style_fusion_matches_extrema(self, rng):
        """FusedOp([MaxKLoc, MinKLoc]) == ExtremaKLocOp — the MG operator
        assembled from parts."""
        from repro.ops import ExtremaKLocOp

        vals = rng.normal(size=200)
        pairs = np.column_stack([vals, np.arange(200.0)])
        fused = FusedOp([MaxKLocOp(10), MinKLocOp(10)])
        combo = ExtremaKLocOp(10)

        def prog(comm):
            local = block_split(pairs, comm.size, comm.rank)
            return (
                global_reduce(comm, fused, local),
                global_reduce(comm, combo, local),
            )

        for (ftop, fbot), (ctop, cbot) in run_all(prog, 4):
            assert np.array_equal(ftop, ctop)
            assert np.array_equal(fbot, cbot)


class TestOneSidedKLoc:
    @pytest.mark.parametrize("p", SIZES)
    def test_minkloc(self, p, rng):
        vals = rng.permutation(50).astype(float)
        pairs = np.column_stack([vals, np.arange(50.0)])

        def prog(comm):
            return global_reduce(
                comm, MinKLocOp(4), block_split(pairs, comm.size, comm.rank)
            )

        for out in run_all(prog, p):
            assert out[:, 0].tolist() == [0, 1, 2, 3]
            for v, loc in out:
                assert vals[int(loc)] == v

    @pytest.mark.parametrize("p", SIZES)
    def test_maxkloc(self, p, rng):
        vals = rng.permutation(50).astype(float)
        pairs = np.column_stack([vals, np.arange(50.0)])

        def prog(comm):
            return global_reduce(
                comm, MaxKLocOp(4), block_split(pairs, comm.size, comm.rank)
            )

        for out in run_all(prog, p):
            assert out[:, 0].tolist() == [49, 48, 47, 46]

    def test_tie_break_smallest_loc(self):
        pairs = [(5.0, 3), (5.0, 1), (5.0, 2)]
        out = run_all(
            lambda comm: global_reduce(comm, MinKLocOp(2), pairs), 1
        )[0]
        assert out[:, 1].tolist() == [1, 2]

    def test_law_check(self, rng):
        pairs = [(float(v), i) for i, v in enumerate(rng.integers(0, 20, 25))]
        check_operator(MinKLocOp(5), pairs, n_trials=10)
        check_operator(MaxKLocOp(5), pairs, n_trials=10)

    def test_invalid(self):
        with pytest.raises(OperatorError):
            MinKLocOp(0)
        op = MinKLocOp(3)
        with pytest.raises(OperatorError):
            op.accum_block(op.ident(), np.zeros((3, 4)))
