"""Tests for the scan-based algorithms (compact, split, radix sort)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import radix_sort, split_by_flag, stream_compact
from repro.errors import ReproError, SpmdError
from repro.runtime import spmd_run
from tests.conftest import block_split, run_all

SIZES = [1, 2, 3, 5, 8]


def _gathered(fn, data, p, *extra_arrays):
    """Run a block-distributed algorithm and concatenate rank results."""

    def prog(comm):
        sl = block_split(np.arange(len(data)), comm.size, comm.rank)
        args = [np.asarray(data)[sl]] + [np.asarray(a)[sl] for a in extra_arrays]
        return fn(comm, *args)

    res = spmd_run(prog, p, timeout=60)
    return np.concatenate(res.returns)


class TestStreamCompact:
    @pytest.mark.parametrize("p", SIZES)
    def test_keeps_flagged_in_order(self, p, rng):
        data = rng.integers(0, 1000, 97)
        mask = rng.random(97) < 0.4
        out = _gathered(stream_compact, data, p, mask)
        assert np.array_equal(out, data[mask])

    @pytest.mark.parametrize("p", [1, 4])
    def test_all_kept_and_none_kept(self, p, rng):
        data = rng.integers(0, 9, 20)
        assert np.array_equal(
            _gathered(stream_compact, data, p, np.ones(20, bool)), data
        )
        assert len(
            _gathered(stream_compact, data, p, np.zeros(20, bool))
        ) == 0

    def test_result_blocks_balanced(self, rng):
        data = rng.integers(0, 100, 100)
        mask = np.ones(100, bool)

        def prog(comm):
            sl = block_split(np.arange(100), comm.size, comm.rank)
            return len(stream_compact(comm, data[sl], mask[sl]))

        counts = run_all(prog, 7)
        assert sum(counts) == 100
        assert max(counts) - min(counts) <= 1

    def test_shape_mismatch(self):
        def prog(comm):
            stream_compact(comm, np.zeros(3), np.zeros(4, bool))

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 2, timeout=10)
        assert any(
            isinstance(e, ReproError) for e in ei.value.failures.values()
        )


class TestSplitByFlag:
    @pytest.mark.parametrize("p", SIZES)
    def test_stable_partition(self, p, rng):
        data = rng.integers(0, 1000, 83)
        flags = rng.random(83) < 0.5
        out = _gathered(split_by_flag, data, p, flags)
        expected = np.concatenate([data[~flags], data[flags]])
        assert np.array_equal(out, expected)

    @pytest.mark.parametrize("p", [1, 3])
    def test_all_one_side(self, p, rng):
        data = rng.integers(0, 50, 30)
        same = _gathered(split_by_flag, data, p, np.zeros(30, bool))
        assert np.array_equal(same, data)
        same = _gathered(split_by_flag, data, p, np.ones(30, bool))
        assert np.array_equal(same, data)

    def test_empty(self):
        out = _gathered(split_by_flag, np.array([], dtype=int), 3,
                        np.array([], dtype=bool))
        assert len(out) == 0

    def test_single_aggregated_exscan(self, rng):
        data = rng.integers(0, 9, 40)
        flags = data % 2 == 1

        def prog(comm):
            sl = block_split(np.arange(40), comm.size, comm.rank)
            split_by_flag(comm, data[sl], flags[sl])

        res = spmd_run(prog, 4)
        calls = res.traces[0].collective_calls
        assert calls["exscan"] == 1  # aggregated: one scan, two counters
        assert calls["allreduce"] == 1
        assert calls["alltoall"] == 1


class TestRadixSort:
    @pytest.mark.parametrize("p", SIZES)
    def test_sorts(self, p, rng):
        data = rng.integers(0, 1 << 16, 120)
        out = _gathered(lambda comm, d: radix_sort(comm, d), data, p)
        assert np.array_equal(out, np.sort(data))

    @pytest.mark.parametrize("p", [1, 4])
    def test_duplicates_and_zeros(self, p, rng):
        data = rng.integers(0, 4, 50)
        out = _gathered(lambda comm, d: radix_sort(comm, d), data, p)
        assert np.array_equal(out, np.sort(data))

    def test_explicit_bit_width(self, rng):
        data = rng.integers(0, 256, 64)
        out = _gathered(
            lambda comm, d: radix_sort(comm, d, bits=8), data, 4
        )
        assert np.array_equal(out, np.sort(data))

    def test_negative_rejected(self):
        def prog(comm):
            radix_sort(comm, np.array([-1, 2]))

        with pytest.raises(SpmdError):
            spmd_run(prog, 2, timeout=10)

    def test_empty_everywhere(self):
        out = _gathered(
            lambda comm, d: radix_sort(comm, d), np.array([], dtype=int), 3
        )
        assert len(out) == 0

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(st.integers(0, 1023), max_size=60),
        p=st.integers(1, 5),
    )
    def test_property_equals_numpy_sort(self, data, p):
        arr = np.array(data, dtype=np.int64)
        out = _gathered(lambda comm, d: radix_sort(comm, d), arr, p)
        assert np.array_equal(out, np.sort(arr))


class TestSampleSort:
    @pytest.mark.parametrize("p", SIZES)
    def test_sorts_floats(self, p, rng):
        from repro.algorithms import sample_sort

        data = rng.normal(size=150)
        out = _gathered(lambda comm, d: sample_sort(comm, d), data, p)
        assert np.array_equal(out, np.sort(data))

    @pytest.mark.parametrize("p", [1, 4, 8])
    def test_duplicates(self, p, rng):
        from repro.algorithms import sample_sort

        data = rng.integers(0, 5, 80).astype(float)
        out = _gathered(lambda comm, d: sample_sort(comm, d), data, p)
        assert np.array_equal(out, np.sort(data))

    def test_empty_and_tiny(self):
        from repro.algorithms import sample_sort

        out = _gathered(
            lambda comm, d: sample_sort(comm, d),
            np.array([], dtype=float), 3,
        )
        assert len(out) == 0
        out = _gathered(
            lambda comm, d: sample_sort(comm, d), np.array([2.0, 1.0]), 5
        )
        assert out.tolist() == [1.0, 2.0]

    def test_roughly_balanced(self, rng):
        from repro.algorithms import sample_sort

        data = rng.normal(size=4000)

        def prog(comm):
            sl = block_split(np.arange(4000), comm.size, comm.rank)
            return len(sample_sort(comm, data[sl]))

        counts = run_all(prog, 8)
        assert sum(counts) == 4000
        assert max(counts) < 3 * (4000 / 8)  # oversampling bounds skew

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), max_size=60
        ),
        p=st.integers(1, 5),
    )
    def test_property_equals_numpy_sort(self, data, p):
        from repro.algorithms import sample_sort

        arr = np.array(data, dtype=np.float64)
        out = _gathered(lambda comm, d: sample_sort(comm, d), arr, p)
        assert np.array_equal(out, np.sort(arr))
