"""Self-healing engine tests: retry, quarantine, probe, reap, shutdown.

The policy layer (:mod:`repro.engine.resilience`) is pure and unit-
tested directly; the mechanism tests drive a real :class:`Engine`
through injected fail-stops and assert the ISSUE 8 contract: retried
jobs eventually succeed **bit-identically** to a fault-free run,
exhausted retries surface the *last* attempt's error with rank states,
dead pool ranks are quarantined / probed / revived, degraded capacity
is visible and enforceable at admission, stuck jobs are reaped
server-side, and shutdown reports (rather than hides) join failures.
"""

import threading
import time

import numpy as np
import pytest

from repro.engine import Engine, RetryPolicy, SupervisorConfig
from repro.errors import (
    EngineDegraded,
    EngineSaturated,
    SpmdError,
    SpmdTimeout,
)
from repro.faults import (
    FailStop,
    FaultPlan,
    LinkFaults,
    reseed,
    transient_plan,
)
from repro.obs.telemetry import EngineTelemetry
from repro.ops import MaxOp, SumOp
from repro.runtime import spmd_run

PAYLOAD = 16


def _raw_job(op_factory):
    """A reduction over the raw (non-resilient) allreduce path: an
    injected fail-stop fails the attempt instead of being absorbed by
    the restartable ``global_reduce`` driver, which is the lane the
    engine's RetryPolicy exists for."""
    from repro.core.reduce import accumulate_local, wire_op

    def job(comm):
        op = op_factory()
        local = np.arange(
            comm.rank, PAYLOAD * comm.size, comm.size, dtype=np.float64
        )
        acc = accumulate_local(comm, op, local)
        return op.red_gen(comm.allreduce(acc, wire_op(op)))

    return job


raw_sum_job = _raw_job(SumOp)

KILL_RANK_1 = FaultPlan(seed=5, failstops=(FailStop(rank=1, at_op=1),))


def always_failstop(attempt):
    """Callable plan source that crashes rank 1 on *every* attempt."""
    return KILL_RANK_1


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(retry_on=())
        with pytest.raises(ValueError):
            SupervisorConfig(interval=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(capacity_floor=1.5)

    def test_should_retry(self):
        policy = RetryPolicy(max_attempts=3)
        err = SpmdError({1: ValueError("boom")})
        assert policy.should_retry(1, err)
        assert policy.should_retry(2, err)
        assert not policy.should_retry(3, err)  # attempts exhausted
        assert not policy.should_retry(1, ValueError("not transient"))

    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5,
            jitter=0.2, seed=7,
        )
        for attempt in (1, 2, 3, 6):
            a = policy.backoff_seconds(attempt, job_id=42)
            b = policy.backoff_seconds(attempt, job_id=42)
            assert a == b  # same (seed, job, attempt) -> same jitter
            nominal = min(0.5, 0.1 * 2.0 ** (attempt - 1))
            assert nominal * 0.8 <= a <= nominal * 1.2
        # Different jobs de-synchronize.
        assert policy.backoff_seconds(1, 1) != policy.backoff_seconds(1, 2)

    def test_fault_plan_for(self):
        policy = RetryPolicy()
        assert policy.fault_plan_for(None, 0) is None
        assert policy.fault_plan_for(None, 3) is None
        # Static plan: verbatim on attempt 0, reseeded afterwards.
        assert policy.fault_plan_for(KILL_RANK_1, 0) is KILL_RANK_1
        derived = policy.fault_plan_for(KILL_RANK_1, 1)
        assert derived.failstops == ()
        assert derived.seed != KILL_RANK_1.seed
        # reseed_faults=False replays the same plan every attempt.
        sticky = RetryPolicy(reseed_faults=False)
        assert sticky.fault_plan_for(KILL_RANK_1, 2) is KILL_RANK_1
        # Callable sources are consulted per attempt, flag ignored.
        assert sticky.fault_plan_for(always_failstop, 4) is KILL_RANK_1


class TestPlanDerivation:
    def test_reseed_is_deterministic_and_drops_failstops(self):
        plan = FaultPlan(
            seed=9, failstops=(FailStop(rank=2, at_op=3),),
            link=LinkFaults(drop_rate=0.1),
        )
        assert reseed(plan, 0) is plan
        d1, d1_again = reseed(plan, 1), reseed(plan, 1)
        assert d1 == d1_again
        assert d1.failstops == ()
        assert d1.link == plan.link  # link faults persist (reliable layer)
        assert reseed(plan, 2).seed != d1.seed

    def test_transient_plan_deterministic(self):
        tp = transient_plan(11, 4, failstop_rate=0.5)
        draws = [tp(a) for a in range(10)]
        assert draws == [tp(a) for a in range(10)]  # pure function of seed
        assert any(p.failstops for p in draws)
        assert any(not p.failstops for p in draws)
        for p in draws:
            for fs in p.failstops:
                assert 1 <= fs.rank < 4  # rank 0 (the root) never dies


class TestRetryExecution:
    def test_retry_succeeds_bit_identical(self):
        baseline = spmd_run(raw_sum_job, 4)
        with Engine(4) as engine:
            handle = engine.submit(
                raw_sum_job, fault_plan=KILL_RANK_1,
                retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.001),
            )
            res = handle.result(timeout=30.0)
            stats = engine.stats()
        assert handle.attempt == 2  # one crash, one clean re-run
        assert res.returns == baseline.returns
        assert res.clocks == baseline.clocks
        assert res.time == baseline.time
        assert stats["retried"] == 1
        assert stats["completed"] == 1 and stats["failed"] == 0

    def test_exhausted_retries_surface_last_error(self):
        with Engine(4) as engine:
            handle = engine.submit(
                raw_sum_job, fault_plan=always_failstop,
                retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.001),
            )
            with pytest.raises(SpmdError) as exc:
                handle.result(timeout=60.0)
            stats = engine.stats()
        assert handle.attempt == 2
        assert handle.status == "failed"
        # The terminal error is the *last* attempt's, diagnostics intact.
        assert exc.value.failures
        assert exc.value.rank_states
        assert stats["retried"] == 1 and stats["failed"] == 1

    def test_retry_on_filters_error_types(self):
        # SpmdError failures are not retried under a timeout-only policy.
        picky = RetryPolicy(
            max_attempts=3, backoff_base=0.001, retry_on=(SpmdTimeout,),
        )
        with Engine(4) as engine:
            handle = engine.submit(
                raw_sum_job, fault_plan=KILL_RANK_1, retry_policy=picky,
            )
            with pytest.raises(SpmdError):
                handle.result(timeout=30.0)
            assert handle.attempt == 1
            assert engine.stats()["retried"] == 0

    def test_retry_without_supervisor_readmits_inline(self):
        with Engine(4, supervisor=False) as engine:
            handle = engine.submit(
                raw_sum_job, fault_plan=KILL_RANK_1,
                retry_policy=RetryPolicy(max_attempts=3),
            )
            res = handle.result(timeout=30.0)
        assert handle.attempt == 2
        assert res.returns == spmd_run(raw_sum_job, 4).returns

    def test_attempt_is_one_without_retries(self):
        with Engine(2) as engine:
            handle = engine.submit(raw_sum_job)
            handle.result()
        assert handle.attempt == 1

    def test_callable_plan_without_policy_uses_attempt_zero(self):
        tp = transient_plan(3, 4, failstop_rate=1.0, lossy=False)
        assert tp(0).failstops  # this seed's first draw kills a rank
        with Engine(4) as engine:
            handle = engine.submit(raw_sum_job, fault_plan=tp)
            with pytest.raises(SpmdError):
                handle.result(timeout=30.0)
        assert handle.attempt == 1  # no policy, no retry


class TestRetryDeterminismGrid:
    """ISSUE 8 satellite: seeded plan x policy grid — eventual results
    must be byte-identical to the fault-free baseline, per operator."""

    @pytest.mark.parametrize("nprocs", [4, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "op_factory", [SumOp, MaxOp], ids=["sum", "max"]
    )
    def test_grid(self, seed, nprocs, op_factory):
        job = _raw_job(op_factory)
        baseline = spmd_run(job, nprocs)
        # Attempt 0 crashes rank 1 under a lossy link; the reseeded
        # attempt keeps the (bit-transparent) link faults but drops the
        # fail-stop, so attempt 2 must land the baseline answer exactly.
        plan = FaultPlan(
            seed=seed, failstops=(FailStop(rank=1, at_op=1),),
            link=LinkFaults(drop_rate=0.15, dup_rate=0.1),
        )
        policy = RetryPolicy(max_attempts=3, backoff_base=0.001, seed=seed)
        with Engine(nprocs) as engine:
            first = engine.submit(
                job, fault_plan=plan, retry_policy=policy
            ).result(timeout=60.0)
            again = engine.submit(
                job, fault_plan=plan, retry_policy=policy
            ).result(timeout=60.0)
        assert first.returns == baseline.returns
        assert again.returns == baseline.returns
        assert first.clocks == again.clocks


class TestLeakedMessages:
    def test_midcollective_failstop_counts_leaked_messages(self):
        telemetry = EngineTelemetry(4)
        with Engine(4, telemetry=telemetry, supervisor=False) as engine:
            with pytest.raises(SpmdError):
                engine.submit(
                    raw_sum_job, fault_plan=KILL_RANK_1
                ).result(timeout=30.0)
            stats = engine.stats()
        # A rank died mid-collective: messages addressed to it were
        # swept at finalize and must be visible in both surfaces.
        assert stats["leaked_messages_drained"] > 0
        counter = telemetry.registry.counter("engine.jobs.leaked_messages")
        assert counter.value == stats["leaked_messages_drained"]

    def test_clean_jobs_leak_nothing(self):
        telemetry = EngineTelemetry(4)
        with Engine(4, telemetry=telemetry) as engine:
            engine.submit(raw_sum_job).result()
        assert telemetry.registry.counter(
            "engine.jobs.leaked_messages"
        ).value == 0


class TestQuarantineAndDegraded:
    # Probes pushed far out: these tests pin ranks *in* quarantine.
    FROZEN = SupervisorConfig(interval=0.02, probe_after=300.0)

    def _kill_two_ranks(self, engine):
        plan = FaultPlan(
            seed=1,
            failstops=(FailStop(rank=1, at_op=1), FailStop(rank=2, at_op=1)),
        )
        with pytest.raises(SpmdError):
            engine.submit(
                raw_sum_job, nprocs=4, fault_plan=plan
            ).result(timeout=30.0)

    def test_dead_ranks_quarantined_and_status_degraded(self):
        with Engine(4, supervisor=self.FROZEN) as engine:
            assert engine.status() == "ok"
            self._kill_two_ranks(engine)
            stats = engine.stats()
            assert stats["quarantined_ranks"] == [1, 2]
            assert stats["effective_capacity"] == 2
            assert stats["quarantines"] == 2
            assert stats["degraded"] is True
            assert engine.status() == "degraded"
        assert engine.status() == "closed"

    def test_degraded_submit_raises_unless_shrink(self):
        with Engine(4, supervisor=self.FROZEN) as engine:
            self._kill_two_ranks(engine)
            with pytest.raises(EngineDegraded, match="allow_shrink"):
                engine.submit(raw_sum_job, nprocs=4, block=False)
            # EngineDegraded extends EngineSaturated: existing
            # backpressure handlers keep working unmodified.
            assert issubclass(EngineDegraded, EngineSaturated)
            # Jobs that still fit the effective capacity run normally.
            res = engine.submit(raw_sum_job, nprocs=2).result(timeout=30.0)
            assert res.returns == spmd_run(raw_sum_job, 2).returns

    def test_allow_shrink_gang_assembles_on_fewer_ranks(self):
        with Engine(4, supervisor=self.FROZEN) as engine:
            self._kill_two_ranks(engine)
            handle = engine.submit(
                raw_sum_job, nprocs=4, allow_shrink=True
            )
            res = handle.result(timeout=30.0)
            stats = engine.stats()
        # Shrunk to the 2 schedulable ranks, same answer as a 2-rank run.
        assert res.nprocs == 2
        assert res.returns == spmd_run(raw_sum_job, 2).returns
        assert stats["shrunk"] == 1


class TestProbeAndRevive:
    def test_quarantined_rank_is_probed_back(self):
        cfg = SupervisorConfig(interval=0.02, probe_after=0.05)
        with Engine(4, supervisor=cfg) as engine:
            with pytest.raises(SpmdError):
                engine.submit(
                    raw_sum_job, nprocs=4, fault_plan=KILL_RANK_1
                ).result(timeout=30.0)
            assert engine.stats()["quarantined_ranks"] == [1]
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = engine.stats()
                if not stats["quarantined_ranks"]:
                    break
                time.sleep(0.02)
            assert stats["quarantined_ranks"] == []
            assert stats["revivals"] == 1
            assert stats["effective_capacity"] == 4
            assert engine.status() == "ok"
            # The revived rank serves full-pool gangs again.
            res = engine.submit(raw_sum_job, nprocs=4).result(timeout=30.0)
            assert res.returns == spmd_run(raw_sum_job, 4).returns


class TestReaper:
    def test_stuck_job_is_reaped_server_side(self):
        release = threading.Event()

        def stuck(comm):
            # Rank 0 blocks in a receive (abortable); rank 1 idles in
            # plain Python, so the per-collective deadlock watchdog
            # never fires — only the supervisor's deadline escalation
            # can unwedge this job.
            if comm.rank == 0:
                comm.recv(source=1, tag=5)
            else:
                release.wait(8.0)

        cfg = SupervisorConfig(interval=0.02, reap_grace=0.05)
        try:
            with Engine(2, supervisor=cfg) as engine:
                handle = engine.submit(stuck, timeout=0.1)
                time.sleep(0.5)  # no client waiting: server-side only
                release.set()
                with pytest.raises(SpmdTimeout, match="reaped") as exc:
                    handle.result(timeout=10.0)
                assert exc.value.rank_states
                assert engine.stats()["reaped"] == 1
                # The pool is whole again after the unwind.
                res = engine.submit(raw_sum_job).result(timeout=30.0)
                assert res.returns == spmd_run(raw_sum_job, 2).returns
        finally:
            release.set()

    def test_reap_disabled_leaves_job_to_the_client(self):
        release = threading.Event()

        def gated(comm):
            release.wait(8.0)
            return comm.rank

        cfg = SupervisorConfig(interval=0.02, reap=False)
        try:
            with Engine(2, supervisor=cfg) as engine:
                handle = engine.submit(gated, timeout=0.1)
                time.sleep(0.4)
                assert handle.status == "running"  # nobody reaped it
                release.set()
                handle.wait(5.0)
                assert engine.stats()["reaped"] == 0
        finally:
            release.set()


class TestShutdownJoin:
    def test_default_join_timeout_documented_and_overridable(self):
        assert Engine.DEFAULT_JOIN_TIMEOUT == 5.0
        engine = Engine(2)
        engine.submit(raw_sum_job).result()
        assert engine.shutdown() is True
        assert engine.shutdown() is True  # idempotent, same verdict

    def test_failed_join_returns_false_and_warns(self, caplog):
        release = threading.Event()

        def wedged(comm):
            release.wait(8.0)
            return comm.rank

        engine = Engine(2)
        try:
            handle = engine.submit(wedged)
            # The wedged ranks sit in plain Python: abort can't wake
            # them, so the join budget expires and shutdown says so
            # instead of silently "succeeding".
            with caplog.at_level("WARNING", logger="repro.engine"):
                clean = engine.shutdown(drain=False, join_timeout=0.2)
            assert clean is False
            assert any(
                "failed to join" in rec.message for rec in caplog.records
            )
            assert engine.shutdown() is False  # verdict is sticky
        finally:
            release.set()
            handle.wait(5.0)
