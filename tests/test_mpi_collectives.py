"""Tests for every collective across sizes, roots and operand kinds."""

import numpy as np
import pytest

from repro import mpi
from repro.runtime import spmd_run
from tests.conftest import run_all

SIZES = [1, 2, 3, 4, 5, 7, 8, 12, 16]


class TestBarrier:
    @pytest.mark.parametrize("p", SIZES)
    def test_completes(self, p):
        run_all(lambda comm: comm.barrier(), p)

    def test_synchronizes_virtual_clocks_forward(self):
        def prog(comm):
            if comm.rank == 0:
                comm.charge(1.0, "slow")
            comm.barrier()
            return comm.context.clock.t

        out = run_all(prog, 4)
        assert all(t >= 1.0 for t in out)


class TestBcast:
    @pytest.mark.parametrize("p", SIZES)
    def test_all_ranks_get_value(self, p):
        def prog(comm):
            return comm.bcast("v" if comm.rank == 0 else None, root=0)

        assert run_all(prog, p) == ["v"] * p

    @pytest.mark.parametrize("root", [0, 1, 3, 4])
    def test_nonzero_roots(self, root):
        p = 5

        def prog(comm):
            return comm.bcast(comm.rank if comm.rank == root else None, root)

        assert run_all(prog, p) == [root] * p

    def test_numpy_payload(self):
        def prog(comm):
            data = np.arange(6) if comm.rank == 2 else None
            return comm.bcast(data, root=2)

        for arr in run_all(prog, 4):
            assert np.array_equal(arr, np.arange(6))

    def test_bad_root(self):
        from repro.errors import SpmdError

        with pytest.raises(SpmdError):
            spmd_run(lambda comm: comm.bcast(1, root=9), 2)


class TestGatherScatter:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("root", [0, "last"])
    def test_gather_ordered(self, p, root):
        r = p - 1 if root == "last" else 0

        def prog(comm):
            return comm.gather(comm.rank * 2, root=r)

        out = run_all(prog, p)
        assert out[r] == [2 * i for i in range(p)]
        for q, v in enumerate(out):
            if q != r:
                assert v is None

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("root", [0, "mid"])
    def test_scatter(self, p, root):
        r = p // 2 if root == "mid" else 0

        def prog(comm):
            items = [f"item{i}" for i in range(p)] if comm.rank == r else None
            return comm.scatter(items, root=r)

        assert run_all(prog, p) == [f"item{i}" for i in range(p)]

    def test_scatter_wrong_count(self):
        from repro.errors import SpmdError

        def prog(comm):
            comm.scatter([1] if comm.rank == 0 else None, root=0)

        with pytest.raises(SpmdError):
            spmd_run(prog, 3, timeout=10)

    @pytest.mark.parametrize("p", SIZES)
    def test_allgather(self, p):
        out = run_all(lambda comm: comm.allgather(comm.rank ** 2), p)
        assert out == [[i ** 2 for i in range(p)]] * p

    def test_scatter_then_gather_roundtrip(self):
        def prog(comm):
            items = list(range(100, 100 + comm.size)) if comm.rank == 0 else None
            mine = comm.scatter(items, root=0)
            return comm.gather(mine, root=0)

        out = run_all(prog, 6)
        assert out[0] == list(range(100, 106))


class TestAlltoall:
    @pytest.mark.parametrize("p", SIZES)
    def test_personalized_exchange(self, p):
        def prog(comm):
            return comm.alltoall([(comm.rank, d) for d in range(p)])

        out = run_all(prog, p)
        for r in range(p):
            assert out[r] == [(s, r) for s in range(p)]

    def test_wrong_length_rejected(self):
        from repro.errors import SpmdError

        with pytest.raises(SpmdError):
            spmd_run(lambda comm: comm.alltoall([1]), 3, timeout=10)

    def test_numpy_blocks(self):
        def prog(comm):
            blocks = [np.full(3, comm.rank * 10 + d) for d in range(comm.size)]
            got = comm.alltoall(blocks)
            return [b.tolist() for b in got]

        out = run_all(prog, 3)
        assert out[1] == [[1] * 3, [11] * 3, [21] * 3]


class TestReduce:
    @pytest.mark.parametrize("p", SIZES)
    def test_sum_to_root(self, p):
        def prog(comm):
            return comm.reduce(comm.rank + 1, mpi.SUM, root=0)

        out = run_all(prog, p)
        assert out[0] == p * (p + 1) // 2
        assert all(v is None for v in out[1:])

    @pytest.mark.parametrize("root", [1, 2])
    def test_nonzero_root(self, root):
        def prog(comm):
            return comm.reduce(comm.rank, mpi.MAX, root=root)

        out = run_all(prog, 4)
        assert out[root] == 3

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("fanout", [2, 4, 8])
    def test_kary_fanout_same_result(self, p, fanout):
        def prog(comm):
            return comm.reduce(comm.rank + 1, mpi.SUM, root=0, fanout=fanout)

        assert run_all(prog, p)[0] == p * (p + 1) // 2

    def test_kary_rejects_noncommutative(self):
        from repro.errors import SpmdError

        cat = mpi.op_create(lambda a, b: a + b, commute=False)

        def prog(comm):
            # comm.reduce silently falls back to ordered for
            # non-commutative ops; calling the kary algorithm directly
            # must raise.
            from repro.mpi.collectives import reduce_kary_available

            ch = comm._channel("reduce")
            reduce_kary_available(ch, "x", cat, fanout=4)

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 4, timeout=10)
        from repro.errors import CommunicatorError

        assert any(
            isinstance(e, CommunicatorError) for e in ei.value.failures.values()
        )

    @pytest.mark.parametrize("p", SIZES)
    def test_aggregated_array_reduce(self, p):
        def prog(comm):
            return comm.reduce(np.arange(5) * (comm.rank + 1), mpi.SUM, root=0)

        out = run_all(prog, p)
        total = p * (p + 1) // 2
        assert np.array_equal(out[0], np.arange(5) * total)


class TestAllreduce:
    @pytest.mark.parametrize("p", SIZES)
    def test_sum_everywhere(self, p):
        out = run_all(lambda comm: comm.allreduce(comm.rank + 1, mpi.SUM), p)
        assert out == [p * (p + 1) // 2] * p

    @pytest.mark.parametrize("p", SIZES)
    def test_noncommutative_order(self, p):
        cat = mpi.op_create(lambda a, b: a + b, commute=False, name="concat")

        def prog(comm):
            return comm.allreduce(chr(ord("A") + comm.rank), cat)

        expected = "".join(chr(ord("A") + i) for i in range(p))
        assert run_all(prog, p) == [expected] * p

    @pytest.mark.parametrize("p", SIZES)
    def test_maxloc(self, p):
        def prog(comm):
            val = float((comm.rank * 7) % p)
            return comm.allreduce((val, comm.rank), mpi.MAXLOC)

        out = run_all(prog, p)
        vals = [(float((r * 7) % p), r) for r in range(p)]
        best = max(vals, key=lambda t: (t[0], -t[1]))
        # MPI tie-break: smallest index among maxima
        maxi = max(v for v, _ in vals)
        expect = min(i for v, i in vals if v == maxi)
        assert all(v == (maxi, expect) for v in out)


class TestScan:
    @pytest.mark.parametrize("p", SIZES)
    def test_inclusive(self, p):
        out = run_all(lambda comm: comm.scan(comm.rank + 1, mpi.SUM), p)
        assert out == [(r + 1) * (r + 2) // 2 for r in range(p)]

    @pytest.mark.parametrize("p", SIZES)
    def test_exclusive_with_identity(self, p):
        out = run_all(
            lambda comm: comm.exscan(
                comm.rank + 1, mpi.SUM, identity=lambda: 0
            ),
            p,
        )
        assert out == [r * (r + 1) // 2 for r in range(p)]

    def test_exclusive_without_identity_rank0_none(self):
        out = run_all(lambda comm: comm.exscan(comm.rank + 1, mpi.SUM), 4)
        assert out[0] is None
        assert out[1:] == [1, 3, 6]

    @pytest.mark.parametrize("p", SIZES)
    def test_noncommutative_scan(self, p):
        cat = mpi.op_create(lambda a, b: a + b, commute=False)

        def prog(comm):
            return comm.scan(chr(ord("a") + comm.rank), cat)

        expected = ["".join(chr(ord("a") + i) for i in range(r + 1)) for r in range(p)]
        assert run_all(prog, p) == expected

    @pytest.mark.parametrize("p", SIZES)
    def test_scan_exscan_consistency(self, p):
        """inclusive == combine(exclusive, own) on every rank (paper §1)."""

        def prog(comm):
            v = (comm.rank + 1) ** 2
            inc = comm.scan(v, mpi.SUM)
            exc = comm.exscan(v, mpi.SUM, identity=lambda: 0)
            return inc == exc + v

        assert all(run_all(prog, p))

    def test_array_scan(self):
        def prog(comm):
            return comm.scan(np.full(3, comm.rank + 1), mpi.SUM)

        out = run_all(prog, 4)
        for r, arr in enumerate(out):
            assert arr.tolist() == [(r + 1) * (r + 2) // 2] * 3


class TestMutatingCombine:
    """The Chapel/RSMPI contract: combine may mutate its left operand."""

    def _mutating_op(self, commute):
        def fn(a, b):
            a.extend(b)  # mutate left, read right
            return a

        return mpi.op_create(fn, commute=commute, identity=list)

    @pytest.mark.parametrize("p", SIZES)
    def test_allreduce_with_mutating_op(self, p):
        op = self._mutating_op(False)

        def prog(comm):
            return comm.allreduce([comm.rank], op)

        assert run_all(prog, p) == [list(range(p))] * p

    @pytest.mark.parametrize("p", SIZES)
    def test_scan_with_mutating_op(self, p):
        op = self._mutating_op(False)

        def prog(comm):
            return comm.scan([comm.rank], op)

        assert run_all(prog, p) == [list(range(r + 1)) for r in range(p)]

    @pytest.mark.parametrize("p", SIZES)
    def test_exscan_with_mutating_op(self, p):
        op = self._mutating_op(False)

        def prog(comm):
            return comm.exscan([comm.rank], op, identity=list)

        assert run_all(prog, p) == [list(range(r)) for r in range(p)]


class TestCommManagement:
    def test_split_groups(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.rank, sub.size, sub.allreduce(comm.rank, mpi.SUM))

        out = run_all(prog, 7)  # evens: 0,2,4,6; odds: 1,3,5
        assert out[0] == (0, 4, 12)
        assert out[1] == (0, 3, 9)
        assert out[6] == (3, 4, 12)

    def test_split_key_reorders(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reverse order
            return sub.rank

        assert run_all(prog, 4) == [3, 2, 1, 0]

    def test_dup_isolates_traffic(self):
        def prog(comm):
            dup = comm.dup()
            if comm.rank == 0:
                comm.send("on_comm", 1, tag=0)
                dup.send("on_dup", 1, tag=0)
                return None
            # receive from the dup first: tags are namespaced per cid
            a = dup.recv(0, tag=0)
            b = comm.recv(0, tag=0)
            return (a, b)

        assert run_all(prog, 2)[1] == ("on_dup", "on_comm")

    def test_nested_split(self):
        def prog(comm):
            half = comm.split(color=comm.rank // 4)
            quarter = half.split(color=half.rank // 2)
            return quarter.allreduce(comm.rank, mpi.SUM)

        out = run_all(prog, 8)
        assert out == [1, 1, 5, 5, 9, 9, 13, 13]


class TestFanoutFallback:
    @pytest.mark.parametrize("p", [4, 8])
    def test_noncommutative_with_fanout_falls_back_to_ordered(self, p):
        """comm.reduce(fanout>2) with a non-commutative Op must quietly
        use the order-preserving schedule and stay correct."""
        cat = mpi.op_create(lambda a, b: a + b, commute=False, name="concat")

        def prog(comm):
            return comm.reduce(chr(65 + comm.rank), cat, root=0, fanout=8)

        out = run_all(prog, p)
        assert out[0] == "".join(chr(65 + i) for i in range(p))

    def test_plain_function_with_fanout_uses_kary(self):
        """A bare callable (no Op wrapper) is assumed commutative."""

        def prog(comm):
            return comm.reduce(comm.rank + 1, lambda a, b: a + b, root=0,
                               fanout=4)

        assert run_all(prog, 9)[0] == 45


class TestCombineChargingAcrossAlgorithms:
    def _time(self, p, combine_seconds, **kw):
        def prog(comm):
            comm.allreduce(
                np.ones(4), mpi.SUM, combine_seconds=combine_seconds, **kw
            )

        return spmd_run(prog, p).time

    def test_combine_seconds_increase_time(self):
        assert self._time(8, 1e-3) > self._time(8, 0.0)

    def test_ring_charges_combines_too(self):
        slow = self._time(8, 1e-3, algorithm="ring")
        fast = self._time(8, 0.0, algorithm="ring")
        assert slow > fast
