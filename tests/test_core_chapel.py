"""Tests for the Chapel-style operator adapter: the paper's Listings
4–7 translated line for line, with state in ``self``."""

import numpy as np
import pytest

from repro.core import ChapelOp, check_operator, global_reduce, global_scan
from repro.errors import OperatorError
from repro.runtime import spmd_run
from tests.conftest import PAPER_DATA, block_split, gather_scan, run_all

INT_MAX = np.iinfo(np.int64).max
INT_MIN = np.iinfo(np.int64).min
SIZES = [1, 2, 3, 5, 8]


# --- Listing 4: mink ----------------------------------------------------------
class Mink(ChapelOp):
    commutative = True

    def __init__(self, k):
        self.k = k
        self.v = np.full(k, INT_MAX)

    def accum(self, x):
        if x < self.v[0]:
            self.v[0] = x
            for i in range(1, self.k):
                if self.v[i - 1] < self.v[i]:
                    self.v[i - 1], self.v[i] = self.v[i], self.v[i - 1]

    def combine(self, s):
        for x in s.v:
            self.accum(x)

    def gen(self):
        return self.v.copy()


# --- Listing 5: mini ----------------------------------------------------------
class Mini(ChapelOp):
    def __init__(self):
        self.val = INT_MAX
        self.loc = 0

    def accum(self, x):
        if x[0] < self.val:
            self.val, self.loc = x

    def combine(self, s):
        self.accum((s.val, s.loc))

    def gen(self):
        return (self.val, self.loc)


# --- Listing 6: counts --------------------------------------------------------
class Counts(ChapelOp):
    def __init__(self, k=8):
        self.v = np.zeros(k, dtype=np.int64)

    def accum(self, x):
        self.v[x - 1] += 1

    def combine(self, s):
        self.v += s.v

    def red_gen(self):
        return self.v.copy()

    def scan_gen(self, x):
        return int(self.v[x - 1])


# --- Listing 7: sorted --------------------------------------------------------
class Sorted(ChapelOp):
    commutative = False  # param commutative = false

    def __init__(self):
        self.status = True
        self.first = INT_MAX
        self.last = INT_MIN

    def pre_accum(self, x):
        self.first = x

    def accum(self, x):
        if self.last > x:
            self.status = False
        self.last = x

    def combine(self, s):
        self.status = self.status and s.status and self.last <= s.first
        self.last = s.last

    def gen(self):
        return self.status


class TestListing4Mink:
    @pytest.mark.parametrize("p", SIZES)
    def test_chapel_call_shape(self, p, rng):
        """minimums = mink(integer, 10) reduce A;"""
        data = rng.integers(0, 100_000, 200)

        def prog(comm):
            return global_reduce(
                comm, Mink.as_op(10), block_split(data, comm.size, comm.rank)
            )

        expected = np.sort(data)[:10][::-1].tolist()
        for v in run_all(prog, p):
            assert v.tolist() == expected

    def test_fresh_instances_per_state(self):
        op = Mink.as_op(3)
        s1, s2 = op.ident(), op.ident()
        op.accum(s1, 5)
        assert s2.v[0] == INT_MAX  # states do not share fields

    def test_laws(self, rng):
        check_operator(
            Mink.as_op(4), [int(v) for v in rng.integers(0, 500, 30)],
            n_trials=10,
        )


class TestListing5Mini:
    @pytest.mark.parametrize("p", SIZES)
    def test_reduce_pairs(self, p):
        """var (val, loc) = mini(integer) reduce [i in 1..n] (A(i), i);"""
        data = [5, 2, 9, 2, 7, 1, 3]
        pairs = [(v, i) for i, v in enumerate(data)]

        def prog(comm):
            return global_reduce(
                comm, Mini.as_op(), block_split(pairs, comm.size, comm.rank)
            )

        for val, loc in run_all(prog, p):
            assert (val, loc) == (1, 5)


class TestListing6Counts:
    @pytest.mark.parametrize("p", SIZES)
    def test_reduce(self, p):
        def prog(comm):
            return global_reduce(
                comm, Counts.as_op(),
                block_split(PAPER_DATA, comm.size, comm.rank),
            )

        for v in run_all(prog, p):
            assert v.tolist() == [0, 1, 2, 1, 0, 2, 1, 3]

    @pytest.mark.parametrize("p", SIZES)
    def test_scan_uses_scan_gen(self, p):
        out = gather_scan(
            lambda comm: global_scan(
                comm, Counts.as_op(),
                block_split(PAPER_DATA, comm.size, comm.rank),
            ),
            p,
        )
        assert out == [1, 1, 2, 1, 1, 1, 2, 1, 3, 2]


class TestListing7Sorted:
    @pytest.mark.parametrize("p", SIZES)
    def test_sorted_true_false(self, p):
        asc = list(range(40))
        desc = asc[::-1]

        def check(data):
            return run_all(
                lambda comm: global_reduce(
                    comm, Sorted.as_op(),
                    block_split(data, comm.size, comm.rank),
                ),
                p,
            )

        assert all(check(asc))
        assert not any(check(desc))

    def test_noncommutative_flag_carried(self):
        assert Sorted.as_op().commutative is False

    def test_pre_accum_hook_called(self):
        op = Sorted.as_op()
        s = op.ident()
        s = op.pre_accum(s, 42)
        assert s.first == 42


class TestAdapterMachinery:
    def test_requires_chapelop_subclass(self):
        from repro.core import ChapelOpAdapter

        with pytest.raises(OperatorError):
            ChapelOpAdapter(int, (), {})

    def test_missing_methods_raise(self):
        class Incomplete(ChapelOp):
            def __init__(self):
                pass

        op = Incomplete.as_op()
        with pytest.raises(NotImplementedError):
            op.accum(op.ident(), 1)
        with pytest.raises(NotImplementedError):
            op.combine(op.ident(), op.ident())

    def test_default_gen_returns_state(self):
        class Tally(ChapelOp):
            def __init__(self):
                self.n = 0

            def accum(self, x):
                self.n += 1

            def combine(self, s):
                self.n += s.n

        out = run_all(
            lambda comm: global_reduce(comm, Tally.as_op(), [1, 2, 3]), 1
        )[0]
        assert out.n == 3

    def test_accum_block_hook_used(self):
        calls = []

        class Vec(ChapelOp):
            def __init__(self):
                self.total = 0

            def accum(self, x):
                raise AssertionError("block path should be used")

            def accum_block(self, values):
                calls.append(len(values))
                self.total += int(np.sum(values))

            def combine(self, s):
                self.total += s.total

            def gen(self):
                return self.total

        out = run_all(
            lambda comm: global_reduce(comm, Vec.as_op(), np.arange(10)), 1
        )[0]
        assert out == 45 and calls == [10]

    def test_transfer_nbytes_from_fields(self):
        m = Mink(4)
        assert m.transfer_nbytes() >= 32
