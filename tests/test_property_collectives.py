"""Property-based tests for the MPI collectives and prefix networks."""

import operator

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpi
from repro.prefix import (
    ALL_NETWORKS,
    blelloch_scan,
    blelloch_xscan,
    inclusive_from_exclusive,
)
from repro.runtime import spmd_run

COMMON = settings(max_examples=30, deadline=None)

procs = st.integers(min_value=1, max_value=7)
values = st.lists(
    st.integers(min_value=-100, max_value=100), min_size=1, max_size=7
)


class TestCollectiveSemantics:
    @COMMON
    @given(p=procs, seed=st.integers(0, 2**16))
    def test_allreduce_equals_reduce_bcast(self, p, seed):
        rng = np.random.default_rng(seed)
        vals = rng.integers(-50, 50, p)

        def prog(comm):
            v = int(vals[comm.rank])
            a = comm.allreduce(v, mpi.SUM)
            r = comm.reduce(v, mpi.SUM, root=0)
            b = comm.bcast(r, root=0)
            return a == b == int(vals.sum())

        assert all(spmd_run(prog, p).returns)

    @COMMON
    @given(p=procs)
    def test_noncommutative_scan_order(self, p):
        cat = mpi.op_create(lambda a, b: a + b, commute=False)

        def prog(comm):
            return comm.scan((comm.rank,), cat)

        out = spmd_run(prog, p).returns
        assert out == [tuple(range(r + 1)) for r in range(p)]

    @COMMON
    @given(p=procs, fanout=st.integers(2, 5), seed=st.integers(0, 2**16))
    def test_fanout_invariant_for_commutative(self, p, fanout, seed):
        rng = np.random.default_rng(seed)
        vals = rng.integers(-50, 50, p)

        def prog(comm):
            return comm.reduce(int(vals[comm.rank]), mpi.SUM, root=0,
                               fanout=fanout)

        assert spmd_run(prog, p).returns[0] == int(vals.sum())

    @COMMON
    @given(p=procs)
    def test_alltoall_is_transpose(self, p):
        def prog(comm):
            got = comm.alltoall([(comm.rank, d) for d in range(comm.size)])
            return all(got[s] == (s, comm.rank) for s in range(comm.size))

        assert all(spmd_run(prog, p).returns)

    @COMMON
    @given(p=procs, root=st.integers(0, 6))
    def test_gather_scatter_inverse(self, p, root):
        r = root % p

        def prog(comm):
            gathered = comm.gather(comm.rank * 3, root=r)
            back = comm.scatter(gathered, root=r)
            return back == comm.rank * 3

        assert all(spmd_run(prog, p).returns)


class TestPrefixNetworksProperty:
    @COMMON
    @given(
        n=st.integers(1, 80),
        seed=st.integers(0, 2**16),
        name=st.sampled_from(sorted(ALL_NETWORKS)),
    )
    def test_network_computes_scan(self, n, seed, name):
        rng = np.random.default_rng(seed)
        vals = [int(v) for v in rng.integers(-10, 10, n)]
        circuit = ALL_NETWORKS[name](n)
        assert circuit.verify(vals, operator.add)

    @COMMON
    @given(n=st.integers(1, 64), name=st.sampled_from(sorted(ALL_NETWORKS)))
    def test_network_noncommutative_safe(self, n, name):
        vals = [chr(97 + (i % 26)) for i in range(n)]
        circuit = ALL_NETWORKS[name](n)
        got = circuit.evaluate(vals, operator.add)
        acc = ""
        for i, v in enumerate(vals):
            acc += v
            assert got[i] == acc

    @COMMON
    @given(values)
    def test_blelloch_exclusive(self, vals):
        exc = blelloch_xscan(vals, operator.add, 0)
        expected = [sum(vals[:i]) for i in range(len(vals))]
        assert exc == expected

    @COMMON
    @given(values)
    def test_inclusive_from_exclusive_identity(self, vals):
        exc = blelloch_xscan(vals, operator.add, 0)
        inc = inclusive_from_exclusive(vals, exc, operator.add)
        assert inc == [sum(vals[: i + 1]) for i in range(len(vals))]
        assert inc == blelloch_scan(vals, operator.add, 0)

    @COMMON
    @given(n=st.integers(2, 64), name=st.sampled_from(sorted(ALL_NETWORKS)))
    def test_depth_at_most_size(self, n, name):
        c = ALL_NETWORKS[name](n)
        assert 1 <= c.depth <= c.size
        assert c.size >= n - 1  # lower bound for any prefix circuit
