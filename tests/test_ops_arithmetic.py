"""Tests for the arithmetic UfuncOp family."""

import numpy as np
import pytest

from repro.core import global_reduce, global_scan, global_xscan
from repro.ops import MaxOp, MinOp, ProdOp, SumOp
from tests.conftest import block_split, gather_scan, run_all

SIZES = [1, 2, 3, 5, 8]


class TestReduceSemantics:
    @pytest.mark.parametrize("p", SIZES)
    def test_sum(self, p, rng):
        data = rng.integers(-50, 50, 77)
        out = run_all(
            lambda comm: global_reduce(
                comm, SumOp(), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        assert all(v == data.sum() for v in out)

    @pytest.mark.parametrize("p", SIZES)
    def test_prod(self, p):
        data = np.array([1.5, 2.0, -1.0, 0.5, 4.0, 1.0, 2.0])
        out = run_all(
            lambda comm: global_reduce(
                comm, ProdOp(1.0), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        assert all(abs(v - data.prod()) < 1e-12 for v in out)

    @pytest.mark.parametrize("p", SIZES)
    def test_min_max(self, p, rng):
        data = rng.normal(size=64)
        mins = run_all(
            lambda comm: global_reduce(
                comm, MinOp(), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        maxs = run_all(
            lambda comm: global_reduce(
                comm, MaxOp(), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        assert all(v == data.min() for v in mins)
        assert all(v == data.max() for v in maxs)

    def test_integer_identity_avoids_upcast(self):
        op = MinOp(np.iinfo(np.int64).max)
        state = op.accum_block(op.ident(), np.array([5, 3, 9]))
        assert state == 3 and np.issubdtype(type(state), np.integer)


class TestVectorizedScan:
    @pytest.mark.parametrize("p", SIZES)
    def test_scan_block_matches_loop(self, p, rng):
        data = rng.integers(0, 100, 53)
        vec = gather_scan(
            lambda comm: global_scan(
                comm, SumOp(), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        assert [int(v) for v in vec] == np.cumsum(data).tolist()

    @pytest.mark.parametrize("p", SIZES)
    def test_xscan_vectorized(self, p, rng):
        data = rng.integers(0, 100, 53)
        vec = gather_scan(
            lambda comm: global_xscan(
                comm, SumOp(), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        expected = np.concatenate([[0], np.cumsum(data)[:-1]])
        assert [int(v) for v in vec] == expected.tolist()

    def test_min_running_scan(self):
        data = np.array([5.0, 3.0, 7.0, 1.0, 9.0])
        out = gather_scan(
            lambda comm: global_scan(comm, MinOp(), data), 1
        )
        assert out == [5.0, 3.0, 3.0, 1.0, 1.0]

    def test_scan_block_empty(self):
        op = SumOp()
        out, final = op.scan_block(10, np.array([]), exclusive=True)
        assert out == [] and final == 10

    def test_scan_block_single(self):
        op = SumOp()
        out, final = op.scan_block(10, np.array([5]), exclusive=True)
        assert [int(v) for v in out] == [10] and final == 15


class TestAccumBlock:
    def test_matches_per_element(self, rng):
        data = rng.integers(0, 9, 40)
        op = SumOp()
        block = op.accum_block(0, data)
        loop = 0
        for x in data:
            loop = op.accum(loop, x)
        assert block == loop

    def test_empty_block_is_identity(self):
        assert SumOp().accum_block(7, np.array([])) == 7
