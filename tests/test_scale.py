"""Scale smoke tests: larger rank counts and the paper-scale class
definitions (constructibility, not full runs)."""

import numpy as np
import pytest

from repro import mpi
from repro.core import global_reduce, global_scan
from repro.nas import IS_CLASSES_FULL, MG_CLASSES_FULL, ep_class
from repro.ops import CountsOp, MinKOp, SortedOp, SumOp
from repro.runtime import spmd_run
from tests.conftest import block_split, gather_scan, run_all


class TestManyRanks:
    @pytest.mark.parametrize("p", [32, 64])
    def test_allreduce_wide(self, p):
        out = run_all(lambda comm: comm.allreduce(comm.rank + 1, mpi.SUM), p)
        assert out == [p * (p + 1) // 2] * p

    @pytest.mark.parametrize("p", [32, 64])
    def test_noncommutative_scan_wide(self, p):
        cat = mpi.op_create(lambda a, b: a + b, commute=False)
        out = run_all(lambda comm: comm.scan((comm.rank,), cat), p)
        assert out[-1] == tuple(range(p))

    def test_global_reduce_64_ranks(self, rng):
        data = rng.integers(0, 1000, 2048)

        def prog(comm):
            return global_reduce(
                comm, MinKOp(5, np.iinfo(np.int64).max),
                block_split(data, comm.size, comm.rank),
            )

        out = run_all(prog, 64)
        expected = np.sort(data)[:5][::-1].tolist()
        assert all(v.tolist() == expected for v in out)

    def test_scan_64_ranks(self, rng):
        data = rng.integers(0, 8, 512)
        out = gather_scan(
            lambda comm: global_scan(
                comm, CountsOp(8, base=0),
                block_split(data, comm.size, comm.rank),
            ),
            64,
        )
        # p-independence at width
        base = gather_scan(
            lambda comm: global_scan(comm, CountsOp(8, base=0), data), 1
        )
        assert out == base

    def test_more_ranks_than_elements(self):
        data = [3, 1, 2]

        def prog(comm):
            return global_reduce(
                comm, SumOp(), block_split(data, comm.size, comm.rank)
            )

        assert all(v == 6 for v in run_all(prog, 16))

    def test_sorted_wide_nearly_all_empty(self):
        def prog(comm):
            local = [1, 2, 3] if comm.rank == 7 else []
            return global_reduce(comm, SortedOp(), local)

        assert all(run_all(prog, 32))

    def test_virtual_time_grows_logarithmically(self):
        """Allreduce latency must scale ~log p, not ~p."""
        times = {}
        for p in (4, 16, 64):
            times[p] = spmd_run(
                lambda comm: comm.allreduce(1.0, mpi.SUM), p
            ).time
        # log2: 2, 4, 6 rounds — ratios well under linear scaling
        assert times[64] < times[4] * 6
        assert times[16] < times[64]


class TestFullScaleClassesConstructible:
    def test_is_full_classes(self):
        assert IS_CLASSES_FULL["C"].n_keys == 1 << 27

    def test_mg_full_classes(self):
        assert MG_CLASSES_FULL["C"].n_points == 512 ** 3

    def test_ep_full_classes(self):
        assert ep_class("C", full=True).n_pairs == 1 << 32

    def test_full_is_keygen_slice(self):
        """Generating a slice of the full class must not require
        materializing the whole stream (jump-ahead check)."""
        from repro.nas.intsort import generate_keys_block

        cls = IS_CLASSES_FULL["C"]
        block = generate_keys_block(cls, cls.n_keys - 100, 100)
        assert len(block) == 100
        assert block.min() >= 0 and block.max() < cls.max_key
