"""Tests for clocks, cost models, channels and traces."""

import threading

import numpy as np
import pytest

from repro.errors import RuntimeAbort
from repro.runtime.channels import ANY_SOURCE, ANY_TAG, Envelope, Mailbox
from repro.runtime.clock import VirtualClock
from repro.runtime.costmodel import (
    CostModel,
    calibrate_rate,
    cluster_2006,
    modern_node,
)
from repro.runtime.trace import Trace, merge_traces


class TestVirtualClock:
    def test_advance_accumulates(self):
        c = VirtualClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.t == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_merge_takes_max(self):
        c = VirtualClock(5.0)
        c.merge(3.0)
        assert c.t == 5.0
        c.merge(7.0)
        assert c.t == 7.0


class TestCostModel:
    def test_wire_time(self):
        cm = CostModel(latency=1e-6, byte_time=1e-9)
        assert cm.wire_time(0) == 1e-6
        assert cm.wire_time(1000) == pytest.approx(2e-6)

    def test_compute_time_known_rates(self):
        cm = CostModel()
        assert cm.compute_time("python_loop", 10) == pytest.approx(
            10 * cm.rates["python_loop"]
        )

    def test_compute_time_unknown_rate_raises(self):
        with pytest.raises(KeyError, match="unknown compute rate"):
            CostModel().compute_time("nope", 1)

    def test_with_rates_is_nondestructive(self):
        cm = CostModel()
        cm2 = cm.with_rates(custom=1e-8)
        assert "custom" in cm2.rates and "custom" not in cm.rates
        assert cm2.latency == cm.latency

    def test_with_params(self):
        cm = CostModel().with_params(latency=9e-6)
        assert cm.latency == 9e-6

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            CostModel(latency=-1.0)

    def test_presets_distinct(self):
        assert cluster_2006().latency > modern_node().latency

    def test_calibrate_rate_positive_and_sane(self):
        rate = calibrate_rate(
            lambda n: np.arange(n).sum(), 10_000, repeats=2, min_time=0.002
        )
        assert 0 < rate < 1e-5  # well under 10us/element

    def test_calibrate_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            calibrate_rate(lambda n: None, 0)


class TestMailbox:
    def _mk(self):
        return Mailbox(rank=0, abort_event=threading.Event())

    def _env(self, src=1, tag="t", payload="x", t=0.0):
        return Envelope(src, tag, payload, 8, t)

    def test_fifo_per_source_tag(self):
        mb = self._mk()
        mb.deliver(self._env(payload="a"))
        mb.deliver(self._env(payload="b"))
        assert mb.collect(1, "t").payload == "a"
        assert mb.collect(1, "t").payload == "b"

    def test_matching_is_keyed(self):
        mb = self._mk()
        mb.deliver(self._env(src=2, tag="x", payload="from2"))
        mb.deliver(self._env(src=1, tag="x", payload="from1"))
        assert mb.collect(1, "x").payload == "from1"
        assert mb.collect(2, "x").payload == "from2"

    def test_wildcards(self):
        mb = self._mk()
        mb.deliver(self._env(src=3, tag="q", payload="p"))
        env = mb.collect(ANY_SOURCE, ANY_TAG)
        assert env.payload == "p" and env.source == 3

    def test_probe(self):
        mb = self._mk()
        assert not mb.probe(1, "t")
        mb.deliver(self._env())
        assert mb.probe(1, "t")
        assert mb.probe(ANY_SOURCE, "t")
        assert not mb.probe(2, "t")

    def test_abort_unblocks(self):
        abort = threading.Event()
        mb = Mailbox(0, abort)
        errors = []

        def waiter():
            try:
                mb.collect(1, "never")
            except RuntimeAbort:
                errors.append("aborted")

        th = threading.Thread(target=waiter)
        th.start()
        abort.set()
        th.join(timeout=5)
        assert errors == ["aborted"]

    def test_pending_count(self):
        mb = self._mk()
        assert mb.pending_count() == 0
        mb.deliver(self._env())
        mb.deliver(self._env(tag="u"))
        assert mb.pending_count() == 2


class TestTrace:
    def test_counters(self):
        tr = Trace(rank=0)
        tr.on_send(1, 0, 100, 0.0)
        tr.on_recv(1, 0, 50, 0.0)
        tr.on_compute("k", 0.25, 0.0)
        tr.on_collective("allreduce", 0.0)
        tr.on_collective("bcast", 0.0)
        assert tr.n_sends == 1 and tr.bytes_sent == 100
        assert tr.n_recvs == 1 and tr.bytes_received == 50
        assert tr.compute_seconds == 0.25
        assert tr.n_collective_calls == 2
        assert tr.n_reduction_calls == 1

    def test_reduction_fraction(self):
        tr = Trace(rank=0)
        for _ in range(9):
            tr.on_collective("bcast", 0.0)
        tr.on_collective("reduce", 0.0)
        assert tr.reduction_fraction() == pytest.approx(0.1)

    def test_events_recorded_only_when_enabled(self):
        off = Trace(rank=0, record_events=False)
        off.on_send(1, 0, 10, 0.5)
        assert off.events == []
        on = Trace(rank=0, record_events=True)
        on.on_send(1, 0, 10, 0.5)
        assert len(on.events) == 1 and on.events[0].kind == "send"

    def test_merge(self):
        a, b = Trace(rank=0), Trace(rank=1)
        a.on_send(1, 0, 10, 0.0)
        b.on_send(0, 0, 20, 0.0)
        b.on_collective("scan", 0.0)
        m = merge_traces([a, b])
        assert m.n_sends == 2 and m.bytes_sent == 30
        assert m.collective_calls["scan"] == 1
