"""Tests for the RSMPI iterator helpers."""

import numpy as np

from repro.rsmpi.iterators import indexed, mapped, materialize, strided


class TestIterators:
    def test_indexed_pairs(self):
        out = indexed(np.array([10.0, 20.0, 30.0]), global_offset=5)
        assert out.tolist() == [[10.0, 5.0], [20.0, 6.0], [30.0, 7.0]]

    def test_indexed_empty(self):
        assert indexed(np.array([]), 0).shape == (0, 2)

    def test_mapped_applies_expression(self):
        assert mapped(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]

    def test_strided_is_view(self):
        a = np.arange(10)
        v = strided(a, start=1, stop=9, step=2)
        assert v.tolist() == [1, 3, 5, 7]
        a[1] = 99
        assert v[0] == 99  # no copy

    def test_materialize_passthrough(self):
        arr = np.arange(3)
        assert materialize(arr) is arr
        lst = [1, 2]
        assert materialize(lst) is lst
        tup = (1, 2)
        assert materialize(tup) is tup

    def test_materialize_generator(self):
        out = materialize(x * 2 for x in range(3))
        assert out == [0, 2, 4]
        assert len(out) == 3  # has len/indexing for the accumulate phase
