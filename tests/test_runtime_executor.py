"""Tests for the SPMD executor: results, failures, timeouts, isolation,
determinism of virtual time."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import DeadlockError, SpmdError, SpmdTimeout
from repro.runtime import CostModel, spmd_run


class TestBasics:
    def test_returns_per_rank(self):
        res = spmd_run(lambda comm: comm.rank * 10, 4)
        assert res.returns == [0, 10, 20, 30]
        assert res.nprocs == 4

    def test_single_rank_runs_inline(self):
        res = spmd_run(lambda comm: comm.size, 1)
        assert res.returns == [0 + 1]
        assert res.time == 0.0  # no communication, no charges

    def test_extra_args_passed(self):
        res = spmd_run(lambda comm, a, b: a + b + comm.rank, 2, args=(10, 5))
        assert res.returns == [15, 16]

    def test_invalid_nprocs(self):
        from repro.errors import CommunicatorError

        with pytest.raises(CommunicatorError):
            spmd_run(lambda comm: None, 0)

    def test_wall_seconds_positive(self):
        res = spmd_run(lambda comm: comm.barrier(), 3)
        assert res.wall_seconds > 0


class TestVirtualTime:
    def test_charges_accumulate(self):
        def prog(comm):
            comm.charge(0.5, "work")
            return comm.context.clock.t

        res = spmd_run(prog, 2)
        assert res.returns == [0.5, 0.5]
        assert res.time == 0.5

    def test_charge_elements_uses_rates(self):
        cm = CostModel().with_rates(myrate=1e-3)

        def prog(comm):
            comm.charge_elements("myrate", 100)

        res = spmd_run(prog, 2, cost_model=cm)
        assert res.time == pytest.approx(0.1)

    def test_message_cost_structure(self):
        cm = CostModel(
            latency=1e-3, byte_time=0.0, send_overhead=1e-4, recv_overhead=1e-4
        )

        def prog(comm):
            if comm.rank == 0:
                comm.send("x", 1)
            elif comm.rank == 1:
                comm.recv(0)

        res = spmd_run(prog, 2, cost_model=cm)
        # receiver: o_s + L + o_r
        assert res.clocks[1] == pytest.approx(1e-4 + 1e-3 + 1e-4)
        # sender only pays its overhead
        assert res.clocks[0] == pytest.approx(1e-4)

    def test_bytes_charged(self):
        cm = CostModel(latency=0.0, byte_time=1e-6, send_overhead=0.0,
                       recv_overhead=0.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1000, dtype=np.float64), 1)  # 8000 B
            elif comm.rank == 1:
                comm.recv(0)

        res = spmd_run(prog, 2, cost_model=cm)
        assert res.clocks[1] == pytest.approx(8000e-6)

    def test_determinism_under_thread_jitter(self):
        def prog(comm):
            v = comm.allreduce(np.arange(100) * comm.rank, mpi.SUM)
            comm.barrier()
            s = comm.scan(comm.rank, mpi.SUM)
            return float(v.sum()) + s

        runs = [spmd_run(prog, 8) for _ in range(3)]
        assert runs[0].returns == runs[1].returns == runs[2].returns
        assert runs[0].time == runs[1].time == runs[2].time
        assert [t.bytes_sent for t in runs[0].traces] == [
            t.bytes_sent for t in runs[1].traces
        ]


class TestFailures:
    def test_exception_propagates_with_rank(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(SpmdError) as exc_info:
            spmd_run(prog, 3)
        assert 1 in exc_info.value.failures
        assert isinstance(exc_info.value.failures[1], ValueError)

    def test_other_ranks_unwound(self):
        # ranks blocked in recv must not hang the run
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("die")
            comm.recv(0)  # never satisfied

        with pytest.raises(SpmdError):
            spmd_run(prog, 4, timeout=30)

    def test_watchdog_detects_deadlock(self):
        # The hang watchdog converts a guaranteed circular wait into a
        # diagnostic SpmdError naming each blocked rank's pending wait —
        # long before the wall-clock timeout would fire.
        def prog(comm):
            comm.recv((comm.rank + 1) % comm.size)  # circular wait

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 2, timeout=30)
        assert "deadlock" in str(ei.value)
        assert any(
            isinstance(e, DeadlockError) for e in ei.value.failures.values()
        )

    def test_multiple_failures_reported(self):
        def prog(comm):
            raise RuntimeError(f"rank{comm.rank}")

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 3)
        assert len(ei.value.failures) >= 1


class TestPayloadIsolation:
    def test_receiver_mutation_does_not_corrupt_sender(self):
        def prog(comm):
            mine = np.zeros(4)
            if comm.rank == 0:
                comm.send(mine, 1)
                comm.barrier()
                return mine.copy()
            if comm.rank == 1:
                got = comm.recv(0)
                got += 99
                comm.barrier()
                return got
            comm.barrier()
            return None

        res = spmd_run(prog, 2)
        assert np.array_equal(res.returns[0], np.zeros(4))
        assert np.array_equal(res.returns[1], np.full(4, 99.0))

    def test_isolation_can_be_disabled(self):
        # documented sharp edge: with isolation off, arrays alias
        def prog(comm):
            mine = np.zeros(4)
            if comm.rank == 0:
                comm.send(mine, 1)
                comm.barrier()  # rank 1 mutates before this completes
                comm.barrier()
                return mine.copy()
            got = comm.recv(0)
            got += 1
            comm.barrier()
            comm.barrier()
            return None

        res = spmd_run(prog, 2, isolate_payloads=False)
        assert res.returns[0].sum() == 4  # aliased mutation visible


class TestTraces:
    def test_collective_calls_counted(self):
        def prog(comm):
            comm.allreduce(1, mpi.SUM)
            comm.bcast(0, root=0)
            comm.scan(1, mpi.SUM)

        res = spmd_run(prog, 4)
        tr = res.traces[0]
        assert tr.collective_calls["allreduce"] == 1
        assert tr.collective_calls["bcast"] == 1
        assert tr.collective_calls["scan"] == 1

    def test_summary_trace_aggregates(self):
        def prog(comm):
            comm.barrier()

        res = spmd_run(prog, 4)
        assert res.summary_trace.collective_calls["barrier"] == 4

    def test_summary_trace_is_cached(self):
        def prog(comm):
            comm.barrier()

        res = spmd_run(prog, 4)
        # The merge is memoized: repeated accesses return the same
        # object, not a fresh merge each time (profiling loops poll it).
        assert res.summary_trace is res.summary_trace
        first = res.summary_trace
        assert res.summary_trace is first
