"""Tests for the NAS randlc generator (scalar, vectorized, jump-ahead)."""

import numpy as np
import pytest

from repro.util.rng import (
    MOD46,
    RANDLC_A,
    RANDLC_SEED,
    Randlc,
    randlc_array,
    randlc_pow,
    randlc_skip,
)


class TestScalar:
    def test_values_in_unit_interval(self):
        rng = Randlc()
        for _ in range(1000):
            v = rng.next()
            assert 0.0 <= v < 1.0

    def test_next_n_matches_repeated_next(self):
        a, b = Randlc(), Randlc()
        many = a.next_n(257)
        singles = [b.next() for _ in range(257)]
        assert many == singles

    def test_deterministic_from_seed(self):
        assert Randlc(seed=99).next_n(10) == Randlc(seed=99).next_n(10)

    def test_different_seeds_differ(self):
        assert Randlc(seed=1).next_n(5) != Randlc(seed=2).next_n(5)

    def test_state_evolution_exact(self):
        rng = Randlc()
        rng.next()
        assert rng.state == (RANDLC_A * RANDLC_SEED) % MOD46

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            Randlc(seed=0)
        with pytest.raises(ValueError):
            Randlc(seed=MOD46)
        with pytest.raises(ValueError):
            Randlc(a=0)


class TestJumpAhead:
    def test_skip_equals_stepping(self):
        stepped = Randlc()
        stepped.next_n(1000)
        jumped = Randlc()
        jumped.skip(1000)
        assert jumped.state == stepped.state

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 17, 100, 12345])
    def test_skipped_various(self, n):
        stepped = Randlc()
        stepped.next_n(n)
        assert Randlc().skipped(n).state == stepped.state

    def test_pow_composition(self):
        # a^(m+n) == a^m * a^n  (mod 2^46)
        m, n = 123, 4567
        assert (
            randlc_pow(RANDLC_A, m + n)
            == (randlc_pow(RANDLC_A, m) * randlc_pow(RANDLC_A, n)) % MOD46
        )

    def test_pow_negative_rejected(self):
        with pytest.raises(ValueError):
            randlc_pow(RANDLC_A, -1)

    def test_skip_composes(self):
        s1 = randlc_skip(randlc_skip(RANDLC_SEED, 100), 250)
        s2 = randlc_skip(RANDLC_SEED, 350)
        assert s1 == s2


class TestVectorized:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 64, 100, 1023, 4096])
    def test_matches_scalar(self, n):
        assert randlc_array(n).tolist() == Randlc().next_n(n)

    @pytest.mark.parametrize("skip", [0, 1, 5, 1000, 2**20])
    def test_skip_matches_slice(self, skip):
        direct = randlc_array(32, skip=skip)
        via_scalar = Randlc().skipped(skip).next_n(32)
        assert direct.tolist() == via_scalar

    def test_blocks_tile_the_stream(self):
        whole = randlc_array(1000)
        parts = [randlc_array(100, skip=100 * i) for i in range(10)]
        assert np.array_equal(np.concatenate(parts), whole)

    def test_zero_length(self):
        out = randlc_array(0)
        assert out.shape == (0,) and out.dtype == np.float64

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            randlc_array(-1)

    def test_custom_seed_and_multiplier(self):
        out = randlc_array(50, seed=777, a=RANDLC_A)
        assert out.tolist() == Randlc(seed=777).next_n(50)


class TestStatistics:
    def test_mean_and_variance_near_uniform(self):
        r = randlc_array(200_000)
        assert abs(r.mean() - 0.5) < 5e-3
        assert abs(r.var() - 1.0 / 12.0) < 5e-3

    def test_no_short_cycles(self):
        r = randlc_array(10_000)
        assert len(np.unique(r)) == len(r)

    def test_lagged_correlation_small(self):
        r = randlc_array(100_000)
        c = np.corrcoef(r[:-1], r[1:])[0, 1]
        assert abs(c) < 0.01
