"""Acceptance grid: Engine.submit is bit-identical to ``spmd_run``.

For every public operator (the chaos catalogue covers each exactly
once) at nprocs in {4, 8, 16}, both a reduction and a scan must produce
the same per-rank results, the same per-rank final virtual times and
the same total message count whether run through a persistent
:class:`~repro.engine.Engine` or a standalone :func:`spmd_run` — the
engine's multiplexing, context re-use and schedule cache must be
completely invisible to the simulation model.
"""

import random

import pytest

from repro.core.operator import state_equal
from repro.core.reduce import global_reduce
from repro.core.scan import global_scan
from repro.engine import Engine
from repro.faults.chaos import CHAOS_CASES
from repro.runtime import spmd_run

SIZES = (4, 8, 16)
N_PER_RANK = 5


def reduce_program(comm, case, shards):
    return global_reduce(comm, case.make_op(), shards[comm.rank])


def scan_program(comm, case, shards):
    return global_scan(comm, case.make_op(), shards[comm.rank])


def _shards(case, nprocs):
    return [
        case.make_data(random.Random(1000 * nprocs + r), N_PER_RANK)
        for r in range(nprocs)
    ]


@pytest.fixture(scope="module")
def engines():
    pool = {}
    try:
        for n in SIZES:
            pool[n] = Engine(n)
        yield pool
    finally:
        for engine in pool.values():
            engine.shutdown(drain=False)


def _assert_identical(case, program, nprocs, engines):
    shards = _shards(case, nprocs)
    baseline = spmd_run(program, nprocs, args=(case, shards))
    via_engine = engines[nprocs].submit(
        program, args=(case, shards), label=case.name
    ).result()

    for g in range(nprocs):
        assert state_equal(via_engine.returns[g], baseline.returns[g]), (
            f"{case.name} rank {g}: {via_engine.returns[g]!r} != "
            f"{baseline.returns[g]!r}"
        )
    assert via_engine.clocks == baseline.clocks
    assert via_engine.time == baseline.time
    assert (
        via_engine.summary_trace.n_sends == baseline.summary_trace.n_sends
    )
    assert [t.n_sends for t in via_engine.traces] == [
        t.n_sends for t in baseline.traces
    ]


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
def test_reduce_identity(case, nprocs, engines):
    _assert_identical(case, reduce_program, nprocs, engines)


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize(
    "case",
    [c for c in CHAOS_CASES if c.scan],
    ids=lambda c: c.name,
)
def test_scan_identity(case, nprocs, engines):
    _assert_identical(case, scan_program, nprocs, engines)
