"""Hypothesis fuzzing of the RSMPI DSL compiler.

Generates random arithmetic/conditional accumulate bodies, compiles
them through the full lexer/parser/codegen pipeline, and checks the
compiled function against an independently interpreted reference —
catching precedence, short-circuit and C-semantics miscompiles.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rsmpi.preprocessor import parse_operator
from repro.rsmpi.preprocessor.codegen import _c_div, _c_mod, generate_python

COMMON = settings(max_examples=60, deadline=None)


# --- random C expression generator -------------------------------------------
#
# Expressions are built as (source_text, python_eval_fn) pairs so the
# reference semantics are computed without going through our compiler.

def _leaf():
    return st.one_of(
        st.integers(-20, 20).map(lambda v: (str(v) if v >= 0 else f"(0 - {-v})",
                                            lambda env, v=v: v)),
        st.just(("i", lambda env: env["i"])),
        st.just(("a", lambda env: env["a"])),
    )


def _binary(children):
    ops = {
        "+": lambda x, y: x + y,
        "-": lambda x, y: x - y,
        "*": lambda x, y: x * y,
        "/": _c_div,
        "%": _c_mod,
        "<": lambda x, y: int(x < y),
        ">": lambda x, y: int(x > y),
        "<=": lambda x, y: int(x <= y),
        ">=": lambda x, y: int(x >= y),
        "==": lambda x, y: int(x == y),
        "!=": lambda x, y: int(x != y),
        "&&": lambda x, y: 1 if (x and y) else 0,
        "||": lambda x, y: 1 if (x or y) else 0,
    }

    def build(args):
        (ltext, lfn), (rtext, rfn), op = args
        fn = ops[op]
        guarded = op in ("/", "%")

        def ev(env):
            lv, rv = lfn(env), rfn(env)
            if guarded and rv == 0:
                return 0
            return fn(lv, rv)

        if guarded:
            # guard division in the DSL text the same way
            text = f"(({rtext}) == 0 ? 0 : ({ltext}) {op} ({rtext}))"
        else:
            text = f"(({ltext}) {op} ({rtext}))"
        return (text, ev)

    return st.tuples(children, children, st.sampled_from(sorted(ops))).map(build)


def _ternary(children):
    def build(args):
        (ctext, cfn), (ttext, tfn), (etext, efn) = args

        def ev(env):
            return tfn(env) if cfn(env) else efn(env)

        return (f"(({ctext}) ? ({ttext}) : ({etext}))", ev)

    return st.tuples(children, children, children).map(build)


def _unary(children):
    def build(arg):
        text, fn = arg
        return (f"(!({text}))", lambda env: 0 if fn(env) else 1)

    return children.map(build)


expressions = st.recursive(
    _leaf(),
    lambda children: st.one_of(
        _binary(children), _ternary(children), _unary(children)
    ),
    max_leaves=12,
)


def _compile_accum(expr_text: str):
    src = f"""
    rsmpi operator fuzz {{
      state {{ int a; }}
      void accum(state s, int i) {{
        int a;
        a = s->a;
        s->a = {expr_text};
      }}
      void combine(state s1, state s2) {{ s1->a += s2->a; }}
    }}
    """
    compiled = generate_python(parse_operator(src))
    return compiled.namespace["accum"]


class _S:
    def __init__(self, a):
        self.a = a


class TestDSLFuzz:
    @COMMON
    @given(expr=expressions, i=st.integers(-10, 10), a0=st.integers(-10, 10))
    def test_expression_semantics_match_reference(self, expr, i, a0):
        text, ref = expr
        accum = _compile_accum(text)
        s = _S(a0)
        accum(s, i)
        expected = ref({"i": i, "a": a0})
        assert s.a == expected, f"expr: {text}"

    @COMMON
    @given(
        bounds=st.tuples(st.integers(0, 8), st.integers(0, 8)),
        init=st.integers(-5, 5),
    )
    def test_for_loop_semantics(self, bounds, init):
        lo, span = bounds
        hi = lo + span
        src = f"""
        rsmpi operator fz {{
          state {{ int a; }}
          void accum(state s, int i) {{
            int j;
            for (j = {lo}; j < {hi}; j++)
              s->a += j * i;
          }}
          void combine(state s1, state s2) {{ s1->a += s2->a; }}
        }}
        """
        accum = generate_python(parse_operator(src)).namespace["accum"]
        s = _S(init)
        accum(s, 3)
        assert s.a == init + sum(j * 3 for j in range(lo, hi))

    @COMMON
    @given(vals=st.lists(st.integers(-100, 100), min_size=1, max_size=20))
    def test_compiled_running_max(self, vals):
        src = """
        rsmpi operator rmax {
          state { int m; int seen; }
          void accum(state s, int i) {
            if (!s->seen || i > s->m) s->m = i;
            s->seen = 1;
          }
          void combine(state s1, state s2) {
            if (s2->seen && (!s1->seen || s2->m > s1->m)) s1->m = s2->m;
            s1->seen = s1->seen || s2->seen;
          }
        }
        """
        ns = generate_python(parse_operator(src)).namespace

        class S2:
            m = 0
            seen = 0

        s = S2()
        for v in vals:
            ns["accum"](s, v)
        assert s.m == max(vals)
