"""Miniature end-to-end runs of the figure pipelines.

The full sweeps live in ``benchmarks/``; these integration tests drive
the exact same code paths at tiny scale so that ``pytest tests/`` alone
validates the figure plumbing, including the cost-model charging and
the paper-shape directions.
"""

import numpy as np
import pytest

from repro import mpi
from repro.nas import is_class, mg_class
from repro.nas.callcounts import census
from repro.nas.intsort import (
    generate_keys,
    run_is,
    verify_mpi,
    verify_rsmpi,
)
from repro.nas.mg import zran3_mpi, zran3_rsmpi
from repro.runtime import CostModel, cluster_2006, spmd_run

MODEL = cluster_2006().with_rates(
    is_check_tworef=2.0e-7,
    is_check_scalar=1.0e-7,
    mg_scan=2.0e-9,
    mg_accum=6.0e-9,
)


class TestFig2Pipeline:
    @pytest.fixture(scope="class")
    def blocks(self):
        whole = np.sort(generate_keys(is_class("S")))
        out = {}
        for p in (1, 4, 8):
            bounds = [r * len(whole) // p for r in range(p + 1)]
            out[p] = [whole[bounds[r] : bounds[r + 1]] for r in range(p)]
        return out

    def _time(self, blocks, p, verify, rate):
        return spmd_run(
            lambda comm: verify(comm, blocks[p][comm.rank], check_rate=rate),
            p,
            cost_model=MODEL,
        ).time

    def test_scalar_improvement_direction(self, blocks):
        t_2ref = self._time(blocks, 1, verify_mpi, "is_check_tworef")
        t_scal = self._time(blocks, 1, verify_mpi, "is_check_scalar")
        t_rsm = self._time(blocks, 1, verify_rsmpi, "is_check_scalar")
        assert t_2ref > t_scal
        assert t_rsm == pytest.approx(t_scal, rel=0.05)

    def test_parallel_speedup(self, blocks):
        t1 = self._time(blocks, 1, verify_rsmpi, "is_check_scalar")
        t8 = self._time(blocks, 8, verify_rsmpi, "is_check_scalar")
        assert t8 < t1 / 4  # at least half-efficient at p=8

    def test_rsmpi_never_slower_than_2ref(self, blocks):
        for p in (1, 4, 8):
            t_m = self._time(blocks, p, verify_mpi, "is_check_tworef")
            t_r = self._time(blocks, p, verify_rsmpi, "is_check_scalar")
            assert t_r <= t_m * 1.05


class TestFig3Pipeline:
    def _phase(self, p, variant):
        cls = mg_class("S")
        fn = zran3_mpi if variant == "mpi" else zran3_rsmpi
        rate = "mg_scan" if variant == "mpi" else "mg_accum"
        res = spmd_run(
            lambda comm: fn(comm, cls, scan_rate=rate), p, cost_model=MODEL
        )
        return max(r.t_done - r.t_fill_end for r in res.returns)

    @pytest.mark.parametrize("p", [2, 8])
    def test_one_reduction_beats_forty(self, p):
        assert self._phase(p, "rsmpi") < self._phase(p, "mpi")

    def test_gap_grows_with_p(self):
        r2 = self._phase(2, "mpi") / self._phase(2, "rsmpi")
        r8 = self._phase(8, "mpi") / self._phase(8, "rsmpi")
        assert r8 > r2

    def test_reduction_counts_exact(self):
        cls = mg_class("S")
        res_m = spmd_run(lambda comm: zran3_mpi(comm, cls), 4)
        res_r = spmd_run(lambda comm: zran3_rsmpi(comm, cls), 4)
        assert census(res_m.traces).n_reductions == 40
        assert census(res_r.traces).n_reductions == 1


class TestEndToEndIS:
    @pytest.mark.parametrize("verifier", ["mpi", "rsmpi"])
    def test_full_run_with_charging(self, verifier):
        res = spmd_run(
            lambda comm: run_is(
                comm,
                is_class("S"),
                verifier=verifier,
                check_rate="is_check_scalar",
                sort_rate="mg_scan",
            ),
            4,
            cost_model=MODEL,
        )
        assert all(r.sorted_ok for r in res.returns)
        assert res.time > 0


class TestReduceScatterIntegration:
    @pytest.mark.parametrize("p", [1, 2, 5, 8])
    def test_segments_tile_reduction(self, p, rng):
        data = rng.normal(size=(p, 40))

        def prog(comm):
            seg, (lo, hi) = comm.reduce_scatter(
                data[comm.rank].copy(), mpi.SUM
            )
            return seg, lo, hi

        res = spmd_run(prog, p)
        expected = data.sum(axis=0)
        merged = np.empty(40)
        covered = 0
        for seg, lo, hi in res.returns:
            merged[lo:hi] = seg
            covered += hi - lo
        assert covered == 40
        assert np.allclose(merged, expected)

    def test_counts_as_reduction_in_census(self):
        def prog(comm):
            comm.reduce_scatter(np.zeros(8), mpi.SUM)

        res = spmd_run(prog, 4)
        assert census(res.traces).n_reductions == 1
