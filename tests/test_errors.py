"""Tests for the exception hierarchy's messages and structure."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_reproerror(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            if isinstance(exc, type) and issubclass(exc, BaseException):
                assert issubclass(exc, errors.ReproError), name

    def test_spmderror_message_names_ranks(self):
        e = errors.SpmdError({3: ValueError("boom"), 1: KeyError("k")})
        msg = str(e)
        assert "1, 3" in msg
        assert "rank 1" in msg  # first failure detailed
        assert e.failures[3].args == ("boom",)

    def test_dsl_syntax_error_positions(self):
        e = errors.DslSyntaxError("bad token", line=3, col=7)
        assert "line 3" in str(e) and "column 7" in str(e)
        assert (e.line, e.col) == (3, 7)

    def test_dsl_syntax_error_without_position(self):
        e = errors.DslSyntaxError("oops")
        assert str(e) == "oops"

    def test_catching_the_root_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.OperatorLawError("x")
        with pytest.raises(errors.OperatorError):
            raise errors.OperatorLawError("x")
