"""Engine API tests: submission, multiplexing, backpressure, lifecycle.

The identity grid (engine vs ``spmd_run`` bit-for-bit) lives in
``test_engine_identity.py``; cross-job isolation in
``test_engine_isolation.py``; scheduling determinism in
``test_engine_determinism.py``.  This file covers the engine's own
contract: handles, sessions, admission control, cancellation, failure
propagation and shutdown.
"""

import threading
import time

import numpy as np
import pytest

from repro import global_reduce, global_scan
from repro.engine import Engine, JobHandle, Session
from repro.errors import (
    CommunicatorError,
    EngineClosed,
    EngineSaturated,
    JobCancelled,
    SpmdError,
    SpmdTimeout,
)
from repro.faults import FailStop, FaultPlan
from repro.ops import SumOp
from repro.runtime import spmd_run


def sum_job(comm):
    local = np.arange(comm.rank, 8 * comm.size, comm.size, dtype=np.float64)
    return global_reduce(comm, SumOp(), local)


def scan_job(comm):
    return global_scan(comm, SumOp(), [float(comm.rank + 1)])


class TestSubmit:
    def test_result_matches_spmd_run(self):
        baseline = spmd_run(sum_job, 4)
        with Engine(4) as engine:
            res = engine.submit(sum_job).result()
        assert res.returns == baseline.returns
        assert res.clocks == baseline.clocks
        assert res.time == baseline.time

    def test_handle_introspection(self):
        with Engine(2) as engine:
            handle = engine.submit(sum_job, label="my-job")
            assert isinstance(handle, JobHandle)
            res = handle.result()
            assert handle.done()
            assert handle.status == "done"
            assert handle.label == "my-job"
            assert handle.job_id >= 1
            assert res.nprocs == 2

    def test_label_defaults_to_function_name(self):
        with Engine(2) as engine:
            handle = engine.submit(sum_job)
            handle.result()
            assert handle.label == "sum_job"

    def test_args_passed_to_every_rank(self):
        def job(comm, offset):
            return comm.rank + offset

        with Engine(3) as engine:
            res = engine.submit(job, args=(100,)).result()
        assert res.returns == [100, 101, 102]

    def test_job_ids_are_unique_and_ordered(self):
        with Engine(2) as engine:
            handles = [engine.submit(scan_job) for _ in range(5)]
            ids = [h.job_id for h in handles]
            assert ids == sorted(ids)
            assert len(set(ids)) == 5
            for h in handles:
                h.result()

    def test_smaller_jobs_than_pool(self):
        with Engine(8) as engine:
            handles = [engine.submit(scan_job, nprocs=n) for n in (1, 2, 4, 8)]
            for n, h in zip((1, 2, 4, 8), handles):
                res = h.result()
                assert res.nprocs == n
                assert res.returns == [
                    [float(sum(range(1, g + 2)))] for g in range(n)
                ]

    def test_concurrent_jobs_multiplex_the_pool(self):
        with Engine(8) as engine:
            handles = [engine.submit(sum_job, nprocs=4) for _ in range(12)]
            for h in handles:
                h.result()
            stats = engine.stats()
        assert stats["completed"] == 12
        # Two 4-rank jobs fit in an 8-rank pool simultaneously.
        assert stats["peak_inflight"] >= 2

    def test_oversized_job_rejected(self):
        with Engine(4) as engine:
            with pytest.raises(CommunicatorError):
                engine.submit(sum_job, nprocs=8)
            with pytest.raises(CommunicatorError):
                engine.submit(sum_job, nprocs=0)

    def test_stats_counts(self):
        with Engine(4) as engine:
            engine.submit(sum_job).result()
            engine.submit(scan_job).result()
            stats = engine.stats()
        assert stats["submitted"] == 2
        assert stats["completed"] == 2
        assert stats["failed"] == 0
        assert stats["pending"] == 0
        assert stats["inflight"] == 0
        assert stats["free_ranks"] == 4


class TestFailures:
    def test_spmd_error_parity(self):
        def bad(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            return comm.rank

        with pytest.raises(SpmdError) as std:
            spmd_run(bad, 4)
        with Engine(4) as engine:
            with pytest.raises(SpmdError) as eng:
                engine.submit(bad).result()
            assert engine.stats()["failed"] == 1
        assert type(std.value.failures[1]) is type(eng.value.failures[1])
        assert str(std.value.failures[1]) == str(eng.value.failures[1])

    def test_failure_does_not_poison_the_pool(self):
        def bad(comm):
            raise RuntimeError("boom")

        with Engine(4) as engine:
            with pytest.raises(SpmdError):
                engine.submit(bad).result()
            # The pool must still serve healthy jobs afterwards.
            res = engine.submit(sum_job).result()
            assert res.returns == spmd_run(sum_job, 4).returns

    def test_deadlocked_job_is_detected_and_isolated(self):
        def stuck(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=99)  # rank 1 never sends
            return comm.rank

        with Engine(8) as engine:
            stuck_handle = engine.submit(stuck, nprocs=2)
            healthy = [engine.submit(sum_job, nprocs=4) for _ in range(6)]
            # Healthy jobs on the other ranks complete regardless of the
            # doomed job sharing the pool.
            for h in healthy:
                assert h.result().returns == spmd_run(sum_job, 4).returns
            # The watchdog calls the hang: same contract as spmd_run.
            with pytest.raises(SpmdError, match="deadlock"):
                stuck_handle.result(timeout=10.0)
            # The dead job's ranks are recycled: a full-pool job runs.
            res = engine.submit(sum_job, nprocs=8).result()
            assert res.nprocs == 8

    def test_slow_job_times_out(self):
        release = threading.Event()

        def slow(comm):
            release.wait(10.0)  # alive but not blocked in a receive
            return comm.rank

        try:
            with Engine(2) as engine:
                handle = engine.submit(slow)
                with pytest.raises(SpmdTimeout):
                    handle.result(timeout=0.3)
                release.set()  # let the rank threads unwind
                handle.wait(5.0)
                assert handle.status == "failed"
        finally:
            release.set()

    def test_fault_plan_failed_ranks_in_group_coordinates(self):
        plan = FaultPlan(failstops=(FailStop(rank=1, at_op=1),))
        baseline = spmd_run(sum_job, 4, fault_plan=plan)
        with Engine(8) as engine:
            # Occupy ranks 0-3 so the fault-plan job lands on world
            # ranks 4-7: group rank 1 is world rank 5.
            blocker = engine.submit(sum_job, nprocs=4)
            res = engine.submit(sum_job, nprocs=4, fault_plan=plan).result()
            blocker.result()
        assert res.failed_ranks == baseline.failed_ranks == frozenset({1})
        assert res.returns == baseline.returns


class TestBackpressure:
    def test_nonblocking_submit_saturates(self):
        release = threading.Event()

        def gated(comm):
            release.wait(10.0)
            return comm.rank

        try:
            with Engine(2, queue_depth=2) as engine:
                running = engine.submit(gated)  # occupies the pool
                q1 = engine.submit(scan_job, block=False)
                q2 = engine.submit(scan_job, block=False)
                with pytest.raises(EngineSaturated):
                    engine.submit(scan_job, block=False)
                assert engine.stats()["rejected"] == 1
                release.set()
                for h in (running, q1, q2):
                    h.result()
        finally:
            release.set()

    def test_queue_timeout_expires(self):
        release = threading.Event()

        def gated(comm):
            release.wait(10.0)
            return comm.rank

        try:
            with Engine(2, queue_depth=1) as engine:
                running = engine.submit(gated)
                queued = engine.submit(scan_job)
                t0 = time.monotonic()
                with pytest.raises(EngineSaturated):
                    engine.submit(scan_job, queue_timeout=0.2)
                assert time.monotonic() - t0 >= 0.15
                release.set()
                running.result()
                queued.result()
        finally:
            release.set()

    def test_blocking_submit_waits_for_space(self):
        release = threading.Event()

        def gated(comm):
            release.wait(10.0)
            return comm.rank

        try:
            with Engine(2, queue_depth=1) as engine:
                running = engine.submit(gated)
                queued = engine.submit(scan_job)
                threading.Timer(0.1, release.set).start()
                # Blocks until the gated job finishes and frees a slot.
                extra = engine.submit(scan_job)
                for h in (running, queued, extra):
                    h.result()
        finally:
            release.set()


class TestCancel:
    def test_cancel_pending_job(self):
        release = threading.Event()

        def gated(comm):
            release.wait(10.0)
            return comm.rank

        try:
            with Engine(2) as engine:
                running = engine.submit(gated)
                queued = engine.submit(scan_job)
                assert queued.cancel()
                assert queued.status == "cancelled"
                with pytest.raises(JobCancelled):
                    queued.result()
                release.set()
                running.result()
                assert not queued.cancel()  # already finished
        finally:
            release.set()

    def test_cancel_running_job(self):
        started = threading.Event()
        release = threading.Event()

        def waits_forever(comm):
            # Rank 1 idles outside the runtime: if *both* ranks blocked
            # in a receive the deadlock watchdog could mark the job
            # failed before cancel() lands, which is not the behaviour
            # under test here.
            if comm.rank == 0:
                started.set()
                comm.recv(source=1, tag=7)
            else:
                release.wait(10.0)

        try:
            with Engine(2) as engine:
                handle = engine.submit(waits_forever)
                assert started.wait(5.0)
                assert handle.cancel()
                release.set()
                with pytest.raises(JobCancelled):
                    handle.result(timeout=5.0)
                # Pool is reusable after the cancelled job unwinds.
                assert engine.submit(scan_job).result().nprocs == 2
        finally:
            release.set()


class TestLifecycle:
    def test_submit_after_shutdown_raises(self):
        engine = Engine(2)
        engine.shutdown()
        with pytest.raises(EngineClosed):
            engine.submit(scan_job)

    def test_shutdown_drains_pending(self):
        engine = Engine(2)
        handles = [engine.submit(scan_job) for _ in range(6)]
        engine.shutdown()  # drain=True: every job completes
        assert [h.status for h in handles] == ["done"] * 6

    def test_shutdown_without_drain_cancels_pending(self):
        release = threading.Event()

        def gated(comm):
            release.wait(10.0)
            return comm.rank

        engine = Engine(2)
        try:
            running = engine.submit(gated)
            queued = [engine.submit(scan_job) for _ in range(3)]
            release.set()
            engine.shutdown(drain=False)
            assert running.done()
            for h in queued:
                assert h.status == "cancelled"
                with pytest.raises(JobCancelled):
                    h.result()
        finally:
            release.set()

    def test_drain_waits_for_all(self):
        with Engine(4) as engine:
            handles = [engine.submit(sum_job, nprocs=2) for _ in range(8)]
            assert engine.drain(timeout=30.0)
            assert all(h.done() for h in handles)
            stats = engine.stats()
            assert stats["pending"] == 0 and stats["inflight"] == 0

    def test_shutdown_idempotent(self):
        engine = Engine(2)
        engine.submit(scan_job).result()
        engine.shutdown()
        engine.shutdown()  # second call is a no-op


class TestSession:
    def test_session_tracks_handles(self):
        with Engine(4) as engine:
            with engine.session(label="tenant-a") as session:
                assert isinstance(session, Session)
                for _ in range(3):
                    session.submit(scan_job, nprocs=2)
                assert len(session.handles) == 3
                results = session.results()
            assert len(results) == 3
            for res in results:
                assert res.returns == [[1.0], [3.0]]

    def test_sessions_share_one_pool(self):
        with Engine(4) as engine:
            a = engine.session(label="a")
            b = engine.session(label="b")
            ha = [a.submit(scan_job, nprocs=2) for _ in range(4)]
            hb = [b.submit(scan_job, nprocs=2) for _ in range(4)]
            a.drain(timeout=30.0)
            b.drain(timeout=30.0)
            assert all(h.status == "done" for h in ha + hb)
            assert engine.stats()["completed"] == 8


class TestScheduleCache:
    def test_cache_hits_grow_across_jobs(self):
        with Engine(4) as engine:
            engine.submit(sum_job).result()
            first = engine.stats()["schedule_cache"]
            for _ in range(5):
                engine.submit(sum_job).result()
            later = engine.stats()["schedule_cache"]
        assert later["hits"] > first["hits"]
        # Identical jobs re-resolve the same decision: no new misses.
        assert later["misses"] == first["misses"]

    def test_cached_choice_matches_tuning_tables(self):
        # The cache must be invisible: same algorithm choice as a cold
        # spmd_run, hence identical traces (message counts included).
        baseline = spmd_run(sum_job, 8)
        with Engine(8) as engine:
            engine.submit(sum_job).result()  # warm the cache
            res = engine.submit(sum_job).result()
        assert res.summary_trace.n_sends == baseline.summary_trace.n_sends
        assert res.clocks == baseline.clocks
