"""Tests for communication-tree topologies."""

import math

import pytest

from repro.errors import CommunicatorError
from repro.mpi.topology import binomial_tree, dims_create, kary_tree, tree_depth


def _check_tree_wellformed(nodes, size):
    assert len(nodes) == size
    assert nodes[0].parent is None
    seen_children = set()
    for node in nodes:
        for c in node.children:
            assert nodes[c].parent == node.rank
            assert c not in seen_children
            seen_children.add(c)
    # every non-root appears exactly once as a child
    assert seen_children == set(range(1, size))


class TestBinomialTree:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13, 16, 31, 64])
    def test_wellformed(self, size):
        _check_tree_wellformed(binomial_tree(size), size)

    @pytest.mark.parametrize("size", [2, 4, 8, 16, 64])
    def test_depth_is_log(self, size):
        assert tree_depth(binomial_tree(size)) == int(math.log2(size))

    def test_depth_single_rank(self):
        # A 1-rank tree is just the root: zero edges, not an error.
        assert tree_depth(binomial_tree(1)) == 0

    def test_subtrees_cover_contiguous_ranges(self):
        # the property that licenses non-commutative reductions
        for size in (5, 8, 12, 16):
            nodes = binomial_tree(size)

            def span(r):
                lo = hi = r
                for c in nodes[r].children:
                    clo, chi = span(c)
                    lo, hi = min(lo, clo), max(hi, chi)
                return lo, hi

            def covered(r):
                out = {r}
                for c in nodes[r].children:
                    out |= covered(c)
                return out

            for r in range(size):
                lo, hi = span(r)
                assert covered(r) == set(range(lo, hi + 1)), (size, r)

    def test_invalid_size(self):
        with pytest.raises(CommunicatorError):
            binomial_tree(0)


class TestKaryTree:
    @pytest.mark.parametrize("size,fanout", [(1, 2), (7, 2), (10, 3), (20, 4), (17, 8)])
    def test_wellformed(self, size, fanout):
        _check_tree_wellformed(kary_tree(size, fanout), size)

    def test_fanout_bounds_children(self):
        for node in kary_tree(50, 4):
            assert len(node.children) <= 4

    def test_higher_fanout_shallower(self):
        d2 = tree_depth(kary_tree(64, 2))
        d4 = tree_depth(kary_tree(64, 4))
        d8 = tree_depth(kary_tree(64, 8))
        assert d8 < d4 < d2

    def test_invalid_fanout(self):
        with pytest.raises(CommunicatorError):
            kary_tree(4, 1)


class TestDimsCreate:
    @pytest.mark.parametrize(
        "n,ndims,expected",
        [
            (8, 3, (2, 2, 2)),
            (12, 3, (3, 2, 2)),
            (7, 3, (7, 1, 1)),
            (16, 2, (4, 4)),
            (1, 3, (1, 1, 1)),
            (60, 3, (5, 4, 3)),
            (64, 3, (4, 4, 4)),
        ],
    )
    def test_balanced_factorization(self, n, ndims, expected):
        assert dims_create(n, ndims) == expected

    @pytest.mark.parametrize("n", range(1, 40))
    def test_product_always_exact(self, n):
        dims = dims_create(n, 3)
        assert math.prod(dims) == n
        assert dims == tuple(sorted(dims, reverse=True))

    def test_invalid(self):
        with pytest.raises(CommunicatorError):
            dims_create(0, 3)
        with pytest.raises(CommunicatorError):
            dims_create(4, 0)

    def test_single_rank_trivial_grid(self):
        # MPI_Dims_create semantics: one rank fills every dimension.
        assert dims_create(1, 1) == (1,)
        assert dims_create(1, 4) == (1, 1, 1, 1)
