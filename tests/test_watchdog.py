"""The hang watchdog and per-rank failure diagnostics."""

import pytest

from repro.errors import (
    DeadlockError,
    SpmdError,
    SpmdTimeout,
    format_rank_states,
)
from repro.faults import FailStop, FaultPlan
from repro.ops import SumOp
from repro.core.reduce import global_reduce
from repro.runtime import spmd_run


class TestDeadlockDetection:
    def test_circular_wait_names_every_rank(self):
        def prog(comm):
            comm.recv((comm.rank + 1) % comm.size)

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 4, timeout=30)
        msg = str(ei.value)
        assert "deadlock" in msg
        for r in range(4):
            assert f"rank {r} <-" in msg

    def test_one_rank_done_others_blocked(self):
        # A rank finishing can complete the all-blocked condition.
        def prog(comm):
            if comm.rank == 0:
                return "done"
            comm.recv(0, tag=99)  # never sent

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 3, timeout=30)
        assert any(
            isinstance(e, DeadlockError) for e in ei.value.failures.values()
        )

    def test_pending_message_is_not_a_deadlock(self):
        # A rank with its message already queued must complete, not trip
        # the watchdog, even while every other rank is blocked.
        def prog(comm):
            if comm.rank == 0:
                comm.send("x", 1)
                return comm.recv(1)
            got = comm.recv(0)
            comm.send(got + "y", 0)
            return got

        res = spmd_run(prog, 2)
        assert res.returns == ["xy", "x"]

    def test_blocked_on_dead_rank_is_recovery_not_deadlock(self):
        # Waits the failure detector will reject are pending progress;
        # the watchdog must stand back and let recovery run.
        blocks = [[float(q)] for q in range(4)]

        def prog(comm):
            return global_reduce(comm, SumOp(), blocks[comm.rank])

        plan = FaultPlan(seed=0, failstops=(FailStop(rank=3, at_op=1),))
        res = spmd_run(prog, 4, fault_plan=plan)  # must not raise
        assert res.returns[0] == 0.0 + 1.0 + 2.0


class TestRankStateDiagnostics:
    def test_spmd_error_carries_rank_states(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.recv(1, tag=7)

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 3, timeout=30)
        assert ei.value.rank_states is not None
        assert "per-rank state at failure" in str(ei.value)
        states = {s["rank"]: s for s in ei.value.rank_states}
        assert set(states) == {0, 1, 2}
        for s in states.values():
            assert {"status", "waiting_for", "clock", "pending_count"} <= set(s)

    def test_format_rank_states(self):
        text = format_rank_states([
            {"rank": 0, "status": "blocked", "waiting_for": (1, "t"),
             "clock": 1.5e-6, "pending_count": 2},
            {"rank": 1, "status": "done", "waiting_for": None,
             "clock": 0.0, "pending_count": 0},
        ])
        assert "rank 0: blocked waiting on (source=1, tag='t')" in text
        assert "pending=2" in text
        assert "rank 1: done" in text
        assert format_rank_states(None) == ""
        assert format_rank_states([]) == ""

    def test_spmd_timeout_renders_rank_states(self):
        err = SpmdTimeout(
            "timed out",
            rank_states=[{"rank": 0, "status": "blocked",
                          "waiting_for": (2, 5), "clock": 0.0,
                          "pending_count": 1}],
        )
        assert "per-rank state at timeout" in str(err)
        assert "source=2" in str(err)
