"""Tests for the collective algorithm tuning layer (repro.mpi.tuning).

The contract under test: ``algorithm="auto"`` is a pure *performance*
choice — for any operator and any payload it must produce exactly the
result the explicit baseline algorithm produces, and it must never route
a non-commutative operator to a commutative-only schedule.
"""

import json

import numpy as np
import pytest

from repro import mpi
from repro.core.operator import state_equal
from repro.core.reduce import global_reduce
from repro.core.scan import global_scan, global_xscan
from repro.mpi.tuning import (
    DEFAULT_TABLE,
    Band,
    DecisionTable,
    choose_allreduce,
    choose_reduce,
    choose_scan,
    fit_decision_table,
    is_splittable,
    load_decision_table,
    set_decision_table,
)
from repro.ops import (
    AllOp,
    AnyOp,
    BandOp,
    BorOp,
    BxorOp,
    ConcatOp,
    CountsOp,
    HistogramOp,
    MaxiOp,
    MaxKOp,
    MaxOp,
    MeanVarOp,
    MiniOp,
    MinKOp,
    MinOp,
    ProdOp,
    SortedOp,
    SumOp,
    TopKOp,
    UnionOp,
    XorOp,
)
from repro.runtime import spmd_run
from tests.conftest import block_split, run_all

INT_MAX = np.iinfo(np.int64).max

#: Payload element counts (int64) spanning the decision-table byte
#: crossovers: 8 B (scalar regime), 4 KiB (below every cutoff), 16 KiB
#: (the p<=8 allreduce cutoff), 128 KiB (above the allreduce cutoffs,
#: below the large-p reduce cutoff) and 320 KB (above everything).
CROSSOVER_LENGTHS = [1, 512, 2048, 16384, 40000]

NPROCS = [1, 2, 3, 8, 16]


class TestChoosers:
    def test_non_commutative_never_segmenting(self):
        for nbytes in (8, 10**4, 10**8):
            for p in (2, 4, 16, 64):
                assert (
                    choose_allreduce(nbytes, p, commutative=False, splittable=True)
                    == "recursive_doubling"
                )

    def test_non_splittable_never_segmenting(self):
        for nbytes in (8, 10**4, 10**8):
            for p in (2, 4, 16, 64):
                assert (
                    choose_allreduce(nbytes, p, commutative=True, splittable=False)
                    == "recursive_doubling"
                )
                assert choose_reduce(nbytes, p, True, False) == "binomial"

    def test_allreduce_crossover(self):
        # Small payloads keep the latency-optimal schedule; large
        # commutative splittable ones get a bandwidth-optimal one.
        assert choose_allreduce(8, 16, True, True) == "recursive_doubling"
        big = choose_allreduce(10**7, 16, True, True)
        assert big in ("ring", "rabenseifner")

    def test_reduce_crossover(self):
        assert choose_reduce(8, 16, True, True) == "binomial"
        assert choose_reduce(10**7, 16, True, True) == "pipelined_ring"

    def test_scan_choice_is_order_preserving(self):
        for nbytes in (8, 10**7):
            for p in (1, 2, 3, 8, 16, 64):
                assert choose_scan(nbytes, p, False, False) in (
                    "binomial",
                    "chain",
                )

    def test_is_splittable(self):
        assert is_splittable(np.zeros(16), mpi.SUM, 16)
        assert not is_splittable(np.zeros(15), mpi.SUM, 16)  # too short
        assert not is_splittable(np.zeros((4, 4)), mpi.SUM, 4)  # not 1-D
        assert not is_splittable([0.0] * 16, mpi.SUM, 16)  # not ndarray
        # MAXLOC is not elementwise (pair semantics)
        assert not is_splittable(np.zeros(16), mpi.MAXLOC, 16)
        # plain callables carry no elementwise declaration
        assert not is_splittable(np.zeros(16), lambda a, b: a + b, 16)


class TestAutoMatchesExplicitWire:
    """comm-level: auto == explicit bit-for-bit on exact (int64) data."""

    @pytest.mark.parametrize("p", NPROCS)
    @pytest.mark.parametrize("n", CROSSOVER_LENGTHS)
    def test_allreduce_sum(self, p, n, rng):
        data = rng.integers(-(2**40), 2**40, size=(p, n), dtype=np.int64)

        def prog(comm):
            auto = comm.allreduce(data[comm.rank].copy(), mpi.SUM)
            explicit = comm.allreduce(
                data[comm.rank].copy(), mpi.SUM,
                algorithm="recursive_doubling",
            )
            return bool(np.array_equal(auto, explicit))

        assert all(run_all(prog, p))

    @pytest.mark.parametrize("p", NPROCS)
    @pytest.mark.parametrize("n", CROSSOVER_LENGTHS)
    def test_reduce_sum(self, p, n, rng):
        data = rng.integers(-(2**40), 2**40, size=(p, n), dtype=np.int64)

        def prog(comm):
            auto = comm.reduce(data[comm.rank].copy(), mpi.SUM)
            explicit = comm.reduce(
                data[comm.rank].copy(), mpi.SUM, algorithm="binomial"
            )
            if comm.rank == 0:
                return bool(np.array_equal(auto, explicit))
            return auto is None and explicit is None

        assert all(run_all(prog, p))

    @pytest.mark.parametrize(
        "op", [mpi.MIN, mpi.MAX, mpi.PROD, mpi.BAND, mpi.BOR, mpi.BXOR],
        ids=lambda op: op.name,
    )
    def test_allreduce_elementwise_builtins(self, op, rng):
        p, n = 8, 16384  # right at the p<=8 crossover
        data = rng.integers(1, 7, size=(p, n), dtype=np.int64)

        def prog(comm):
            auto = comm.allreduce(data[comm.rank].copy(), op)
            explicit = comm.allreduce(
                data[comm.rank].copy(), op, algorithm="recursive_doubling"
            )
            return bool(np.array_equal(auto, explicit))

        assert all(run_all(prog, p))

    @pytest.mark.parametrize(
        "op", [mpi.LAND, mpi.LOR, mpi.LXOR], ids=lambda op: op.name
    )
    def test_allreduce_logical_builtins(self, op, rng):
        # Logical ops are deliberately not elementwise (fresh bool
        # arrays); auto must fall back to recursive doubling and match.
        p = 8
        data = rng.integers(0, 2, size=(p, 64), dtype=np.int64)

        def prog(comm):
            auto = comm.allreduce(data[comm.rank].copy(), op)
            explicit = comm.allreduce(
                data[comm.rank].copy(), op, algorithm="recursive_doubling"
            )
            return bool(np.array_equal(auto, explicit))

        assert all(run_all(prog, p))

    def test_allreduce_maxloc_pairs(self, rng):
        p = 8
        vals = rng.normal(size=(p, 32))

        def prog(comm):
            pairs = np.stack(
                [vals[comm.rank], np.full(32, float(comm.rank))], axis=1
            )
            auto = comm.allreduce(pairs.copy(), mpi.MAXLOC)
            explicit = comm.allreduce(
                pairs.copy(), mpi.MAXLOC, algorithm="recursive_doubling"
            )
            return bool(np.array_equal(auto, explicit))

        assert all(run_all(prog, p))

    @pytest.mark.parametrize("p", NPROCS)
    def test_scan_and_exscan(self, p, rng):
        data = rng.integers(-(2**40), 2**40, size=(p, 256), dtype=np.int64)

        def prog(comm):
            mine = data[comm.rank]
            a = comm.scan(mine.copy(), mpi.SUM)
            b = comm.scan(mine.copy(), mpi.SUM, algorithm="binomial")
            ok = bool(np.array_equal(a, b))
            xa = comm.exscan(
                mine.copy(), mpi.SUM,
                identity=lambda: np.zeros(256, dtype=np.int64),
            )
            xb = comm.exscan(
                mine.copy(), mpi.SUM,
                identity=lambda: np.zeros(256, dtype=np.int64),
                algorithm="binomial",
            )
            return ok and bool(np.array_equal(xa, xb))

        assert all(run_all(prog, p))

    def test_non_commutative_auto_never_rejected(self):
        """A non-commutative elementwise op over a huge array must sail
        through auto (routed to an order-preserving schedule) instead of
        hitting a commutative-only algorithm's guard."""
        p, n = 16, 100_000
        take_right = mpi.op_create(
            lambda a, b: b, commute=False, elementwise=True, name="project"
        )

        def prog(comm):
            out = comm.allreduce(
                np.full(n, float(comm.rank)), take_right
            )
            return bool(np.all(out == p - 1))

        assert all(run_all(prog, p))


#: Representative instances of every operator family in repro.ops,
#: paired with a data generator (global int sequence keeps exact ops
#: bit-exact; state_equal gives float ops merge tolerance).
def _int_data(n=40):
    return [int(v) for v in np.random.default_rng(7).integers(0, 50, n)]


GLOBAL_VIEW_OPS = [
    pytest.param(SumOp(), _int_data(), id="SumOp"),
    pytest.param(ProdOp(), [1, 2, 1, 3, 1, 2, 1, 1, 2, 1], id="ProdOp"),
    pytest.param(MinOp(), _int_data(), id="MinOp"),
    pytest.param(MaxOp(), _int_data(), id="MaxOp"),
    pytest.param(AllOp(), [1, 1, 0, 1] * 10, id="AllOp"),
    pytest.param(AnyOp(), [0, 0, 1, 0] * 10, id="AnyOp"),
    pytest.param(XorOp(), [1, 0, 1, 1] * 10, id="XorOp"),
    pytest.param(BandOp(), _int_data(), id="BandOp"),
    pytest.param(BorOp(), _int_data(), id="BorOp"),
    pytest.param(BxorOp(), _int_data(), id="BxorOp"),
    pytest.param(
        MiniOp(), [(v, i) for i, v in enumerate(_int_data())], id="MiniOp"
    ),
    pytest.param(
        MaxiOp(), [(v, i) for i, v in enumerate(_int_data())], id="MaxiOp"
    ),
    pytest.param(MinKOp(3, INT_MAX), _int_data(), id="MinKOp"),
    pytest.param(MaxKOp(3, -INT_MAX), _int_data(), id="MaxKOp"),
    pytest.param(
        CountsOp(8, base=0), [v % 8 for v in _int_data()], id="CountsOp"
    ),
    pytest.param(UnionOp(), [v % 11 for v in _int_data()], id="UnionOp"),
    pytest.param(ConcatOp(), _int_data(), id="ConcatOp"),
    pytest.param(
        HistogramOp([0.0, 10.0, 25.0, 50.0]), _int_data(), id="HistogramOp"
    ),
    pytest.param(SortedOp(), sorted(_int_data()), id="SortedOp"),
    pytest.param(MeanVarOp(), [float(v) for v in _int_data()], id="MeanVarOp"),
    pytest.param(TopKOp(4), _int_data(), id="TopKOp"),
]


class TestAutoMatchesExplicitGlobalView:
    """Driver-level: every repro.ops operator, auto == explicit."""

    @pytest.mark.parametrize("p", NPROCS)
    @pytest.mark.parametrize("op,data", GLOBAL_VIEW_OPS)
    def test_global_reduce(self, p, op, data):
        def prog(comm):
            local = block_split(data, comm.size, comm.rank)
            auto = global_reduce(comm, op, local)
            explicit = global_reduce(
                comm, op, local, algorithm="recursive_doubling"
            )
            return state_equal(auto, explicit)

        assert all(run_all(prog, p))

    @pytest.mark.parametrize("op,data", GLOBAL_VIEW_OPS)
    def test_global_reduce_rooted(self, op, data):
        p = 8

        def prog(comm):
            local = block_split(data, comm.size, comm.rank)
            auto = global_reduce(comm, op, local, root=0)
            explicit = global_reduce(
                comm, op, local, root=0, algorithm="binomial"
            )
            if comm.rank == 0:
                return state_equal(auto, explicit)
            return auto is None and explicit is None

        assert all(run_all(prog, p))

    @pytest.mark.parametrize("op,data", GLOBAL_VIEW_OPS)
    def test_global_scan(self, op, data):
        p = 8

        def prog(comm):
            local = block_split(data, comm.size, comm.rank)
            auto = global_scan(comm, op, local)
            explicit = global_scan(comm, op, local, algorithm="binomial")
            return state_equal(auto, explicit)

        assert all(run_all(prog, p))

    @pytest.mark.parametrize("op,data", GLOBAL_VIEW_OPS[:6])
    def test_global_xscan(self, op, data):
        p = 8

        def prog(comm):
            local = block_split(data, comm.size, comm.rank)
            auto = global_xscan(comm, op, local)
            explicit = global_xscan(comm, op, local, algorithm="binomial")
            return state_equal(auto, explicit)

        assert all(run_all(prog, p))


class TestDecisionTable:
    def test_lookup_bands_and_cutoffs(self):
        table = DecisionTable(
            allreduce=(
                Band(8, ((100, "a"), (1 << 62, "b"))),
                Band(1 << 62, ((1 << 62, "c"),)),
            ),
            reduce=(Band(1 << 62, ((1 << 62, "r"),)),),
            scan=(Band(1 << 62, ((1 << 62, "s"),)),),
        )
        assert table.lookup("allreduce", 50, 4) == "a"
        assert table.lookup("allreduce", 100, 4) == "a"  # inclusive
        assert table.lookup("allreduce", 101, 4) == "b"
        assert table.lookup("allreduce", 50, 9) == "c"
        assert table.lookup("reduce", 10**9, 10**6) == "r"

    def test_json_roundtrip(self, tmp_path):
        blob = json.dumps(DEFAULT_TABLE.to_dict())
        back = DecisionTable.from_dict(json.loads(blob))
        for kind in ("allreduce", "reduce", "scan"):
            for p in (2, 4, 8, 16, 32, 100):
                for nbytes in (1, 4096, 16384, 65536, 262144, 10**8):
                    assert back.lookup(kind, nbytes, p) == DEFAULT_TABLE.lookup(
                        kind, nbytes, p
                    )

    def test_load_and_restore(self, tmp_path):
        custom = DecisionTable(
            allreduce=(Band(1 << 62, ((1 << 62, "ring"),)),),
            reduce=(Band(1 << 62, ((1 << 62, "binomial"),)),),
            scan=(Band(1 << 62, ((1 << 62, "binomial"),)),),
            source="test",
        )
        path = tmp_path / "table.json"
        path.write_text(json.dumps(custom.to_dict()))
        try:
            loaded = load_decision_table(path)
            assert loaded.source == "test"
            assert choose_allreduce(8, 16, True, True) == "ring"
        finally:
            set_decision_table(None)
        assert choose_allreduce(8, 16, True, True) == "recursive_doubling"

    def test_fit_on_tiny_grid(self):
        table, report = fit_decision_table(
            rank_grid=(4,), payload_grid=(8, 65536)
        )
        # sanity: a fitted table always answers, and the report grid
        # carries one row per (kind, rank, payload) cell
        assert table.lookup("allreduce", 8, 4) in (
            "recursive_doubling", "ring", "rabenseifner",
        )
        assert len(report["grid"]["allreduce"]) == 2
        assert report["payload_grid"] == [8, 65536]
        blob = json.dumps(report)  # must serialize cleanly
        assert "times" in blob


class TestTuneCli:
    def test_dry_run_smoke(self, capsys):
        from repro.__main__ import main

        rc = main([
            "tune", "--dry-run", "--ranks", "4", "--payloads", "8", "65536",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dry run: nothing written" in out
        assert "recursive_doubling" in out

    def test_tune_writes_table_and_bench(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "table.json"
        bench = tmp_path / "BENCH_tune.json"
        rc = main([
            "tune", "--ranks", "4", "--payloads", "8", "65536",
            "--out", str(out), "--bench", str(bench),
        ])
        assert rc == 0
        table = DecisionTable.from_dict(json.loads(out.read_text()))
        assert table.lookup("reduce", 8, 4) == "binomial"
        report = json.loads(bench.read_text())
        assert report["rank_grid"] == [4]


class TestFusionDimension:
    """The fusion fuse-or-flush watermark lives in the same fitted
    decision table as the algorithm choices (one cost model for both)."""

    def test_choose_fusion_small_fuses_large_flushes(self):
        from repro.mpi.tuning import choose_fusion

        for p in (4, 8, 16, 32):
            assert choose_fusion(64, p) == "fuse"
            assert choose_fusion(1 << 20, p) == "flush"

    def test_flush_bytes_matches_fuse_band(self):
        from repro.mpi.tuning import choose_fusion, fusion_flush_bytes

        for p in (4, 8, 16, 32):
            threshold = fusion_flush_bytes(p)
            assert choose_fusion(threshold, p) == "fuse"
            assert choose_fusion(threshold + 1, p) == "flush"

    def test_round_trip_preserves_fusion(self):
        doc = DEFAULT_TABLE.to_dict()
        assert "fusion" in doc
        back = DecisionTable.from_dict(doc)
        assert back.fusion == DEFAULT_TABLE.fusion

    def test_from_dict_without_fusion_key_falls_back(self):
        """Tables written before the fusion dimension still load."""
        doc = DEFAULT_TABLE.to_dict()
        del doc["fusion"]
        back = DecisionTable.from_dict(doc)
        from repro.mpi.tuning import fusion_flush_bytes

        assert fusion_flush_bytes(8, table=back) > 0

    def test_fit_includes_fusion(self):
        table, report = fit_decision_table(
            rank_grid=(4,), payload_grid=(64, 4096, 1 << 18)
        )
        assert table.fusion
        assert "fusion" in report["grid"]
        doc = table.to_dict()
        assert "fusion" in doc

    def test_bucket_threshold_uses_table(self):
        from repro.mpi.tuning import fusion_flush_bytes

        def prog(comm):
            return comm.fused()._max_bytes

        for threshold in run_all(prog, 4):
            assert threshold == fusion_flush_bytes(4)


class TestKernelDimension:
    """The scalar-vs-compiled accumulate routing lives in the fitted
    decision table too (`python -m repro tune` measures it on wall
    clock — kernel dispatch is a real-time cost, not a modeled one)."""

    def test_choose_kernel_small_scalar_large_compiled(self):
        from repro.mpi.tuning import choose_kernel

        assert choose_kernel(8) == "scalar"
        assert choose_kernel(1 << 20) == "compiled"

    def test_round_trip_preserves_kernel(self):
        doc = DEFAULT_TABLE.to_dict()
        assert "kernel" in doc
        back = DecisionTable.from_dict(doc)
        assert back.kernel == DEFAULT_TABLE.kernel

    def test_from_dict_without_kernel_key_falls_back(self):
        """Tables written before the kernel dimension still load."""
        doc = DEFAULT_TABLE.to_dict()
        del doc["kernel"]
        back = DecisionTable.from_dict(doc)
        from repro.mpi.tuning import choose_kernel

        assert choose_kernel(1 << 20, table=back) in ("scalar", "compiled")

    def test_fit_includes_kernel(self):
        table, report = fit_decision_table(
            rank_grid=(4,), payload_grid=(64, 4096)
        )
        assert table.kernel
        doc = table.to_dict()
        assert "kernel" in doc
        back = DecisionTable.from_dict(doc)
        assert back.kernel == table.kernel

    def test_constant_span_covers_kernel(self):
        from repro.mpi.tuning import constant_span

        lo, hi, choice = constant_span("kernel", 1 << 20, 4)
        assert lo <= (1 << 20) <= hi
        assert choice in ("scalar", "compiled")
