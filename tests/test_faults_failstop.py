"""Fail-stop injection and the restartable global-view drivers:
checkpointed states, ULFM-style revoke/agree/shrink recovery, and the
survivor-only result guarantee for commutative operators."""

import numpy as np
import pytest

from repro.core.operator import state_equal
from repro.core.reduce import global_reduce
from repro.core.scan import global_scan
from repro.errors import OperatorError, RankFailedError, SpmdError
from repro.faults import FailStop, FaultPlan
from repro.obs import Tracer
from repro.ops import ConcatOp, MeanVarOp, MinKOp, SumOp
from repro.runtime import spmd_run


def blocks_for(nprocs, n=5):
    return [
        [float(q * n + i) for i in range(n)] for q in range(nprocs)
    ]


def kill(rank, *, at_op=1):
    return FaultPlan(seed=0, failstops=(FailStop(rank=rank, at_op=at_op),))


class TestSurvivorOnlyReduce:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_combine_phase_failstop_recovers(self, p):
        blocks = blocks_for(p)
        victim = p - 1

        def prog(comm):
            return global_reduce(comm, SumOp(), blocks[comm.rank])

        res = spmd_run(prog, p, fault_plan=kill(victim))
        assert res.failed_ranks == {victim}
        expected = sum(v for q, b in enumerate(blocks) if q != victim
                       for v in b)
        for q in range(p):
            if q == victim:
                assert res.returns[q] is None
            else:
                assert res.returns[q] == expected

    def test_recovered_result_bit_identical_to_survivor_baseline(self):
        # The re-combine runs the same schedule over the same
        # checkpointed states as a fault-free run of the survivors, so
        # even float results match exactly, not just approximately.
        p, victim = 8, 5
        blocks = [
            list(np.linspace(0.1, 0.9, 7) * (q + 1)) for q in range(p)
        ]

        def prog(comm):
            return global_reduce(comm, MeanVarOp(), blocks[comm.rank])

        faulted = spmd_run(prog, p, fault_plan=kill(victim))
        survivors = [b for q, b in enumerate(blocks) if q != victim]

        def baseline(comm):
            return global_reduce(comm, MeanVarOp(), survivors[comm.rank])

        base = spmd_run(baseline, p - 1)
        out = [r for q, r in enumerate(faulted.returns) if q != victim]
        assert state_equal(out, base.returns)

    def test_recovery_metrics_reported(self):
        blocks = blocks_for(4)

        def prog(comm):
            return global_reduce(comm, SumOp(), blocks[comm.rank])

        tracer = Tracer()
        spmd_run(prog, 4, fault_plan=kill(2), tracer=tracer)
        snap = tracer.metrics.snapshot()
        assert snap["counters"].get("faults.failstops") == 1
        assert snap["counters"].get("faults.recoveries", 0) >= 1
        assert snap["histograms"]["faults.recovery_vtime"]["count"] >= 1


class TestSurvivorOnlyScan:
    @pytest.mark.parametrize("p", [3, 6])
    def test_scan_recovers_over_survivors(self, p):
        blocks = blocks_for(p, n=4)
        victim = 1

        def prog(comm):
            return global_scan(comm, SumOp(), blocks[comm.rank])

        faulted = spmd_run(prog, p, fault_plan=kill(victim))
        survivors = [b for q, b in enumerate(blocks) if q != victim]

        def baseline(comm):
            return global_scan(comm, SumOp(), survivors[comm.rank])

        base = spmd_run(baseline, p - 1)
        out = [r for q, r in enumerate(faulted.returns) if q != victim]
        assert state_equal(out, base.returns)


class TestRootedReduce:
    def test_surviving_root_gets_result(self):
        blocks = blocks_for(4)

        def prog(comm):
            return global_reduce(comm, SumOp(), blocks[comm.rank], root=0)

        res = spmd_run(prog, 4, fault_plan=kill(3))
        expected = sum(v for q, b in enumerate(blocks) if q != 3 for v in b)
        assert res.returns[0] == expected
        assert res.returns[1] is None and res.returns[2] is None

    def test_dead_root_answers_every_survivor(self):
        blocks = blocks_for(4)

        def prog(comm):
            return global_reduce(comm, SumOp(), blocks[comm.rank], root=2)

        res = spmd_run(prog, 4, fault_plan=kill(2))
        expected = sum(v for q, b in enumerate(blocks) if q != 2 for v in b)
        for q in (0, 1, 3):
            assert res.returns[q] == expected


class TestNonCommutative:
    def test_clean_documented_error(self):
        blocks = blocks_for(4)

        def prog(comm):
            return global_reduce(comm, ConcatOp(), blocks[comm.rank])

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 4, fault_plan=kill(2))
        assert any(
            isinstance(e, OperatorError) and "non-commutative" in str(e)
            for e in ei.value.failures.values()
        )


class TestFailureDetector:
    def test_wait_on_dead_rank_raises_not_hangs(self):
        def prog(comm):
            if comm.rank == 1:
                comm.send("first", 0)
                comm.send("never-sent", 0)  # dies here (at_op=2)
                return None
            if comm.rank == 0:
                comm.recv(1)  # message survives the sender's death
                try:
                    comm.recv(1)  # nothing more is coming
                except RankFailedError as e:
                    return ("detected", e.rank)
            return None

        res = spmd_run(prog, 2, fault_plan=kill(1, at_op=2))
        assert res.returns[0] == ("detected", 1)
        assert res.failed_ranks == {1}

    def test_queued_data_from_dead_rank_drains_first(self):
        # Death must not destroy in-flight messages: a queued message
        # from the dead rank still completes the receive.
        def prog(comm):
            if comm.rank == 1:
                comm.send("payload", 0)
                comm.send("ignored", 0)  # the killing op
                return None
            return comm.recv(1)

        res = spmd_run(prog, 2, fault_plan=kill(1, at_op=2))
        assert res.returns[0] == "payload"

    def test_time_scheduled_failstop(self):
        plan = FaultPlan(
            seed=0, failstops=(FailStop(rank=1, at_time=5e-3),)
        )

        def prog(comm):
            comm.charge(1e-2, "work")  # crosses rank 1's deadline
            return comm.rank

        res = spmd_run(prog, 2, fault_plan=plan)
        assert res.failed_ranks == {1}
        assert res.returns[0] == 0 and res.returns[1] is None


class TestCommunicatorUlfm:
    def test_shrink_and_agree_surface(self):
        def prog(comm):
            if comm.rank == 1:
                comm.send(0, 0)  # die
                return None
            try:
                comm.recv(1)
                comm.recv(1)
            except RankFailedError:
                pass
            assert comm.failed_ranks == {1}
            assert comm.agree(True) is True
            small = comm.shrink()
            assert small.size == comm.size - 1
            # The shrunken communicator is fully operational.
            return small.allgather(small.rank)

        res = spmd_run(prog, 4, fault_plan=kill(1, at_op=1))
        for q in (0, 2, 3):
            assert res.returns[q] == [0, 1, 2]

    def test_revoked_comm_raises_for_members(self):
        from repro.errors import RevokedError

        def prog(comm):
            if comm.rank == 0:
                comm.revoke()
                return "revoked"
            try:
                comm.recv(0)  # would hang: nothing was sent
            except RevokedError:
                return "released"

        res = spmd_run(prog, 3)
        assert res.returns == ["revoked", "released", "released"]

    def test_agree_is_logical_and(self):
        def prog(comm):
            return comm.agree(comm.rank != 2)

        res = spmd_run(prog, 4)
        assert res.returns == [False] * 4

        def prog_true(comm):
            return comm.agree(True)

        res = spmd_run(prog_true, 4)
        assert res.returns == [True] * 4
