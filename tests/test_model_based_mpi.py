"""Model-based conformance testing of the MPI layer.

Hypothesis generates random *programs* — sequences of collective calls
with random operands — which every rank executes in order; each call's
result is checked against a sequential oracle computed with plain
Python/NumPy.  This catches cross-collective interference (tag reuse,
sequence-number skew, payload aliasing) that single-collective tests
cannot.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpi
from repro.runtime import spmd_run

COMMON = settings(max_examples=40, deadline=None)

# one instruction: (kind, payload-seed)
instructions = st.lists(
    st.tuples(
        st.sampled_from(
            ["allreduce_sum", "allreduce_max", "scan_sum", "exscan_sum",
             "bcast", "gather_bcast", "alltoall", "barrier",
             "allreduce_vec", "reduce_min"]
        ),
        st.integers(0, 2**16),
    ),
    min_size=1,
    max_size=8,
)


def _oracle(kind: str, seed: int, p: int):
    """Expected per-rank results for one instruction."""
    vals = [(seed + 31 * r) % 101 for r in range(p)]
    if kind == "allreduce_sum":
        return [sum(vals)] * p
    if kind == "allreduce_max":
        return [max(vals)] * p
    if kind == "reduce_min":
        return [min(vals)] + [None] * (p - 1)
    if kind == "scan_sum":
        return [sum(vals[: r + 1]) for r in range(p)]
    if kind == "exscan_sum":
        return [sum(vals[:r]) for r in range(p)]
    if kind == "bcast":
        root = seed % p
        return [vals[root]] * p
    if kind == "gather_bcast":
        return [vals] * p
    if kind == "alltoall":
        return [[(s, r, seed % 7) for s in range(p)] for r in range(p)]
    if kind == "barrier":
        return [None] * p
    if kind == "allreduce_vec":
        total = np.zeros(3)
        for r in range(p):
            total += np.arange(3) + vals[r]
        return [total] * p
    raise AssertionError(kind)


def _execute(kind: str, seed: int, comm):
    val = (seed + 31 * comm.rank) % 101
    if kind == "allreduce_sum":
        return comm.allreduce(val, mpi.SUM)
    if kind == "allreduce_max":
        return comm.allreduce(val, mpi.MAX)
    if kind == "reduce_min":
        return comm.reduce(val, mpi.MIN, root=0)
    if kind == "scan_sum":
        return comm.scan(val, mpi.SUM)
    if kind == "exscan_sum":
        return comm.exscan(val, mpi.SUM, identity=lambda: 0)
    if kind == "bcast":
        root = seed % comm.size
        return comm.bcast(val if comm.rank == root else None, root=root)
    if kind == "gather_bcast":
        return comm.allgather(val)
    if kind == "alltoall":
        return comm.alltoall(
            [(comm.rank, d, seed % 7) for d in range(comm.size)]
        )
    if kind == "barrier":
        return comm.barrier()
    if kind == "allreduce_vec":
        return comm.allreduce(np.arange(3) + float(val), mpi.SUM)
    raise AssertionError(kind)


class TestRandomPrograms:
    @COMMON
    @given(program=instructions, p=st.integers(1, 6))
    def test_program_matches_oracle(self, program, p):
        def prog(comm):
            return [_execute(kind, seed, comm) for kind, seed in program]

        results = spmd_run(prog, p, timeout=60).returns
        for i, (kind, seed) in enumerate(program):
            expected = _oracle(kind, seed, p)
            for r in range(p):
                got = results[r][i]
                exp = expected[r]
                if isinstance(exp, np.ndarray):
                    assert np.allclose(got, exp), (kind, i, r)
                else:
                    assert got == exp, (kind, i, r)

    @COMMON
    @given(program=instructions, p=st.integers(2, 6))
    def test_virtual_time_deterministic(self, program, p):
        def prog(comm):
            for kind, seed in program:
                _execute(kind, seed, comm)

        t1 = spmd_run(prog, p, timeout=60).time
        t2 = spmd_run(prog, p, timeout=60).time
        assert t1 == t2

    @COMMON
    @given(
        program=instructions,
        p=st.integers(2, 5),
        split_color_mod=st.integers(1, 3),
    )
    def test_programs_inside_subcommunicators(
        self, program, p, split_color_mod
    ):
        """The same program must hold inside split() groups."""

        def prog(comm):
            sub = comm.split(color=comm.rank % split_color_mod)
            return [_execute(kind, seed, sub) for kind, seed in program]

        results = spmd_run(prog, p, timeout=60).returns
        # reconstruct each color group and check against the oracle on
        # the subgroup size
        for color in range(split_color_mod):
            members = [r for r in range(p) if r % split_color_mod == color]
            sp = len(members)
            if sp == 0:
                continue
            for i, (kind, seed) in enumerate(program):
                expected = _oracle(kind, seed, sp)
                for sub_rank, world_rank in enumerate(members):
                    got = results[world_rank][i]
                    exp = expected[sub_rank]
                    if isinstance(exp, np.ndarray):
                        assert np.allclose(got, exp)
                    else:
                        assert got == exp
