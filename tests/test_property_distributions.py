"""Property-based tests for distributions and GlobalArray invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import BlockCyclicDist, BlockDist, CyclicDist, GlobalArray
from repro.ops import CountsOp, SumOp
from repro.runtime import spmd_run

COMMON = settings(max_examples=50, deadline=None)

sizes = st.integers(min_value=0, max_value=200)
procs = st.integers(min_value=1, max_value=12)


class TestDistributionLaws:
    @COMMON
    @given(n=sizes, p=procs)
    def test_block_partitions_exactly(self, n, p):
        d = BlockDist(n, p)
        seen = []
        for r in range(p):
            idx = d.global_indices(r)
            assert len(idx) == d.local_count(r)
            seen.extend(idx.tolist())
        assert seen == list(range(n))

    @COMMON
    @given(n=sizes, p=procs)
    def test_cyclic_partitions_exactly(self, n, p):
        d = CyclicDist(n, p)
        seen = sorted(
            i for r in range(p) for i in d.global_indices(r).tolist()
        )
        assert seen == list(range(n))

    @COMMON
    @given(n=sizes, p=procs, block=st.integers(1, 9))
    def test_blockcyclic_partitions_exactly(self, n, p, block):
        d = BlockCyclicDist(n, p, block=block)
        seen = sorted(
            i for r in range(p) for i in d.global_indices(r).tolist()
        )
        assert seen == list(range(n))
        assert sum(d.local_count(r) for r in range(p)) == n

    @COMMON
    @given(n=st.integers(1, 200), p=procs)
    def test_owner_consistent(self, n, p):
        for d in (BlockDist(n, p), CyclicDist(n, p)):
            for i in range(0, n, max(1, n // 7)):
                r = d.owner(i)
                assert i in d.global_indices(r).tolist()

    @COMMON
    @given(n=sizes, p=procs)
    def test_block_balance(self, n, p):
        d = BlockDist(n, p)
        counts = [d.local_count(r) for r in range(p)]
        assert max(counts) - min(counts) <= 1


class TestGlobalArrayInvariance:
    @COMMON
    @given(
        n=st.integers(1, 60),
        p=st.integers(1, 6),
        dist=st.sampled_from(["block", "cyclic"]),
        seed=st.integers(0, 2**16),
    )
    def test_commutative_reduce_distribution_free(self, n, p, dist, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-50, 50, n)
        dist_cls = BlockDist if dist == "block" else CyclicDist

        def prog(comm):
            a = GlobalArray.from_global(comm, data, dist_cls=dist_cls)
            return a.reduce(SumOp())

        out = spmd_run(prog, p).returns
        assert all(v == data.sum() for v in out)

    @COMMON
    @given(n=st.integers(1, 60), p=st.integers(1, 6), seed=st.integers(0, 2**16))
    def test_roundtrip_any_distribution(self, n, p, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 100, n)
        for dist_cls in (BlockDist, CyclicDist):
            def prog(comm):
                return GlobalArray.from_global(
                    comm, data, dist_cls=dist_cls
                ).to_global()

            for out in spmd_run(prog, p).returns:
                assert np.array_equal(out, data)

    @COMMON
    @given(p=st.integers(1, 6), seed=st.integers(0, 2**16))
    def test_scan_matches_serial(self, p, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 8, 40)

        def prog(comm):
            a = GlobalArray.from_global(comm, data)
            return a.scan(CountsOp(8, base=0)).to_global()

        serial = spmd_run(prog, 1).returns[0]
        out = spmd_run(prog, p).returns[0]
        assert np.array_equal(out, serial)
