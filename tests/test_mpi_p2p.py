"""Tests for point-to-point messaging through communicators."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import CommunicatorError, SpmdError
from repro.runtime import spmd_run
from tests.conftest import run_all


class TestSendRecv:
    def test_roundtrip_python_object(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"a": [1, 2]}, 1)
                return None
            return comm.recv(0)

        assert run_all(prog, 2)[1] == {"a": [1, 2]}

    def test_roundtrip_numpy(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(10), 1)
                return None
            return comm.recv(0)

        assert np.array_equal(run_all(prog, 2)[1], np.arange(10))

    def test_tags_discriminate(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("tag5", 1, tag=5)
                comm.send("tag3", 1, tag=3)
                return None
            # receive in the opposite order of sending
            a = comm.recv(0, tag=3)
            b = comm.recv(0, tag=5)
            return (a, b)

        assert run_all(prog, 2)[1] == ("tag3", "tag5")

    def test_fifo_within_source_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, 1)
                return None
            return [comm.recv(0) for _ in range(10)]

        assert run_all(prog, 2)[1] == list(range(10))

    def test_self_send(self):
        def prog(comm):
            comm.send("self", comm.rank, tag=1)
            return comm.recv(comm.rank, tag=1)

        assert run_all(prog, 2) == ["self", "self"]

    def test_any_source(self):
        def prog(comm):
            if comm.rank == 0:
                got = comm.recv(mpi.ANY_SOURCE, tag=9)
                return got
            comm.send(f"from{comm.rank}", 0, tag=9)
            return None

        out = run_all(prog, 2)
        assert out[0] == "from1"

    def test_sendrecv(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        out = run_all(prog, 5)
        assert out == [4, 0, 1, 2, 3]

    def test_probe(self):
        def prog(comm):
            if comm.rank == 0:
                before = comm.probe(1, tag=2)
                comm.send("go", 1, tag=1)
                comm.recv(1, tag=3)  # handshake: message now queued
                after = comm.probe(1, tag=2)
                comm.recv(1, tag=2)
                return (before, after)
            comm.recv(0, tag=1)
            comm.send("payload", 0, tag=2)
            comm.send("sync", 0, tag=3)
            return None

        before, after = run_all(prog, 2)[0]
        assert before is False
        # delivery into the mailbox is immediate at send time (only the
        # virtual availability is delayed), and rank 1 sent tag-2 before
        # the tag-3 handshake, so the probe must see it
        assert after is True

    def test_out_of_range_dest(self):
        def prog(comm):
            comm.send("x", 5)

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 2)
        assert isinstance(
            next(iter(ei.value.failures.values())), CommunicatorError
        )


class TestMessageOrderingAcrossPairs:
    def test_interleaved_sources(self):
        def prog(comm):
            if comm.rank == 0:
                a = comm.recv(1)
                b = comm.recv(2)
                return (a, b)
            comm.send(comm.rank * 100, 0)
            return None

        out = run_all(prog, 3)
        assert out[0] == (100, 200)
