"""Tests for the observability subsystem: tracer, metrics, critical
path, exporters, timeline rendering, and the profiling CLI."""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.analysis import to_chrome_trace, tracer_to_chrome_trace
from repro.core import global_reduce, global_scan
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    RankTracer,
    RunCapture,
    Tracer,
    critical_path,
    dumps_jsonl,
    phase_summary,
    phase_topmost_spans,
    profiling,
)
from repro.obs.metrics import Histogram
from repro.ops import CountsOp, SumOp
from repro.runtime import cluster_2006, spmd_run
from repro.runtime.trace import Trace, TraceEvent, merge_traces

REPO = Path(__file__).resolve().parent.parent
PAPER_DATA = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3]


def _split(data, p, r):
    base, extra = divmod(len(data), p)
    lo = r * base + min(r, extra)
    return data[lo : lo + base + (1 if r < extra else 0)]


def _program(comm):
    local = _split(PAPER_DATA, comm.size, comm.rank)
    total = global_reduce(comm, SumOp(), local)
    running = global_scan(comm, SumOp(), local)
    counts = global_reduce(comm, CountsOp(8), local)
    return total, tuple(running), tuple(counts.tolist())


# -- metrics ---------------------------------------------------------------


class TestHistogram:
    def test_bucket_exponent_exact_powers_are_upper_bounds(self):
        # bucket 2**k covers (2**(k-1), 2**k] — a power of two is the
        # inclusive upper bound of its own bucket.
        assert Histogram.bucket_exponent(1.0) == 0
        assert Histogram.bucket_exponent(2.0) == 1
        assert Histogram.bucket_exponent(0.5) == -1
        assert Histogram.bucket_exponent(1024.0) == 10

    def test_bucket_exponent_interior(self):
        assert Histogram.bucket_exponent(3.0) == 2
        assert Histogram.bucket_exponent(1.0001) == 1
        assert Histogram.bucket_exponent(0.75) == 0

    def test_zero_and_inf_get_dedicated_buckets(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(math.inf)
        h.observe(4.0)
        assert h.zero_count == 1
        assert h.inf_count == 1
        assert h.buckets() == [(0.0, 1), (4.0, 1), (math.inf, 1)]
        assert h.count == 3
        assert h.min == 0.0 and h.max == math.inf

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Histogram().observe(-1.0)

    def test_boundary_falls_in_lower_bucket(self):
        h = Histogram()
        h.observe(2.0)  # boundary of (1, 2] and (2, 4]
        h.observe(2.0000001)
        assert dict(h.buckets()) == {2.0: 1, 4.0: 1}

    def test_summary_is_json_serializable(self):
        h = Histogram()
        for v in (0.0, 1.0, 3.0, math.inf):
            h.observe(v)
        s = json.dumps(h.summary())
        assert "inf" in s


class TestRegistry:
    def test_instruments_accumulate(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.counter("c").inc(4)
        m.gauge("g").set(2.5)
        m.histogram("h").observe(3.0)
        snap = m.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 2.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_type_conflict_raises(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            m.histogram("x")

    def test_null_metrics_accepts_everything(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.counter("a").inc()
        NULL_METRICS.gauge("b").set(1.0)
        NULL_METRICS.histogram("c").observe(-5.0)  # not even validated


# -- span capture invariants -----------------------------------------------


@pytest.fixture(scope="module")
def traced_run():
    tracer = Tracer()
    result = spmd_run(_program, 4, tracer=tracer)
    return tracer, result


class TestSpanCapture:
    def test_runs_and_ranks(self, traced_run):
        tracer, result = traced_run
        assert len(tracer.runs) == 1
        run = tracer.runs[0]
        assert run.nprocs == 4
        assert run.makespan == result.time
        assert run.clocks == result.clocks
        assert result.profile is run

    def test_spans_are_well_formed(self, traced_run):
        tracer, _ = traced_run
        run = tracer.runs[0]
        by_id = run.span_parents()
        for span in run.spans():
            assert span.t_end >= span.t_start
            assert 0 <= span.rank < run.nprocs
            if span.parent_id is None:
                assert span.depth == 0
            else:
                parent = by_id[span.parent_id]
                # children nest inside their parent, on the same rank
                assert parent.rank == span.rank
                assert parent.depth == span.depth - 1
                assert parent.t_start <= span.t_start
                assert span.t_end <= parent.t_end

    def test_every_rank_emits_the_three_phases(self, traced_run):
        tracer, _ = traced_run
        run = tracer.runs[0]
        for rt in run.ranks:
            phases = [s.phase for s in rt.spans if s.phase is not None]
            for phase in ("accumulate", "combine", "generate"):
                assert phase in phases, f"rank {rt.rank} missing {phase}"

    def test_phase_ordering_within_a_reduce(self, traced_run):
        tracer, _ = traced_run
        run = tracer.runs[0]
        by_id = run.span_parents()
        for rt in run.ranks:
            reduces = [s for s in rt.spans if s.name == "global_reduce"]
            assert reduces
            for red in reduces:
                inner = sorted(
                    (s for s in rt.spans
                     if s.parent_id == red.span_id and s.phase),
                    key=lambda s: s.t_start,
                )
                assert [s.phase for s in inner] == [
                    "accumulate", "combine", "generate"
                ]
        assert by_id  # ancestry map covers the run

    def test_phase_topmost_excludes_nested_transport(self, traced_run):
        tracer, _ = traced_run
        run = tracer.runs[0]
        by_id = run.span_parents()
        for span in phase_topmost_spans(run):
            parent = by_id.get(span.parent_id) if span.parent_id else None
            while parent is not None:
                assert parent.phase is None
                parent = (by_id.get(parent.parent_id)
                          if parent.parent_id else None)

    def test_phase_summary_shape(self, traced_run):
        tracer, _ = traced_run
        summary = phase_summary(tracer)
        assert summary["runs"] == 1
        sum_phases = summary["ops"]["sum"]
        assert sum_phases["accumulate"]["elements"] > 0
        assert sum_phases["accumulate"]["bytes"] > 0
        assert set(sum_phases) >= {"accumulate", "combine", "generate"}


# -- critical path ---------------------------------------------------------


class TestCriticalPath:
    def _two_rank_exchange(self):
        """Rank 0 computes [0,1], sends at t=1 (available t=6); rank 1
        arrives at its recv at t=2, blocks until 6, finishes the recv at
        t=7, then combines [7,10]."""
        m = MetricsRegistry()
        r0 = RankTracer(0, clock=None, metrics=m)
        r1 = RankTracer(1, clock=None, metrics=m)
        from repro.obs import SendEdge, RecvEdge
        from repro.obs.tracer import Span

        r0.spans.append(Span("r0.0", None, "accumulate", 0, 0.0, 1.0,
                             phase="accumulate"))
        r0.sends.append(SendEdge(dest=1, tag=7, nbytes=8,
                                 t_send=1.0, available_at=6.0))
        r1.recvs.append(RecvEdge(source=0, tag=7, nbytes=8, t_arrive=2.0,
                                 available_at=6.0, t_done=7.0))
        r1.spans.append(Span("r1.0", None, "combine", 1, 7.0, 10.0,
                             phase="combine"))
        return RunCapture(index=0, nprocs=2, ranks=[r0, r1],
                          clocks=[1.0, 10.0], makespan=10.0)

    def test_attribution_accounts_for_every_second(self):
        cp = critical_path(self._two_rank_exchange())
        assert cp.end_rank == 1
        assert cp.total == 10.0
        assert cp.phase_seconds == {
            "combine": pytest.approx(3.0),
            "comm": pytest.approx(6.0),
            "accumulate": pytest.approx(1.0),
        }
        assert sum(cp.phase_seconds.values()) == pytest.approx(cp.total)
        assert cp.fraction("comm") == pytest.approx(0.6)

    def test_steps_walk_backwards_through_the_gate(self):
        cp = critical_path(self._two_rank_exchange())
        kinds = [(s.rank, s.kind) for s in cp.steps]
        assert kinds == [(1, "local"), (1, "comm"), (0, "local")]

    def test_unblocked_recv_is_not_a_gate(self):
        run = self._two_rank_exchange()
        # make the message early: recv never blocks, so the whole path
        # is local time on rank 1
        r1 = run.ranks[1]
        edge = r1.recvs[0]
        r1.recvs[0] = type(edge)(edge.source, edge.tag, edge.nbytes,
                                 t_arrive=2.0, available_at=1.5, t_done=7.0)
        cp = critical_path(run)
        assert all(s.kind == "local" and s.rank == 1 for s in cp.steps)
        assert "comm" not in cp.phase_seconds

    def test_real_run_path_sums_to_makespan(self, traced_run):
        tracer, result = traced_run
        cp = critical_path(tracer.runs[0])
        assert cp.total == pytest.approx(result.time)
        assert sum(cp.phase_seconds.values()) == pytest.approx(cp.total)


# -- zero-overhead regression ----------------------------------------------


class TestDisabledTracerIsFree:
    """With tracing off, results, virtual clocks, and collective call
    counts must be bit-identical to a traced run of the same program."""

    MODEL = cluster_2006()

    def _run(self, tracer, p=4):
        return spmd_run(_program, p, cost_model=self.MODEL, tracer=tracer)

    @pytest.mark.parametrize("p", [1, 3, 4, 8])
    def test_identical_results_and_clocks(self, p):
        base = self._run(None, p)
        traced = self._run(Tracer(), p)
        assert traced.returns == base.returns
        assert traced.clocks == base.clocks
        assert traced.time == base.time

    def test_identical_collective_call_counts(self):
        base = merge_traces(self._run(None).traces)
        traced = merge_traces(self._run(Tracer()).traces)
        assert base.collective_calls
        assert traced.collective_calls == base.collective_calls
        assert traced.n_sends == base.n_sends
        assert traced.bytes_sent == base.bytes_sent

    def test_active_profile_context_is_also_free(self):
        base = self._run(None)
        with profiling(ranks=None) as tracer:
            ambient = spmd_run(_program, 4, cost_model=self.MODEL)
        assert ambient.returns == base.returns
        assert ambient.clocks == base.clocks
        assert len(tracer.runs) == 1

    def test_ranks_override_rescales(self):
        with profiling(ranks=2) as tracer:
            res = spmd_run(_program, 64, cost_model=self.MODEL)
        assert res.nprocs == 2
        assert tracer.runs[0].nprocs == 2

    def test_null_tracer_span_allocates_nothing(self):
        assert NULL_TRACER.span("x", phase="accumulate") is NULL_TRACER.span("y")


# -- merge_traces (satellite fix) ------------------------------------------


class TestMergeTraces:
    def test_events_concatenate_with_rank_tags(self):
        a = Trace(rank=0, record_events=True)
        b = Trace(rank=1, record_events=True)
        a.on_send(1, 5, 100, t=2.0)
        b.on_recv(0, 5, 100, t=3.0)
        a.on_compute("k", 0.5, t=1.0)
        merged = merge_traces([a, b])
        assert merged.record_events
        assert [ev.kind for ev in merged.events] == ["compute", "send", "recv"]
        assert [ev.rank for ev in merged.events] == [0, 0, 1]
        assert [ev.t for ev in merged.events] == [1.0, 2.0, 3.0]

    def test_pre_tagged_ranks_survive_remerge(self):
        a = Trace(rank=0, record_events=True)
        a.on_send(1, 5, 10, t=1.0)
        once = merge_traces([a])
        twice = merge_traces([once])
        assert [ev.rank for ev in twice.events] == [0]

    def test_counters_still_sum(self):
        a, b = Trace(rank=0), Trace(rank=1)
        a.on_send(1, 0, 10, t=0.0)
        b.on_send(0, 0, 30, t=0.0)
        a.on_collective("reduce", t=0.0)
        b.on_collective("reduce", t=0.0)
        merged = merge_traces([a, b])
        assert merged.n_sends == 2
        assert merged.bytes_sent == 40
        assert merged.collective_calls["reduce"] == 2
        assert not merged.record_events
        assert merged.events == []

    def test_events_from_recording_subset(self):
        a = Trace(rank=0, record_events=True)
        b = Trace(rank=1)  # counters only
        a.on_send(1, 0, 10, t=1.0)
        b.on_send(0, 0, 10, t=0.5)  # not recorded as an event
        merged = merge_traces([a, b])
        assert merged.record_events
        assert len(merged.events) == 1


# -- exporters -------------------------------------------------------------


class TestExporters:
    def test_jsonl_every_line_parses(self, traced_run):
        tracer, _ = traced_run
        lines = dumps_jsonl(tracer).splitlines()
        records = [json.loads(line) for line in lines]
        kinds = {r["type"] for r in records}
        assert kinds == {"run", "span", "metrics"}
        spans = [r for r in records if r["type"] == "span"]
        assert all(r["t_end"] >= r["t_start"] for r in spans)

    def test_chrome_trace_has_duration_slices(self, traced_run):
        tracer, result = traced_run
        doc = to_chrome_trace(result)
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert slices
        assert all(e["dur"] >= 0 and "ts" in e for e in slices)
        colls = [e for e in slices if e["cat"] == "collective"]
        assert colls, "collectives must be duration slices, not instants"
        json.dumps(doc, allow_nan=False)

    def test_tracer_chrome_trace_one_pid_per_run(self, traced_run):
        tracer, _ = traced_run
        doc = tracer_to_chrome_trace(tracer)
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {run.index for run in tracer.runs}

    def test_legacy_fallback_still_renders_instants(self):
        res = spmd_run(_program, 2, record_events=True)
        doc = to_chrome_trace(res)
        cats = {e.get("cat") for e in doc["traceEvents"] if "cat" in e}
        assert "collective" in cats
        insts = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert insts

    def test_no_events_no_profile_raises(self):
        res = spmd_run(_program, 2)
        with pytest.raises(ValueError, match="record_events"):
            to_chrome_trace(res)


# -- CLI -------------------------------------------------------------------


class TestProfileCli:
    def test_profile_example_jsonl(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "p.jsonl"
        rc = main([
            "profile", str(REPO / "examples" / "quickstart.py"),
            "--ranks", "2", "--format", "jsonl", "--out", str(out),
        ])
        assert rc == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert any(r["type"] == "span" for r in records)
        assert all(r["nprocs"] == 2 for r in records if r["type"] == "run")

    def test_profile_example_text(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main([
            "profile", str(REPO / "examples" / "quickstart.py"),
            "--ranks", "4", "--format", "text",
        ])
        assert rc == 0
        report = capsys.readouterr().out
        assert "per-operator phase breakdown" in report
        assert "accumulate" in report
        assert "critical path" in report

    def test_tour_trace_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "tour.trace.json"
        rc = main(["2", "--trace", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])


class TestDisabledTracerAllocatesNothing:
    """Satellite guarantee: with no profile active, the hot paths build
    zero span or metric-instrument objects — the disabled branch is an
    attribute check, not a null object per call."""

    @pytest.fixture
    def poisoned(self, monkeypatch):
        """Make every observability constructor raise if reached."""
        from repro.obs import metrics as metrics_mod
        from repro.obs import tracer as tracer_mod

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError(
                "observability object constructed with tracing disabled"
            )

        monkeypatch.setattr(tracer_mod.Span, "__init__", boom)
        monkeypatch.setattr(tracer_mod._SpanContext, "__init__", boom)
        monkeypatch.setattr(metrics_mod.Counter, "__init__", boom)
        monkeypatch.setattr(metrics_mod.Gauge, "__init__", boom)
        monkeypatch.setattr(metrics_mod.Histogram, "__init__", boom)

    def test_reduce_scan_paths(self, poisoned):
        import numpy as np

        from repro.core.fusion import global_reduce_many
        from repro.localview import LOCAL_ALLREDUCE, LOCAL_XSCAN
        from repro import mpi

        def prog(comm):
            xs = np.arange(8.0) + comm.rank
            a = global_reduce(comm, SumOp(), xs)
            b = global_scan(comm, SumOp(), [1.0, 2.0])
            c = LOCAL_ALLREDUCE(comm, mpi.SUM, float(comm.rank))
            d = LOCAL_XSCAN(comm, lambda: 0.0, mpi.SUM, 1.0)
            e = global_reduce_many(comm, [(SumOp(), xs), (SumOp(), xs)])
            f = comm.iallreduce(float(comm.rank), mpi.SUM).wait()
            comm.ibarrier().wait()
            return a, b, c, d, e, f

        out = spmd_run(prog, 4).returns  # no tracer: must not allocate
        assert out[0][0] == pytest.approx(sum(np.arange(8.0) + r for r in range(4)).sum())

    def test_collectives_and_p2p(self, poisoned):
        def prog(comm):
            comm.barrier()
            v = comm.bcast(comm.rank or "root", root=0)
            g = comm.gather(comm.rank, root=0)
            s = comm.scan(comm.rank + 1, lambda a, b: a + b)
            return v, g, s

        assert len(spmd_run(prog, 4).returns) == 4
