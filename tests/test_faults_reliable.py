"""Reliable delivery over lossy links: every collective must stay
exactly-once-correct (bit-identical to the fault-free run) when the
fault plan drops, duplicates, delays or reorders messages."""

import numpy as np
import pytest

from repro.core.operator import state_equal
from repro.core.reduce import global_reduce
from repro.core.scan import global_scan
from repro.faults import FaultPlan, LinkFaults
from repro.obs import Tracer
from repro.ops import CountsOp, SortedOp, SumOp
from repro.runtime import spmd_run

HEAVY = FaultPlan(
    seed=3,
    link=LinkFaults(
        drop_rate=0.3, dup_rate=0.3, delay_rate=0.3, reorder_rate=0.3
    ),
)


def assert_lossy_identical(prog, nprocs, plan=HEAVY):
    base = spmd_run(prog, nprocs)
    faulted = spmd_run(prog, nprocs, fault_plan=plan)
    assert state_equal(faulted.returns, base.returns)
    return base, faulted


class TestCollectivesUnderLoss:
    @pytest.mark.parametrize("p", [2, 4, 7])
    def test_point_to_point_ring(self, p):
        def prog(comm):
            comm.send(comm.rank * 10, (comm.rank + 1) % comm.size)
            return comm.recv((comm.rank - 1) % comm.size)

        assert_lossy_identical(prog, p)

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_allreduce_auto(self, p):
        from repro.mpi.op import SUM

        def prog(comm):
            return comm.allreduce(
                np.arange(comm.rank, comm.rank + 64, dtype=float), SUM
            )

        assert_lossy_identical(prog, p)

    @pytest.mark.parametrize("algorithm", ["recursive_doubling", "ring",
                                           "rabenseifner"])
    def test_allreduce_every_algorithm(self, algorithm):
        from repro.mpi.op import SUM

        def prog(comm):
            return comm.allreduce(
                np.arange(comm.rank, comm.rank + 256, dtype=float),
                SUM, algorithm=algorithm,
            )

        assert_lossy_identical(prog, 8)

    def test_mixed_collectives(self):
        def prog(comm):
            a = comm.bcast(list(range(5)), root=0)
            b = comm.gather(comm.rank * 2, root=1)
            c = comm.allgather(comm.rank)
            comm.barrier()
            d = comm.alltoall([comm.rank * 100 + i for i in range(comm.size)])
            e = comm.scan(float(comm.rank + 1), lambda x, y: x + y)
            return a, b, c, d, e

        assert_lossy_identical(prog, 6)

    @pytest.mark.parametrize("p", [3, 8])
    def test_global_view_drivers(self, p):
        def prog(comm):
            local = [((comm.rank * 13 + i) % 8) + 1 for i in range(5)]
            red = global_reduce(comm, CountsOp(8), local)
            sc = global_scan(comm, SumOp(), [float(v) for v in local])
            srt = global_reduce(comm, SortedOp(), sorted(local))
            return red, sc, srt

        assert_lossy_identical(prog, p)


class TestDeterminismAndMetrics:
    def test_lossy_run_is_deterministic(self):
        def prog(comm):
            return global_reduce(
                comm, SumOp(), np.arange(comm.rank, comm.rank + 32, dtype=float)
            )

        r1 = spmd_run(prog, 8, fault_plan=HEAVY)
        r2 = spmd_run(prog, 8, fault_plan=HEAVY)
        assert state_equal(r1.returns, r2.returns)
        assert r1.time == r2.time  # virtual makespan is reproducible too

    def test_retransmit_counts_reported_via_metrics(self):
        def prog(comm):
            comm.barrier()
            return comm.allgather(comm.rank)

        tracer = Tracer()
        spmd_run(prog, 8, fault_plan=HEAVY, tracer=tracer)
        counters = tracer.metrics.snapshot()["counters"]
        assert counters.get("faults.retransmits", 0) > 0
        assert counters.get("faults.duplicates", 0) > 0

    def test_drops_cost_virtual_time(self):
        # Retransmit backoff must make the lossy run slower in virtual
        # time, never faster — and a drop-free plan costs nothing.
        def prog(comm):
            comm.barrier()
            for _ in range(10):
                comm.send(comm.rank, (comm.rank + 1) % comm.size)
                comm.recv((comm.rank - 1) % comm.size)
            return comm.allgather(comm.rank)

        base = spmd_run(prog, 4)
        dropped = spmd_run(
            prog, 4,
            fault_plan=FaultPlan(seed=1, link=LinkFaults(drop_rate=0.4)),
        )
        assert dropped.time > base.time

    def test_fault_free_plan_changes_nothing(self):
        # An all-zero-rate plan must not perturb messages, times or traces.
        def prog(comm):
            comm.barrier()
            return comm.allgather(comm.rank * 3)

        base = spmd_run(prog, 4)
        nulled = spmd_run(prog, 4, fault_plan=FaultPlan(seed=5))
        assert state_equal(nulled.returns, base.returns)
        assert nulled.time == base.time
        assert (nulled.summary_trace.n_sends == base.summary_trace.n_sends)


class TestStragglers:
    def test_straggler_slows_the_run(self):
        def prog(comm):
            comm.charge(1e-3, "work")
            comm.barrier()
            return comm.rank

        base = spmd_run(prog, 4)
        slow = spmd_run(
            prog, 4, fault_plan=FaultPlan(seed=0, stragglers={2: 10.0})
        )
        assert slow.time > base.time
        assert slow.time == pytest.approx(base.time + 9e-3, rel=1e-6)
