"""Scheduling determinism: job results don't depend on submission order.

The same batch of jobs — submitted from one thread, from many threads,
or in shuffled orders — must yield identical per-job return values,
per-rank virtual times and message counts.  Which pool ranks a job
lands on and when is scheduler business; nothing about it may reach the
simulation model.
"""

import random
import threading

import numpy as np

from repro import global_reduce, global_scan
from repro.engine import Engine
from repro.ops import CountsOp, MaxOp, SumOp
from repro.runtime import spmd_run

#: The job batch: (key, fn, nprocs, args).  Mixed shapes and sizes so
#: shuffled submission orders genuinely interleave on the pool.
def _sum_reduce(comm, scale):
    local = np.arange(comm.rank, 16 * comm.size, comm.size, dtype=np.float64)
    return global_reduce(comm, SumOp(), local * scale)


def _max_scan(comm, base):
    return global_scan(comm, MaxOp(), [float(base + comm.rank)])


def _counts(comm, k):
    # CountsOp categories are 1-based.
    return global_reduce(
        comm, CountsOp(k), [comm.rank % k + 1, (comm.rank + 1) % k + 1]
    )


BATCH = [
    ("sum-4a", _sum_reduce, 4, (1.0,)),
    ("sum-4b", _sum_reduce, 4, (2.5,)),
    ("sum-2", _sum_reduce, 2, (0.5,)),
    ("max-8", _max_scan, 8, (10,)),
    ("max-3", _max_scan, 3, (7,)),
    ("counts-4", _counts, 4, (5,)),
    ("counts-6", _counts, 6, (3,)),
    ("sum-8", _sum_reduce, 8, (4.0,)),
]


def _fingerprint(res) -> tuple:
    """Everything the model determines: values, clocks, message counts."""
    returns = tuple(
        tuple(np.asarray(r).ravel().tolist()) if isinstance(r, np.ndarray)
        else tuple(r) if isinstance(r, list) else r
        for r in res.returns
    )
    return (returns, tuple(res.clocks), tuple(t.n_sends for t in res.traces))


def _run_batch_threaded(engine, order, n_threads) -> dict:
    """Submit the batch in ``order`` from ``n_threads`` client threads."""
    results = {}
    lock = threading.Lock()
    chunks = [order[i::n_threads] for i in range(n_threads)]

    def client(chunk):
        for key, fn, nprocs, args in chunk:
            res = engine.submit(fn, nprocs=nprocs, args=args).result()
            with lock:
                results[key] = _fingerprint(res)

    threads = [threading.Thread(target=client, args=(c,)) for c in chunks]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


def test_batch_identical_across_shuffled_concurrent_submissions():
    baseline = {
        key: _fingerprint(spmd_run(fn, nprocs, args=args))
        for key, fn, nprocs, args in BATCH
    }
    rng = random.Random(42)
    with Engine(8) as engine:
        for trial, n_threads in enumerate((1, 4, 8)):
            order = list(BATCH)
            rng.shuffle(order)
            got = _run_batch_threaded(engine, order, n_threads)
            assert got == baseline, (
                f"trial {trial} ({n_threads} client threads) diverged"
            )


def test_repeated_submission_is_stable():
    """The same job resubmitted many times over a warming cache never
    changes its fingerprint (first call misses the schedule cache,
    later calls hit it — the answers must agree)."""
    with Engine(8) as engine:
        prints = {
            _fingerprint(engine.submit(_sum_reduce, args=(3.0,)).result())
            for _ in range(10)
        }
    assert len(prints) == 1
