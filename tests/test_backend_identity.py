"""Acceptance grid: ``backend="process"`` is byte-identical to the
threaded oracle.

The process backend offloads accumulate folds to forked rank workers
over shared-memory frames; nothing user-visible may depend on that.
For every public operator (the chaos catalogue covers each exactly
once) at nprocs in {4, 8, 16}, both a reduction and a scan must produce
identical per-rank results, per-rank final virtual times and message
counts on both backends — including under a lossy fault plan, where the
reliable-delivery layer's virtual-time arithmetic sits between the
accumulate charges being compared.

The process engines force offload (``min_offload_bytes=0``) so the grid
exercises the IPC path for every payload the catalogue generates —
ndarray frames, pickled lists of tuples, and the inline fallback for
the unpicklable segmented lambda.
"""

import random

import numpy as np
import pytest

from repro.core.operator import state_equal
from repro.core.reduce import global_reduce
from repro.core.scan import global_scan
from repro.engine import Engine
from repro.faults.chaos import CHAOS_CASES
from repro.faults.plan import random_plan

SIZES = (4, 8, 16)
N_PER_RANK = 5

#: Force offload of even tiny blocks, on small rings: the grid's point
#: is IPC-path coverage, not wall-clock.
PROC_OPTS = {"min_offload_bytes": 0, "ring_bytes": 1 << 20}


def reduce_program(comm, case, shards):
    return global_reduce(comm, case.make_op(), shards[comm.rank])


def scan_program(comm, case, shards):
    return global_scan(comm, case.make_op(), shards[comm.rank])


def _shards(case, nprocs):
    return [
        case.make_data(random.Random(1000 * nprocs + r), N_PER_RANK)
        for r in range(nprocs)
    ]


@pytest.fixture(scope="module")
def engines():
    pool = {}
    try:
        for n in SIZES:
            pool[n] = (
                Engine(n),
                Engine(n, backend="process", backend_options=PROC_OPTS),
            )
        yield pool
    finally:
        for thread_eng, proc_eng in pool.values():
            thread_eng.shutdown(drain=False)
            proc_eng.shutdown(drain=False)


def _assert_identical(case, program, nprocs, engines, fault_plan=None):
    shards = _shards(case, nprocs)
    thread_eng, proc_eng = engines[nprocs]
    kw = dict(args=(case, shards), label=case.name, fault_plan=fault_plan)
    baseline = thread_eng.submit(program, **kw).result()
    via_proc = proc_eng.submit(program, **kw).result()

    for g in range(nprocs):
        assert state_equal(via_proc.returns[g], baseline.returns[g]), (
            f"{case.name} rank {g}: {via_proc.returns[g]!r} != "
            f"{baseline.returns[g]!r}"
        )
    assert via_proc.clocks == baseline.clocks
    assert via_proc.time == baseline.time
    assert via_proc.summary_trace.n_sends == baseline.summary_trace.n_sends
    assert [t.n_sends for t in via_proc.traces] == [
        t.n_sends for t in baseline.traces
    ]


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
def test_reduce_identity(case, nprocs, engines):
    _assert_identical(case, reduce_program, nprocs, engines)


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize(
    "case",
    [c for c in CHAOS_CASES if c.scan],
    ids=lambda c: c.name,
)
def test_scan_identity(case, nprocs, engines):
    _assert_identical(case, scan_program, nprocs, engines)


@pytest.mark.parametrize("nprocs", (4, 8))
@pytest.mark.parametrize(
    "case", CHAOS_CASES[:8], ids=lambda c: c.name
)
def test_reduce_identity_lossy(case, nprocs, engines):
    """Byte-identity must survive a lossy link plan: drops, dups,
    reorders and a straggler all interleave virtual-time charges with
    the accumulate charge the backends must agree on."""
    plan = random_plan(
        7000 + nprocs, nprocs, failstop=False, lossy=True, stragglers=True
    )
    assert plan.lossy
    _assert_identical(case, reduce_program, nprocs, engines, fault_plan=plan)


def test_grid_actually_offloaded(engines):
    """Guard against the grid silently passing because every request
    missed: the process engines must report real IPC traffic, both
    zero-copy ndarray frames and pickled-list fallbacks."""
    # Drive one ndarray-heavy job through each size first, so this test
    # is order-independent.
    def nd_job(comm):
        data = np.arange(4096, dtype=np.float64) + comm.rank
        return global_reduce(comm, CHAOS_CASES[0].make_op(), data)

    totals = {"frames": 0, "shm_hits": 0, "pickle_fallbacks": 0}
    for n in SIZES:
        proc_eng = engines[n][1]
        proc_eng.submit(nd_job).result()
        stats = proc_eng.stats()
        assert stats["backend"] == "process"
        for key in totals:
            totals[key] += stats["ipc"][key]
    assert totals["frames"] > 0
    assert totals["shm_hits"] > 0, "no zero-copy frame ever crossed"


def test_thread_engine_reports_backend(engines):
    stats = engines[4][0].stats()
    assert stats["backend"] == "thread"
    assert stats["ipc"] is None
