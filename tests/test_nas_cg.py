"""Tests for the distributed CG solver and its fused-reduction variant."""

import numpy as np
import pytest

from repro.nas.callcounts import census
from repro.nas.cg import (
    cg_solve,
    cg_solve_fused,
    laplacian_matvec,
    poisson_rhs,
    random_rhs,
)
from repro.runtime import spmd_run

N = 300
SIZES = [1, 2, 3, 5, 8]


def _dense_laplacian(n):
    return (
        np.diag(2.0 * np.ones(n))
        + np.diag(-1.0 * np.ones(n - 1), 1)
        + np.diag(-1.0 * np.ones(n - 1), -1)
    )


class TestMatvec:
    @pytest.mark.parametrize("p", SIZES)
    def test_matches_dense(self, p, rng):
        v = rng.normal(size=N)
        expected = _dense_laplacian(N) @ v

        def prog(comm):
            lo = comm.rank * N // comm.size
            hi = (comm.rank + 1) * N // comm.size
            return laplacian_matvec(comm, v[lo:hi].copy())

        got = np.concatenate(spmd_run(prog, p).returns)
        assert np.allclose(got, expected)

    def test_two_messages_per_interior_rank(self):
        def prog(comm):
            lo = comm.rank * N // comm.size
            hi = (comm.rank + 1) * N // comm.size
            laplacian_matvec(comm, np.ones(hi - lo))

        res = spmd_run(prog, 4)
        assert res.traces[1].p2p_calls["send"] == 2  # interior rank
        assert res.traces[0].p2p_calls["send"] == 1  # boundary rank


class TestSolvers:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("solver", [cg_solve, cg_solve_fused])
    def test_solves_poisson(self, p, solver):
        def prog(comm):
            b = random_rhs(comm, N)
            return solver(comm, b), b

        res = spmd_run(prog, p, timeout=300)
        x = np.concatenate([t[0].x_local for t in res.returns])
        b = np.concatenate([t[1] for t in res.returns])
        x_ref = np.linalg.solve(_dense_laplacian(N), b)
        assert res.returns[0][0].converged
        assert np.allclose(x, x_ref, rtol=0, atol=1e-8 * np.abs(x_ref).max())

    @pytest.mark.parametrize("p", [1, 4])
    def test_variants_same_iterates(self, p):
        def prog(comm):
            b = random_rhs(comm, N)
            return cg_solve(comm, b), cg_solve_fused(comm, b)

        res = spmd_run(prog, p, timeout=300)
        a, f = res.returns[0]
        assert abs(a.iterations - f.iterations) <= 2  # rounding drift only
        x1 = np.concatenate([t[0].x_local for t in res.returns])
        x2 = np.concatenate([t[1].x_local for t in res.returns])
        assert np.allclose(x1, x2, atol=1e-8 * max(1.0, np.abs(x1).max()))

    @pytest.mark.parametrize("p", [1, 3])
    def test_solution_independent_of_p(self, p):
        def prog(comm):
            return cg_solve(comm, random_rhs(comm, N))

        base = np.concatenate(
            [t.x_local for t in spmd_run(prog, 1, timeout=300).returns]
        )
        out = np.concatenate(
            [t.x_local for t in spmd_run(prog, p, timeout=300).returns]
        )
        assert np.allclose(out, base, atol=1e-9 * np.abs(base).max())

    def test_modes_rhs_converges_much_faster(self):
        def prog(comm):
            fast = cg_solve(comm, poisson_rhs(comm, N, modes=4))
            slow = cg_solve(comm, random_rhs(comm, N))
            return fast.iterations, slow.iterations

        fast_it, slow_it = spmd_run(prog, 2, timeout=300).returns[0]
        assert fast_it < slow_it / 2

    def test_zero_rhs_converges_immediately(self):
        def prog(comm):
            lo = comm.rank * N // comm.size
            hi = (comm.rank + 1) * N // comm.size
            return cg_solve(comm, np.zeros(hi - lo))

        r = spmd_run(prog, 2).returns[0]
        assert r.converged and r.iterations == 0

    def test_max_iter_reports_nonconvergence(self):
        def prog(comm):
            return cg_solve(comm, random_rhs(comm, N), max_iter=3)

        r = spmd_run(prog, 2).returns[0]
        assert not r.converged and r.iterations == 3


class TestReductionProfile:
    def test_two_vs_one_reduction_per_iteration(self):
        r1 = spmd_run(
            lambda comm: cg_solve(comm, random_rhs(comm, N)), 4, timeout=300
        )
        r2 = spmd_run(
            lambda comm: cg_solve_fused(comm, random_rhs(comm, N)), 4,
            timeout=300,
        )
        it1 = r1.returns[0].iterations
        it2 = r2.returns[0].iterations
        assert census(r1.traces).n_reductions == 2 * it1 + 2
        assert census(r2.traces).n_reductions == it2 + 2

    def test_fused_faster_in_virtual_time(self):
        r1 = spmd_run(
            lambda comm: cg_solve(comm, random_rhs(comm, N)), 8, timeout=300
        )
        r2 = spmd_run(
            lambda comm: cg_solve_fused(comm, random_rhs(comm, N)), 8,
            timeout=300,
        )
        assert r2.time < r1.time
