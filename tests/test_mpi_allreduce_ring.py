"""Tests for the ring all-reduce algorithm."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import CommunicatorError, SpmdError
from repro.runtime import spmd_run
from tests.conftest import run_all

SIZES = [1, 2, 3, 4, 5, 8, 13]


class TestRingCorrectness:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("n", [1, 2, 7, 16, 100, 1001])
    def test_sum_arrays(self, p, n):
        def prog(comm):
            return comm.allreduce(
                np.arange(n, dtype=np.float64) * (comm.rank + 1),
                mpi.SUM,
                algorithm="ring",
            )

        total = p * (p + 1) / 2
        for out in run_all(prog, p):
            assert np.array_equal(out, np.arange(n, dtype=np.float64) * total)

    @pytest.mark.parametrize("p", SIZES)
    def test_matches_recursive_doubling(self, p, rng):
        data = rng.normal(size=(p, 64))

        def prog(comm):
            mine = data[comm.rank]
            a = comm.allreduce(
                mine.copy(), mpi.SUM, algorithm="recursive_doubling"
            )
            b = comm.allreduce(mine.copy(), mpi.SUM, algorithm="ring")
            return np.allclose(a, b)

        assert all(run_all(prog, p))

    @pytest.mark.parametrize("p", [2, 5])
    def test_min_max(self, p, rng):
        data = rng.integers(0, 100, (p, 20))

        def prog(comm):
            return comm.allreduce(
                data[comm.rank].copy(), mpi.MIN, algorithm="ring"
            )

        for out in run_all(prog, p):
            assert np.array_equal(out, data.min(axis=0))

    def test_scalar_input(self):
        out = run_all(
            lambda comm: comm.allreduce(
                float(comm.rank + 1), mpi.SUM, algorithm="ring"
            ),
            4,
        )
        assert all(v == 10.0 for v in out)

    def test_input_not_mutated(self):
        def prog(comm):
            mine = np.full(10, float(comm.rank))
            comm.allreduce(mine, mpi.SUM, algorithm="ring")
            return bool(np.all(mine == comm.rank))

        assert all(run_all(prog, 4))


class TestRingProperties:
    def test_bandwidth_advantage(self):
        """2(p-1)/p * n bytes vs n*log2(p) bytes per rank."""
        n, p = 50_000, 16

        def rd(comm):
            comm.allreduce(np.zeros(n), mpi.SUM, algorithm="recursive_doubling")

        def ring(comm):
            comm.allreduce(np.zeros(n), mpi.SUM, algorithm="ring")

        a = spmd_run(rd, p)
        b = spmd_run(ring, p)
        assert b.summary_trace.bytes_sent < a.summary_trace.bytes_sent / 1.5
        assert b.time < a.time

    def test_latency_disadvantage_small_payload(self):
        """For tiny payloads, 2(p-1) latencies lose to log2 p."""
        p = 16

        def rd(comm):
            comm.allreduce(np.zeros(1), mpi.SUM, algorithm="recursive_doubling")

        def ring(comm):
            comm.allreduce(np.zeros(1), mpi.SUM, algorithm="ring")

        assert spmd_run(ring, p).time > spmd_run(rd, p).time

    def test_rejects_noncommutative(self):
        cat = mpi.op_create(lambda a, b: a + b, commute=False)

        def prog(comm):
            comm.allreduce(np.zeros(4), cat, algorithm="ring")

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 4, timeout=10)
        assert any(
            isinstance(e, CommunicatorError)
            for e in ei.value.failures.values()
        )

    def test_unknown_algorithm(self):
        def prog(comm):
            comm.allreduce(1, mpi.SUM, algorithm="bogus")

        with pytest.raises(SpmdError):
            spmd_run(prog, 2, timeout=10)
