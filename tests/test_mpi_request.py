"""Nonblocking collectives: the Request/progress-engine layer.

The contract under test (``docs/overlap.md``): every nonblocking
collective returns results **bit-identical** to its blocking
counterpart, repeated runs are deterministic in both results and
virtual times, and overlapping independent collectives reduces the
makespan.  Failure semantics: a peer fail-stop during an outstanding
request surfaces as ``RankFailedError`` from ``wait()`` — never a hang.
"""

import random

import numpy as np
import pytest

from repro import mpi
from repro.core.operator import state_equal
from repro.errors import CommunicatorError, RankFailedError
from repro.faults import FailStop, FaultPlan, LinkFaults
from repro.faults.chaos import CHAOS_CASES
from repro.mpi import Op, waitall
from repro.runtime import spmd_run
from tests.conftest import block_split, run_all

SIZES = [1, 2, 3, 4, 7, 8, 16]


def list_concat(a, b):
    return a + b


class TestBitIdentity:
    @pytest.mark.parametrize("p", SIZES)
    def test_iallreduce_matches_allreduce(self, p):
        def prog(comm):
            v = float(comm.rank + 1)
            blocking = comm.allreduce(v, mpi.SUM)
            req = comm.iallreduce(v, mpi.SUM)
            return blocking, req.wait()

        for blocking, nonblocking in run_all(prog, p):
            assert blocking == nonblocking

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize(
        "algorithm", ["recursive_doubling", "ring", "rabenseifner"]
    )
    def test_iallreduce_array_algorithms(self, p, algorithm):
        def prog(comm):
            v = np.arange(4 * comm.size, dtype=np.float64) * (comm.rank + 1)
            blocking = comm.allreduce(v, mpi.SUM, algorithm=algorithm)
            got = comm.iallreduce(v, mpi.SUM, algorithm=algorithm).wait()
            return np.array_equal(blocking, got)

        assert all(run_all(prog, p))

    @pytest.mark.parametrize("p", SIZES)
    def test_noncommutative_op(self, p):
        op = Op(list_concat, commutative=False, name="concat")

        def prog(comm):
            v = [comm.rank]
            return (
                comm.allreduce(v, op),
                comm.iallreduce(v, op).wait(),
            )

        for blocking, nonblocking in run_all(prog, p):
            assert blocking == nonblocking == list(range(p))

    @pytest.mark.parametrize("p", SIZES)
    def test_iscan_iexscan(self, p):
        def prog(comm):
            v = comm.rank + 1
            return (
                comm.scan(v, mpi.SUM),
                comm.iscan(v, mpi.SUM).wait(),
                comm.exscan(v, mpi.SUM),
                comm.iexscan(v, mpi.SUM).wait(),
            )

        for s, is_, xs, ixs in run_all(prog, p):
            assert s == is_
            assert xs == ixs

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("root", [0, "last"])
    def test_ireduce_roots(self, p, root):
        r = p - 1 if root == "last" else 0

        def prog(comm):
            v = comm.rank + 1
            return (
                comm.reduce(v, mpi.SUM, root=r),
                comm.ireduce(v, mpi.SUM, root=r).wait(),
            )

        out = run_all(prog, p)
        for q, (blocking, nonblocking) in enumerate(out):
            assert blocking == nonblocking
            if q == r:
                assert blocking == p * (p + 1) // 2
            else:
                assert blocking is None

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_ibarrier(self, p):
        def prog(comm):
            comm.ibarrier().wait()
            return comm.rank

        assert run_all(prog, p) == list(range(p))

    @pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
    def test_every_operator_wire_identity(self, case):
        """Each public operator's accumulated state allreduces to the
        same result via the blocking and the nonblocking path."""
        from repro.core.reduce import accumulate_local, wire_op

        p = 4
        op = case.make_op()
        data = case.make_data(random.Random(99), 12)

        def prog(comm):
            local = block_split(data, comm.size, comm.rank)
            state = accumulate_local(comm, op, local)
            wop = wire_op(op)
            blocking = comm.allreduce(state, wop)
            state2 = accumulate_local(comm, op, local)
            nonblocking = comm.iallreduce(state2, wop).wait()
            return state_equal(blocking, nonblocking)

        assert all(run_all(prog, p))


class TestProgressEngine:
    def test_interleaving_beats_sequential(self):
        """K independent all-reduces overlap: issuing all K before
        waiting merges their round latencies instead of summing them."""
        K, p = 4, 16

        def sequential(comm):
            return [
                comm.allreduce(float(comm.rank + k), mpi.SUM)
                for k in range(K)
            ]

        def interleaved(comm):
            reqs = [
                comm.iallreduce(float(comm.rank + k), mpi.SUM)
                for k in range(K)
            ]
            return waitall(reqs)

        rs = spmd_run(sequential, p)
        ri = spmd_run(interleaved, p)
        assert rs.returns == ri.returns
        assert ri.time < rs.time

    def test_deterministic_makespan(self):
        def prog(comm):
            reqs = [
                comm.iallreduce(float(comm.rank + k), mpi.SUM)
                for k in range(3)
            ]
            return waitall(reqs)

        runs = [spmd_run(prog, 8) for _ in range(3)]
        assert runs[0].returns == runs[1].returns == runs[2].returns
        assert runs[0].clocks == runs[1].clocks == runs[2].clocks

    def test_test_and_progress_poll(self):
        """``test()`` never blocks; polling to completion matches wait()."""
        import time

        def prog(comm):
            req = comm.iallreduce(comm.rank + 1, mpi.SUM)
            spins = 0
            while not req.test():
                comm.progress()
                time.sleep(0.001)  # real time only: lets peer threads run
                spins += 1
                if spins > 20_000:  # pragma: no cover - failure guard
                    raise RuntimeError("test() never completed")
            return req.wait()

        total = 8 * 9 // 2
        assert run_all(prog, 8) == [total] * 8

    def test_size_one_completes_at_issue(self):
        def prog(comm):
            req = comm.iallreduce(5.0, mpi.SUM)
            return req.test(), req.wait()

        assert run_all(prog, 1) == [(True, 5.0)]

    def test_kary_reduce_rejected(self):
        def prog(comm):
            try:
                comm.ireduce(1.0, mpi.SUM, algorithm="kary")
            except CommunicatorError:
                return "rejected"
            return "accepted"

        assert run_all(prog, 4) == ["rejected"] * 4


class TestRequestFaults:
    def test_failstop_surfaces_from_wait(self):
        """Satellite: a fail-stop while an iallreduce is outstanding must
        raise RankFailedError from wait() on the ranks that depended on
        the victim — and must never hang the watchdog."""
        plan = FaultPlan(seed=1, failstops=(FailStop(rank=1, at_op=2),))

        def prog(comm):
            try:
                return comm.iallreduce(float(comm.rank + 1), mpi.SUM).wait()
            except RankFailedError:
                return "failed"

        res = spmd_run(prog, 4, fault_plan=plan, timeout=60.0)
        assert res.failed_ranks == frozenset({1})
        survivors = [res.returns[q] for q in (0, 2, 3)]
        assert "failed" in survivors  # someone was blocked on the victim

    def test_lossy_links_match_fault_free(self):
        """Under a lossy (but non-failing) plan the reliable layer makes
        nonblocking results identical to the fault-free run."""

        def prog(comm):
            reqs = [
                comm.iallreduce(float(comm.rank * 3 + k), mpi.SUM)
                for k in range(3)
            ]
            return waitall(reqs)

        clean = spmd_run(prog, 4)
        lossy = spmd_run(
            prog, 4,
            fault_plan=FaultPlan(
                seed=7,
                link=LinkFaults(drop_rate=0.3, dup_rate=0.2, reorder_rate=0.2),
            ),
            timeout=60.0,
        )
        assert clean.returns == lossy.returns
