"""Failure-injection tests: user code misbehaving mid-run must produce
clean, attributable errors — never hangs or corrupted results."""

import numpy as np
import pytest

from repro import mpi
from repro.core import global_reduce, global_scan, make_op
from repro.errors import SpmdError, SpmdTimeout
from repro.ops import SumOp
from repro.runtime import spmd_run


class TestOperatorExceptions:
    def test_accum_raises_on_one_rank(self):
        def bad_accum(s, x):
            if x == 13:
                raise ValueError("unlucky element")
            return s + x

        op = make_op(ident=lambda: 0, accum=bad_accum,
                     combine=lambda a, b: a + b)

        def prog(comm):
            # element 13 lands on rank 1
            data = [13] if comm.rank == 1 else [1]
            return global_reduce(comm, op, data)

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 4, timeout=30)
        assert 1 in ei.value.failures
        assert isinstance(ei.value.failures[1], ValueError)

    def test_combine_raises_mid_tree(self):
        calls = {"n": 0}

        def bad_combine(a, b):
            calls["n"] += 1
            raise RuntimeError("combine exploded")

        op = make_op(ident=lambda: 0, accum=lambda s, x: s + x,
                     combine=bad_combine)

        def prog(comm):
            return global_reduce(comm, op, [comm.rank])

        with pytest.raises(SpmdError):
            spmd_run(prog, 8, timeout=30)

    def test_ident_raises_everywhere(self):
        op = make_op(
            ident=lambda: (_ for _ in ()).throw(TypeError("no identity")),
            accum=lambda s, x: s,
            combine=lambda a, b: a,
        )
        with pytest.raises(SpmdError) as ei:
            spmd_run(lambda comm: global_reduce(comm, op, [1]), 2, timeout=30)
        assert all(
            isinstance(e, TypeError) for e in ei.value.failures.values()
        )

    def test_scan_gen_raises(self):
        op = make_op(
            ident=lambda: 0,
            accum=lambda s, x: s + x,
            combine=lambda a, b: a + b,
            scan_gen=lambda s, x: 1 // 0,
        )
        with pytest.raises(SpmdError) as ei:
            spmd_run(lambda comm: global_scan(comm, op, [1, 2]), 2, timeout=30)
        assert any(
            isinstance(e, ZeroDivisionError)
            for e in ei.value.failures.values()
        )


class TestBlockedPeersUnwound:
    def test_peers_in_collective_unwound(self):
        """Ranks blocked inside an allreduce while another rank dies must
        be released, not deadlock until timeout."""

        def prog(comm):
            if comm.rank == 3:
                raise OSError("rank 3 died before the collective")
            comm.allreduce(1, mpi.SUM)

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 6, timeout=30)
        assert list(ei.value.failures) == [3]

    def test_peer_blocked_in_scan(self):
        def prog(comm):
            if comm.rank == 0:
                raise KeyError("early death")
            comm.scan(comm.rank, mpi.SUM)

        with pytest.raises(SpmdError):
            spmd_run(prog, 4, timeout=30)

    def test_mismatched_collectives_time_out(self):
        """A classic SPMD bug: ranks call different collectives.  The
        wall-clock timeout must catch it."""

        def prog(comm):
            if comm.rank == 0:
                comm.bcast(1, root=0)
            else:
                comm.barrier()

        with pytest.raises((SpmdTimeout, SpmdError)):
            spmd_run(prog, 2, timeout=1.0)


class TestStateCorruptionGuards:
    def test_wrong_state_types_surface_as_errors(self):
        """An operator whose combine cannot handle the identity fails
        loudly, not silently."""
        op = make_op(
            ident=lambda: None,  # wrong: combine expects ints
            accum=lambda s, x: x if s is None else s + x,
            combine=lambda a, b: a + b,
        )

        def prog(comm):
            local = [] if comm.rank == 0 else [1, 2]
            return global_reduce(comm, op, local)

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 2, timeout=30)
        assert any(
            isinstance(e, TypeError) for e in ei.value.failures.values()
        )

    def test_mutating_right_operand_detected_by_isolation(self):
        """Payload isolation means a combine that (illegally) mutates its
        right operand can only corrupt its own rank's copy — results on
        other ranks stay correct."""

        def naughty_combine(a, b):
            if isinstance(b, np.ndarray):
                b += 1_000_000  # forbidden: mutating the right operand
            return a + b

        def prog(comm):
            v = comm.allreduce(np.array([comm.rank]), naughty_combine)
            return int(v[0])

        res = spmd_run(prog, 2)
        # rank 0 combined (own, received-copy): the mutation hit only the
        # isolated copy; results are deterministic and finite
        assert all(isinstance(v, int) for v in res.returns)

    def test_exception_in_one_of_many_collectives(self):
        def prog(comm):
            for i in range(10):
                comm.allreduce(i, mpi.SUM)
                if i == 5 and comm.rank == 2:
                    raise RuntimeError("mid-iteration failure")

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 4, timeout=30)
        assert 2 in ei.value.failures
