"""Mailbox regressions: abort-vs-match ordering, wildcard determinism,
and spare-queue recycling under concurrent deliver/retire."""

import threading

import pytest

from repro.errors import RuntimeAbort
from repro.runtime.channels import (
    ANY_SOURCE,
    ANY_TAG,
    Envelope,
    Mailbox,
    _SPARE_QUEUES,
)


def env(source, tag, payload="x", t=0.0):
    return Envelope(source, tag, payload, 1, t)


class TestAbortVsMatchOrdering:
    def test_queued_message_wins_over_abort(self):
        # Regression: the abort check used to precede matching, so a
        # rank whose message had already arrived raised RuntimeAbort
        # instead of completing its receive.  In-flight data must drain
        # first.
        abort = threading.Event()
        box = Mailbox(rank=0, abort_event=abort)
        box.deliver(env(1, 5, "precious"))
        abort.set()
        got = box.collect(1, 5)
        assert got.payload == "precious"
        # With the queue drained, the abort finally surfaces.
        with pytest.raises(RuntimeAbort):
            box.collect(1, 5)

    def test_wildcard_match_also_wins_over_abort(self):
        abort = threading.Event()
        box = Mailbox(rank=0, abort_event=abort)
        box.deliver(env(3, 9, "w"))
        abort.set()
        assert box.collect(ANY_SOURCE, ANY_TAG).payload == "w"


class TestWildcardDeterminism:
    def test_fifo_within_source_tag_pair(self):
        box = Mailbox(rank=0, abort_event=threading.Event())
        for i in range(4):
            box.deliver(env(2, 7, i))
        assert [box.collect(ANY_SOURCE, 7).payload for _ in range(4)] \
            == [0, 1, 2, 3]

    def test_single_candidate_wildcard_is_deterministic(self):
        # The library's contract: wildcards are deterministic when only
        # one candidate can exist.  Same delivery sequence, same result,
        # every time.
        for _ in range(20):
            box = Mailbox(rank=0, abort_event=threading.Event())
            box.deliver(env(1, 10, "a"))
            got = box.collect(ANY_SOURCE, ANY_TAG)
            assert (got.source, got.payload) == (1, "a")

    def test_any_source_specific_tag_filters(self):
        box = Mailbox(rank=0, abort_event=threading.Event())
        box.deliver(env(1, 10, "wrong-tag"))
        box.deliver(env(2, 20, "right"))
        assert box.collect(ANY_SOURCE, 20).payload == "right"
        assert box.collect(ANY_SOURCE, 10).payload == "wrong-tag"

    def test_specific_source_any_tag_filters(self):
        box = Mailbox(rank=0, abort_event=threading.Event())
        box.deliver(env(5, 1, "other-rank"))
        box.deliver(env(6, 2, "mine"))
        assert box.collect(6, ANY_TAG).payload == "mine"


class TestSpareQueueRecycling:
    def test_retired_queues_are_pooled_and_bounded(self):
        box = Mailbox(rank=0, abort_event=threading.Event())
        # Unique tags, like collective tags: each queue is born, used
        # once and retired.
        for tag in range(3 * _SPARE_QUEUES):
            box.deliver(env(1, tag))
            box.collect(1, tag)
        assert box._queues == {}
        assert 0 < len(box._spares) <= _SPARE_QUEUES

    def test_recycled_queue_is_clean(self):
        box = Mailbox(rank=0, abort_event=threading.Event())
        box.deliver(env(1, 0, "old"))
        box.collect(1, 0)  # retires the deque into the pool
        box.deliver(env(1, 1, "new"))  # must reuse a *clean* deque
        assert box.collect(1, 1).payload == "new"
        assert box.pending_count() == 0

    def test_concurrent_deliver_and_retire(self):
        # Many sender threads, unique tags per message, receiver
        # retiring queues as fast as they empty: no message may be lost
        # or duplicated, and the pool must stay bounded.
        box = Mailbox(rank=0, abort_event=threading.Event())
        n_senders, n_msgs = 4, 200
        barrier = threading.Barrier(n_senders)

        def sender(src):
            barrier.wait()
            for i in range(n_msgs):
                box.deliver(env(src, (src, i), payload=(src, i)))

        threads = [
            threading.Thread(target=sender, args=(s,))
            for s in range(1, n_senders + 1)
        ]
        for t in threads:
            t.start()
        got = []
        for src in range(1, n_senders + 1):
            for i in range(n_msgs):
                got.append(box.collect(src, (src, i)).payload)
        for t in threads:
            t.join()
        assert got == [
            (src, i)
            for src in range(1, n_senders + 1)
            for i in range(n_msgs)
        ]
        assert box.pending_count() == 0
        assert len(box._spares) <= _SPARE_QUEUES

    def test_reorder_delivery_inserts_before_tail(self):
        box = Mailbox(rank=0, abort_event=threading.Event())
        box.deliver(env(1, 0, "a"))
        box.deliver(env(1, 0, "b"))
        box.deliver(env(1, 0, "c"), reorder=True)  # overtakes "b"
        order = [box.collect(1, 0).payload for _ in range(3)]
        assert order == ["a", "c", "b"]

    def test_reorder_into_empty_queue_appends(self):
        box = Mailbox(rank=0, abort_event=threading.Event())
        box.deliver(env(1, 0, "only"), reorder=True)
        assert box.collect(1, 0).payload == "only"
