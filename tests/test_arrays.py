"""Tests for distributions and the Chapel-style GlobalArray."""

import numpy as np
import pytest

from repro.arrays import BlockCyclicDist, BlockDist, CyclicDist, GlobalArray
from repro.errors import DistributionError, SpmdError
from repro.ops import CountsOp, MiniOp, MinKOp, SortedOp, SumOp
from repro.runtime import spmd_run
from tests.conftest import run_all


class TestBlockDist:
    @pytest.mark.parametrize("n,p", [(10, 3), (10, 10), (3, 5), (0, 4), (100, 7)])
    def test_partition_properties(self, n, p):
        d = BlockDist(n, p)
        counts = [d.local_count(r) for r in range(p)]
        assert sum(counts) == n
        assert max(counts) - min(counts) <= 1
        seen = []
        for r in range(p):
            idx = d.global_indices(r)
            assert len(idx) == counts[r]
            seen.extend(idx.tolist())
        assert seen == list(range(n))  # rank order == global order

    def test_owner_consistent_with_indices(self):
        d = BlockDist(23, 4)
        for i in range(23):
            r = d.owner(i)
            assert i in d.global_indices(r)

    def test_to_local(self):
        d = BlockDist(10, 3)
        for i in range(10):
            r, off = d.to_local(i)
            assert d.global_indices(r)[off] == i

    def test_order_preserving(self):
        assert BlockDist(10, 3).is_order_preserving

    def test_bad_args(self):
        with pytest.raises(DistributionError):
            BlockDist(-1, 2)
        with pytest.raises(DistributionError):
            BlockDist(5, 0)
        with pytest.raises(DistributionError):
            BlockDist(5, 2).owner(5)
        with pytest.raises(DistributionError):
            BlockDist(5, 2).local_count(2)


class TestCyclicDist:
    def test_round_robin(self):
        d = CyclicDist(10, 3)
        assert d.owner(0) == 0 and d.owner(1) == 1 and d.owner(5) == 2
        assert d.global_indices(0).tolist() == [0, 3, 6, 9]
        assert d.local_count(0) == 4 and d.local_count(2) == 3

    def test_not_order_preserving(self):
        assert not CyclicDist(10, 3).is_order_preserving

    def test_covers_everything(self):
        d = CyclicDist(17, 5)
        all_idx = sorted(
            i for r in range(5) for i in d.global_indices(r).tolist()
        )
        assert all_idx == list(range(17))


class TestBlockCyclicDist:
    def test_blocks_cycle(self):
        d = BlockCyclicDist(12, 2, block=3)
        assert d.global_indices(0).tolist() == [0, 1, 2, 6, 7, 8]
        assert d.global_indices(1).tolist() == [3, 4, 5, 9, 10, 11]

    def test_degenerate_case_order_preserving(self):
        assert BlockCyclicDist(6, 3, block=2).is_order_preserving
        assert not BlockCyclicDist(12, 2, block=3).is_order_preserving

    def test_bad_block(self):
        with pytest.raises(DistributionError):
            BlockCyclicDist(10, 2, block=0)


class TestGlobalArray:
    def test_from_global_and_to_global_roundtrip(self):
        data = np.arange(23) * 2

        def prog(comm):
            a = GlobalArray.from_global(comm, data)
            return a.to_global()

        for out in run_all(prog, 4):
            assert np.array_equal(out, data)

    def test_from_function(self):
        def prog(comm):
            a = GlobalArray.from_function(comm, 10, lambda i: i * i)
            return a.to_global()

        for out in run_all(prog, 3):
            assert out.tolist() == [i * i for i in range(10)]

    def test_zeros(self):
        def prog(comm):
            a = GlobalArray.zeros(comm, 7, dtype=np.int64)
            return (a.n, len(a.local), a.local.sum())

        out = run_all(prog, 3)
        assert sum(t[1] for t in out) == 7
        assert all(t[0] == 7 and t[2] == 0 for t in out)

    def test_chapel_reduce_one_liner(self, rng):
        data = rng.integers(0, 1000, 50)

        def prog(comm):
            a = GlobalArray.from_global(comm, data)
            return a.reduce(MinKOp(4, np.iinfo(np.int64).max))

        expected = np.sort(data)[:4][::-1].tolist()
        for v in run_all(prog, 5):
            assert v.tolist() == expected

    def test_reduce_with_index(self):
        data = np.array([5.0, 1.0, 3.0, 1.0])

        def prog(comm):
            a = GlobalArray.from_global(comm, data)
            return a.reduce_with_index(MiniOp())

        for val, loc in run_all(prog, 2):
            assert (val, loc) == (1.0, 1)

    def test_scan_returns_global_array(self, rng):
        data = rng.integers(0, 10, 20)

        def prog(comm):
            a = GlobalArray.from_global(comm, data)
            return a.scan(SumOp()).to_global()

        for out in run_all(prog, 4):
            assert [int(v) for v in out] == np.cumsum(data).tolist()

    def test_xscan(self, rng):
        data = rng.integers(0, 10, 20)

        def prog(comm):
            a = GlobalArray.from_global(comm, data)
            return a.xscan(SumOp()).to_global()

        expected = np.concatenate([[0], np.cumsum(data)[:-1]])
        for out in run_all(prog, 3):
            assert [int(v) for v in out] == expected.tolist()

    def test_map_elementwise(self):
        def prog(comm):
            a = GlobalArray.from_function(comm, 8, lambda i: i)
            return a.map(lambda x: x * 10).to_global()

        assert run_all(prog, 2)[0].tolist() == [i * 10 for i in range(8)]

    def test_commutative_reduce_on_cyclic_ok(self, rng):
        data = rng.integers(0, 100, 30)

        def prog(comm):
            a = GlobalArray.from_global(comm, data, dist_cls=CyclicDist)
            return a.reduce(SumOp())

        assert all(v == data.sum() for v in run_all(prog, 4))

    def test_noncommutative_reduce_on_cyclic_rejected(self):
        def prog(comm):
            a = GlobalArray.from_global(
                comm, np.arange(12), dist_cls=CyclicDist
            )
            a.reduce(SortedOp())

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 3, timeout=10)
        assert any(
            isinstance(e, DistributionError)
            for e in ei.value.failures.values()
        )

    def test_scan_on_cyclic_rejected(self):
        def prog(comm):
            a = GlobalArray.from_global(
                comm, np.arange(12), dist_cls=CyclicDist
            )
            a.scan(SumOp())

        with pytest.raises(SpmdError):
            spmd_run(prog, 3, timeout=10)

    def test_sorted_reduce_on_block_works(self):
        def prog(comm):
            a = GlobalArray.from_global(comm, np.arange(17))
            return a.reduce(SortedOp())

        assert all(run_all(prog, 4))

    def test_counts_scan_paper_octants(self, paper_data):
        def prog(comm):
            a = GlobalArray.from_global(
                comm, np.array(paper_data, dtype=np.int64)
            )
            return a.scan(CountsOp(8)).to_global()

        out = run_all(prog, 3)[0]
        assert out.tolist() == [1, 1, 2, 1, 1, 1, 2, 1, 3, 2]

    def test_wrong_local_size_rejected(self):
        def prog(comm):
            GlobalArray(comm, np.zeros(99), BlockDist(10, comm.size))

        with pytest.raises(SpmdError):
            spmd_run(prog, 2, timeout=10)

    def test_dist_comm_mismatch_rejected(self):
        def prog(comm):
            GlobalArray(comm, np.zeros(5), BlockDist(10, comm.size + 1))

        with pytest.raises(SpmdError):
            spmd_run(prog, 2, timeout=10)


class TestElementwiseArithmetic:
    def _pair(self, comm):
        a = GlobalArray.from_function(comm, 12, lambda i: i.astype(float))
        b = GlobalArray.from_function(comm, 12, lambda i: (i * 2).astype(float))
        return a, b

    def test_add_sub_mul(self):
        def prog(comm):
            a, b = self._pair(comm)
            return ((a + b).to_global(), (b - a).to_global(),
                    (a * b).to_global(), (a * 3).to_global(),
                    (10 + a).to_global(), (-a).to_global())

        add, sub, mul, scal, radd, neg = run_all(prog, 3)[0]
        i = np.arange(12.0)
        assert np.array_equal(add, 3 * i)
        assert np.array_equal(sub, i)
        assert np.array_equal(mul, 2 * i * i)
        assert np.array_equal(scal, 3 * i)
        assert np.array_equal(radd, 10 + i)
        assert np.array_equal(neg, -i)

    def test_dot_is_single_allreduce(self):
        def prog(comm):
            a, b = self._pair(comm)
            return a.dot(b)

        res = spmd_run(prog, 4)
        i = np.arange(12.0)
        assert all(v == float((i * 2 * i).sum()) for v in res.returns)
        assert res.traces[0].collective_calls["allreduce"] == 1

    def test_mismatched_sizes_rejected(self):
        def prog(comm):
            a = GlobalArray.from_function(comm, 10, lambda i: i)
            b = GlobalArray.from_function(comm, 11, lambda i: i)
            a + b

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 2, timeout=10)
        assert any(
            isinstance(e, DistributionError)
            for e in ei.value.failures.values()
        )

    def test_dot_rejects_plain_arrays(self):
        def prog(comm):
            a = GlobalArray.from_function(comm, 10, lambda i: i)
            a.dot(np.arange(10))

        with pytest.raises(SpmdError):
            spmd_run(prog, 2, timeout=10)


class TestExplicitDist:
    def test_bounds_and_owner(self):
        from repro.arrays import ExplicitDist

        d = ExplicitDist([3, 0, 5, 2])
        assert d.n == 10 and d.p == 4
        assert d.bounds(0) == (0, 3)
        assert d.bounds(1) == (3, 3)
        assert d.bounds(2) == (3, 8)
        assert [d.owner(i) for i in range(10)] == [0, 0, 0, 2, 2, 2, 2, 2, 3, 3]
        assert d.is_order_preserving

    def test_negative_counts_rejected(self):
        from repro.arrays import ExplicitDist

        with pytest.raises(DistributionError):
            ExplicitDist([1, -1])


class TestSortAndFilter:
    def test_global_sort(self, rng):
        data = rng.normal(size=200)

        def prog(comm):
            a = GlobalArray.from_global(comm, data)
            s = a.sort()
            return s.to_global(), s.reduce(SortedOp())

        for out, ok in run_all(prog, 5):
            assert np.array_equal(out, np.sort(data))
            assert ok is True  # sorted + order-preserving dist composes

    def test_filter(self, rng):
        data = rng.integers(0, 100, 90)

        def prog(comm):
            a = GlobalArray.from_global(comm, data)
            kept = a.filter(a.local % 2 == 0)
            return kept.to_global(), kept.n

        for out, n in run_all(prog, 4):
            assert np.array_equal(out, data[data % 2 == 0])
            assert n == int(np.sum(data % 2 == 0))

    def test_filter_then_reduce(self, rng):
        data = rng.integers(0, 100, 60)

        def prog(comm):
            a = GlobalArray.from_global(comm, data)
            return a.filter(a.local > 50).reduce(SumOp())

        expected = int(data[data > 50].sum())
        assert all(v == expected for v in run_all(prog, 3))

    def test_sort_scan_composition(self, rng):
        """sort -> running max is just the sorted values themselves."""
        from repro.ops import MaxOp

        data = rng.normal(size=40)

        def prog(comm):
            a = GlobalArray.from_global(comm, data)
            return a.sort().scan(MaxOp()).to_global()

        out = run_all(prog, 4)[0]
        assert np.allclose(out, np.sort(data))
