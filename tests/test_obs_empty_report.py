"""Regression: empty/truncated captures must report, not crash.

Before the fix, a :class:`RunCapture` whose ``clocks`` were sealed but
whose ``ranks`` list was empty (or shorter than the clocks — a partial
capture) made ``critical_path`` raise ``IndexError`` out of
``_attribute_local``, which in turn crashed ``format_text_report``; and
an entirely empty tracer printed a confusing zero-filled table.
"""

import pytest

from repro.obs import (
    RunCapture,
    Tracer,
    critical_path,
    format_text_report,
    phase_summary,
)


def _empty_run_with_clocks() -> RunCapture:
    """Clocks sealed, no per-rank tracers — the crashing shape."""
    return RunCapture(
        index=0, nprocs=2, ranks=[], clocks=[1.0, 2.0], makespan=2.0
    )


class TestCriticalPathEmpty:
    def test_no_ranks_no_clocks(self):
        cp = critical_path(RunCapture(index=0, nprocs=0, ranks=[]))
        assert cp.total == 0.0
        assert cp.steps == []

    def test_clocks_without_ranks_regression(self):
        # This exact shape used to raise IndexError.
        cp = critical_path(_empty_run_with_clocks())
        assert cp.total == 2.0
        assert cp.end_rank == 1
        # All accounted time is untracked: there are no spans to charge.
        assert cp.phase_seconds == pytest.approx({"untracked": 2.0})

    def test_truncated_ranks(self):
        # Partial capture: 1 rank traced, 3 clocks sealed; the walk must
        # survive the untraced end rank.
        tracer = Tracer()
        run = tracer.begin_run(1, [type("C", (), {"now": 0.0})()])
        run.nprocs = 3
        tracer.finish_run(run, [0.5, 1.5, 2.5])
        cp = critical_path(run)
        assert cp.total == 2.5
        assert cp.fraction("untracked") == 1.0


class TestEmptyReport:
    def test_empty_tracer_explicit_message(self):
        text = format_text_report(Tracer())
        assert "no runs captured" in text
        assert "0 run(s)" not in text

    def test_empty_tracer_phase_summary(self):
        summary = phase_summary(Tracer())
        assert summary == {
            "runs": 0, "total_virtual_seconds": 0.0, "ops": {}
        }

    def test_report_with_empty_run_does_not_crash(self):
        tracer = Tracer()
        tracer.runs.append(_empty_run_with_clocks())
        text = format_text_report(tracer)
        assert "1 run(s)" in text
        assert "no phased spans recorded" in text
        # The critical path of the empty run still renders (untracked).
        assert "untracked" in text
