"""Acceptance tests for the pluggable network fabric (docs/topology.md).

Three contracts, in order of importance:

1. **Flat bit-identity** — the default :class:`FlatTopology` reproduces
   the pre-fabric wire times exactly: same makespans, same clocks, same
   message counts.  The fabric layer must be invisible until a
   multi-tier topology is opted into.
2. **Hierarchy identity grid** — every chaos-catalogue operator, for
   both reduce and scan at {4, 8, 16} ranks, produces results identical
   (``state_equal``) under ``algorithm="hierarchical"`` on a multi-node
   fabric to the flat baseline.  Only virtual time may differ.
3. **Topology semantics** — tier pricing, congestion counters, rack
   fault domains, locality-aware gang placement, and per-fabric tuning
   tables behave as documented.
"""

import random
import threading

import numpy as np
import pytest

from repro.core.operator import state_equal
from repro.core.reduce import global_reduce
from repro.core.scan import global_scan
from repro.engine import Engine
from repro.faults.chaos import CHAOS_CASES
from repro.faults.plan import (
    FailStop,
    FaultPlan,
    RackFailure,
    expand_rack_failures,
)
from repro.mpi import tuning as _tuning
from repro.mpi.op import SUM
from repro.mpi.schedule_cache import ScheduleCache
from repro.runtime import spmd_run
from repro.runtime.costmodel import CostModel
from repro.runtime.fabric import (
    FLAT,
    FlatTopology,
    HierarchicalTopology,
    contiguous_node_groups,
    fat_tree,
    multi_node,
    parse_topology,
)

SIZES = (4, 8, 16)
N_PER_RANK = 5


# ---------------------------------------------------------------------------
# Fabric unit semantics
# ---------------------------------------------------------------------------


class TestFabricUnits:
    def test_flat_path_cost_is_wire_time_bit_for_bit(self):
        cm = CostModel()
        topo = FlatTopology()
        for nbytes in (0, 1, 8, 1024, 1 << 20):
            assert topo.path_cost(0, 3, nbytes, cm) == cm.wire_time(nbytes)
            assert topo.path_cost(2, 2, nbytes, cm) == 0.0
        assert topo.is_flat
        assert topo.signature == "flat"
        assert topo.stats() == {}

    def test_flat_singleton(self):
        from repro.runtime.fabric import Topology, flat

        assert flat() is FLAT
        assert Topology.flat() is FLAT

    def test_node_and_rack_mapping(self):
        topo = fat_tree(4, 2)  # 4 ranks/node, 2 nodes/rack
        assert [topo.node_of(r) for r in (0, 3, 4, 8)] == [0, 0, 1, 2]
        assert [topo.rack_of(r) for r in (0, 7, 8, 15, 16)] == [0, 0, 1, 1, 2]
        assert topo.nodes_spanned((0, 1, 2, 3)) == 1
        assert topo.nodes_spanned((0, 4, 8)) == 3

    def test_tier_ordering(self):
        cm = CostModel()
        topo = fat_tree(4, 2)
        n = 1 << 16
        same_node = topo.path_cost(0, 1, n, cm)
        same_rack = topo.path_cost(0, 4, n, cm)
        cross_rack = topo.path_cost(0, 8, n, cm)
        assert same_node < same_rack < cross_rack
        # Same-rack inter-node traffic defaults to the cost model's own
        # parameters: the flat model *is* the inter-node tier.
        assert same_rack == cm.wire_time(n)

    def test_oversubscription_charges_extra_serialization(self):
        cm = CostModel()
        fair = fat_tree(2, 2, oversubscription=1.0)
        congested = fat_tree(2, 2, oversubscription=2.0)
        n = 1 << 16
        delta = congested.path_cost(0, 4, n, cm) - fair.path_cost(0, 4, n, cm)
        assert delta == pytest.approx(n * cm.byte_time)

    def test_congestion_counters(self):
        cm = CostModel()
        topo = fat_tree(2, 2, oversubscription=2.0)
        topo.path_cost(0, 1, 100, cm)  # intra-node
        topo.path_cost(0, 2, 100, cm)  # inter-node, same rack
        topo.path_cost(0, 4, 100, cm)  # cross-rack (spine)
        s = topo.stats()
        assert s["intra_msgs"] == 1 and s["intra_bytes"] == 100
        assert s["uplink_msgs"] == 2 and s["uplink_bytes"] == 200
        assert s["spine_msgs"] == 1 and s["spine_bytes"] == 100
        assert s["extra_seconds"] == pytest.approx(100 * cm.byte_time)
        topo.reset_stats()
        assert topo.stats()["intra_msgs"] == 0

    def test_parse_topology(self):
        assert parse_topology("flat").is_flat
        assert parse_topology("multi_node:4").signature == "multi_node:4"
        ft = parse_topology("fat_tree:4x2")
        assert ft.signature == "fat_tree:4x2:o2"
        assert parse_topology("fat_tree:4x2x1.5").oversubscription == 1.5
        with pytest.raises(ValueError):
            parse_topology("torus:3")
        with pytest.raises(ValueError):
            parse_topology("multi_node:0")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HierarchicalTopology(0)
        with pytest.raises(ValueError):
            fat_tree(2, 2, oversubscription=0.5)

    def test_contiguous_node_groups(self):
        topo = multi_node(2)
        # Six contiguous world ranks on 2-rank nodes: three groups, in
        # group-rank coordinates.
        assert contiguous_node_groups(topo, (0, 1, 2, 3, 4, 5)) == (
            (0, 1), (2, 3), (4, 5),
        )
        # A scattered placement still groups by node as long as members
        # sharing a node are adjacent in the member tuple.
        assert contiguous_node_groups(topo, (0, 1, 4, 5)) == ((0, 1), (2, 3))
        # Flat topology / single node: no grouping.
        assert contiguous_node_groups(FLAT, (0, 1, 2, 3)) is None
        assert contiguous_node_groups(None, (0, 1)) is None
        assert contiguous_node_groups(topo, (0, 1)) is None


# ---------------------------------------------------------------------------
# Flat regression: Topology.flat() reproduces today's makespans exactly
# ---------------------------------------------------------------------------


def _collective_workout(comm):
    arr = np.linspace(0.0, 1.0, 64) * (comm.rank + 1)
    total = comm.allreduce(arr, SUM)
    pref = comm.scan(float(comm.rank + 1), SUM)
    return float(np.sum(total)) + pref


class TestFlatRegression:
    @pytest.mark.parametrize("p", SIZES)
    def test_flat_topology_makespans_exact(self, p):
        baseline = spmd_run(_collective_workout, p)
        explicit = spmd_run(
            _collective_workout, p, topology=FlatTopology()
        )
        assert explicit.returns == baseline.returns
        assert explicit.clocks == baseline.clocks
        assert explicit.time == baseline.time
        assert (
            explicit.summary_trace.n_sends == baseline.summary_trace.n_sends
        )

    def test_global_view_drivers_unchanged_under_flat(self):
        blocks = [[float(q * 5 + i) for i in range(5)] for q in range(8)]

        def prog(comm):
            from repro.ops import SumOp

            return global_reduce(comm, SumOp(), blocks[comm.rank])

        baseline = spmd_run(prog, 8)
        explicit = spmd_run(prog, 8, topology=FLAT)
        assert explicit.returns == baseline.returns
        assert explicit.clocks == baseline.clocks


# ---------------------------------------------------------------------------
# Hierarchy identity grid: results byte-identical to flat, per operator
# ---------------------------------------------------------------------------


def _shards(case, nprocs):
    return [
        case.make_data(random.Random(1000 * nprocs + r), N_PER_RANK)
        for r in range(nprocs)
    ]


def hier_reduce_program(comm, case, shards):
    return global_reduce(
        comm, case.make_op(), shards[comm.rank], algorithm="hierarchical"
    )


def flat_reduce_program(comm, case, shards):
    return global_reduce(comm, case.make_op(), shards[comm.rank])


def hier_scan_program(comm, case, shards):
    return global_scan(
        comm, case.make_op(), shards[comm.rank], algorithm="hierarchical"
    )


def flat_scan_program(comm, case, shards):
    return global_scan(comm, case.make_op(), shards[comm.rank])


def _assert_results_identical(case, flat_prog, hier_prog, nprocs):
    shards = _shards(case, nprocs)
    baseline = spmd_run(flat_prog, nprocs, args=(case, shards))
    hier = spmd_run(
        hier_prog, nprocs, args=(case, shards), topology=multi_node(2)
    )
    for g in range(nprocs):
        assert state_equal(hier.returns[g], baseline.returns[g]), (
            f"{case.name} rank {g}: {hier.returns[g]!r} != "
            f"{baseline.returns[g]!r}"
        )


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
def test_hierarchical_reduce_identity(case, nprocs):
    _assert_results_identical(
        case, flat_reduce_program, hier_reduce_program, nprocs
    )


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize(
    "case",
    [c for c in CHAOS_CASES if c.scan],
    ids=lambda c: c.name,
)
def test_hierarchical_scan_identity(case, nprocs):
    _assert_results_identical(
        case, flat_scan_program, hier_scan_program, nprocs
    )


# ---------------------------------------------------------------------------
# The performance claim the hierarchy exists for
# ---------------------------------------------------------------------------


class TestHierarchicalAdvantage:
    def test_beats_flat_ring_and_rabenseifner_at_1mib(self):
        n = (1 << 20) // 8  # 1 MiB of float64
        topo = multi_node(4)

        def prog(algorithm):
            def run(comm):
                arr = np.ones(n, dtype=np.float64) * (comm.rank + 1)
                return comm.allreduce(arr, SUM, algorithm=algorithm)

            return run

        times = {}
        results = {}
        for algo in ("ring", "rabenseifner", "hierarchical"):
            res = spmd_run(prog(algo), 16, topology=topo)
            times[algo] = res.time
            results[algo] = res.returns[0]
        assert times["hierarchical"] < times["ring"]
        assert times["hierarchical"] < times["rabenseifner"]
        np.testing.assert_allclose(
            results["hierarchical"], results["ring"]
        )


# ---------------------------------------------------------------------------
# Rack-scoped fault domains
# ---------------------------------------------------------------------------


class TestRackFailures:
    def test_expand_lowers_to_per_rank_failstops(self):
        topo = fat_tree(2, 2)  # rack 0 = world ranks 0..3
        plan = FaultPlan(rack_failures=(RackFailure(0, at_time=1e-3),))
        lowered = expand_rack_failures(plan, topo, (0, 1, 2, 3, 4, 5, 6, 7))
        assert {f.rank for f in lowered.failstops} == {0, 1, 2, 3}
        assert all(f.at_time == 1e-3 for f in lowered.failstops)

    def test_expand_respects_placement(self):
        # A 4-rank job placed on world ranks 4..7 (rack 1): the plan's
        # group-rank failstops cover the whole gang, not rack 0.
        topo = fat_tree(2, 2)
        plan = FaultPlan(rack_failures=(RackFailure(1),))
        lowered = expand_rack_failures(plan, topo, (4, 5, 6, 7))
        assert {f.rank for f in lowered.failstops} == {0, 1, 2, 3}
        lowered0 = expand_rack_failures(plan, topo, (0, 1, 2, 3))
        assert lowered0.failstops == ()

    def test_expand_never_duplicates_explicit_failstops(self):
        topo = fat_tree(2, 2)
        plan = FaultPlan(
            failstops=(FailStop(rank=1, at_op=1),),
            rack_failures=(RackFailure(0),),
        )
        lowered = expand_rack_failures(plan, topo, tuple(range(8)))
        ranks = [f.rank for f in lowered.failstops]
        assert sorted(ranks) == [0, 1, 2, 3]
        assert len(ranks) == len(set(ranks))

    def test_empty_rack_is_a_noop(self):
        plan = FaultPlan(rack_failures=(RackFailure(7),))
        assert (
            expand_rack_failures(plan, fat_tree(2, 2), (0, 1)).failstops
            == ()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RackFailure(rack=-1)
        with pytest.raises(ValueError):
            RackFailure(rack=0, at_time=-1.0)

    def test_rack_failure_kills_whole_rack_in_run(self):
        # at_time=0.0 models the switch dying before the job's first
        # message — the whole rack is gone from the start, the cleanest
        # (and most common) rack-outage shape.  Mid-protocol
        # simultaneous multi-rank deaths can desync the existing ULFM
        # recovery rounds (reproducible with plain FailStops on the
        # flat topology, independent of the fabric layer).
        topo = fat_tree(2, 2)
        plan = FaultPlan(rack_failures=(RackFailure(0),))
        blocks = [[float(q)] for q in range(8)]

        def prog(comm):
            from repro.ops import SumOp

            return global_reduce(comm, SumOp(), blocks[comm.rank])

        res = spmd_run(prog, 8, fault_plan=plan, topology=topo)
        assert res.failed_ranks == {0, 1, 2, 3}
        expected = float(sum(range(4, 8)))
        for q in range(8):
            if q < 4:
                assert res.returns[q] is None
            else:
                assert res.returns[q] == expected

    @pytest.mark.parametrize("at_time", [1e-7, 1e-6, 3e-6, 1e-5])
    def test_mid_protocol_rack_failure_recovers(self, at_time):
        # Regression: several ranks dying at once used to desync the
        # agree protocol's re-election rounds (attempt-stamped control
        # tags never matched between survivors with different failure
        # knowledge), deadlocking recovery.  Rack failures make this
        # the common case, so sweep deaths across the whole protocol.
        topo = fat_tree(2, 2)
        plan = FaultPlan(rack_failures=(RackFailure(0, at_time=at_time),))
        blocks = [[float(q)] for q in range(8)]

        def prog(comm):
            from repro.ops import SumOp

            return global_reduce(comm, SumOp(), blocks[comm.rank])

        res = spmd_run(prog, 8, fault_plan=plan, topology=topo)
        assert res.failed_ranks == {0, 1, 2, 3}
        # Depending on when the rack dies relative to the combine, the
        # survivors see either the survivor-only sum (22.0) or the full
        # pre-death result (28.0) — but always the *same* value.
        survivor_values = set(res.returns[4:])
        assert len(survivor_values) == 1
        assert survivor_values <= {22.0, 28.0}

    def test_describe_mentions_rack(self):
        plan = FaultPlan(rack_failures=(RackFailure(2, at_time=0.5),))
        assert "rack" in plan.describe()
        assert plan.can_fail


# ---------------------------------------------------------------------------
# Locality-aware gang placement
# ---------------------------------------------------------------------------


class TestPlacement:
    def _run_fragmented(self, placement):
        """Hold a 2-rank job on node 0, then place a 4-rank job: the
        locality policy must route it to the fully-free node 1 instead
        of splitting it across the fragment."""
        engine = Engine(
            8, topology=multi_node(4), placement=placement
        )
        try:
            hold = threading.Event()
            release = threading.Event()

            def blocker(comm):
                if comm.rank == 0:
                    hold.set()
                    release.wait(timeout=30)
                comm.barrier()
                return "blocked-job"

            def worker(comm):
                return comm.allreduce(float(comm.rank + 1), SUM)

            h1 = engine.submit(blocker, nprocs=2, block=True)
            assert hold.wait(timeout=30)
            h2 = engine.submit(worker, nprocs=4, block=True)
            r2 = h2.result()
            release.set()
            h1.result()
            stats = engine.stats()
            return r2, stats
        finally:
            release.set()
            engine.shutdown(drain=False)

    def test_locality_packs_gang_into_one_node(self):
        r_loc, s_loc = self._run_fragmented("locality")
        r_low, s_low = self._run_fragmented("lowest")
        # Identical job results regardless of placement policy (virtual
        # times legitimately differ: the gangs cross different tiers).
        assert r_loc.returns == r_low.returns
        # Locality keeps the 4-rank gang on one node; lowest-free-rank
        # splits it across the fragmented node boundary.
        assert s_loc["placement"]["policy"] == "locality"
        assert (
            s_loc["placement"]["mean_gang_spread"]
            < s_low["placement"]["mean_gang_spread"]
        )
        assert s_loc["placement"]["single_node_gangs"] >= 1

    def test_flat_engine_placement_is_historical(self):
        engine = Engine(4)
        try:
            res = engine.submit(
                lambda comm: comm.rank, nprocs=4
            ).result()
            assert res.returns == [0, 1, 2, 3]
            stats = engine.stats()
            assert stats["topology"] == "flat"
            # Flat worlds never report fabric traffic.
            assert stats["fabric"] == {}
        finally:
            engine.shutdown(drain=False)

    def test_invalid_placement_rejected(self):
        with pytest.raises(ValueError):
            Engine(4, placement="random")

    def test_engine_reports_fabric_congestion(self):
        engine = Engine(8, topology=multi_node(2))
        try:
            engine.submit(
                lambda comm: comm.allreduce(float(comm.rank), SUM),
                nprocs=8,
            ).result()
            fabric = engine.stats()["fabric"]
            assert fabric["intra_msgs"] > 0
            assert fabric["uplink_msgs"] > 0
        finally:
            engine.shutdown(drain=False)


# ---------------------------------------------------------------------------
# Per-fabric tuning tables and cache keying
# ---------------------------------------------------------------------------


def _hier_table(topology_sig):
    """A table that sends every large commutative allreduce to the
    hierarchical schedule on one fabric."""
    B = _tuning.Band
    U = 1 << 62
    return _tuning.DecisionTable(
        allreduce=(B(U, ((65536, "recursive_doubling"), (U, "hierarchical"))),),
        reduce=_tuning.DEFAULT_TABLE.reduce,
        scan=_tuning.DEFAULT_TABLE.scan,
        source="test",
        topology=topology_sig,
    )


class TestTopologyTuning:
    def test_per_fabric_table_registry(self):
        sig = "multi_node:4"
        table = _hier_table(sig)
        prev_gen = _tuning.table_generation()
        _tuning.set_decision_table(table)
        try:
            assert _tuning.table_generation() > prev_gen
            assert _tuning.get_decision_table(sig) is table
            # The flat table is untouched.
            assert _tuning.get_decision_table() is _tuning.DEFAULT_TABLE
            assert (
                _tuning.choose_allreduce(
                    1 << 20, 16, True, True, topology=sig
                )
                == "hierarchical"
            )
            assert (
                _tuning.choose_allreduce(1 << 20, 16, True, True)
                == "rabenseifner"
            )
            # Unfitted fabrics fall back to the flat table, so
            # "hierarchical" is never auto-chosen without a fit.
            assert (
                _tuning.choose_allreduce(
                    1 << 20, 16, True, True, topology="fat_tree:8x4:o2"
                )
                == "rabenseifner"
            )
        finally:
            _tuning.set_decision_table(None, topology=sig)
        assert _tuning.get_decision_table(sig) is _tuning.DEFAULT_TABLE

    def test_schedule_cache_keys_on_topology(self):
        sig = "multi_node:4"
        _tuning.set_decision_table(_hier_table(sig))
        try:
            cache = ScheduleCache()
            flat_choice = cache.choose("allreduce", 1 << 20, 16, True, True)
            hier_choice = cache.choose(
                "allreduce", 1 << 20, 16, True, True, topology=sig
            )
            assert flat_choice == "rabenseifner"
            assert hier_choice == "hierarchical"
            # Cached spans must not cross-contaminate either direction.
            assert (
                cache.choose("allreduce", 1 << 20, 16, True, True)
                == "rabenseifner"
            )
        finally:
            _tuning.set_decision_table(None, topology=sig)

    def test_auto_selects_hierarchical_on_fitted_fabric(self):
        sig = "multi_node:4"
        n = (1 << 20) // 8
        topo = multi_node(4)

        def auto_prog(comm):
            return comm.allreduce(
                np.ones(n, dtype=np.float64), SUM
            )

        def explicit_prog(comm):
            return comm.allreduce(
                np.ones(n, dtype=np.float64), SUM,
                algorithm="hierarchical",
            )

        _tuning.set_decision_table(_hier_table(sig))
        try:
            auto = spmd_run(auto_prog, 16, topology=topo)
            explicit = spmd_run(explicit_prog, 16, topology=topo)
            # Same schedule ⇒ same virtual makespan and message count.
            assert auto.time == explicit.time
            assert (
                auto.summary_trace.n_sends
                == explicit.summary_trace.n_sends
            )
        finally:
            _tuning.set_decision_table(None, topology=sig)

    def test_table_roundtrip_preserves_topology(self):
        table = _hier_table("multi_node:4")
        clone = _tuning.DecisionTable.from_dict(table.to_dict())
        assert clone.topology == "multi_node:4"
        assert clone.allreduce == table.allreduce
        # Pre-fabric serialized tables load as flat tables.
        legacy = dict(table.to_dict())
        del legacy["topology"]
        assert _tuning.DecisionTable.from_dict(legacy).topology == "flat"

    def test_fit_adds_hierarchical_candidates_only_when_non_flat(self):
        payloads = (64, 4096)
        ranks = (4,)
        _flat_table, flat_report = _tuning.fit_decision_table(
            rank_grid=ranks, payload_grid=payloads
        )
        hier_table, hier_report = _tuning.fit_decision_table(
            rank_grid=ranks, payload_grid=payloads, topology=multi_node(2)
        )
        flat_algos = {
            cell["winner"]
            for cell in flat_report["grid"]["allreduce"]
        }
        assert "hierarchical" not in flat_algos
        hier_candidates = set(
            hier_report["grid"]["allreduce"][0]["times"]
        )
        assert "hierarchical" in hier_candidates
        assert hier_table.topology == "multi_node:2"


# ---------------------------------------------------------------------------
# Telemetry: placement + congestion gauges (docs/observability.md)
# ---------------------------------------------------------------------------


class TestFabricTelemetry:
    def test_snapshot_exports_placement_and_congestion_gauges(self):
        engine = Engine(8, topology=multi_node(2), telemetry=True)
        try:
            engine.submit(
                lambda comm: comm.allreduce(float(comm.rank), SUM),
                nprocs=4,
            ).result()
            frame = engine.telemetry.snapshot()
            gauges = frame["metrics"]["gauges"]
            assert gauges["engine.placement.gangs"] >= 1
            assert gauges["engine.placement.gang_spread"] >= 1.0
            assert "engine.placement.single_node_gangs" in gauges
            assert gauges["fabric.congestion.intra_msgs"] > 0
            assert frame["engine"]["topology"] == "multi_node:2"
        finally:
            engine.shutdown(drain=False)

    def test_flat_snapshot_has_no_congestion_gauges(self):
        engine = Engine(4, telemetry=True)
        try:
            engine.submit(lambda comm: comm.rank).result()
            gauges = engine.telemetry.snapshot()["metrics"]["gauges"]
            assert not any(
                name.startswith("fabric.congestion.") for name in gauges
            )
        finally:
            engine.shutdown(drain=False)
