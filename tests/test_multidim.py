"""Tests for GlobalMatrix and the exclusive-scan-based 2-D prefixes."""

import numpy as np
import pytest

from repro.arrays import GlobalMatrix
from repro.errors import DistributionError, SpmdError
from repro.ops import MaxOp, MinOp, ProdOp, SortedOp, SumOp
from repro.runtime import spmd_run
from tests.conftest import run_all

SIZES = [1, 2, 3, 5, 8]
INT_MIN = np.iinfo(np.int64).min
INT_MAX = np.iinfo(np.int64).max


@pytest.fixture
def matrix(rng):
    return rng.integers(0, 10, (23, 7)).astype(np.int64)


class TestConstruction:
    def test_from_global_roundtrip(self, matrix):
        def prog(comm):
            return GlobalMatrix.from_global(comm, matrix).to_global()

        for out in run_all(prog, 4):
            assert np.array_equal(out, matrix)

    def test_from_function(self):
        def prog(comm):
            g = GlobalMatrix.from_function(
                comm, 6, 4, lambda r, c: r * 10 + c
            )
            return g.to_global()

        out = run_all(prog, 3)[0]
        assert out[2, 3] == 23 and out.shape == (6, 4)

    def test_row_offsets_partition(self, matrix):
        def prog(comm):
            g = GlobalMatrix.from_global(comm, matrix)
            return (g.row_offset, len(g.local))

        parts = run_all(prog, 5)
        covered = sorted(
            (off, off + n) for off, n in parts
        )
        assert covered[0][0] == 0 and covered[-1][1] == 23

    def test_bad_local_shape(self):
        def prog(comm):
            GlobalMatrix(comm, np.zeros(5), 5)

        with pytest.raises(SpmdError):
            spmd_run(prog, 2, timeout=10)


class TestPrefix2D:
    @pytest.mark.parametrize("p", SIZES)
    def test_summed_area_table(self, p, matrix):
        expected = matrix.cumsum(axis=0).cumsum(axis=1)

        def prog(comm):
            g = GlobalMatrix.from_global(comm, matrix)
            return g.prefix2d(SumOp(0)).to_global()

        for out in run_all(prog, p):
            assert np.array_equal(out, expected)

    @pytest.mark.parametrize("p", SIZES)
    def test_running_max_2d(self, p, matrix):
        expected = np.maximum.accumulate(
            np.maximum.accumulate(matrix, axis=0), axis=1
        )

        def prog(comm):
            g = GlobalMatrix.from_global(comm, matrix)
            return g.prefix2d(MaxOp(INT_MIN)).to_global()

        for out in run_all(prog, p):
            assert np.array_equal(out, expected)

    @pytest.mark.parametrize("p", [1, 3, 8])
    def test_running_min_2d(self, p, matrix):
        expected = np.minimum.accumulate(
            np.minimum.accumulate(matrix, axis=0), axis=1
        )

        def prog(comm):
            g = GlobalMatrix.from_global(comm, matrix)
            return g.prefix2d(MinOp(INT_MAX)).to_global()

        for out in run_all(prog, p):
            assert np.array_equal(out, expected)

    def test_more_ranks_than_rows(self, matrix):
        small = matrix[:3]

        def prog(comm):
            g = GlobalMatrix.from_global(comm, small)
            return g.prefix2d(SumOp(0)).to_global()

        expected = small.cumsum(axis=0).cumsum(axis=1)
        for out in run_all(prog, 6):
            assert np.array_equal(out, expected)

    def test_single_communication_round(self, matrix):
        """The whole 2-D prefix costs exactly one exscan collective —
        the paper's 'elegant recursive definition'."""

        def prog(comm):
            GlobalMatrix.from_global(comm, matrix).prefix2d(SumOp(0))

        res = spmd_run(prog, 8)
        calls = res.traces[0].collective_calls
        assert calls["exscan"] == 1
        assert calls.get("allreduce", 0) == 0

    def test_requires_ufunc_op(self, matrix):
        def prog(comm):
            GlobalMatrix.from_global(comm, matrix).prefix2d(SortedOp())

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 2, timeout=10)
        assert any(
            isinstance(e, DistributionError)
            for e in ei.value.failures.values()
        )


class TestMatrixReductions:
    @pytest.mark.parametrize("p", SIZES)
    def test_reduce_all(self, p, matrix):
        def prog(comm):
            return GlobalMatrix.from_global(comm, matrix).reduce_all(SumOp(0))

        assert all(v == matrix.sum() for v in run_all(prog, p))

    @pytest.mark.parametrize("p", SIZES)
    def test_reduce_cols_aggregated(self, p, matrix):
        def prog(comm):
            g = GlobalMatrix.from_global(comm, matrix)
            return g.reduce_cols(MaxOp(INT_MIN))

        for out in run_all(prog, p):
            assert np.array_equal(out, matrix.max(axis=0))

    def test_reduce_rows_local(self, matrix):
        def prog(comm):
            g = GlobalMatrix.from_global(comm, matrix)
            return (g.row_offset, g.reduce_rows(ProdOp(1)))

        parts = run_all(prog, 4)
        expected = matrix.prod(axis=1)
        for off, rows in parts:
            assert np.array_equal(rows, expected[off : off + len(rows)])

    def test_reduce_cols_is_one_allreduce(self, matrix):
        def prog(comm):
            GlobalMatrix.from_global(comm, matrix).reduce_cols(SumOp(0))

        res = spmd_run(prog, 8)
        assert res.traces[0].collective_calls["allreduce"] == 1


class TestPrefix2DProperty:
    def test_random_shapes_and_procs(self, rng):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=25, deadline=None)
        @given(
            rows=st.integers(1, 25),
            cols=st.integers(1, 10),
            p=st.integers(1, 6),
            seed=st.integers(0, 2**16),
        )
        def inner(rows, cols, p, seed):
            r = np.random.default_rng(seed)
            m = r.integers(-5, 5, (rows, cols)).astype(np.int64)
            expected = m.cumsum(axis=0).cumsum(axis=1)

            def prog(comm):
                return GlobalMatrix.from_global(comm, m).prefix2d(
                    SumOp(0)
                ).to_global()

            out = spmd_run(prog, p).returns[0]
            assert np.array_equal(out, expected)

        inner()
