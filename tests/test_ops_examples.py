"""Tests for the paper's example operators: mink (§3.1.1), mini (§3.1.2),
counts (§3.1.3), sorted (§3.1.4) — and their worked examples."""

import numpy as np
import pytest

from repro.core import global_reduce, global_scan
from repro.errors import OperatorError
from repro.ops import (
    CountsOp,
    MaxiOp,
    MaxKOp,
    MiniOp,
    MinKOp,
    SortedOp,
    TranslateMinKOp,
)
from tests.conftest import PAPER_DATA, block_split, gather_scan, run_all

SIZES = [1, 2, 3, 4, 7, 10]
INT_MAX = np.iinfo(np.int64).max


class TestMinK:
    @pytest.mark.parametrize("p", SIZES)
    def test_k_minimums_high_to_low(self, p, rng):
        data = rng.integers(0, 10_000, 123)
        out = run_all(
            lambda comm: global_reduce(
                comm, MinKOp(7, INT_MAX),
                block_split(data, comm.size, comm.rank),
            ),
            p,
        )
        expected = np.sort(data)[:7][::-1].tolist()
        for v in out:
            assert v.tolist() == expected

    def test_fewer_values_than_k_pads_sentinel(self):
        out = run_all(
            lambda comm: global_reduce(comm, MinKOp(5, INT_MAX), [3, 1]), 1
        )[0]
        assert out.tolist() == [INT_MAX, INT_MAX, INT_MAX, 3, 1]

    def test_duplicates_kept(self):
        out = run_all(
            lambda comm: global_reduce(
                comm, MinKOp(3, INT_MAX), [5, 2, 2, 2, 9]
            ),
            1,
        )[0]
        assert out.tolist() == [2, 2, 2]

    def test_accum_matches_accum_block(self, rng):
        data = rng.integers(0, 1000, 64)
        op = MinKOp(6, INT_MAX)
        s_loop = op.ident()
        for x in data:
            s_loop = op.accum(s_loop, x)
        s_block = op.accum_block(op.ident(), data)
        assert np.array_equal(s_loop, s_block)

    def test_invalid_k(self):
        with pytest.raises(OperatorError):
            MinKOp(0)

    @pytest.mark.parametrize("p", [1, 3, 5])
    def test_translate_style_same_results(self, p, rng):
        data = rng.integers(0, 500, 60)

        def run(op):
            return run_all(
                lambda comm: global_reduce(
                    comm, op, block_split(data, comm.size, comm.rank)
                ),
                p,
            )[0]

        a = run(MinKOp(4, INT_MAX))
        b = run(TranslateMinKOp(4, INT_MAX))
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("p", SIZES)
    def test_maxk(self, p, rng):
        data = rng.integers(0, 10_000, 99)
        out = run_all(
            lambda comm: global_reduce(
                comm, MaxKOp(4, np.iinfo(np.int64).min),
                block_split(data, comm.size, comm.rank),
            ),
            p,
        )
        expected = np.sort(data)[-4:].tolist()
        for v in out:
            assert v.tolist() == expected


class TestMini:
    @pytest.mark.parametrize("p", SIZES)
    def test_min_and_location(self, p):
        """var (val, loc) = mini(integer) reduce [i in 1..n] (A(i), i)."""
        data = [5, 2, 9, 2, 7, 1, 3, 1, 8, 6]
        pairs = [(v, i) for i, v in enumerate(data)]
        out = run_all(
            lambda comm: global_reduce(
                comm, MiniOp(), block_split(pairs, comm.size, comm.rank)
            ),
            p,
        )
        assert all(v == (1, 5) for v in out)  # smallest loc among ties

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_maxi(self, p):
        data = [5, 9, 2, 9, 7]
        pairs = [(v, i) for i, v in enumerate(data)]
        out = run_all(
            lambda comm: global_reduce(
                comm, MaxiOp(), block_split(pairs, comm.size, comm.rank)
            ),
            p,
        )
        assert all(v == (9, 1) for v in out)

    def test_empty_state_is_identity(self):
        op = MiniOp()
        s = op.combine(op.ident(), op.accum(op.ident(), (3.0, 7)))
        assert op.gen(s) == (3.0, 7)

    def test_accum_block_array_form(self):
        op = MiniOp()
        arr = np.array([[4.0, 0], [1.0, 1], [1.0, 2]])
        s = op.accum_block(op.ident(), arr)
        assert op.gen(s) == (1.0, 1)


class TestCounts:
    @pytest.mark.parametrize("p", SIZES)
    def test_paper_reduction(self, p):
        out = run_all(
            lambda comm: global_reduce(
                comm, CountsOp(8), block_split(PAPER_DATA, comm.size, comm.rank)
            ),
            p,
        )
        for v in out:
            assert v.tolist() == [0, 1, 2, 1, 0, 2, 1, 3]

    @pytest.mark.parametrize("p", SIZES)
    def test_paper_ranking_scan(self, p):
        out = gather_scan(
            lambda comm: global_scan(
                comm, CountsOp(8), block_split(PAPER_DATA, comm.size, comm.rank)
            ),
            p,
        )
        assert out == [1, 1, 2, 1, 1, 1, 2, 1, 3, 2]

    def test_matches_bincount(self, rng):
        data = rng.integers(0, 16, 200)
        out = run_all(
            lambda comm: global_reduce(comm, CountsOp(16, base=0), data), 1
        )[0]
        assert out.tolist() == np.bincount(data, minlength=16).tolist()

    def test_out_of_range_rejected(self):
        op = CountsOp(8)
        with pytest.raises(OperatorError):
            op.accum(op.ident(), 0)  # base is 1
        with pytest.raises(OperatorError):
            op.accum_block(op.ident(), np.array([1, 9]))

    def test_custom_base(self):
        op = CountsOp(3, base=-1)
        s = op.accum_block(op.ident(), np.array([-1, 0, 1, 1]))
        assert s.tolist() == [1, 1, 2]


class TestSorted:
    @pytest.mark.parametrize("p", SIZES)
    def test_sorted_data(self, p):
        data = np.arange(40)
        out = run_all(
            lambda comm: global_reduce(
                comm, SortedOp(), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        assert all(out)

    @pytest.mark.parametrize("p", SIZES)
    def test_equal_runs_are_sorted(self, p):
        data = np.zeros(20, dtype=int)
        out = run_all(
            lambda comm: global_reduce(
                comm, SortedOp(), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        assert all(out)

    def test_single_element_sorted(self):
        assert run_all(lambda comm: global_reduce(comm, SortedOp(), [5]), 1)[0]

    def test_empty_sorted(self):
        assert run_all(lambda comm: global_reduce(comm, SortedOp(), []), 1)[0]

    @pytest.mark.parametrize("p", [2, 4])
    def test_works_on_floats_and_strings(self, p):
        floats = np.array([0.1, 0.2, 0.2, 0.9])
        strings = ["apple", "banana", "cherry", "date"]

        def prog_f(comm):
            return global_reduce(
                comm, SortedOp(), block_split(floats, comm.size, comm.rank)
            )

        def prog_s(comm):
            return global_reduce(
                comm, SortedOp(), block_split(strings, comm.size, comm.rank)
            )

        assert all(run_all(prog_f, p))
        assert all(run_all(prog_s, p))

    def test_strings_unsorted(self):
        strings = ["banana", "apple"]
        assert not run_all(
            lambda comm: global_reduce(comm, SortedOp(), strings), 1
        )[0]

    def test_accum_block_loop_consistency(self, rng):
        data = rng.integers(0, 100, 30)
        op = SortedOp()
        s1 = op.ident()
        s1 = op.pre_accum(s1, data[0])
        for x in data:
            s1 = op.accum(s1, x)
        s2 = op.ident()
        s2 = op.pre_accum(s2, data[0])
        s2 = op.accum_block(s2, np.asarray(data))
        assert op.gen(s1) == op.gen(s2)
        assert s1.first == s2.first and s1.last == s2.last
