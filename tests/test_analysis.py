"""Tests for efficiency series, reports, and the call census."""

import pytest

from repro import mpi
from repro.analysis import (
    Series,
    crossover,
    format_series_csv,
    format_speedup_figure,
    format_table,
    sweep,
)
from repro.nas.callcounts import census
from repro.runtime import spmd_run


class TestSeries:
    def test_speedup_relative_to_own_t1(self):
        s = Series("x", [1, 2, 4], [8.0, 4.0, 2.0])
        assert s.speedup() == [1.0, 2.0, 4.0]
        assert s.efficiency() == [1.0, 1.0, 1.0]

    def test_speedup_with_external_base(self):
        s = Series("x", [1, 2], [10.0, 4.0])
        assert s.speedup(base_t1=8.0) == [0.8, 2.0]

    def test_t1_extrapolated_when_missing(self):
        s = Series("x", [2, 4], [4.0, 2.0])
        assert s.t1 == 8.0

    def test_sweep(self):
        s = sweep("lbl", lambda p: 10.0 / p, [1, 2, 5])
        assert s.procs == [1, 2, 5]
        assert s.times == [10.0, 5.0, 2.0]

    def test_crossover(self):
        a = Series("a", [1, 2, 4], [10.0, 4.0, 1.0])
        b = Series("b", [1, 2, 4], [8.0, 5.0, 3.0])
        assert crossover(a, b) == 2
        assert crossover(b, a) == 1
        c = Series("c", [1, 2, 4], [100.0, 100.0, 100.0])
        assert crossover(c, a) is None

    def test_crossover_grid_mismatch(self):
        with pytest.raises(ValueError):
            crossover(Series("a", [1], [1.0]), Series("b", [2], [1.0]))


class TestReports:
    def test_format_table_aligns(self):
        out = format_table(
            ["p", "time"], [[1, 1.5], [16, 0.125]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "p" in lines[2] and "time" in lines[2]
        assert "0.125" in out

    def test_format_speedup_figure(self):
        a = Series("MPI", [1, 2], [8.0, 4.5])
        b = Series("RSMPI", [1, 2], [8.0, 4.0])
        out = format_speedup_figure("Fig", [a, b])
        assert "MPI" in out and "RSMPI" in out
        assert "speedup (efficiency)" in out

    def test_speedup_figure_grid_mismatch(self):
        with pytest.raises(ValueError):
            format_speedup_figure(
                "F", [Series("a", [1], [1.0]), Series("b", [2], [1.0])]
            )

    def test_csv(self):
        a = Series("a", [1, 2], [1.0, 0.5])
        csv = format_series_csv([a])
        lines = csv.splitlines()
        assert lines[0] == "p,a"
        assert lines[1].startswith("1,")


class TestCensus:
    def test_reduction_fraction(self):
        def prog(comm):
            for _ in range(9):
                comm.bcast(1, root=0)
            comm.allreduce(1, mpi.SUM)

        res = spmd_run(prog, 4)
        c = census(res.traces)
        assert c.n_reductions == 1
        assert c.n_total == 10
        assert c.reduction_fraction == pytest.approx(0.1)

    def test_per_rank_normalization(self):
        def prog(comm):
            comm.allreduce(1, mpi.SUM)

        res = spmd_run(prog, 8)
        assert census(res.traces).collective_calls["allreduce"] == 1
        assert census(res.traces, per_rank=False).collective_calls[
            "allreduce"
        ] == 8

    def test_p2p_counted(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, 1)
            elif comm.rank == 1:
                comm.recv(0)

        c = census(spmd_run(prog, 2).traces, per_rank=False)
        assert c.p2p_calls["send"] == 1
        assert c.p2p_calls["recv"] == 1

    def test_format(self):
        def prog(comm):
            comm.scan(1, mpi.SUM)
            comm.barrier()

        c = census(spmd_run(prog, 2).traces)
        text = c.format("census")
        assert "scan" in text and "<- reduction" in text
        assert "%" in text

    def test_empty(self):
        c = census(spmd_run(lambda comm: None, 2).traces)
        assert c.n_total == 0 and c.reduction_fraction == 0.0


class TestUtilization:
    def _run(self, p=4):
        from repro.runtime import CostModel, spmd_run

        cm = CostModel().with_rates(work=1e-3)

        def prog(comm):
            comm.charge_elements("work", comm.rank + 1)  # uneven load
            comm.barrier()

        return spmd_run(prog, p, cost_model=cm)

    def test_breakdown_sums_to_makespan(self):
        from repro.analysis import utilization

        res = self._run()
        for u in utilization(res):
            total = (
                u.compute_seconds
                + u.comm_wait_seconds
                + u.trailing_idle_seconds
            )
            assert total == pytest.approx(res.time, rel=1e-9)

    def test_uneven_load_visible(self):
        from repro.analysis import utilization

        res = self._run()
        rows = utilization(res)
        assert rows[3].compute_seconds > rows[0].compute_seconds
        assert rows[0].busy_fraction < rows[3].busy_fraction

    def test_format(self):
        from repro.analysis import format_utilization

        text = format_utilization(self._run())
        assert "makespan" in text and "busy%" in text
        assert "aggregate utilization" in text

    def test_zero_time_run(self):
        from repro.analysis import format_utilization, utilization
        from repro.runtime import spmd_run

        res = spmd_run(lambda comm: None, 1)
        assert utilization(res)[0].busy_fraction == 1.0
        assert "makespan" in format_utilization(res)


class TestChromeTrace:
    def _run(self):
        from repro import mpi
        from repro.runtime import spmd_run

        def prog(comm):
            comm.charge(1e-3, "kernel")
            comm.allreduce(comm.rank, mpi.SUM)

        return spmd_run(prog, 3, record_events=True)

    def test_structure(self):
        from repro.analysis import to_chrome_trace

        doc = to_chrome_trace(self._run())
        assert doc["otherData"]["nprocs"] == 3
        kinds = {e.get("cat") for e in doc["traceEvents"] if "cat" in e}
        assert {"compute", "send", "recv", "collective"} <= kinds
        # thread names for each rank
        names = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        assert len(names) == 3

    def test_compute_spans_have_duration(self):
        from repro.analysis import to_chrome_trace

        doc = to_chrome_trace(self._run())
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert spans and all(s["dur"] > 0 for s in spans)
        assert spans[0]["dur"] == pytest.approx(1e-3 * 1e6)

    def test_requires_recorded_events(self):
        from repro.analysis import to_chrome_trace
        from repro.runtime import spmd_run

        res = spmd_run(lambda comm: comm.barrier(), 2)  # no events
        with pytest.raises(ValueError, match="record_events"):
            to_chrome_trace(res)

    def test_write_roundtrip(self, tmp_path):
        import json

        from repro.analysis import write_chrome_trace

        path = tmp_path / "trace.json"
        write_chrome_trace(self._run(), str(path))
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
