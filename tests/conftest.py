"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import spmd_run

#: The paper's running example data set (§1): sum-reduce = 55,
#: scan = [6,13,19,22,30,32,40,44,52,55], octant counts = [0,1,2,1,0,2,1,3].
PAPER_DATA = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3]


def block_split(data, p: int, r: int):
    """Contiguous block decomposition (BlockDist bounds) of a sequence."""
    n = len(data)
    base, extra = divmod(n, p)
    lo = r * base + min(r, extra)
    hi = lo + base + (1 if r < extra else 0)
    return data[lo:hi]


def run_all(fn, nprocs: int, **kwargs):
    """spmd_run and return the per-rank returns list."""
    return spmd_run(fn, nprocs, **kwargs).returns


def gather_scan(fn, nprocs: int, **kwargs):
    """spmd_run a function returning per-rank lists; concatenate them."""
    out = []
    for part in spmd_run(fn, nprocs, **kwargs).returns:
        out.extend(part)
    return out


@pytest.fixture
def paper_data():
    return list(PAPER_DATA)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (integration sweeps)"
    )
