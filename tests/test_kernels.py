"""The kernel-compilation tier (`repro.core.kernels`).

Covers: compiler classification, the identity-oracle guarantee (kernel
tier on/off is bit-identical for every chaos-catalogue operator, reduce
and scan), the batched one-sweep accumulate (K=8 over the full
{4,8,16}-rank grid), kernel-cache hit/miss accounting and generation
invalidation, engine cross-job memoization, numba opt-in (skipped when
numba is absent), and the zero-alloc poison test for the kernels-off
hot path.
"""

import random
import struct

import numpy as np
import pytest

from repro import spmd_run
from repro.core import (
    global_reduce,
    global_reduce_many,
    global_scan,
    global_xscan,
)
from repro.core import kernels as kernels_mod
from repro.core.kernels import (
    ElementwiseKernel,
    FallbackKernel,
    KernelCache,
    SegmentedKernel,
    batched_accumulate,
    compile_kernel,
)
from repro.core.operator import state_equal
from repro.faults.chaos import CHAOS_CASES
from repro.mpi import tuning
from repro.obs import Tracer
from repro.ops import (
    AllOp,
    BandOp,
    BorOp,
    BxorOp,
    CountsOp,
    MaxOp,
    MeanVarOp,
    MinKOp,
    MinOp,
    ProdOp,
    SumOp,
    TranslateMinKOp,
    UfuncOp,
)

#: Eight tile-exact operators over int data — the acceptance-grid batch.
EIGHT_OPS = (
    lambda: SumOp(),
    lambda: ProdOp(np.int64(1)),
    lambda: MinOp(np.iinfo(np.int64).max),
    lambda: MaxOp(np.iinfo(np.int64).min),
    lambda: BandOp(),
    lambda: BorOp(),
    lambda: BxorOp(),
    lambda: AllOp(),
)


@pytest.fixture
def kernels_off():
    """Disable the kernel tier for one test, restoring it afterwards."""
    kernels_mod.configure(enabled=False)
    try:
        yield
    finally:
        kernels_mod.configure(enabled=True)


def bit_equal(a, b):
    """Strict structural equality: same types, same bytes for arrays and
    NumPy scalars (the identity-oracle guarantee is bitwise, not
    approximate)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and a.tobytes() == b.tobytes()
        )
    if isinstance(a, np.generic):
        return a.tobytes() == b.tobytes()
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(bit_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(
            bit_equal(v, b[k]) for k, v in a.items()
        )
    if isinstance(a, (set, frozenset)):
        return a == b
    if isinstance(a, float):
        # Bitwise, so NaN == NaN and 0.0 != -0.0 (identity means identity).
        return struct.pack("<d", a) == struct.pack("<d", b)
    if hasattr(a, "__dict__"):
        return bit_equal(vars(a), vars(b))
    if hasattr(type(a), "__slots__"):
        return all(
            bit_equal(getattr(a, s), getattr(b, s))
            for s in type(a).__slots__
        )
    return a == b


class TestCompilerClassification:
    def test_ufunc_ops_compile_elementwise(self):
        arr = np.arange(8, dtype=np.int64)
        for op in (SumOp(), ProdOp(), MinOp(), MaxOp(), BandOp(), AllOp()):
            kern = compile_kernel(op, arr)
            assert isinstance(kern, ElementwiseKernel), op.name
            assert kern.kind == "elementwise"

    def test_custom_block_ops_compile_segmented(self):
        arr = np.arange(8, dtype=np.int64)
        for op in (CountsOp(8), MinKOp(3), MeanVarOp()):
            kern = compile_kernel(op, arr)
            assert isinstance(kern, SegmentedKernel), op.name

    def test_stateful_ops_compile_fallback(self):
        from repro.ops import AffineOp

        # AffineOp is the catalogue's per-element stateful operator (no
        # block overrides), so it runs the base loop through the tier.
        kern = compile_kernel(AffineOp(), [(2.0, 1.0)])
        assert isinstance(kern, FallbackKernel)
        # TranslateMinKOp ships its own block method -> segmented class.
        kern = compile_kernel(TranslateMinKOp(3), [3.0, 1.0, 2.0])
        assert isinstance(kern, SegmentedKernel)

    def test_exactness_follows_ufunc_and_dtype(self):
        ints = np.arange(4, dtype=np.int64)
        floats = np.linspace(0, 1, 4)
        # Integer add: exactly associative, loop- and tile-exact.
        k = compile_kernel(SumOp(), ints)
        assert k.loop_exact and k.tile_exact
        # Float add: pairwise reduction reorders, never exact.
        k = compile_kernel(SumOp(), floats)
        assert not k.loop_exact and not k.tile_exact
        # min/max: order-independent on any dtype.
        assert compile_kernel(MinOp(), floats).loop_exact
        assert compile_kernel(MaxOp(), floats).tile_exact
        # Custom-block ops are never assumed exact; the base loop is.
        assert not compile_kernel(MeanVarOp(), floats).loop_exact
        from repro.ops import AffineOp

        assert compile_kernel(AffineOp(), [(2.0, 1.0)]).loop_exact

    def test_pyseq_dtype_unknown_only_any_dtype_ufuncs_exact(self):
        assert not compile_kernel(SumOp(), [1, 2, 3]).loop_exact
        assert compile_kernel(MinOp(), [1.0, 2.0]).loop_exact


class TestIdentityOracle:
    """Kernel tier on vs off must be bit-identical, reduce and scan,
    for every operator in the chaos catalogue."""

    @pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 64])
    def test_kernel_accumulate_matches_block(self, case, n):
        rng = random.Random(1000 + n)
        data = case.make_data(rng, n)
        op = case.make_op()
        expected = op.accum_block(op.ident(), data)
        op2 = case.make_op()
        kern = compile_kernel(op2, data)
        got = op2.ident()
        if n > 0:
            got = op2.pre_accum(got, data[0])
            got = kern.accumulate(op2, got, data)
            got = op2.post_accum(got, data[n - 1])
            exp2 = case.make_op()
            expected = exp2.ident()
            expected = exp2.pre_accum(expected, data[0])
            expected = exp2.accum_block(expected, data)
            expected = exp2.post_accum(expected, data[n - 1])
        assert state_equal(expected, got), case.name

    @pytest.mark.parametrize(
        "case",
        [c for c in CHAOS_CASES if c.scan],
        ids=lambda c: c.name,
    )
    @pytest.mark.parametrize("exclusive", [False, True])
    def test_kernel_scan_matches_scan_block(self, case, exclusive):
        # Rebuilt per path: the protocol lets accum mutate its state, so
        # the seed object must not be shared between the two scans.
        def build(case):
            rng = random.Random(2024)
            data = case.make_data(rng, 17)
            op = case.make_op()
            seed = op.accum_block(op.ident(), case.make_data(rng, 4))
            return op, seed, data

        op, seed, data = build(case)
        expected = op.scan_block(seed, data, exclusive=exclusive)
        op2, seed2, data2 = build(case)
        kern = compile_kernel(op2, data2)
        got = kern.scan(op2, seed2, data2, exclusive=exclusive)
        assert state_equal(list(expected[0]), list(got[0])), case.name
        assert state_equal(expected[1], got[1]), case.name

    @pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
    def test_global_reduce_bit_identical_on_vs_off(self, case, kernels_off):
        rng = random.Random(31337)
        blocks = [case.make_data(rng, 6) for _ in range(4)]

        def prog(comm):
            return global_reduce(comm, case.make_op(), blocks[comm.rank])

        off = spmd_run(prog, 4).returns
        kernels_mod.configure(enabled=True)
        try:
            on = spmd_run(prog, 4).returns
        finally:
            kernels_mod.configure(enabled=False)
        for a, b in zip(off, on):
            assert bit_equal(a, b), case.name

    @pytest.mark.parametrize(
        "case",
        [c for c in CHAOS_CASES if c.scan],
        ids=lambda c: c.name,
    )
    def test_global_scans_bit_identical_on_vs_off(self, case, kernels_off):
        rng = random.Random(55)
        blocks = [case.make_data(rng, 5) for _ in range(4)]

        def prog(comm):
            op = case.make_op()
            inc = global_scan(comm, op, blocks[comm.rank])
            exc = global_xscan(comm, case.make_op(), blocks[comm.rank])
            return inc, exc

        off = spmd_run(prog, 4).returns
        kernels_mod.configure(enabled=True)
        try:
            on = spmd_run(prog, 4).returns
        finally:
            kernels_mod.configure(enabled=False)
        for a, b in zip(off, on):
            assert bit_equal(a, b), case.name

    def test_non_commutative_ops_fall_back_cleanly(self):
        """Non-commutative operators classify as segmented/fallback and
        keep their order-preserving semantics through the tier."""
        from repro.ops import ConcatOp, SegmentedOp

        seg = SegmentedOp(lambda a, b: a + b, 0.0, name="segsum")
        assert not seg.commutative
        kern = compile_kernel(seg, [(1.0, 0), (2.0, 1)])
        assert isinstance(kern, SegmentedKernel)
        assert not kern.tile_exact  # never batched into a shared sweep
        cat = ConcatOp()
        assert isinstance(compile_kernel(cat, [1, 2]), SegmentedKernel)


class TestBatchedAccumulate:
    def _ops(self):
        return [make() for make in EIGHT_OPS]

    def test_single_sweep_bit_identical_to_sequential(self):
        data = (np.arange(100_003, dtype=np.int64) % 97) + 1
        ops = self._ops()
        batched = batched_accumulate(ops, data, cache=KernelCache())
        for op, got in zip(self._ops(), batched):
            expected = op.ident()
            expected = op.pre_accum(expected, data[0])
            expected = op.accum_block(expected, data)
            expected = op.post_accum(expected, data[-1])
            assert np.asarray(got).tobytes() == np.asarray(expected).tobytes()
            assert np.asarray(got).dtype == np.asarray(expected).dtype

    def test_mixed_exactness_demotes_to_per_op_passes(self):
        data = np.linspace(0.0, 1.0, 70_000)
        ops = [SumOp(), MinOp(), MeanVarOp()]  # float add is not tile-exact

        class Probe:
            enabled = True

            def __init__(self):
                self.names = []

            def counter(self, name):
                probe = self

                class C:
                    def inc(self, k=1):
                        probe.names.append(name)

                return C()

        probe = Probe()
        batched_accumulate(ops, data, cache=KernelCache(), metrics=probe)
        assert "kernels.batch.fallback_passes" in probe.names
        assert "kernels.batch.sweeps" not in probe.names

    @pytest.mark.parametrize("nprocs", [4, 8, 16])
    def test_reduce_many_one_sweep_grid(self, nprocs):
        """The acceptance grid: K=8 fused reductions over {4,8,16} ranks
        share ONE data sweep per rank and stay bit-identical to the
        sequential path."""
        n = 40_000  # > the sweep tile size, so the tiled path engages
        data = (np.arange(n, dtype=np.int64) % 89) + 1
        tracer = Tracer()

        def fused_prog(comm):
            return global_reduce_many(
                comm, [(make(), data) for make in EIGHT_OPS]
            )

        fused = spmd_run(fused_prog, nprocs, tracer=tracer).returns

        def sequential_prog(comm):
            return [global_reduce(comm, make(), data) for make in EIGHT_OPS]

        sequential = spmd_run(sequential_prog, nprocs).returns
        for rank_fused, rank_seq in zip(fused, sequential):
            for a, b in zip(rank_fused, rank_seq):
                assert np.asarray(a).tobytes() == np.asarray(b).tobytes()
                assert np.asarray(a).dtype == np.asarray(b).dtype
        snap = tracer.metrics.snapshot()["counters"]
        assert snap.get("kernels.batch.sweeps") == nprocs  # one per rank
        assert snap.get("kernels.batch.members") == nprocs * len(EIGHT_OPS)

    def test_virtual_time_matches_sequential_charges(self):
        """The shared sweep must not change the cost model's answer:
        per-op element charges are identical to sequential calls."""
        data = (np.arange(40_000, dtype=np.int64) % 13) + 1

        def fused_prog(comm):
            return global_reduce_many(
                comm,
                [(make(), data) for make in EIGHT_OPS],
                accum_rate="numpy_stream",
            )

        def sequential_prog(comm):
            out = []
            bucket_free = [
                global_reduce(comm, make(), data, accum_rate="numpy_stream")
                for make in EIGHT_OPS
            ]
            out.extend(bucket_free)
            return out

        fused = spmd_run(fused_prog, 4)
        sequential = spmd_run(sequential_prog, 4)
        # Accumulate charges are per-op identical; only combine waves
        # differ (fusion shares them), so fused can't be slower.
        assert fused.time <= sequential.time + 1e-12


class TestKernelCache:
    def test_hits_and_misses(self):
        cache = KernelCache()
        arr = np.arange(8, dtype=np.int64)
        k1 = cache.get(SumOp(), arr)
        k2 = cache.get(SumOp(), arr)
        assert k1 is k2
        stats = cache.stats()
        assert stats == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
        }

    def test_key_separates_dtype_and_shape_class(self):
        cache = KernelCache()
        op = SumOp()
        cache.get(op, np.arange(4, dtype=np.int64))
        cache.get(op, np.arange(4, dtype=np.float64))
        cache.get(op, np.zeros((2, 2)))
        cache.get(op, [1, 2, 3])
        assert cache.stats()["entries"] == 4

    def test_distinct_ufuncs_get_distinct_kernels(self):
        cache = KernelCache()
        arr = np.arange(4, dtype=np.int64)
        kmin = cache.get(UfuncOp(np.minimum, np.inf, "min"), arr)
        kmax = cache.get(UfuncOp(np.maximum, -np.inf, "max"), arr)
        assert kmin is not kmax
        assert kmin.ufunc is np.minimum and kmax.ufunc is np.maximum

    def test_parameterized_ops_share_one_entry(self):
        cache = KernelCache()
        arr = [5.0, 1.0, 3.0]
        cache.get(MinKOp(3), arr)
        cache.get(MinKOp(7), arr)
        assert cache.stats()["entries"] == 1
        assert cache.stats()["hits"] == 1

    def test_configure_bumps_generation_and_flushes(self):
        cache = KernelCache()
        arr = np.arange(4, dtype=np.int64)
        cache.get(SumOp(), arr)
        assert cache.stats()["entries"] == 1
        before = kernels_mod.cache_generation()
        kernels_mod.configure()  # no-arg configure still bumps
        assert kernels_mod.cache_generation() == before + 1
        cache.get(SumOp(), arr)  # flush happens lazily on next get
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["misses"] == 2

    def test_worlds_share_the_process_cache(self):
        from repro.runtime.world import World

        w = World(2)
        assert w.kernel_cache is kernels_mod.default_cache()


class TestEngineMemoization:
    def test_cross_job_hit_rate(self):
        """Repeated engine submits of the same operator/dtype re-derive
        nothing: after the first job compiles the kernel, every later
        lookup is a hit (the ScheduleCache-style generation mechanism
        keeps entries valid across jobs)."""
        from repro.engine import Engine

        data = np.arange(512, dtype=np.int64)

        def job(comm):
            return global_reduce(comm, SumOp(), data)

        with Engine(4) as eng:
            first = eng.submit(job, nprocs=2)
            first.result()
            base = eng.stats()["kernel_cache"]
            for _ in range(10):
                eng.submit(job, nprocs=2).result()
            after = eng.stats()["kernel_cache"]
        assert after["misses"] == base["misses"]  # nothing recompiled
        assert after["hits"] >= base["hits"] + 10

    def test_engine_stats_expose_kernel_cache(self):
        from repro.engine import Engine

        with Engine(2) as eng:
            stats = eng.stats()["kernel_cache"]
        assert set(stats) == {"entries", "hits", "misses", "hit_rate"}


class TestTuningDimension:
    def test_choose_kernel_default_crossover(self):
        assert tuning.choose_kernel(8, 4) == "scalar"
        assert tuning.choose_kernel(8192, 4) == "compiled"

    def test_constant_span_kernel_kind(self):
        lo, hi, algo = tuning.constant_span("kernel", 4, 4)
        assert lo == 0 and algo == "scalar"
        lo2, hi2, algo2 = tuning.constant_span("kernel", 1 << 20, 4)
        assert algo2 == "compiled" and lo2 == hi + 1

    def test_scalar_routing_only_when_loop_exact(self):
        """Routing to the scalar loop is gated on loop_exact, so a table
        that says "scalar" for everything still can't change float
        results."""
        always_scalar = tuning.DecisionTable(
            allreduce=tuning.DEFAULT_TABLE.allreduce,
            reduce=tuning.DEFAULT_TABLE.reduce,
            scan=tuning.DEFAULT_TABLE.scan,
            fusion=tuning.DEFAULT_TABLE.fusion,
            kernel=(
                tuning.Band(1 << 62, (((1 << 62), "scalar"),)),
            ),
        )
        data = np.linspace(0.0, 1.0, 4096)

        def prog(comm):
            return global_reduce(comm, SumOp(), data)

        baseline = spmd_run(prog, 2).returns[0]
        previous = tuning.set_decision_table(always_scalar)
        try:
            forced = spmd_run(prog, 2).returns[0]
        finally:
            tuning.set_decision_table(previous)
        # Float add is not loop-exact, so the block kernel still ran —
        # bit-identical to the default routing.
        assert np.asarray(forced).tobytes() == np.asarray(baseline).tobytes()


@pytest.mark.skipif(
    not kernels_mod.numba_available(), reason="numba not installed"
)
class TestNumbaSpecialization:
    @pytest.fixture(autouse=True)
    def numba_on(self):
        kernels_mod.configure(numba=True)
        try:
            yield
        finally:
            kernels_mod.configure(numba=False)

    def test_jit_matches_oracle_bitwise(self):
        arr = (np.arange(10_000, dtype=np.int64) % 101) + 1
        for op in (SumOp(), ProdOp(np.int64(1)), MinOp(np.iinfo(np.int64).max),
                   BandOp(), BorOp(), BxorOp()):
            kern = compile_kernel(op, arr)
            oracle = op.accum_block(op.ident(), arr)
            got = kern.accumulate(op, op.ident(), arr)
            assert np.asarray(got).tobytes() == np.asarray(oracle).tobytes(), (
                op.name
            )

    def test_float_ops_keep_the_numpy_oracle(self):
        # Float add is not loop-exact, so no jit fold is attached.
        kern = compile_kernel(SumOp(), np.linspace(0, 1, 64))
        assert kern._jit is None


class TestKernelsOffZeroAlloc:
    """With the tier disabled, the hot path must not touch kernel
    machinery at all: no compilations, no cache lookups, no kernel
    objects (the poison idiom of the disabled-tracer tests)."""

    @pytest.fixture
    def poisoned(self, monkeypatch, kernels_off):
        def boom(*a, **k):
            raise AssertionError(
                "kernel machinery touched on the kernels-off path"
            )

        monkeypatch.setattr(kernels_mod.KernelCache, "get", boom)
        monkeypatch.setattr(kernels_mod, "compile_kernel", boom)
        for cls in (ElementwiseKernel, SegmentedKernel, FallbackKernel):
            monkeypatch.setattr(cls, "__init__", boom)

    def test_reduce_scan_and_fusion_stay_clean(self, poisoned):
        data = np.arange(64, dtype=np.int64)

        def prog(comm):
            r = global_reduce(comm, SumOp(), data)
            s = global_scan(comm, MaxOp(np.int64(0)), data)
            many = global_reduce_many(
                comm, [(SumOp(), data), (BorOp(), data)]
            )
            return r, s[-1], many

        out = spmd_run(prog, 4).returns[0]
        assert out[0] == 4 * int(data.sum())

    def test_disabled_results_match_enabled(self, kernels_off):
        data = np.arange(100, dtype=np.int64)

        def prog(comm):
            return global_reduce(comm, SumOp(), data)

        off = spmd_run(prog, 2).returns[0]
        kernels_mod.configure(enabled=True)
        try:
            on = spmd_run(prog, 2).returns[0]
        finally:
            kernels_mod.configure(enabled=False)
        assert bit_equal(off, on)
