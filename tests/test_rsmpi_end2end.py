"""End-to-end RSMPI tests: Listing 8 verbatim, the API routines, the
OperatorSpec decorator path, and StateRecord behavior."""

import numpy as np
import pytest

from repro.errors import DslSemanticError, DslSyntaxError
from repro.rsmpi import (
    INT_MAX,
    INT_MIN,
    OperatorSpec,
    RSMPI_Reduce,
    RSMPI_Reduceall,
    RSMPI_Scan,
    RSMPI_Xscan,
    StateRecord,
    compile_operator,
    indexed,
)
from repro.runtime import spmd_run
from tests.conftest import PAPER_DATA, block_split, gather_scan, run_all

#: Paper Listing 8, verbatim modulo whitespace.
LISTING_8 = """
rsmpi operator sorted {
  non-commutative
  state {
    int first, last;
    int status;
  }
  void ident(state s) {
    s->first = INT_MAX;
    s->last = INT_MIN;
    s->status = 1;
  }
  void pre_accum(state s, int i) {
    s->first = i;
  }
  void accum(state s, int i) {
    if (s->last > i)
      s->status = 0;
    s->last = i;
  }
  void combine(state s1, state s2) {
    s1->status &= s2->status &&
      (s1->last <= s2->first);
    s1->last = s2->last;
  }
  int generate(state s) {
    return s->status;
  }
}
"""

SIZES = [1, 2, 3, 5, 8]


class TestListing8:
    @pytest.fixture(scope="class")
    def sorted_op(self):
        return compile_operator(LISTING_8)

    def test_noncommutative_flag_carried(self, sorted_op):
        assert sorted_op.commutative is False
        assert sorted_op.name == "sorted"

    @pytest.mark.parametrize("p", SIZES)
    def test_sorted_true(self, sorted_op, p):
        data = list(range(60))
        out = run_all(
            lambda comm: RSMPI_Reduceall(
                sorted_op, block_split(data, comm.size, comm.rank), comm
            ),
            p,
        )
        assert all(v == 1 for v in out)

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("swap_at", [0, 29, 58])
    def test_sorted_false(self, sorted_op, p, swap_at):
        data = list(range(60))
        data[swap_at], data[swap_at + 1] = data[swap_at + 1], data[swap_at]
        out = run_all(
            lambda comm: RSMPI_Reduceall(
                sorted_op, block_split(data, comm.size, comm.rank), comm
            ),
            p,
        )
        assert all(v == 0 for v in out)

    @pytest.mark.parametrize("p", [2, 4])
    def test_boundary_violation_across_ranks(self, sorted_op, p):
        """Locally sorted everywhere; global violation only at a rank
        boundary — the case only the combine can catch."""

        def prog(comm):
            lo = 1000 * (comm.size - comm.rank)
            return RSMPI_Reduceall(sorted_op, list(range(lo, lo + 5)), comm)

        assert all(v == 0 for v in run_all(prog, p))


class TestAPIRoutines:
    @pytest.fixture(scope="class")
    def counts_op(self):
        return compile_operator(
            """
            rsmpi operator counts {
              param int k = 8;
              state { int v[k]; }
              void ident(state s) { int i; for (i = 0; i < k; i++) s->v[i] = 0; }
              void accum(state s, int x) { s->v[x - 1] += 1; }
              void combine(state s1, state s2) {
                int i;
                for (i = 0; i < k; i++) s1->v[i] += s2->v[i];
              }
              void red_generate(state s) { return s->v; }
              int scan_generate(state s, int x) { return s->v[x - 1]; }
            }
            """
        )

    @pytest.mark.parametrize("p", SIZES)
    def test_reduceall_counts(self, counts_op, p):
        out = run_all(
            lambda comm: RSMPI_Reduceall(
                counts_op, block_split(PAPER_DATA, comm.size, comm.rank), comm
            ),
            p,
        )
        for v in out:
            assert list(v) == [0, 1, 2, 1, 0, 2, 1, 3]

    @pytest.mark.parametrize("p", SIZES)
    def test_reduce_root_only(self, counts_op, p):
        out = run_all(
            lambda comm: RSMPI_Reduce(
                counts_op,
                block_split(PAPER_DATA, comm.size, comm.rank),
                comm,
                root=p - 1,
            ),
            p,
        )
        assert list(out[p - 1]) == [0, 1, 2, 1, 0, 2, 1, 3]
        assert all(v is None for v in out[: p - 1])

    @pytest.mark.parametrize("p", SIZES)
    def test_scan_rankings(self, counts_op, p):
        out = gather_scan(
            lambda comm: RSMPI_Scan(
                counts_op, block_split(PAPER_DATA, comm.size, comm.rank), comm
            ),
            p,
        )
        assert out == [1, 1, 2, 1, 1, 1, 2, 1, 3, 2]

    @pytest.mark.parametrize("p", SIZES)
    def test_xscan_zero_based(self, counts_op, p):
        out = gather_scan(
            lambda comm: RSMPI_Xscan(
                counts_op, block_split(PAPER_DATA, comm.size, comm.rank), comm
            ),
            p,
        )
        assert out == [0, 0, 1, 0, 0, 0, 1, 0, 2, 1]

    def test_generator_iterator_materialized(self):
        sum_op = compile_operator(
            """
            rsmpi operator summer {
              state { int total; }
              void ident(state s) { s->total = 0; }
              void accum(state s, int x) { s->total += x; }
              void combine(state s1, state s2) { s1->total += s2->total; }
              int generate(state s) { return s->total; }
            }
            """
        )
        out = run_all(
            lambda comm: RSMPI_Reduceall(
                sum_op, (x * x for x in range(5)), comm
            ),
            1,
        )
        assert out == [30]


class TestIndexedIterator:
    def test_pairs_with_global_indices(self):
        it = indexed(np.array([5.0, 7.0]), global_offset=10)
        assert it.tolist() == [[5.0, 10.0], [7.0, 11.0]]

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_mini_over_indexed(self, p):
        mini = compile_operator(
            """
            rsmpi operator mini {
              state { double val; int loc; int seen; }
              void ident(state s) { s->val = DBL_MAX; s->loc = -1; s->seen = 0; }
              void accum(state s, double x, int i) {
                if (!s->seen || x < s->val || (x == s->val && i < s->loc)) {
                  s->val = x; s->loc = i; s->seen = 1;
                }
              }
              void combine(state s1, state s2) {
                if (s2->seen) {
                  if (!s1->seen || s2->val < s1->val ||
                      (s2->val == s1->val && s2->loc < s1->loc)) {
                    s1->val = s2->val; s1->loc = s2->loc; s1->seen = 1;
                  }
                }
              }
              void red_generate(state s) { return s; }
            }
            """
        )
        data = np.array([5.0, 2.0, 9.0, 2.0, 7.0])

        def prog(comm):
            base, extra = divmod(len(data), comm.size)
            lo = comm.rank * base + min(comm.rank, extra)
            hi = lo + base + (1 if comm.rank < extra else 0)
            return RSMPI_Reduceall(mini, indexed(data[lo:hi], lo), comm)

        for s in run_all(prog, p):
            assert (s.val, s.loc) == (2.0, 1)


class TestOperatorSpecDecorators:
    def test_full_decorator_path(self):
        spec = OperatorSpec(
            "sorted", commutative=False,
            state={"first": INT_MAX, "last": INT_MIN, "status": 1},
        )

        @spec.pre_accum
        def _(s, i):
            s.first = i

        @spec.accum
        def _(s, i):
            if s.last > i:
                s.status = 0
            s.last = i

        @spec.combine
        def _(s1, s2):
            s1.status &= s2.status and (s1.last <= s2.first)
            s1.last = s2.last

        @spec.generate
        def _(s):
            return s.status

        op = spec.build()
        out = run_all(
            lambda comm: RSMPI_Reduceall(
                op, block_split(list(range(30)), comm.size, comm.rank), comm
            ),
            4,
        )
        assert all(v == 1 for v in out)

    def test_missing_accum_rejected(self):
        spec = OperatorSpec("x", state={"a": 0})
        spec.combine(lambda a, b: None)
        with pytest.raises(DslSemanticError, match="accum"):
            spec.build()

    def test_missing_combine_rejected(self):
        spec = OperatorSpec("x", state={"a": 0})
        spec.accum(lambda s, x: None)
        with pytest.raises(DslSemanticError, match="combine"):
            spec.build()

    def test_state_or_ident_required(self):
        spec = OperatorSpec("x")
        spec.accum(lambda s, x: None)
        spec.combine(lambda a, b: None)
        with pytest.raises(DslSemanticError):
            spec.build()


class TestStateRecord:
    def test_field_access(self):
        s = StateRecord({"a": 1, "v": [0, 0]})
        s.a = 5
        s.v[1] = 9
        assert s.a == 5 and s.v == [0, 9]

    def test_unknown_field_rejected(self):
        s = StateRecord({"a": 1})
        with pytest.raises(AttributeError, match="no field"):
            s.b = 1
        with pytest.raises(AttributeError, match="no field"):
            _ = s.b

    def test_defaults_isolated_between_instances(self):
        defaults = {"v": [0, 0]}
        s1 = StateRecord(defaults)
        s2 = StateRecord(defaults)
        s1.v[0] = 99
        assert s2.v == [0, 0]

    def test_equality(self):
        assert StateRecord({"a": 1}) == StateRecord({"a": 1})
        assert StateRecord({"a": 1}) != StateRecord({"a": 2})
        assert StateRecord({"a": 1}) != StateRecord({"b": 1})

    def test_deepcopyable(self):
        import copy

        s = StateRecord({"v": [1, 2]})
        c = copy.deepcopy(s)
        c.v[0] = 99
        assert s.v == [1, 2]

    def test_transfer_nbytes(self):
        assert StateRecord({"a": 1, "b": 2.0}).transfer_nbytes() > 0


class TestDSLErrors:
    def test_syntax_error_has_position(self):
        with pytest.raises(DslSyntaxError) as ei:
            compile_operator("rsmpi operator x { state int a; }")
        assert "line" in str(ei.value)

    def test_missing_state_block(self):
        with pytest.raises(DslSemanticError, match="state"):
            compile_operator(
                """
                rsmpi operator x {
                  void accum(state s, int i) { ; }
                  void combine(state s1, state s2) { ; }
                }
                """
            )

    def test_bad_signature_arity(self):
        with pytest.raises(DslSemanticError, match="parameters"):
            compile_operator(
                """
                rsmpi operator x {
                  state { int a; }
                  void accum(state s) { ; }
                  void combine(state s1, state s2) { ; }
                }
                """
            )

    def test_first_param_must_be_state(self):
        with pytest.raises(DslSemanticError, match="state"):
            compile_operator(
                """
                rsmpi operator x {
                  state { int a; }
                  void accum(int i, state s) { ; }
                  void combine(state s1, state s2) { ; }
                }
                """
            )

    def test_combine_needs_two_states(self):
        with pytest.raises(DslSemanticError, match="combine"):
            compile_operator(
                """
                rsmpi operator x {
                  state { int a; }
                  void accum(state s, int i) { ; }
                  void combine(state s1, int x) { ; }
                }
                """
            )
