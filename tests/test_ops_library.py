"""Tests for the library-grade operators: stats, extrema, topk,
segmented, histogram, logical."""

import numpy as np
import pytest

from repro.core import global_reduce, global_scan, global_xscan
from repro.errors import OperatorError
from repro.ops import (
    AllOp,
    AnyOp,
    BandOp,
    BorOp,
    BxorOp,
    ExtremaKLocOp,
    HistogramOp,
    MeanVarOp,
    SegmentedOp,
    TopKOp,
    XorOp,
)
from tests.conftest import block_split, gather_scan, run_all

SIZES = [1, 2, 3, 5, 8]


class TestMeanVar:
    @pytest.mark.parametrize("p", SIZES)
    def test_matches_numpy(self, p, rng):
        data = rng.normal(10.0, 3.0, 200)
        out = run_all(
            lambda comm: global_reduce(
                comm, MeanVarOp(), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        for r in out:
            assert r.n == 200
            assert r.mean == pytest.approx(data.mean(), rel=1e-10)
            assert r.variance == pytest.approx(data.var(), rel=1e-8)
            assert r.std == pytest.approx(data.std(), rel=1e-8)

    def test_empty(self):
        out = run_all(lambda comm: global_reduce(comm, MeanVarOp(), []), 1)[0]
        assert out.n == 0 and np.isnan(out.mean)

    def test_single_value(self):
        out = run_all(lambda comm: global_reduce(comm, MeanVarOp(), [4.0]), 1)[0]
        assert out.n == 1 and out.mean == 4.0 and out.variance == 0.0

    def test_welford_loop_matches_block(self, rng):
        data = rng.normal(size=50)
        op = MeanVarOp()
        s1 = op.ident()
        for x in data:
            s1 = op.accum(s1, x)
        s2 = op.accum_block(op.ident(), data)
        assert s1.n == s2.n
        assert s1.mean == pytest.approx(s2.mean)
        assert s1.m2 == pytest.approx(s2.m2)


class TestExtrema:
    @pytest.mark.parametrize("p", SIZES)
    def test_top_and_bottom_with_locations(self, p, rng):
        vals = rng.permutation(100).astype(float)
        pairs = np.column_stack([vals, np.arange(100.0)])
        out = run_all(
            lambda comm: global_reduce(
                comm, ExtremaKLocOp(5),
                block_split(pairs, comm.size, comm.rank),
            ),
            p,
        )
        for top, bot in out:
            assert top[:, 0].tolist() == [99, 98, 97, 96, 95]
            assert bot[:, 0].tolist() == [0, 1, 2, 3, 4]
            for v, loc in top:
                assert vals[int(loc)] == v
            for v, loc in bot:
                assert vals[int(loc)] == v

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_ties_take_smallest_location(self, p):
        vals = np.array([5.0, 5.0, 5.0, 5.0, 1.0, 1.0])
        pairs = np.column_stack([vals, np.arange(6.0)])
        out = run_all(
            lambda comm: global_reduce(
                comm, ExtremaKLocOp(2),
                block_split(pairs, comm.size, comm.rank),
            ),
            p,
        )
        for top, bot in out:
            assert top[:, 1].tolist() == [0, 1]
            assert bot[:, 1].tolist() == [4, 5]

    def test_fewer_than_k(self):
        out = run_all(
            lambda comm: global_reduce(
                comm, ExtremaKLocOp(10), [(3.0, 0), (7.0, 1)]
            ),
            1,
        )[0]
        top, bot = out
        assert len(top) == 2 and len(bot) == 2

    def test_bad_shape_rejected(self):
        op = ExtremaKLocOp(3)
        with pytest.raises(OperatorError):
            op.accum_block(op.ident(), np.zeros((4, 3)))

    def test_accum_matches_block(self, rng):
        vals = rng.normal(size=40)
        pairs = [(float(v), i) for i, v in enumerate(vals)]
        op = ExtremaKLocOp(4)
        s1 = op.ident()
        for pr in pairs:
            s1 = op.accum(s1, pr)
        s2 = op.accum_block(op.ident(), np.asarray(pairs))
        t1, b1 = op.gen(s1)
        t2, b2 = op.gen(s2)
        assert np.array_equal(t1, t2) and np.array_equal(b1, b2)


class TestTopK:
    @pytest.mark.parametrize("p", SIZES)
    def test_largest(self, p, rng):
        data = [int(v) for v in rng.integers(0, 10_000, 150)]
        out = run_all(
            lambda comm: global_reduce(
                comm, TopKOp(6), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        expected = sorted(data, reverse=True)[:6]
        assert all(v == expected for v in out)

    @pytest.mark.parametrize("p", [1, 3])
    def test_smallest_with_key(self, p):
        words = ["kiwi", "fig", "banana", "apple", "cherry", "date"]
        out = run_all(
            lambda comm: global_reduce(
                comm,
                TopKOp(3, key=len, largest=False),
                block_split(words, comm.size, comm.rank),
            ),
            p,
        )
        assert all(v == ["fig", "date", "kiwi"] for v in out)

    def test_tie_break_deterministic_across_distributions(self):
        data = [("a", 5), ("b", 5), ("c", 5), ("d", 5)]
        results = set()
        for p in (1, 2, 4):
            out = run_all(
                lambda comm: tuple(
                    global_reduce(
                        comm,
                        TopKOp(2, key=lambda t: t[1]),
                        block_split(data, comm.size, comm.rank),
                    )
                ),
                p,
            )[0]
            results.add(out)
        assert len(results) == 1

    def test_invalid_k(self):
        with pytest.raises(OperatorError):
            TopKOp(0)


class TestSegmented:
    ELEMS = [(1, 1), (2, 0), (3, 0), (4, 1), (5, 0), (6, 1), (7, 0)]

    @pytest.mark.parametrize("p", SIZES)
    def test_inclusive_segmented_sum(self, p):
        seg = SegmentedOp(lambda a, b: a + b, 0, name="sum")
        out = gather_scan(
            lambda comm: global_scan(
                comm, seg, block_split(self.ELEMS, comm.size, comm.rank)
            ),
            p,
        )
        assert out == [1, 3, 6, 4, 9, 6, 13]

    @pytest.mark.parametrize("p", SIZES)
    def test_exclusive_segmented_sum(self, p):
        seg = SegmentedOp(lambda a, b: a + b, 0, name="sum")
        out = gather_scan(
            lambda comm: global_xscan(
                comm, seg, block_split(self.ELEMS, comm.size, comm.rank)
            ),
            p,
        )
        assert out == [0, 1, 3, 0, 4, 0, 6]

    @pytest.mark.parametrize("p", SIZES)
    def test_reduce_gives_last_segment(self, p):
        seg = SegmentedOp(lambda a, b: a + b, 0, name="sum")
        out = run_all(
            lambda comm: global_reduce(
                comm, seg, block_split(self.ELEMS, comm.size, comm.rank)
            ),
            p,
        )
        assert all(v == 13 for v in out)

    def test_no_heads_behaves_like_plain_scan(self):
        seg = SegmentedOp(lambda a, b: a + b, 0)
        elems = [(v, 0) for v in [1, 2, 3, 4]]
        out = gather_scan(lambda comm: global_scan(comm, seg, elems), 1)
        assert out == [1, 3, 6, 10]

    def test_segmented_max(self):
        seg = SegmentedOp(max, -np.inf, name="max")
        elems = [(3, 0), (9, 0), (1, 1), (5, 0)]
        out = gather_scan(
            lambda comm: global_scan(
                comm, seg, block_split(elems, comm.size, comm.rank)
            ),
            2,
        )
        assert out == [3, 9, 1, 5]

    def test_not_commutative(self):
        assert SegmentedOp(lambda a, b: a + b, 0).commutative is False


class TestHistogram:
    @pytest.mark.parametrize("p", SIZES)
    def test_matches_numpy_histogram(self, p, rng):
        data = rng.uniform(0, 1, 300)
        edges = np.linspace(0, 1, 11)
        out = run_all(
            lambda comm: global_reduce(
                comm, HistogramOp(edges),
                block_split(data, comm.size, comm.rank),
            ),
            p,
        )
        expected, _ = np.histogram(data, bins=edges)
        for v in out:
            assert v.tolist() == expected.tolist()

    def test_last_bin_closed(self):
        op = HistogramOp([0.0, 0.5, 1.0])
        s = op.accum(op.ident(), 1.0)
        assert s.tolist() == [0, 1]

    def test_out_of_range(self):
        op = HistogramOp([0.0, 1.0])
        with pytest.raises(OperatorError):
            op.accum(op.ident(), 2.0)
        clipper = HistogramOp([0.0, 1.0], clip=True)
        assert clipper.accum(clipper.ident(), 2.0).tolist() == [1]

    def test_bad_edges(self):
        with pytest.raises(OperatorError):
            HistogramOp([1.0])
        with pytest.raises(OperatorError):
            HistogramOp([1.0, 0.5])


class TestLogical:
    @pytest.mark.parametrize("p", SIZES)
    def test_all_any_xor(self, p):
        flags = [True, True, False, True, True, True, False, True]
        out_all = run_all(
            lambda comm: global_reduce(
                comm, AllOp(), block_split(flags, comm.size, comm.rank)
            ),
            p,
        )
        out_any = run_all(
            lambda comm: global_reduce(
                comm, AnyOp(), block_split(flags, comm.size, comm.rank)
            ),
            p,
        )
        out_xor = run_all(
            lambda comm: global_reduce(
                comm, XorOp(), block_split(flags, comm.size, comm.rank)
            ),
            p,
        )
        assert all(v is False for v in out_all)
        assert all(v is True for v in out_any)
        assert all(v == (sum(flags) % 2 == 1) for v in out_xor)

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_bitwise(self, p):
        data = np.array([0b1111, 0b1010, 0b0110], dtype=np.int64)

        def run(op):
            return run_all(
                lambda comm: global_reduce(
                    comm, op, block_split(data, comm.size, comm.rank)
                ),
                p,
            )[0]

        assert run(BandOp()) == 0b0010
        assert run(BorOp()) == 0b1111
        assert run(BxorOp()) == 0b1111 ^ 0b1010 ^ 0b0110


class TestCollectOps:
    @pytest.mark.parametrize("p", SIZES)
    def test_union(self, p, rng):
        from repro.ops import UnionOp

        data = [int(v) for v in rng.integers(0, 20, 60)]
        out = run_all(
            lambda comm: global_reduce(
                comm, UnionOp(), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        assert all(v == frozenset(data) for v in out)

    @pytest.mark.parametrize("p", [1, 3, 6])
    def test_distinct_count(self, p, rng):
        from repro.ops import DistinctCountOp

        data = [int(v) for v in rng.integers(0, 15, 50)]
        out = run_all(
            lambda comm: global_reduce(
                comm, DistinctCountOp(),
                block_split(data, comm.size, comm.rank),
            ),
            p,
        )
        assert all(v == len(set(data)) for v in out)

    @pytest.mark.parametrize("p", SIZES)
    def test_concat_reproduces_global_order(self, p, rng):
        """The order-preservation oracle: concat-reduce must equal the
        original sequence under every combining schedule."""
        from repro.ops import ConcatOp

        data = [int(v) for v in rng.integers(0, 100, 37)]
        out = run_all(
            lambda comm: global_reduce(
                comm, ConcatOp(), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        assert all(v == data for v in out)

    @pytest.mark.parametrize("p", [1, 2, 5])
    def test_concat_scan_gives_prefixes(self, p):
        from repro.ops import ConcatOp

        data = list(range(9))
        out = gather_scan(
            lambda comm: global_scan(
                comm, ConcatOp(), block_split(data, comm.size, comm.rank)
            ),
            p,
        )
        for i, prefix in enumerate(out):
            assert prefix == data[: i + 1]

    def test_union_laws(self, rng):
        from repro.core import check_operator
        from repro.ops import UnionOp

        check_operator(
            UnionOp(), [int(v) for v in rng.integers(0, 9, 25)], n_trials=10
        )
