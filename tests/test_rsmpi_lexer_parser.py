"""Tests for the RSMPI DSL lexer and parser."""

import pytest

from repro.errors import DslSyntaxError
from repro.rsmpi.preprocessor import ast_nodes as A
from repro.rsmpi.preprocessor.lexer import Token, tokenize
from repro.rsmpi.preprocessor.parser import parse_operator


class TestLexer:
    def test_keywords_and_idents(self):
        toks = tokenize("rsmpi operator foo")
        assert [(t.kind, t.text) for t in toks[:-1]] == [
            ("keyword", "rsmpi"),
            ("keyword", "operator"),
            ("ident", "foo"),
        ]

    def test_non_commutative_is_single_token(self):
        toks = tokenize("non-commutative")
        assert toks[0].text == "non-commutative"
        assert toks[0].kind == "keyword"
        assert toks[1].kind == "eof"

    def test_minus_still_works(self):
        toks = tokenize("a - b")
        assert [t.text for t in toks[:-1]] == ["a", "-", "b"]

    def test_numbers(self):
        toks = tokenize("1 23 4.5 1e3 2.5e-2")
        assert [t.text for t in toks[:-1]] == ["1", "23", "4.5", "1e3", "2.5e-2"]
        assert all(t.kind == "number" for t in toks[:-1])

    def test_multichar_punct_longest_match(self):
        toks = tokenize("a <= b -> c && d += 1")
        assert [t.text for t in toks[:-1]] == [
            "a", "<=", "b", "->", "c", "&&", "d", "+=", "1",
        ]

    def test_comments_skipped(self):
        toks = tokenize("a // line comment\n b /* block\ncomment */ c")
        assert [t.text for t in toks[:-1]] == ["a", "b", "c"]

    def test_unterminated_block_comment(self):
        with pytest.raises(DslSyntaxError, match="unterminated"):
            tokenize("a /* oops")

    def test_illegal_character(self):
        with pytest.raises(DslSyntaxError, match="illegal character"):
            tokenize("a @ b")

    def test_positions_tracked(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


MINIMAL = """
rsmpi operator tiny {
  state { int x; }
  void accum(state s, int i) { s->x += i; }
  void combine(state s1, state s2) { s1->x += s2->x; }
}
"""


class TestParserStructure:
    def test_minimal_operator(self):
        decl = parse_operator(MINIMAL)
        assert decl.name == "tiny"
        assert decl.commutative is True  # default when unspecified
        assert [f.name for f in decl.state_fields] == ["x"]
        assert set(decl.functions) == {"accum", "combine"}

    def test_commutativity_flags(self):
        d1 = parse_operator(MINIMAL.replace("{\n  state", "{\n  commutative\n  state"))
        assert d1.commutative
        d2 = parse_operator(
            MINIMAL.replace("{\n  state", "{\n  non-commutative\n  state")
        )
        assert not d2.commutative

    def test_duplicate_flag_rejected(self):
        src = MINIMAL.replace(
            "{\n  state", "{\n  commutative\n  commutative\n  state"
        )
        with pytest.raises(DslSyntaxError, match="duplicate"):
            parse_operator(src)

    def test_comma_declarations(self):
        decl = parse_operator(
            """
            rsmpi operator x {
              state { int a, b; double c; }
              void accum(state s, int i) { s->a = i; }
              void combine(state s1, state s2) { ; }
            }
            """
        )
        assert [(f.name, f.ctype) for f in decl.state_fields] == [
            ("a", "int"), ("b", "int"), ("c", "double"),
        ]

    def test_array_state_field(self):
        decl = parse_operator(
            """
            rsmpi operator x {
              param int k = 3;
              state { int v[k]; }
              void accum(state s, int i) { s->v[0] = i; }
              void combine(state s1, state s2) { ; }
            }
            """
        )
        f = decl.state_fields[0]
        assert f.array_size is not None
        assert decl.params[0].name == "k"

    def test_function_params(self):
        decl = parse_operator(
            MINIMAL.replace(
                "void accum(state s, int i)", "void accum(state s, double x, int i)"
            ).replace("s->x += i", "s->x += i")
        )
        fn = decl.functions["accum"]
        assert [(p.ctype, p.name) for p in fn.params] == [
            ("state", "s"), ("double", "x"), ("int", "i"),
        ]

    def test_duplicate_function_rejected(self):
        src = MINIMAL.replace(
            "void combine",
            "void accum(state s, int i) { ; }\n  void combine",
        )
        with pytest.raises(DslSyntaxError, match="duplicate function"):
            parse_operator(src)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_operator(MINIMAL + " extra")

    def test_missing_brace(self):
        with pytest.raises(DslSyntaxError):
            parse_operator(MINIMAL.rstrip().rstrip("}"))


class TestParserExpressions:
    def _body(self, stmts: str):
        decl = parse_operator(
            f"""
            rsmpi operator x {{
              state {{ int a; }}
              void accum(state s, int i) {{ {stmts} }}
              void combine(state s1, state s2) {{ ; }}
            }}
            """
        )
        return decl.functions["accum"].body.stmts

    def test_precedence_mul_over_add(self):
        (stmt,) = self._body("s->a = 1 + 2 * 3;")
        assert isinstance(stmt.expr, A.Assign)
        top = stmt.expr.value
        assert isinstance(top, A.Binary) and top.op == "+"
        assert isinstance(top.right, A.Binary) and top.right.op == "*"

    def test_precedence_relational_over_logical(self):
        (stmt,) = self._body("s->a = i < 3 && i > 1;")
        top = stmt.expr.value
        assert top.op == "&&"
        assert top.left.op == "<" and top.right.op == ">"

    def test_ternary(self):
        (stmt,) = self._body("s->a = i > 0 ? 1 : 2;")
        assert isinstance(stmt.expr.value, A.Ternary)

    def test_unary_chain(self):
        (stmt,) = self._body("s->a = !-i;")
        v = stmt.expr.value
        assert isinstance(v, A.Unary) and v.op == "!"
        assert isinstance(v.operand, A.Unary) and v.operand.op == "-"

    def test_postfix_index_and_field(self):
        decl = parse_operator(
            """
            rsmpi operator x {
              param int k = 2;
              state { int v[k]; }
              void accum(state s, int i) { s->v[i+1] = 0; }
              void combine(state s1, state s2) { ; }
            }
            """
        )
        stmt = decl.functions["accum"].body.stmts[0]
        target = stmt.expr.target
        assert isinstance(target, A.Index)
        assert isinstance(target.base, A.Field)

    def test_for_loop_parsed(self):
        stmts = self._body("int j; for (j = 0; j < 3; j++) s->a += j;")
        assert isinstance(stmts[1], A.For)
        assert isinstance(stmts[1].update, A.IncDec)

    def test_while_and_if_else(self):
        stmts = self._body(
            "while (i > 0) { if (i > 5) s->a = 1; else s->a = 2; i -= 1; }"
        )
        assert isinstance(stmts[0], A.While)

    def test_chained_assignment(self):
        (stmt,) = self._body("s->a = i = 3;")
        assert isinstance(stmt.expr, A.Assign)
        assert isinstance(stmt.expr.value, A.Assign)

    def test_invalid_assignment_target(self):
        with pytest.raises(DslSyntaxError, match="assignment target"):
            self._body("1 = 2;")

    def test_call_expression(self):
        stmts = self._body("accum(s, i);")
        assert isinstance(stmts[0].expr, A.Call)
        assert stmts[0].expr.func == "accum"
