"""Tests for the 12 MPI built-in operations and user-defined ops."""

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.mpi.op import (
    BAND,
    BOR,
    BUILTIN_OPS,
    BXOR,
    LAND,
    LOR,
    LXOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    Op,
    PROD,
    SUM,
    op_create,
)


class TestBuiltinScalars:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (MAX, 3, 7, 7),
            (MIN, 3, 7, 3),
            (SUM, 3, 7, 10),
            (PROD, 3, 7, 21),
            (LAND, 1, 0, False),
            (LAND, 2, 3, True),
            (LOR, 0, 0, False),
            (LOR, 0, 5, True),
            (LXOR, 1, 1, False),
            (LXOR, 0, 1, True),
            (BAND, 0b1100, 0b1010, 0b1000),
            (BOR, 0b1100, 0b1010, 0b1110),
            (BXOR, 0b1100, 0b1010, 0b0110),
        ],
    )
    def test_scalar_semantics(self, op, a, b, expected):
        assert op(a, b) == expected

    def test_all_twelve_registered(self):
        assert len(BUILTIN_OPS) == 12
        assert set(BUILTIN_OPS) == {
            "MAX", "MIN", "SUM", "PROD", "LAND", "BAND", "LOR", "BOR",
            "LXOR", "BXOR", "MAXLOC", "MINLOC",
        }

    def test_builtins_commutative(self):
        for op in BUILTIN_OPS.values():
            assert op.commutative


class TestAggregation:
    """MPI count>1 semantics: element-wise over arrays (paper §2.1)."""

    def test_sum_elementwise(self):
        a, b = np.array([1, 2, 3]), np.array([10, 20, 30])
        assert SUM(a, b).tolist() == [11, 22, 33]

    def test_min_elementwise(self):
        a, b = np.array([5, 2, 9]), np.array([3, 8, 1])
        assert MIN(a, b).tolist() == [3, 2, 1]

    def test_logical_elementwise(self):
        a = np.array([True, True, False])
        b = np.array([True, False, False])
        assert LAND(a, b).tolist() == [True, False, False]
        assert LXOR(a, b).tolist() == [False, True, False]

    def test_bitwise_elementwise(self):
        a, b = np.array([12, 12]), np.array([10, 10])
        assert BXOR(a, b).tolist() == [6, 6]


class TestLocOps:
    def test_maxloc_picks_max(self):
        assert MAXLOC((3.0, 5), (7.0, 2)) == (7.0, 2)

    def test_minloc_picks_min(self):
        assert MINLOC((3.0, 5), (7.0, 2)) == (3.0, 5)

    def test_ties_resolve_to_smaller_index(self):
        assert MAXLOC((5.0, 9), (5.0, 4)) == (5.0, 4)
        assert MINLOC((5.0, 9), (5.0, 4)) == (5.0, 4)

    def test_aggregated_pairs(self):
        a = np.array([[1.0, 0], [9.0, 1]])
        b = np.array([[2.0, 10], [3.0, 11]])
        out = MINLOC(a, b)
        assert out.tolist() == [[1.0, 0], [3.0, 11]]
        out = MAXLOC(a, b)
        assert out.tolist() == [[2.0, 10], [9.0, 1]]

    def test_nonfinite_marker_preserved(self):
        v, i = MINLOC((0.0, np.inf), (0.0, 3))
        assert (v, i) == (0.0, 3)

    def test_bad_shapes_rejected(self):
        with pytest.raises(OperatorError):
            MAXLOC(np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(OperatorError):
            MAXLOC(np.zeros((2, 2)), np.zeros((3, 2)))


class TestUserOps:
    def test_op_create_defaults(self):
        op = op_create(lambda a, b: a + b)
        assert op.commutative and op.identity is None
        assert op(2, 3) == 5

    def test_op_create_noncommutative(self):
        op = op_create(lambda a, b: a + b, commute=False, name="concat")
        assert not op.commutative
        assert "non-commutative" in repr(op)

    def test_identity_callable(self):
        op = op_create(lambda a, b: a + b, identity=lambda: 0)
        assert op.identity() == 0

    def test_invalid_fn_rejected(self):
        with pytest.raises(OperatorError):
            Op("not callable")

    def test_invalid_identity_rejected(self):
        with pytest.raises(OperatorError):
            Op(lambda a, b: a, identity=42)
