"""Tests for the NAS EP kernel and its one-reduction formulation."""

import numpy as np
import pytest

from repro.core import check_operator
from repro.nas.callcounts import census
from repro.nas.ep import (
    EP_CLASSES,
    EP_CLASSES_FULL,
    EPOp,
    ep_class,
    ep_mpi,
    ep_rsmpi,
)
from repro.runtime import spmd_run

CLS = ep_class("S")
SIZES = [1, 2, 3, 4, 7, 8]


class TestClasses:
    def test_lookup(self):
        assert ep_class("s").n_pairs == 1 << 16
        assert ep_class("A", full=True).n_pairs == 1 << 28

    def test_unknown(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            ep_class("Q")

    def test_scaled_smaller(self):
        for name in EP_CLASSES:
            assert EP_CLASSES[name].n_pairs <= EP_CLASSES_FULL[name].n_pairs


class TestVariantsAgree:
    @pytest.mark.parametrize("p", SIZES)
    def test_identical_results(self, p):
        a = spmd_run(lambda comm: ep_mpi(comm, CLS), p).returns[0]
        b = spmd_run(lambda comm: ep_rsmpi(comm, CLS), p).returns[0]
        assert a.close_to(b)

    @pytest.mark.parametrize("p", SIZES)
    def test_independent_of_p(self, p):
        base = spmd_run(lambda comm: ep_rsmpi(comm, CLS), 1).returns[0]
        out = spmd_run(lambda comm: ep_rsmpi(comm, CLS), p).returns[0]
        assert out.close_to(base)

    def test_three_vs_one_reduction(self):
        r_mpi = spmd_run(lambda comm: ep_mpi(comm, CLS), 4)
        r_rsm = spmd_run(lambda comm: ep_rsmpi(comm, CLS), 4)
        assert census(r_mpi.traces).n_reductions == 3
        assert census(r_rsm.traces).n_reductions == 1
        # EP is embarrassingly parallel: reductions are ALL its traffic
        c = census(r_mpi.traces)
        assert sum(c.p2p_calls.values()) == 0


class TestStatistics:
    @pytest.fixture(scope="class")
    def result(self):
        return spmd_run(lambda comm: ep_rsmpi(comm, CLS), 4).returns[0]

    def test_acceptance_rate_near_pi_over_4(self, result):
        rate = result.n_accepted / CLS.n_pairs
        assert abs(rate - np.pi / 4) < 0.01

    def test_gaussian_sums_near_zero_mean(self, result):
        # mean of a standard gaussian is 0: |sum| ~ O(sqrt(n))
        bound = 6 * np.sqrt(result.n_accepted)
        assert abs(result.sx) < bound
        assert abs(result.sy) < bound

    def test_annulus_counts_decay(self, result):
        q = result.q
        assert q.sum() == result.n_accepted
        assert q[0] > q[1] > q[2]  # gaussian mass concentrates at 0
        assert q[6:].sum() <= 5  # > 6 sigma is essentially impossible


class TestEPOp:
    def test_laws(self, rng):
        pairs = [tuple(v) for v in rng.uniform(-1, 1, (30, 2))]
        check_operator(EPOp(), pairs, n_trials=10)

    def test_accum_matches_block(self, rng):
        pairs = rng.uniform(-1, 1, (50, 2))
        op = EPOp()
        s1 = op.ident()
        for pr in pairs:
            s1 = op.accum(s1, pr)
        s2 = op.accum_block(op.ident(), pairs)
        assert s1.sx == pytest.approx(s2.sx)
        assert np.array_equal(s1.q, s2.q)

    def test_rejected_pairs_ignored(self):
        op = EPOp()
        s = op.accum_block(op.ident(), np.array([[1.0, 1.0], [0.99, 0.99]]))
        assert s.n == 0  # both outside the unit circle

    def test_empty(self):
        op = EPOp()
        out = op.red_gen(op.ident())
        assert out.n_accepted == 0 and out.sx == 0.0
