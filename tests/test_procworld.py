"""Unit tests for the process-backend worker pool.

Covers the :class:`~repro.runtime.procworld.ProcPool` contract directly
(offload vs MISS, IPC counters, worker death → inline fallback →
supervisor restart) and the lifecycle guarantees the engine builds on:
``Engine.shutdown`` terminates worker processes and reaps every
``/dev/shm`` segment, proven by a repeated create/shutdown soak.
"""

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.engine import Engine
from repro.ops import SumOp, SegmentedOp
from repro.core.reduce import global_reduce
from repro.runtime.procworld import MISS, ProcPool, SHM_PREFIX, _fold_state


def _leaked_segments():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}-*")


@pytest.fixture
def pool():
    p = ProcPool(2, ring_bytes=1 << 20, min_offload_bytes=0)
    try:
        yield p
    finally:
        p.shutdown()


def test_accumulate_matches_inline_fold(pool):
    op = SumOp()
    values = np.arange(10_000, dtype=np.float64)
    state = pool.accumulate(0, op, values)
    assert state is not MISS
    expected = _fold_state(op, values)
    assert type(state) is type(expected) or isinstance(state, np.ndarray) == isinstance(expected, np.ndarray)
    assert np.asarray(state).tobytes() == np.asarray(expected).tobytes()
    stats = pool.ipc_stats()
    assert stats["frames"] >= 2
    assert stats["shm_hits"] >= 1
    assert stats["bytes"] > values.nbytes


def test_list_payload_uses_pickle_fallback(pool):
    op = SumOp()
    values = [float(i) for i in range(100)]
    state = pool.accumulate(0, op, values)
    assert state is not MISS
    assert float(np.asarray(state)) == sum(values)
    assert pool.ipc_stats()["pickle_fallbacks"] >= 1


def test_small_block_misses_below_threshold():
    p = ProcPool(1, ring_bytes=1 << 20, min_offload_bytes=1 << 16)
    try:
        assert p.accumulate(0, SumOp(), np.arange(4.0)) is MISS
        assert p.ipc_stats()["frames"] == 0
    finally:
        p.shutdown()


def test_unpicklable_operator_misses(pool):
    op = SegmentedOp(lambda x, y: x + y, 0)
    assert pool.accumulate(0, op, np.arange(100.0)) is MISS
    assert pool.ipc_stats()["inline_fallbacks"] >= 1


def test_oversize_frame_falls_back_to_pipe():
    p = ProcPool(1, ring_bytes=1 << 12, min_offload_bytes=0)
    try:
        values = np.arange(10_000, dtype=np.float64)  # 80 KB > 4 KB ring
        state = p.accumulate(0, SumOp(), values)
        assert state is not MISS
        assert np.asarray(state) == values.sum()
        assert p.ipc_stats()["pickle_fallbacks"] >= 1
    finally:
        p.shutdown()


def test_out_of_range_rank_misses(pool):
    assert pool.accumulate(5, SumOp(), np.arange(100.0)) is MISS


def test_ping_and_worker_alive(pool):
    assert pool.worker_alive(0)
    assert pool.ping(0)
    assert pool.dead_workers() == []


def test_stale_probe_reply_never_corrupts_results(pool):
    """A reply left queued by an abandoned probe (the timed-out-ping
    scenario) must be discarded by sequence id, not returned as the
    next accumulate's folded state."""
    w = pool._workers[0]
    with w.lock:
        w.seq += 1
        w.conn.send(("ping", w.seq))  # request sent, reply never read
    time.sleep(0.2)  # let the late pong land on the pipe, unread
    values = np.arange(10_000, dtype=np.float64)
    state = pool.accumulate(0, SumOp(), values)
    assert state is not MISS
    assert float(np.asarray(state)) == values.sum()


def test_ping_timeout_marks_dead_and_restart_reforks(pool):
    """An alive-but-unresponsive worker is marked dead on ping timeout,
    and restart_worker re-forks it (fresh pipe) instead of trusting
    ``is_alive()``."""
    w = pool._workers[0]
    old_pid = w.proc.pid
    os.kill(old_pid, signal.SIGSTOP)  # alive, but will never answer
    try:
        assert pool.ping(0, timeout=0.2) is False
        assert not w.alive
        assert 0 in pool.dead_workers()
        assert pool.accumulate(0, SumOp(), np.arange(1000.0)) is MISS
    finally:
        os.kill(old_pid, signal.SIGCONT)
    assert pool.restart_worker(0)
    assert w.proc.pid != old_pid  # re-forked, not reused
    state = pool.accumulate(0, SumOp(), np.arange(10_000.0))
    assert state is not MISS
    assert float(np.asarray(state)) == np.arange(10_000.0).sum()
    assert pool.ipc_stats()["worker_restarts"] >= 1


def test_restart_worker_keeps_healthy_worker(pool):
    """restart_worker on a responsive worker verifies with a ping and
    leaves the process in place."""
    pid = pool._workers[0].proc.pid
    assert pool.restart_worker(0)
    assert pool._workers[0].proc.pid == pid


def test_op_bytes_memoized_across_calls(pool):
    op = SumOp()
    values = np.arange(10_000, dtype=np.float64)
    first = pool.accumulate(0, op, values)
    assert op in pool._op_cache  # pickled once, reused afterwards
    second = pool.accumulate(0, op, values)
    assert np.asarray(first).tobytes() == np.asarray(second).tobytes()


def test_worker_death_falls_back_then_restarts(pool):
    values = np.arange(1000, dtype=np.float64)
    assert pool.accumulate(0, SumOp(), values) is not MISS
    os.kill(pool._workers[0].proc.pid, signal.SIGKILL)
    pool._workers[0].proc.join(timeout=5.0)
    # The first request against the dead worker degrades to MISS...
    assert pool.accumulate(0, SumOp(), values) is MISS
    assert 0 in pool.dead_workers()
    assert pool.ipc_stats()["worker_deaths"] >= 1
    # ...rank 1 is unaffected...
    assert pool.accumulate(1, SumOp(), values) is not MISS
    # ...and a restart (what the engine supervisor does) revives rank 0.
    assert pool.restart_worker(0)
    assert pool.worker_alive(0)
    state = pool.accumulate(0, SumOp(), values)
    assert state is not MISS
    assert np.asarray(state) == values.sum()
    assert pool.ipc_stats()["worker_restarts"] >= 1


def test_kernel_config_resync(pool):
    from repro.core import kernels

    values = np.arange(5000, dtype=np.int64)
    before = pool.accumulate(0, SumOp(), values)
    kernels.configure(enabled=False)
    try:
        after = pool.accumulate(0, SumOp(), values)
    finally:
        kernels.configure(enabled=True)
    assert np.asarray(before).tobytes() == np.asarray(after).tobytes()


def test_shutdown_idempotent_and_reaps(pool):
    names = pool.shm_names()
    assert len(names) == 4  # 2 workers x req+resp
    pool.shutdown()
    pool.shutdown()  # idempotent
    assert pool.closed
    for name in names:
        assert not os.path.exists(f"/dev/shm/{name}")
    assert pool.accumulate(0, SumOp(), np.arange(100.0)) is MISS


def test_engine_supervisor_restarts_dead_worker():
    eng = Engine(
        2, backend="process",
        backend_options={"min_offload_bytes": 0, "ring_bytes": 1 << 20},
    )
    try:
        pool = eng.proc_pool
        os.kill(pool._workers[1].proc.pid, signal.SIGKILL)
        pool._workers[1].proc.join(timeout=5.0)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            eng._probe_backend()
            if pool.worker_alive(1) and pool.ping(1):
                break
            time.sleep(0.05)
        assert pool.worker_alive(1)
        # And jobs keep producing correct results throughout.
        def job(comm):
            return global_reduce(
                comm, SumOp(), np.arange(1000.0) + comm.rank
            )
        res = eng.submit(job).result()
        assert res.returns[0] == 2 * np.arange(1000.0).sum() + 1000
    finally:
        eng.shutdown(drain=False)


def test_engine_shutdown_soak_no_leaks():
    """50 create/shutdown cycles leak neither processes nor segments."""
    baseline_segments = set(_leaked_segments())
    for cycle in range(50):
        eng = Engine(
            2, backend="process",
            backend_options={"min_offload_bytes": 0, "ring_bytes": 1 << 18},
        )
        if cycle % 10 == 0:  # exercise real traffic on some cycles
            res = eng.submit(
                lambda comm: global_reduce(comm, SumOp(), np.arange(100.0))
            ).result()
            # 2 ranks each contribute the same block.
            assert res.returns[0] == 2 * np.arange(100.0).sum()
        pids = [w.proc.pid for w in eng.proc_pool._workers]
        assert eng.shutdown() is True
        assert set(_leaked_segments()) == baseline_segments, (
            f"cycle {cycle} leaked shm segments"
        )
        for pid in pids:
            # The child must be gone (or a reaped zombie at worst).
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            # Still exists: give the OS a beat, then require it dead.
            time.sleep(0.2)
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


def test_spmd_run_backend_kwarg():
    def job(comm):
        return global_reduce(comm, SumOp(), np.arange(500.0) * (comm.rank + 1))

    from repro.runtime import spmd_run

    r_thread = spmd_run(job, 2)
    r_proc = spmd_run(
        job, 2, backend="process", backend_options={"min_offload_bytes": 0}
    )
    assert r_proc.returns == r_thread.returns
    assert r_proc.clocks == r_thread.clocks
    assert not _leaked_segments()


def test_kernel_routing_counters_match_thread_backend():
    """A successful offload records the same schedule-cache decision and
    ``kernels.accum.*`` tracer counters the inline fold would have, so
    kernel-routing observability does not depend on the backend."""
    from repro.obs import Tracer
    from repro.runtime import spmd_run

    def job(comm):
        return global_reduce(
            comm, SumOp(), np.arange(20_000.0) * (comm.rank + 1)
        )

    def accum_counters(backend, **opts):
        tracer = Tracer()
        spmd_run(
            job, 2, tracer=tracer, backend=backend,
            backend_options=opts or None,
        )
        snap = tracer.metrics.snapshot()["counters"]
        return {
            k: v for k, v in snap.items() if k.startswith("kernels.accum.")
        }

    thread = accum_counters("thread")
    process = accum_counters("process", min_offload_bytes=0)
    assert thread  # the fold actually routed through the kernel tier
    assert process == thread


def test_engine_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        Engine(2, backend="gpu")
