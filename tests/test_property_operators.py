"""Property-based tests (hypothesis) for the core invariants.

The library's central correctness claim (DESIGN.md §6 invariant 1) is
that a global-view reduction or scan is independent of how the data is
distributed.  These tests drive that claim — plus the scan algebra and
the operator laws — across random data, random processor counts and
random operators.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    global_reduce,
    global_scan,
    global_xscan,
    sequential_reduce,
    sequential_scan,
)
from repro.ops import (
    CountsOp,
    MeanVarOp,
    MiniOp,
    MinKOp,
    SortedOp,
    SumOp,
    TopKOp,
)
from repro.runtime import spmd_run
from tests.conftest import block_split

INT_MAX = np.iinfo(np.int64).max

ints = st.lists(st.integers(min_value=-1000, max_value=1000), max_size=40)
small_ints = st.lists(st.integers(min_value=0, max_value=7), max_size=30)
procs = st.integers(min_value=1, max_value=6)

COMMON = settings(max_examples=40, deadline=None)


def _run_reduce(op, data, p):
    return spmd_run(
        lambda comm: global_reduce(
            comm, op, block_split(data, comm.size, comm.rank)
        ),
        p,
    ).returns[0]


def _run_scan(op, data, p, exclusive=False):
    fn = global_xscan if exclusive else global_scan
    res = spmd_run(
        lambda comm: fn(comm, op, block_split(data, comm.size, comm.rank)),
        p,
    )
    out = []
    for part in res.returns:
        out.extend(part)
    return out


class TestDistributionIndependence:
    @COMMON
    @given(data=ints, p=procs)
    def test_sum_reduce(self, data, p):
        assert _run_reduce(SumOp(), data, p) == sum(data)

    @COMMON
    @given(data=ints, p=procs)
    def test_mink(self, data, p):
        got = _run_reduce(MinKOp(5, INT_MAX), data, p).tolist()
        smallest = sorted(data)[:5]
        # state is high-to-low with sentinel padding in front
        assert got == [INT_MAX] * (5 - len(smallest)) + smallest[::-1]

    @COMMON
    @given(data=small_ints, p=procs)
    def test_counts(self, data, p):
        got = _run_reduce(CountsOp(8, base=0), data, p).tolist()
        if data:
            assert got == np.bincount(np.array(data), minlength=8).tolist()
        else:
            assert got == [0] * 8

    @COMMON
    @given(data=ints, p=procs)
    def test_sorted_matches_python(self, data, p):
        assert _run_reduce(SortedOp(), data, p) == (data == sorted(data))

    @COMMON
    @given(data=ints, p=procs)
    def test_topk(self, data, p):
        got = _run_reduce(TopKOp(4), data, p)
        assert got == sorted(data, reverse=True)[:4]

    @COMMON
    @given(data=st.lists(st.floats(-1e6, 1e6), max_size=40), p=procs)
    def test_meanvar(self, data, p):
        got = _run_reduce(MeanVarOp(), data, p)
        if not data:
            assert got.n == 0
        else:
            arr = np.array(data)
            assert got.n == len(data)
            assert got.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-9)
            assert got.variance == pytest.approx(arr.var(), rel=1e-6, abs=1e-6)

    @COMMON
    @given(data=ints, p=procs)
    def test_parallel_equals_sequential_reference(self, data, p):
        assert _run_reduce(SumOp(), data, p) == sequential_reduce(SumOp(), data)


class TestScanAlgebra:
    @COMMON
    @given(data=ints, p=procs)
    def test_inclusive_scan_is_cumsum(self, data, p):
        got = _run_scan(SumOp(), data, p)
        assert [int(v) for v in got] == np.cumsum(data).tolist()

    @COMMON
    @given(data=ints, p=procs)
    def test_exclusive_plus_element_is_inclusive(self, data, p):
        inc = _run_scan(SumOp(), data, p)
        exc = _run_scan(SumOp(), data, p, exclusive=True)
        assert all(
            int(i) == int(e) + x for i, e, x in zip(inc, exc, data)
        )

    @COMMON
    @given(data=ints, p=procs)
    def test_last_inclusive_is_reduction(self, data, p):
        if not data:
            return
        inc = _run_scan(SumOp(), data, p)
        assert int(inc[-1]) == sum(data)

    @COMMON
    @given(data=small_ints, p=procs)
    def test_counts_scan_independent_of_p(self, data, p):
        base = sequential_scan(CountsOp(8, base=0), data)
        assert _run_scan(CountsOp(8, base=0), data, p) == base

    @COMMON
    @given(data=ints, p=procs)
    def test_sorted_scan_monotone_false(self, data, p):
        """Once the prefix is unsorted it stays unsorted."""
        out = _run_scan(SortedOp(), data, p)
        seen_false = False
        for v in out:
            if seen_false:
                assert v is False or v == False  # noqa: E712
            if not v:
                seen_false = True


class TestMiniPairs:
    @COMMON
    @given(
        data=st.lists(
            st.integers(min_value=-100, max_value=100), min_size=1, max_size=30
        ),
        p=procs,
    )
    def test_mini_matches_argmin(self, data, p):
        pairs = [(v, i) for i, v in enumerate(data)]
        val, loc = _run_reduce(MiniOp(), pairs, p)
        assert val == min(data)
        assert loc == data.index(min(data))  # smallest index on ties
