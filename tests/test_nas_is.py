"""Tests for the NAS IS substrate: keygen, bucket sort, verification."""

import numpy as np
import pytest

from repro.errors import SpmdError, VerificationError
from repro.nas import IS_CLASSES, IS_CLASSES_FULL, is_class
from repro.nas.intsort import (
    bucket_sort,
    count_unsorted_vectorized,
    generate_keys,
    generate_keys_block,
    local_key_block,
    run_is,
    sorted_check_scalar,
    sorted_check_tworef,
    sorted_check_vectorized,
    verify_mpi,
    verify_rsmpi,
    verify_rsmpi_commutative,
)
from repro.runtime import spmd_run
from tests.conftest import run_all

CLS = is_class("S")
SIZES = [1, 2, 3, 4, 7, 8]


class TestClasses:
    def test_class_lookup(self):
        assert is_class("s").n_keys == 1 << 16
        assert is_class("A", full=True).n_keys == 1 << 23
        assert is_class("A").n_keys < is_class("A", full=True).n_keys

    def test_unknown_class(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            is_class("Z")

    def test_scaled_preserve_ratio(self):
        for name in "SABC":
            scaled, full = IS_CLASSES[name], IS_CLASSES_FULL[name]
            assert scaled.n_keys // scaled.max_key == full.n_keys // full.max_key


class TestKeygen:
    def test_keys_in_range(self):
        keys = generate_keys(CLS)
        assert keys.min() >= 0 and keys.max() < CLS.max_key
        assert len(keys) == CLS.n_keys

    def test_bell_shaped_distribution(self):
        """The average-of-4 construction concentrates keys mid-range."""
        keys = generate_keys(CLS)
        mid = CLS.max_key // 2
        inner = np.sum(np.abs(keys - mid) < CLS.max_key // 4)
        assert inner / len(keys) > 0.6  # uniform would give 0.5

    def test_block_equals_slice(self):
        whole = generate_keys(CLS)
        for start, count in [(0, 10), (1000, 512), (CLS.n_keys - 7, 7)]:
            block = generate_keys_block(CLS, start, count)
            assert np.array_equal(block, whole[start : start + count])

    def test_zero_count(self):
        assert len(generate_keys_block(CLS, 5, 0)) == 0

    @pytest.mark.parametrize("p", SIZES)
    def test_rank_blocks_tile_stream(self, p):
        whole = generate_keys(CLS)

        def prog(comm):
            keys, start = local_key_block(comm, CLS)
            return (start, keys)

        parts = run_all(prog, p)
        joined = np.concatenate([k for _, k in sorted(parts)])
        assert np.array_equal(joined, whole)


class TestBucketSort:
    @pytest.mark.parametrize("p", SIZES)
    def test_globally_sorted(self, p):
        def prog(comm):
            r = bucket_sort(comm, CLS)
            first = r.local_sorted[0] if len(r.local_sorted) else None
            last = r.local_sorted[-1] if len(r.local_sorted) else None
            locally = bool(np.all(np.diff(r.local_sorted) >= 0))
            return (first, last, locally, len(r.local_sorted))

        parts = run_all(prog, p)
        assert all(t[2] for t in parts)
        assert sum(t[3] for t in parts) == CLS.n_keys
        prev = None
        for first, last, _, n in parts:
            if n == 0:
                continue
            if prev is not None:
                assert prev <= first
            prev = last

    @pytest.mark.parametrize("p", [1, 4])
    def test_content_preserved(self, p):
        whole = np.sort(generate_keys(CLS))

        def prog(comm):
            return bucket_sort(comm, CLS).local_sorted

        joined = np.concatenate(run_all(prog, p))
        assert np.array_equal(joined, whole)

    def test_load_balance_reasonable(self):
        def prog(comm):
            return len(bucket_sort(comm, CLS).local_sorted)

        counts = run_all(prog, 8)
        avg = CLS.n_keys / 8
        assert max(counts) < 2.0 * avg  # buckets keep the skew bounded


class TestLocalKernels:
    def test_kernels_agree(self, rng):
        for trial in range(10):
            a = rng.integers(0, 100, 50)
            t = sorted_check_tworef(list(a))
            s = sorted_check_scalar(list(a))
            v = count_unsorted_vectorized(a)
            assert t == s == v
            assert sorted_check_vectorized(a) == (v == 0)

    def test_empty_and_single(self):
        assert sorted_check_tworef([]) == 0
        assert sorted_check_scalar([]) == 0
        assert sorted_check_vectorized(np.array([])) is True
        assert sorted_check_scalar([5]) == 0


class TestVerifiers:
    def _sorted_blocks(self, p):
        """Globally sorted data, block-distributed."""
        whole = np.sort(generate_keys(CLS))
        return [
            whole[r * len(whole) // p : (r + 1) * len(whole) // p]
            for r in range(p)
        ]

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("verify", [verify_mpi, verify_rsmpi])
    def test_true_on_sorted(self, p, verify):
        blocks = self._sorted_blocks(p)
        out = run_all(lambda comm: verify(comm, blocks[comm.rank]), p)
        assert all(out)

    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("verify", [verify_mpi, verify_rsmpi])
    def test_false_on_boundary_violation(self, p, verify):
        blocks = [b.copy() for b in self._sorted_blocks(p)]
        # corrupt one boundary: bump the first element of the last rank
        blocks[-1][0] = -1
        out = run_all(lambda comm: verify(comm, blocks[comm.rank]), p)
        assert not any(out)

    @pytest.mark.parametrize("verify", [verify_mpi, verify_rsmpi])
    def test_false_on_local_violation(self, verify):
        blocks = [b.copy() for b in self._sorted_blocks(4)]
        blocks[2][5], blocks[2][6] = blocks[2][6] + 1000, blocks[2][5]
        out = run_all(lambda comm: verify(comm, blocks[comm.rank]), 4)
        assert not any(out)

    @pytest.mark.parametrize("p", [2, 4])
    def test_verifiers_agree_with_empty_rank(self, p):
        whole = np.sort(generate_keys(CLS))

        def prog(comm):
            local = whole if comm.rank == 0 else np.empty(0, dtype=np.int64)
            return (
                verify_mpi(comm, local, handle_empty=True),
                verify_rsmpi(comm, local),
            )

        for m, r in run_all(prog, p):
            assert m is True and r is True

    def test_mpi_verifier_rejects_empty_without_optin(self):
        from repro.errors import SpmdError, VerificationError

        whole = np.sort(generate_keys(CLS))

        def prog(comm):
            local = whole if comm.rank == 0 else np.empty(0, dtype=np.int64)
            verify_mpi(comm, local)

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 2, timeout=10)
        assert any(
            isinstance(e, VerificationError)
            for e in ei.value.failures.values()
        )

    @pytest.mark.parametrize("p", [6, 8, 12])
    def test_commutative_flag_misverifies(self, p):
        """The paper's §4.1 expected failure.

        Needs p > fanout + 1 so the k-ary (heap-numbered) combining tree
        actually has an interior node whose subtree is a non-contiguous
        rank set; below that the tree degenerates to rank order and the
        dishonest flag happens to be harmless.
        """
        blocks = self._sorted_blocks(p)
        out = run_all(
            lambda comm: verify_rsmpi_commutative(comm, blocks[comm.rank]), p
        )
        assert not any(out)  # sorted data reported unsorted

    def test_commutative_flag_harmless_on_one_rank(self):
        blocks = self._sorted_blocks(1)
        out = run_all(
            lambda comm: verify_rsmpi_commutative(comm, blocks[0]), 1
        )
        assert all(out)  # no reordering possible with p == 1


class TestDriver:
    @pytest.mark.parametrize("p", [1, 2, 4])
    @pytest.mark.parametrize("verifier", ["mpi", "rsmpi"])
    def test_run_is_end_to_end(self, p, verifier):
        res = spmd_run(lambda comm: run_is(comm, CLS, verifier=verifier), p)
        for r in res.returns:
            assert r.sorted_ok
            assert r.t_verify_end >= r.t_sort_end

    def test_phase_times_ordered(self):
        res = spmd_run(lambda comm: run_is(comm, CLS), 4)
        assert all(r.t_sort_end <= r.t_verify_end for r in res.returns)
        assert res.time >= max(r.t_verify_end for r in res.returns)

    def test_unknown_verifier(self):
        with pytest.raises(SpmdError) as ei:
            spmd_run(lambda comm: run_is(comm, CLS, verifier="nope"), 2,
                     timeout=10)
        assert any(
            isinstance(e, VerificationError)
            for e in ei.value.failures.values()
        )

    @pytest.mark.parametrize("p", [4])
    def test_commutative_verifier_does_not_raise(self, p):
        """rsmpi_commutative is expected to mis-verify, not to raise."""
        res = spmd_run(
            lambda comm: run_is(comm, CLS, verifier="rsmpi_commutative"), p
        )
        assert not any(r.sorted_ok for r in res.returns)
