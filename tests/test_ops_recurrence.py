"""Tests for the affine-recurrence scan and log-sum-exp reduction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import check_operator, global_reduce, global_scan
from repro.ops import AffineOp, LogSumExpOp, linear_recurrence
from repro.runtime import spmd_run
from tests.conftest import block_split, run_all

SIZES = [1, 2, 3, 5, 8]


def _sequential_recurrence(a, b, y0):
    y = []
    cur = y0
    for ai, bi in zip(a, b):
        cur = ai * cur + bi
        y.append(cur)
    return np.array(y)


class TestAffine:
    @pytest.mark.parametrize("p", SIZES)
    def test_matches_sequential_loop(self, p, rng):
        a = rng.uniform(0.5, 1.5, 60)
        b = rng.normal(size=60)
        y0 = 2.5
        expected = _sequential_recurrence(a, b, y0)

        def prog(comm):
            sl = block_split(np.arange(60), comm.size, comm.rank)
            return linear_recurrence(comm, a[sl], b[sl], y0)

        out = np.concatenate(spmd_run(prog, p).returns)
        assert np.allclose(out, expected, rtol=1e-10)

    def test_fibonacci_via_decay(self):
        """y_i = 1*y_{i-1} + b_i degenerates to a prefix sum."""
        b = np.arange(1.0, 11.0)
        out = np.concatenate(
            spmd_run(
                lambda comm: linear_recurrence(
                    comm,
                    np.ones(len(block_split(b, comm.size, comm.rank))),
                    block_split(b, comm.size, comm.rank),
                    0.0,
                ),
                2,
            ).returns
        )
        assert np.allclose(out, np.cumsum(b))

    def test_compound_interest(self):
        """Constant a > 1: exponential growth with deposits."""
        n = 12
        a = np.full(n, 1.01)
        b = np.full(n, 100.0)
        out = np.concatenate(
            spmd_run(
                lambda comm: linear_recurrence(
                    comm,
                    block_split(a, comm.size, comm.rank),
                    block_split(b, comm.size, comm.rank),
                    1000.0,
                ),
                3,
            ).returns
        )
        assert out[-1] == pytest.approx(
            _sequential_recurrence(a, b, 1000.0)[-1]
        )

    def test_noncommutative_flag(self):
        assert AffineOp().commutative is False

    def test_laws(self, rng):
        pairs = [(float(a), float(b)) for a, b in
                 zip(rng.uniform(0.5, 2, 20), rng.normal(size=20))]
        check_operator(AffineOp(), pairs, n_trials=10)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        p=st.integers(1, 5),
        n=st.integers(1, 30),
    )
    def test_property_any_coefficients(self, seed, p, n):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1.2, 1.2, n)
        b = rng.normal(size=n)
        expected = _sequential_recurrence(a, b, 1.0)

        def prog(comm):
            sl = block_split(np.arange(n), comm.size, comm.rank)
            return linear_recurrence(comm, a[sl], b[sl], 1.0)

        out = np.concatenate(spmd_run(prog, p).returns)
        assert np.allclose(out, expected, rtol=1e-8, atol=1e-10)


class TestLogSumExp:
    @pytest.mark.parametrize("p", SIZES)
    def test_matches_scipy_style_reference(self, p, rng):
        data = rng.normal(0, 10, 77)
        expected = float(np.log(np.exp(data - data.max()).sum()) + data.max())

        def prog(comm):
            return global_reduce(
                comm, LogSumExpOp(), block_split(data, comm.size, comm.rank)
            )

        for v in run_all(prog, p):
            assert v == pytest.approx(expected, rel=1e-12)

    def test_no_overflow_with_huge_values(self):
        data = np.array([1e300, 1e300, 1e300])  # exp() would overflow
        out = run_all(
            lambda comm: global_reduce(comm, LogSumExpOp(), data), 1
        )[0]
        assert out == pytest.approx(1e300 + math.log(3))

    def test_empty_is_neg_inf(self):
        out = run_all(
            lambda comm: global_reduce(comm, LogSumExpOp(), []), 2
        )[0]
        assert out == -math.inf

    def test_running_scan(self, rng):
        data = rng.normal(size=20)

        def prog(comm):
            return global_scan(
                comm, LogSumExpOp(), block_split(data, comm.size, comm.rank)
            )

        flat = [v for part in spmd_run(prog, 4).returns for v in part]
        for i, v in enumerate(flat):
            prefix = data[: i + 1]
            ref = float(
                np.log(np.exp(prefix - prefix.max()).sum()) + prefix.max()
            )
            assert v == pytest.approx(ref, rel=1e-10)

    def test_laws(self, rng):
        check_operator(
            LogSumExpOp(), [float(v) for v in rng.normal(0, 5, 25)],
            n_trials=10,
        )
