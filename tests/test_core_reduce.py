"""Tests for the global-view reduction driver (Listing 2)."""

import numpy as np
import pytest

from repro.core import from_binary, global_reduce, make_op
from repro.errors import OperatorError, SpmdError
from repro.ops import MinKOp, SortedOp, SumOp
from repro.runtime import CostModel, spmd_run
from tests.conftest import PAPER_DATA, block_split, run_all

SIZES = [1, 2, 3, 4, 7, 10]


class TestBasics:
    @pytest.mark.parametrize("p", SIZES)
    def test_paper_sum_is_55(self, p):
        def prog(comm):
            local = block_split(PAPER_DATA, comm.size, comm.rank)
            return global_reduce(comm, SumOp(), local)

        assert run_all(prog, p) == [55] * p

    @pytest.mark.parametrize("p", SIZES)
    def test_root_variant(self, p):
        def prog(comm):
            local = block_split(PAPER_DATA, comm.size, comm.rank)
            return global_reduce(comm, SumOp(), local, root=p - 1)

        out = run_all(prog, p)
        assert out[p - 1] == 55
        assert all(v is None for v in out[: p - 1])

    def test_rejects_plain_function(self):
        def prog(comm):
            global_reduce(comm, lambda a, b: a + b, [1, 2])

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 2, timeout=10)
        assert any(
            isinstance(e, OperatorError) for e in ei.value.failures.values()
        )

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_empty_ranks_contribute_identity(self, p):
        # all data on rank 0; others have nothing
        def prog(comm):
            local = PAPER_DATA if comm.rank == 0 else []
            return global_reduce(comm, SumOp(), local)

        assert run_all(prog, p) == [55] * p

    def test_all_ranks_empty(self):
        out = run_all(lambda comm: global_reduce(comm, SumOp(), []), 3)
        assert out == [0] * 3  # the identity


class TestHooks:
    """pre_accum / post_accum are called exactly once with the first and
    last local elements (Listing 2 lines 3-4 and 7-8)."""

    def _tracking_op(self):
        calls = []
        op = make_op(
            ident=lambda: [],
            accum=lambda s, x: (s.append(("a", x)), s)[1],
            combine=lambda a, b: a + b,
            pre_accum=lambda s, x: (s.append(("pre", x)), s)[1],
            post_accum=lambda s, x: (s.append(("post", x)), s)[1],
            red_gen=lambda s: s,
            commutative=False,
        )
        return op

    def test_hook_order_single_rank(self):
        op = self._tracking_op()
        out = run_all(
            lambda comm: global_reduce(comm, op, [10, 20, 30]), 1
        )[0]
        assert out[0] == ("pre", 10)
        assert out[-1] == ("post", 30)
        assert [x for t, x in out if t == "a"] == [10, 20, 30]

    def test_hooks_skipped_on_empty(self):
        op = self._tracking_op()
        out = run_all(lambda comm: global_reduce(comm, op, []), 1)[0]
        assert out == []


class TestDegenerateEquivalence:
    """Paper §3: when in == state == out the global view reduces to the
    local view: a from_binary op over pre-accumulated scalars matches
    LOCAL_ALLREDUCE exactly."""

    @pytest.mark.parametrize("p", SIZES)
    def test_matches_local_view(self, p, rng):
        data = rng.integers(0, 100, 60)

        def prog(comm):
            local = block_split(data, comm.size, comm.rank)
            op = from_binary(
                lambda a, b: a + b, lambda: 0, name="sum", vectorized=False
            )
            gv = global_reduce(comm, op, local)
            from repro.localview import LOCAL_ALLREDUCE

            lv = LOCAL_ALLREDUCE(comm, lambda a, b: a + b, int(sum(local)))
            return gv == lv == int(data.sum())

        assert all(run_all(prog, p))


class TestNonCommutative:
    @pytest.mark.parametrize("p", SIZES)
    def test_sorted_true_on_sorted(self, p):
        data = np.arange(57)

        def prog(comm):
            return global_reduce(
                comm, SortedOp(), block_split(data, comm.size, comm.rank)
            )

        assert all(run_all(prog, p))

    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("swap_at", [0, 17, 40, 55])
    def test_sorted_false_on_violation(self, p, swap_at):
        data = list(range(57))
        data[swap_at], data[swap_at + 1] = data[swap_at + 1], data[swap_at]

        def prog(comm):
            return global_reduce(
                comm, SortedOp(), block_split(data, comm.size, comm.rank)
            )

        assert not any(run_all(prog, p))

    @pytest.mark.parametrize("p", [2, 3, 5, 8])
    def test_boundary_only_violation_detected(self, p):
        """Each block is locally sorted but blocks don't meet in order —
        only the combine's boundary check can catch this."""
        # block r holds [100*(p-r), 100*(p-r)+9]: descending across blocks
        def prog(comm):
            lo = 100 * (comm.size - comm.rank)
            return global_reduce(
                comm, SortedOp(), np.arange(lo, lo + 10)
            )

        assert not any(run_all(prog, p))


class TestCostCharging:
    def test_accum_rate_charges_per_element(self):
        cm = CostModel().with_rates(acc=1e-3)

        def prog(comm):
            op = SumOp()
            global_reduce(comm, op, np.ones(100), accum_rate="acc")

        res = spmd_run(prog, 1, cost_model=cm)
        assert res.time == pytest.approx(0.1)

    def test_combine_seconds_charged_per_combine(self):
        def prog(comm):
            global_reduce(comm, SumOp(), [1.0], combine_seconds=0.5)

        res = spmd_run(prog, 4)
        # rank 0's reduce path sees ceil(log2 4) = 2 combines (allreduce
        # recursive doubling); every rank performs log p combines
        assert res.time >= 1.0

    def test_operator_default_rates_used(self):
        cm = CostModel().with_rates(myop=2e-3)
        op = MinKOp(3)
        op.accum_rate = "myop"

        def prog(comm):
            global_reduce(comm, op, np.arange(50.0))

        res = spmd_run(prog, 1, cost_model=cm)
        assert res.time == pytest.approx(0.1)


class TestMinKGlobalView:
    @pytest.mark.parametrize("p", SIZES)
    def test_mink_chapel_call_shape(self, p, rng):
        """var minimums: [1..10] integer; minimums = mink(integer, 10)
        reduce A;  — the §3.1.1 call."""
        data = rng.integers(0, 100_000, 333)

        def prog(comm):
            op = MinKOp(10, np.iinfo(np.int64).max)
            return global_reduce(
                comm, op, block_split(data, comm.size, comm.rank)
            )

        expected = np.sort(data)[:10][::-1].tolist()
        for v in run_all(prog, p):
            assert v.tolist() == expected
