"""Tests for prefix circuits, the classic networks, and Blelloch scans."""

import operator

import numpy as np
import pytest

from repro.errors import ReproError
from repro.prefix import (
    ALL_NETWORKS,
    PrefixCircuit,
    blelloch_scan,
    blelloch_xscan,
    brent_kung,
    hillis_steele,
    inclusive_from_exclusive,
    kogge_stone,
    ladner_fischer,
    serial,
    sklansky,
)


class TestPrefixCircuit:
    def test_evaluate_applies_ops_in_order(self):
        c = PrefixCircuit(3, [(0, 1), (1, 2)])
        assert c.evaluate([1, 2, 3], operator.add) == [1, 3, 6]

    def test_size_and_depth(self):
        c = PrefixCircuit(3, [(0, 1), (1, 2)])
        assert c.size == 2 and c.depth == 2

    def test_depth_sees_parallelism(self):
        # two independent ops: depth 1, size 2
        c = PrefixCircuit(4, [(0, 1), (2, 3)])
        assert c.depth == 1 and c.size == 2

    def test_levels_grouping(self):
        c = serial(4)
        assert [len(lvl) for lvl in c.levels()] == [1, 1, 1]
        c2 = PrefixCircuit(4, [(0, 1), (2, 3), (1, 3)])
        assert [len(lvl) for lvl in c2.levels()] == [2, 1]

    def test_verify_detects_wrong_circuit(self):
        broken = PrefixCircuit(3, [(0, 2)])  # skips position 1
        assert not broken.verify([1, 2, 3], operator.add)

    def test_bad_ops_rejected(self):
        with pytest.raises(ReproError):
            PrefixCircuit(3, [(2, 1)])
        with pytest.raises(ReproError):
            PrefixCircuit(3, [(0, 3)])

    def test_wrong_input_length(self):
        with pytest.raises(ReproError):
            serial(4).evaluate([1, 2], operator.add)

    def test_to_networkx_dag(self):
        nx = pytest.importorskip("networkx")
        g = brent_kung(8).to_networkx()
        assert nx.is_directed_acyclic_graph(g)
        # longest path over op nodes equals circuit depth
        assert nx.dag_longest_path_length(g) == brent_kung(8).depth


class TestNetworkMetrics:
    @pytest.mark.parametrize("k", range(2, 9))
    def test_kogge_stone_metrics(self, k):
        n = 1 << k
        c = kogge_stone(n)
        assert c.depth == k
        assert c.size == n * k - n + 1

    @pytest.mark.parametrize("k", range(2, 9))
    def test_sklansky_metrics(self, k):
        n = 1 << k
        c = sklansky(n)
        assert c.depth == k
        assert c.size == (n // 2) * k

    @pytest.mark.parametrize("k", range(2, 9))
    def test_brent_kung_metrics(self, k):
        n = 1 << k
        c = brent_kung(n)
        assert c.size == 2 * n - 2 - k
        assert c.depth == max(2 * k - 2, 1)

    @pytest.mark.parametrize("k", range(2, 9))
    def test_serial_metrics(self, k):
        n = 1 << k
        c = serial(n)
        assert c.depth == c.size == n - 1

    @pytest.mark.parametrize("k", range(3, 9))
    def test_work_efficiency_ordering(self, k):
        """BK does the least work; KS the most; Sklansky in between."""
        n = 1 << k
        assert brent_kung(n).size < sklansky(n).size < kogge_stone(n).size

    @pytest.mark.parametrize("k", range(3, 9))
    def test_ladner_fischer_tradeoff(self, k):
        n = 1 << k
        lf0, lf1 = ladner_fischer(n, 0), ladner_fischer(n, 1)
        # the tunable middle ground of the depth/size spectrum
        assert lf0.size < sklansky(n).size
        assert lf0.depth <= sklansky(n).depth + 1
        assert lf1.depth == sklansky(n).depth
        assert lf1.size <= sklansky(n).size

    def test_hillis_steele_is_kogge_stone(self):
        a, b = hillis_steele(16), kogge_stone(16)
        assert a.ops == b.ops

    def test_invalid_args(self):
        with pytest.raises(ReproError):
            kogge_stone(0)
        with pytest.raises(ReproError):
            ladner_fischer(8, -1)


class TestNetworkCorrectness:
    @pytest.mark.parametrize("name", sorted(ALL_NETWORKS))
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 16, 33, 100, 257])
    def test_computes_scan(self, name, n):
        vals = [(i * 7 + 3) % 23 for i in range(n)]
        c = ALL_NETWORKS[name](n)
        assert c.verify(vals, operator.add)

    @pytest.mark.parametrize("name", sorted(ALL_NETWORKS))
    def test_min_scan(self, name):
        vals = [9, 4, 7, 1, 8, 2, 5, 6]
        c = ALL_NETWORKS[name](8)
        got = c.evaluate(vals, min)
        assert got == [9, 4, 4, 1, 1, 1, 1, 1]


class TestBlelloch:
    def test_exclusive_power_of_two(self):
        assert blelloch_xscan([1, 2, 3, 4], operator.add, 0) == [0, 1, 3, 6]

    def test_exclusive_non_power_of_two(self):
        assert blelloch_xscan([1, 2, 3, 4, 5], operator.add, 0) == [0, 1, 3, 6, 10]

    def test_empty_and_single(self):
        assert blelloch_xscan([], operator.add, 0) == []
        assert blelloch_xscan([7], operator.add, 0) == [0]

    def test_inclusive_fixup(self):
        vals = [3, 1, 4, 1, 5]
        exc = blelloch_xscan(vals, operator.add, 0)
        assert inclusive_from_exclusive(vals, exc, operator.add) == [
            3, 4, 8, 9, 14,
        ]

    def test_with_max_and_identity(self):
        vals = [3, 9, 2, 7]
        exc = blelloch_xscan(vals, max, float("-inf"))
        assert exc == [float("-inf"), 3, 9, 9]
        assert blelloch_scan(vals, max, float("-inf")) == [3, 9, 9, 9]

    def test_work_is_linear(self):
        calls = 0

        def counting_add(a, b):
            nonlocal calls
            calls += 1
            return a + b

        n = 256
        blelloch_xscan(list(range(n)), counting_add, 0)
        assert calls <= 2 * n  # work-efficient: ~2(n-1) applications
