"""Documentation-consistency guards: every file, command and module the
docs reference must actually exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text()


class TestReadme:
    def test_referenced_benchmark_files_exist(self):
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", _read("README.md")):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(0)

    def test_referenced_examples_exist(self):
        for match in re.finditer(r"examples/(\w+\.py)", _read("README.md")):
            assert (ROOT / "examples" / match.group(1)).exists(), match.group(0)

    def test_referenced_docs_exist(self):
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert name in _read("README.md")
            assert (ROOT / name).exists()
        for match in re.finditer(r"docs/(\w+\.md)", _read("README.md")):
            assert (ROOT / "docs" / match.group(1)).exists(), match.group(0)

    def test_quickstart_snippet_imports_resolve(self):
        import repro
        from repro import global_reduce, spmd_run  # noqa: F401
        from repro.arrays import GlobalArray  # noqa: F401
        from repro.ops import CountsOp, MinKOp, SortedOp  # noqa: F401
        from repro.rsmpi import RSMPI_Reduceall, compile_operator  # noqa: F401

        assert repro.__version__


class TestDesign:
    def test_experiment_index_bench_targets_exist(self):
        for match in re.finditer(
            r"`benchmarks/(bench_\w+\.py)`", _read("DESIGN.md")
        ):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(0)

    def test_inventory_packages_exist(self):
        design = _read("DESIGN.md")
        for pkg in ("runtime", "mpi", "localview", "core", "ops", "rsmpi",
                    "arrays", "prefix", "nas", "analysis", "algorithms"):
            assert pkg in design
            assert (ROOT / "src" / "repro" / pkg / "__init__.py").exists(), pkg


class TestExperiments:
    def test_every_benchmark_file_is_documented(self):
        exp = _read("EXPERIMENTS.md") + _read("README.md")
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in exp, (
                f"{bench.name} has no entry in EXPERIMENTS.md or README.md"
            )

    def test_commands_reference_existing_files(self):
        for match in re.finditer(
            r"pytest (benchmarks/bench_\w+\.py)", _read("EXPERIMENTS.md")
        ):
            assert (ROOT / match.group(1)).exists(), match.group(0)


class TestApiDoc:
    def test_documented_names_importable(self):
        """Spot-check the api.md tables: the named operators must exist."""
        import repro.nas as nas
        import repro.ops as ops

        doc = _read("docs/api.md")
        for name in re.findall(r"`(\w+Op)\b", doc):
            if name in ("ReduceScanOp", "ChapelOp", "UfuncOp"):
                continue
            assert hasattr(ops, name) or hasattr(nas, name), (
                f"docs/api.md names missing {name}"
            )

    def test_library_operator_names_current(self):
        from repro.rsmpi import operator_names

        doc = _read("docs/api.md")
        for name in operator_names():
            assert name in doc, f"library operator {name!r} not in api.md"
