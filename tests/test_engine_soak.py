"""Engine soak: hundreds of mixed jobs from many clients, one engine.

CI runs this with ``pytest-timeout`` installed, so a scheduler hang
fails fast instead of wedging the job; locally the marker is inert if
the plugin is absent.  The mix includes healthy reductions and scans of
several gang sizes, a failing job, a cancelled job and one
chaos-seeded job with an injected fail-stop — all multiplexed over the
same 8-rank pool.
"""

import random
import threading

import numpy as np
import pytest

from repro import global_reduce, global_scan
from repro.engine import Engine
from repro.errors import JobCancelled, SpmdError
from repro.faults import FailStop, FaultPlan
from repro.ops import SumOp
from repro.runtime import spmd_run

N_CLIENTS = 8
JOBS_PER_CLIENT = 26  # 8 * 26 = 208 jobs >= the 200-job soak floor


def reduce_job(comm, scale):
    local = np.arange(comm.rank, 8 * comm.size, comm.size, dtype=np.float64)
    return global_reduce(comm, SumOp(), local * scale)


def scan_job(comm, base):
    return global_scan(comm, SumOp(), [float(base + comm.rank)])


def failing_job(comm):
    if comm.rank == comm.size - 1:
        raise RuntimeError("soak: planned failure")
    return comm.rank


def slow_job(comm, gate):
    gate.wait(30.0)
    return comm.rank


CHAOS_PLAN = FaultPlan(seed=7, failstops=(FailStop(rank=1, at_op=1),))


@pytest.mark.timeout(120)
def test_soak_mixed_clients():
    baselines = {
        (nprocs, scale): spmd_run(
            reduce_job, nprocs, args=(scale,)
        ).returns
        for nprocs in (2, 4, 8)
        for scale in (1.0, 2.0)
    }
    chaos_baseline = spmd_run(reduce_job, 4, args=(1.0,), fault_plan=CHAOS_PLAN)
    failures: list[BaseException] = []
    counts = {"ok": 0, "failed": 0, "cancelled": 0, "chaos": 0}
    lock = threading.Lock()

    def bump(key):
        with lock:
            counts[key] += 1

    def client(idx: int, engine: Engine) -> None:
        rng = random.Random(idx)
        try:
            for k in range(JOBS_PER_CLIENT):
                roll = rng.random()
                if idx == 0 and k == 0:
                    # The one chaos-seeded job of the soak.
                    res = engine.submit(
                        reduce_job, nprocs=4, args=(1.0,),
                        fault_plan=CHAOS_PLAN, label="chaos",
                    ).result()
                    assert res.failed_ranks == chaos_baseline.failed_ranks
                    assert res.returns == chaos_baseline.returns
                    bump("chaos")
                elif roll < 0.05:
                    with pytest.raises(SpmdError):
                        engine.submit(
                            failing_job, nprocs=rng.choice((2, 4))
                        ).result()
                    bump("failed")
                elif roll < 0.10:
                    gate = threading.Event()
                    handle = engine.submit(slow_job, nprocs=2, args=(gate,))
                    handle.cancel()
                    gate.set()
                    with pytest.raises(JobCancelled):
                        handle.result(timeout=30.0)
                    bump("cancelled")
                elif roll < 0.55:
                    nprocs = rng.choice((2, 4, 8))
                    scale = rng.choice((1.0, 2.0))
                    res = engine.submit(
                        reduce_job, nprocs=nprocs, args=(scale,)
                    ).result()
                    assert res.returns == baselines[(nprocs, scale)]
                    bump("ok")
                else:
                    nprocs = rng.choice((2, 4, 8))
                    base = rng.randrange(100)
                    res = engine.submit(
                        scan_job, nprocs=nprocs, args=(base,)
                    ).result()
                    assert res.returns == [
                        [float(sum(base + g for g in range(i + 1)))]
                        for i in range(nprocs)
                    ]
                    bump("ok")
        except BaseException as exc:  # noqa: BLE001 - reported below
            failures.append(exc)

    with Engine(8, queue_depth=64) as engine:
        threads = [
            threading.Thread(target=client, args=(i, engine), daemon=True)
            for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = engine.stats()
        assert all(mb.pending_count() == 0 for mb in engine.world.mailboxes)

    assert not failures, failures[0]
    total = sum(counts.values())
    assert total == N_CLIENTS * JOBS_PER_CLIENT >= 200
    assert counts["chaos"] == 1
    assert stats["submitted"] == total
    assert stats["pending"] == 0 and stats["inflight"] == 0
    # Every job is accounted for: done, failed or cancelled.
    assert (
        stats["completed"] + stats["failed"] + stats["cancelled"]
        == stats["submitted"]
    )
    cache = stats["schedule_cache"]
    assert cache["hits"] > cache["misses"]
