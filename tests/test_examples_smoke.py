"""Smoke tests keeping the example scripts honest: each must run to
completion (with small parameters where the script accepts them) and
print its headline output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 120.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{name} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "sum reduce          : 55" in out
        assert "counts scan (ranks) : [1, 1, 2, 1, 1, 1, 2, 1, 3, 2]" in out
        assert "range (DSL)" in out

    def test_rsmpi_preprocessor_demo(self):
        out = run_example("rsmpi_preprocessor_demo.py")
        assert "def ident(s):" in out  # shows generated code
        assert "sorted(0..999) over 8 ranks  : 1" in out
        assert "[1, 1, 2, 1, 1, 1, 2, 1, 3, 2]" in out

    def test_nas_is_demo_small(self):
        out = run_example("nas_is_demo.py", "S", "4")
        assert out.count("sorted") >= 2
        assert "NOT sorted" in out  # the commutative mis-verification

    def test_nas_mg_demo_small(self):
        out = run_example("nas_mg_zran3_demo.py", "S", "4")
        assert "F+MPI   :  40 reductions" in out
        assert "F+RSMPI :   1 reduction" in out

    def test_nas_ep_demo_small(self):
        out = run_example("nas_ep_demo.py", "S", "4")
        assert "3 reductions" in out and "1 reduction," in out
        assert "pi/4" in out

    def test_cg_demo_small(self):
        out = run_example("cg_solver_demo.py", "4096", "4")
        assert "fused speedup" in out
        assert "aggregate utilization" in out

    @pytest.mark.slow
    def test_particle_octants(self):
        out = run_example("particle_octants.py", timeout=300)
        assert "octant populations" in out
        assert "dense: True" in out

    @pytest.mark.slow
    def test_scan_algorithms(self):
        out = run_example("scan_algorithms_demo.py", timeout=300)
        assert "globally sorted = True" in out

    @pytest.mark.slow
    def test_summed_area_table(self):
        out = run_example("summed_area_table.py", timeout=300)
        assert "MISMATCH" not in out
        assert out.count("ok") >= 5


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "3"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "sum reduce        : 55" in proc.stdout
        assert "mink(3)           : [3, 3, 2]" in proc.stdout
