"""Tests for wire sizing and payload isolation."""

import numpy as np
import pytest

from repro.util.sizing import (
    TransferSafe,
    TransferSized,
    copy_for_transfer,
    payload_nbytes,
)


class TestPayloadNbytes:
    def test_numpy_array_exact(self):
        a = np.zeros(100, dtype=np.float64)
        assert payload_nbytes(a) == 800
        assert payload_nbytes(np.zeros(10, dtype=np.int32)) == 40

    def test_numpy_scalar(self):
        assert payload_nbytes(np.float64(1.5)) == 8
        assert payload_nbytes(np.int32(7)) == 4

    def test_python_scalars(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes(True) == 8
        assert payload_nbytes(None) == 1

    def test_bytes_and_str(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("hello") == 5
        assert payload_nbytes("héllo") == 6  # utf-8

    def test_containers_sum_elements(self):
        assert payload_nbytes((1.0, 2.0)) > 16
        assert payload_nbytes([np.zeros(4)]) >= 32
        assert payload_nbytes({"a": 1}) > 8

    def test_transfer_sized_protocol(self):
        class S(TransferSized):
            def transfer_nbytes(self):
                return 24

        assert payload_nbytes(S()) == 24

    def test_duck_typed_transfer_nbytes(self):
        class D:
            def transfer_nbytes(self):
                return 99

        assert payload_nbytes(D()) == 99

    def test_fallback_pickles(self):
        class Plain:
            def __init__(self):
                self.x = 1

        assert payload_nbytes(Plain()) > 0


class TestCopyForTransfer:
    def test_numpy_isolated(self):
        a = np.arange(5)
        b = copy_for_transfer(a)
        b[0] = 99
        assert a[0] == 0

    def test_scalars_passthrough(self):
        for v in (None, 1, 2.5, True, "s", b"b"):
            assert copy_for_transfer(v) is v

    def test_nested_containers_isolated(self):
        src = {"k": [np.arange(3), (1, np.arange(2))]}
        dst = copy_for_transfer(src)
        dst["k"][0][0] = 42
        dst["k"][1][1][0] = 42
        assert src["k"][0][0] == 0
        assert src["k"][1][1][0] == 0

    def test_custom_object_deepcopied(self):
        class Box:
            def __init__(self):
                self.v = [1, 2]

        b = Box()
        c = copy_for_transfer(b)
        c.v.append(3)
        assert b.v == [1, 2]

    def test_tuple_type_preserved(self):
        assert isinstance(copy_for_transfer((1, 2)), tuple)
        assert isinstance(copy_for_transfer([1]), list)


class TestZeroCopyFastPaths:
    def test_frozen_array_passthrough(self):
        a = np.arange(5)
        a.setflags(write=False)
        assert copy_for_transfer(a) is a

    def test_writeable_array_still_copied(self):
        a = np.arange(5)
        assert copy_for_transfer(a) is not a

    def test_frozenset_passthrough(self):
        s = frozenset({1, 2, 3})
        assert copy_for_transfer(s) is s

    def test_transfer_safe_marker(self):
        class FrozenState(TransferSafe):
            def __init__(self, v):
                self.v = v

        fs = FrozenState([1, 2])
        assert copy_for_transfer(fs) is fs

    def test_transfer_safe_attribute_without_mixin(self):
        class Marked:
            __transfer_safe__ = True

        m = Marked()
        assert copy_for_transfer(m) is m

    def test_transfer_safe_opt_out(self):
        class Marked(TransferSafe):
            def __init__(self):
                self.__transfer_safe__ = False
                self.v = [1]

        m = Marked()
        out = copy_for_transfer(m)
        assert out is not m
        out.v.append(2)
        assert m.v == [1]

    def test_all_immutable_tuple_identity_preserved(self):
        t = (1, "a", frozenset({2}))
        assert copy_for_transfer(t) is t

    def test_tuple_with_mutable_element_rebuilt(self):
        t = (1, np.arange(3))
        out = copy_for_transfer(t)
        assert out is not t
        out[1][0] = 9
        assert t[1][0] == 0
