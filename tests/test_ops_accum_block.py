"""Block-accumulate parity: ``accum_block`` must equal the scalar
``accum`` loop for every public operator (the vectorized overrides are
pure optimizations, never semantic changes)."""

import random

import numpy as np
import pytest

from repro.core.operator import ReduceScanOp, state_equal
from repro.faults.chaos import CHAOS_CASES
from repro.ops import SegmentedOp


def scalar_loop(op: ReduceScanOp, state, values):
    for x in values:
        state = op.accum(state, x)
    return state


@pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("n", [0, 1, 2, 7, 32])
def test_block_equals_scalar_loop(case, n):
    rng = random.Random(4242 + n)
    data = case.make_data(rng, n)
    block = scalar_loop(case.make_op(), case.make_op().ident(), data)
    op = case.make_op()
    vec = op.accum_block(op.ident(), data)
    assert state_equal(block, vec), (
        f"{op.name}: accum_block diverges from the accum loop at n={n}"
    )


@pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
def test_block_from_seeded_state(case):
    """Parity must also hold when the state already saw a prefix."""
    rng = random.Random(777)
    prefix = case.make_data(rng, 5)
    rest = case.make_data(rng, 9)
    op1 = case.make_op()
    expected = scalar_loop(op1, scalar_loop(op1, op1.ident(), prefix), rest)
    op2 = case.make_op()
    got = op2.accum_block(scalar_loop(op2, op2.ident(), prefix), rest)
    assert state_equal(expected, got)


class TestSegmentedEdges:
    def seg(self):
        return SegmentedOp(lambda a, b: a + b, 0.0, name="sum")

    def check(self, pairs):
        op = self.seg()
        expected = scalar_loop(op, op.ident(), pairs)
        got = self.seg().accum_block(self.seg().ident(), pairs)
        assert got.value == expected.value
        assert got.flag == expected.flag
        assert got.seen == expected.seen

    def test_empty_block(self):
        op = self.seg()
        state = op.accum_block(op.ident(), [])
        assert not state.seen

    def test_no_heads(self):
        self.check([(1.0, 0), (2.0, 0), (3.0, 0)])

    def test_all_heads(self):
        self.check([(1.0, 1), (2.0, 1), (3.0, 1)])

    def test_head_in_middle(self):
        self.check([(1.0, 0), (2.0, 1), (3.0, 0), (4.0, 0)])

    def test_head_last(self):
        self.check([(1.0, 0), (2.0, 0), (9.0, 1)])

    def test_ndarray_pairs(self):
        arr = np.array([[1.0, 0.0], [2.0, 1.0], [3.0, 0.0]])
        op = self.seg()
        expected = scalar_loop(op, op.ident(), arr)
        got = self.seg().accum_block(self.seg().ident(), arr)
        assert got.value == expected.value
        assert got.flag == expected.flag

    def test_seeded_state_continues_run(self):
        op = self.seg()
        seeded = scalar_loop(op, op.ident(), [(5.0, 1), (1.0, 0)])
        expected = scalar_loop(op, seeded, [(2.0, 0), (3.0, 0)])
        op2 = self.seg()
        seeded2 = scalar_loop(op2, op2.ident(), [(5.0, 1), (1.0, 0)])
        got = op2.accum_block(seeded2, [(2.0, 0), (3.0, 0)])
        assert got.value == expected.value == 11.0
        assert got.flag and expected.flag
