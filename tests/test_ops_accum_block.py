"""Block parity: ``accum_block`` (and ``scan_block``) must equal the
scalar ``accum``/``scan_gen`` loops for every public operator — the
vectorized overrides and the kernel tier built on top of them are pure
optimizations, never semantic changes."""

import random

import numpy as np
import pytest

from repro.core.kernels import compile_kernel
from repro.core.operator import ReduceScanOp, state_equal
from repro.faults.chaos import CHAOS_CASES
from repro.ops import SegmentedOp


def scalar_loop(op: ReduceScanOp, state, values):
    for x in values:
        state = op.accum(state, x)
    return state


def scalar_scan(op: ReduceScanOp, state, values, *, exclusive):
    """The base-class ``scan_block`` loop, spelled out element by
    element, as the parity oracle for the vectorized overrides."""
    out = []
    if exclusive:
        for x in values:
            out.append(op.scan_gen(state, x))
            state = op.accum(state, x)
    else:
        for x in values:
            state = op.accum(state, x)
            out.append(op.scan_gen(state, x))
    return out, state


@pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("n", [0, 1, 2, 7, 32])
def test_block_equals_scalar_loop(case, n):
    rng = random.Random(4242 + n)
    data = case.make_data(rng, n)
    block = scalar_loop(case.make_op(), case.make_op().ident(), data)
    op = case.make_op()
    vec = op.accum_block(op.ident(), data)
    assert state_equal(block, vec), (
        f"{op.name}: accum_block diverges from the accum loop at n={n}"
    )


@pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
def test_block_from_seeded_state(case):
    """Parity must also hold when the state already saw a prefix."""
    rng = random.Random(777)
    prefix = case.make_data(rng, 5)
    rest = case.make_data(rng, 9)
    op1 = case.make_op()
    expected = scalar_loop(op1, scalar_loop(op1, op1.ident(), prefix), rest)
    op2 = case.make_op()
    got = op2.accum_block(scalar_loop(op2, op2.ident(), prefix), rest)
    assert state_equal(expected, got)


SCAN_CASES = [c for c in CHAOS_CASES if c.scan]


@pytest.mark.parametrize("case", SCAN_CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("n", [0, 1, 2, 7, 32])
@pytest.mark.parametrize("exclusive", [False, True])
def test_scan_block_equals_scalar_loop(case, n, exclusive):
    if case.name == "segmented" and exclusive:
        # SegmentedOp's exclusive scan_block is a semantic definition,
        # not a vectorization: segment heads emit the identity, which
        # the generic accum/scan_gen loop cannot express.
        pytest.skip("segmented exclusive scan defines its own semantics")
    # Fresh (op, data) per path: the protocol lets accum mutate state.
    rng = random.Random(9000 + n)
    data = case.make_data(rng, n)
    op1 = case.make_op()
    expected = scalar_scan(op1, op1.ident(), data, exclusive=exclusive)
    op2 = case.make_op()
    got = op2.scan_block(op2.ident(), data, exclusive=exclusive)
    assert state_equal(list(expected[0]), list(got[0])), (
        f"{op2.name}: scan_block outputs diverge from the scalar loop "
        f"at n={n}, exclusive={exclusive}"
    )
    assert state_equal(expected[1], got[1]), (
        f"{op2.name}: scan_block final state diverges at n={n}"
    )


@pytest.mark.parametrize("case", SCAN_CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("exclusive", [False, True])
def test_scan_block_from_seeded_state(case, exclusive):
    """Scan parity from a state that already saw a prefix (the shape
    every rank but 0 sees in a global scan)."""
    if case.name == "segmented" and exclusive:
        pytest.skip("segmented exclusive scan defines its own semantics")

    def build():
        rng = random.Random(555)
        op = case.make_op()
        seed = scalar_loop(op, op.ident(), case.make_data(rng, 6))
        return op, seed, case.make_data(rng, 11)

    op1, seed1, data1 = build()
    expected = scalar_scan(op1, seed1, data1, exclusive=exclusive)
    op2, seed2, data2 = build()
    got = op2.scan_block(seed2, data2, exclusive=exclusive)
    assert state_equal(list(expected[0]), list(got[0])), case.name
    assert state_equal(expected[1], got[1]), case.name


@pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("n", [0, 1, 7, 32])
def test_kernel_tier_accum_equals_scalar_loop(case, n):
    """The compiled-kernel tier must agree with the scalar loop for
    every catalogue operator — including the non-commutative ones,
    which classify as segmented/fallback kernels and must run the
    operator's own (order-preserving) block path, never a reordering
    reduction."""
    rng = random.Random(6100 + n)
    data = case.make_data(rng, n)
    op1 = case.make_op()
    expected = scalar_loop(op1, op1.ident(), data)
    op2 = case.make_op()
    kern = compile_kernel(op2, data)
    got = kern.accumulate(op2, op2.ident(), data)
    assert state_equal(expected, got), (
        f"{op2.name}: {kern.kind} kernel diverges from the accum loop "
        f"at n={n}"
    )


@pytest.mark.parametrize("case", SCAN_CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("exclusive", [False, True])
def test_kernel_tier_scan_equals_op_scan_block(case, exclusive):
    """The compiled kernel must preserve the operator's own scan
    semantics (which for segmented ops differ from the base loop)."""
    op1 = case.make_op()
    data1 = case.make_data(random.Random(31), 19)
    expected = op1.scan_block(op1.ident(), data1, exclusive=exclusive)
    op2 = case.make_op()
    data2 = case.make_data(random.Random(31), 19)
    kern = compile_kernel(op2, data2)
    got = kern.scan(op2, op2.ident(), data2, exclusive=exclusive)
    assert state_equal(list(expected[0]), list(got[0])), case.name
    assert state_equal(expected[1], got[1]), case.name


def test_non_commutative_op_never_compiles_elementwise():
    """Order-sensitive operators must take the clean fallback: an
    elementwise kernel's ufunc.reduce would reorder them."""
    from repro.core.kernels import ElementwiseKernel

    for case in CHAOS_CASES:
        op = case.make_op()
        if getattr(op, "commutative", True):
            continue
        data = case.make_data(random.Random(7), 8)
        kern = compile_kernel(op, data)
        assert not isinstance(kern, ElementwiseKernel), op.name


class TestSegmentedEdges:
    def seg(self):
        return SegmentedOp(lambda a, b: a + b, 0.0, name="sum")

    def check(self, pairs):
        op = self.seg()
        expected = scalar_loop(op, op.ident(), pairs)
        got = self.seg().accum_block(self.seg().ident(), pairs)
        assert got.value == expected.value
        assert got.flag == expected.flag
        assert got.seen == expected.seen

    def test_empty_block(self):
        op = self.seg()
        state = op.accum_block(op.ident(), [])
        assert not state.seen

    def test_no_heads(self):
        self.check([(1.0, 0), (2.0, 0), (3.0, 0)])

    def test_all_heads(self):
        self.check([(1.0, 1), (2.0, 1), (3.0, 1)])

    def test_head_in_middle(self):
        self.check([(1.0, 0), (2.0, 1), (3.0, 0), (4.0, 0)])

    def test_head_last(self):
        self.check([(1.0, 0), (2.0, 0), (9.0, 1)])

    def test_ndarray_pairs(self):
        arr = np.array([[1.0, 0.0], [2.0, 1.0], [3.0, 0.0]])
        op = self.seg()
        expected = scalar_loop(op, op.ident(), arr)
        got = self.seg().accum_block(self.seg().ident(), arr)
        assert got.value == expected.value
        assert got.flag == expected.flag

    def test_seeded_state_continues_run(self):
        op = self.seg()
        seeded = scalar_loop(op, op.ident(), [(5.0, 1), (1.0, 0)])
        expected = scalar_loop(op, seeded, [(2.0, 0), (3.0, 0)])
        op2 = self.seg()
        seeded2 = scalar_loop(op2, op2.ident(), [(5.0, 1), (1.0, 0)])
        got = op2.accum_block(seeded2, [(2.0, 0), (3.0, 0)])
        assert got.value == expected.value == 11.0
        assert got.flag and expected.flag
