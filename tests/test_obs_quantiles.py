"""P² streaming quantiles: accuracy against numpy, small-sample exactness."""

import numpy as np
import pytest

from repro.obs.quantiles import DEFAULT_QUANTILES, P2Quantile, QuantileSet


class TestP2Construction:
    def test_rejects_out_of_range(self):
        for p in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(p)

    def test_empty_returns_none(self):
        assert P2Quantile(0.5).value() is None
        assert P2Quantile(0.5).count == 0


class TestSmallSampleExactness:
    """Below five observations the estimator answers exactly (it holds
    the raw samples), matching numpy's default linear interpolation."""

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    @pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
    def test_matches_numpy_exactly(self, n, p):
        rng = np.random.default_rng(42 + n)
        xs = rng.uniform(0, 10, size=n)
        est = P2Quantile(p)
        for x in xs:
            est.observe(float(x))
        assert est.count == n
        assert est.value() == pytest.approx(
            float(np.percentile(xs, 100 * p)), abs=1e-12
        )

    def test_single_observation(self):
        est = P2Quantile(0.99)
        est.observe(7.5)
        assert est.value() == 7.5


class TestP2Accuracy:
    """Estimates on known distributions stay within a small fraction of
    the distribution's spread of numpy's exact percentiles."""

    @pytest.mark.parametrize("dist,kwargs", [
        ("uniform", {"low": 0.0, "high": 1.0}),
        ("normal", {"loc": 5.0, "scale": 2.0}),
        ("lognormal", {"mean": 0.0, "sigma": 0.5}),
        ("exponential", {"scale": 1.0}),
    ])
    @pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
    def test_close_to_numpy(self, dist, kwargs, p):
        rng = np.random.default_rng(7)
        xs = getattr(rng, dist)(size=5000, **kwargs)
        est = P2Quantile(p)
        for x in xs:
            est.observe(float(x))
        exact = float(np.percentile(xs, 100 * p))
        spread = float(np.percentile(xs, 99.5) - np.percentile(xs, 0.5))
        assert est.value() == pytest.approx(exact, abs=0.05 * spread), (
            f"{dist} p{100 * p}: P2 {est.value():.4f} vs exact {exact:.4f}"
        )

    def test_monotone_across_levels(self):
        rng = np.random.default_rng(3)
        qs = QuantileSet((0.5, 0.95, 0.99))
        for x in rng.exponential(size=2000):
            qs.observe(float(x))
        assert qs.value(0.5) <= qs.value(0.95) <= qs.value(0.99)

    def test_sorted_input_does_not_break_markers(self):
        # Adversarial for marker algorithms: monotone input.
        est = P2Quantile(0.5)
        xs = np.arange(1000, dtype=float)
        for x in xs:
            est.observe(float(x))
        exact = float(np.percentile(xs, 50))
        assert est.value() == pytest.approx(exact, rel=0.1)


class TestHistogramQuantileWindow:
    """The pending buffer feeding P² is bounded: an unscraped histogram
    evicts oldest observations (its quantiles cover the recent window)
    while exact stats keep covering everything."""

    def test_scraped_histogram_loses_nothing(self):
        from repro.obs.metrics import Histogram

        h = Histogram()
        for x in range(1000):
            h.observe(float(x))
            if x % 100 == 0:
                h.quantile(0.5)  # scrape drains the buffer
        assert h.summary()["count"] == 1000
        assert h.quantile(0.5) == pytest.approx(499.5, rel=0.1)

    def test_unscraped_histogram_keeps_recent_window(self):
        from repro.obs.metrics import Histogram, _QUANTILE_PENDING_CAP

        h = Histogram()
        for _ in range(2 * _QUANTILE_PENDING_CAP):
            h.observe(0.5)
        for _ in range(_QUANTILE_PENDING_CAP):
            h.observe(100.0)
        # Exact stats cover every observation ...
        s = h.summary()
        assert s["count"] == 3 * _QUANTILE_PENDING_CAP
        assert s["min"] == 0.5 and s["max"] == 100.0
        # ... while the first quantile read sees the surviving window
        # (the most recent cap's worth: all 100s).
        assert h.quantile(0.5) == pytest.approx(100.0)


class TestQuantileSet:
    def test_defaults(self):
        qs = QuantileSet()
        assert qs.quantiles == DEFAULT_QUANTILES

    def test_needs_at_least_one(self):
        with pytest.raises(ValueError):
            QuantileSet(())

    def test_untracked_level_raises(self):
        qs = QuantileSet((0.5,))
        with pytest.raises(KeyError):
            qs.value(0.9)

    def test_summary_labels(self):
        qs = QuantileSet((0.5, 0.95, 0.99))
        for x in range(100):
            qs.observe(float(x))
        s = qs.summary()
        assert set(s) == {"p50", "p95", "p99"}
        assert s["p50"] == pytest.approx(49.5, rel=0.15)

    def test_fractional_label(self):
        # p99.9 must not produce a dict key with a dot in it.
        qs = QuantileSet((0.999,))
        qs.observe(1.0)
        assert list(qs.summary()) == ["p99_9"]
