"""Chunked accumulate/combine overlap and the overlapped NAS kernels.

The pipeline in :func:`repro.core.reduce.global_reduce`
(``overlap="auto"``) must be bit-identical to the unpipelined path and
strictly cheaper in virtual makespan when it engages.
"""

import numpy as np
import pytest

from repro.core.reduce import global_reduce
from repro.nas.cg import cg_solve_fused, cg_solve_iallreduce, poisson_rhs
from repro.nas.common import MGClass
from repro.nas.mg.zran3 import zran3_mpi, zran3_mpi_fused, zran3_rsmpi
from repro.ops import MaxOp, MeanVarOp, SumOp
from repro.runtime import spmd_run

N_ROWS, N_COLS = 48, 32768  # state = 256 KiB of float64 per rank


def big_block(rank):
    rng = np.random.default_rng(5000 + rank)
    return rng.standard_normal((N_ROWS, N_COLS))


class TestChunkedOverlap:
    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("op_cls", [SumOp, MaxOp])
    def test_bit_identical_and_faster(self, p, op_cls):
        def body(overlap):
            def prog(comm):
                return global_reduce(
                    comm, op_cls(), big_block(comm.rank),
                    accum_rate="numpy_stream", overlap=overlap,
                )
            return prog

        off = spmd_run(body("off"), p)
        auto = spmd_run(body("auto"), p)
        for a, b in zip(off.returns, auto.returns):
            assert np.array_equal(a, b)  # exact, not approximate
        assert auto.time < off.time

    def test_deterministic(self):
        def prog(comm):
            return global_reduce(
                comm, SumOp(), big_block(comm.rank),
                accum_rate="numpy_stream",
            )

        runs = [spmd_run(prog, 4) for _ in range(2)]
        assert runs[0].clocks == runs[1].clocks
        for a, b in zip(runs[0].returns, runs[1].returns):
            assert np.array_equal(a, b)

    def test_small_input_identical_results(self):
        """Below the crossover the pipeline must not engage: identical
        results AND identical virtual times."""

        def body(overlap):
            def prog(comm):
                vals = np.arange(32.0).reshape(4, 8) + comm.rank
                return global_reduce(
                    comm, SumOp(), vals,
                    accum_rate="numpy_stream", overlap=overlap,
                )
            return prog

        off = spmd_run(body("off"), 4)
        auto = spmd_run(body("auto"), 4)
        assert off.clocks == auto.clocks
        for a, b in zip(off.returns, auto.returns):
            assert np.array_equal(a, b)

    def test_non_elementwise_unaffected(self):
        """A non-elementwise operator over 2-D-looking data keeps the
        plain path regardless of the flag."""

        def body(overlap):
            def prog(comm):
                vals = [float(comm.rank * 7 + i) for i in range(6)]
                return global_reduce(
                    comm, MeanVarOp(), vals, overlap=overlap
                )
            return prog

        off = spmd_run(body("off"), 4)
        auto = spmd_run(body("auto"), 4)
        assert off.returns == auto.returns
        assert off.clocks == auto.clocks

    def test_rooted_reduce_unaffected(self):
        def prog(comm):
            return global_reduce(
                comm, SumOp(), big_block(comm.rank),
                root=0, accum_rate="numpy_stream",
            )

        out = spmd_run(prog, 4)
        assert out.returns[0] is not None
        assert all(v is None for v in out.returns[1:])


class TestOverlappedNas:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_cg_iallreduce_identical_iterates(self, p):
        def body(variant):
            def prog(comm):
                b = poisson_rhs(comm, 192)
                res = variant(comm, b, dot_rate="numpy_stream")
                return (
                    res.iterations,
                    res.residual_norm,
                    res.x_local.tobytes(),
                )
            return prog

        fused = spmd_run(body(cg_solve_fused), p)
        nonblocking = spmd_run(body(cg_solve_iallreduce), p)
        assert fused.returns == nonblocking.returns

    @pytest.mark.parametrize("p", [2, 4])
    def test_zran3_fused_identical_half_messages(self, p):
        cls = MGClass("T", 16, 16, 16)

        def body(variant):
            def prog(comm):
                r = variant(comm, cls, scan_rate="numpy_stream")
                return (
                    r.top_positions.tolist(),
                    r.bot_positions.tolist(),
                    r.local.tobytes(),
                )
            return prog

        plain = spmd_run(body(zran3_mpi), p)
        fused = spmd_run(body(zran3_mpi_fused), p)
        assert plain.returns == fused.returns
        assert fused.summary_trace.n_sends * 2 == plain.summary_trace.n_sends
        assert fused.time < plain.time

    def test_zran3_fused_matches_rsmpi_positions(self):
        cls = MGClass("T", 16, 16, 16)

        def body(variant):
            def prog(comm):
                r = variant(comm, cls)
                return sorted(r.top_positions.tolist()), sorted(
                    r.bot_positions.tolist()
                )
            return prog

        fused = spmd_run(body(zran3_mpi_fused), 4)
        rsmpi = spmd_run(body(zran3_rsmpi), 4)
        assert fused.returns == rsmpi.returns
