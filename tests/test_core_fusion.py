"""Bucketed fusion: K concurrent reductions in shared combine waves.

The contract (``docs/overlap.md``): ``global_reduce_many`` and
``ReductionBucket`` return results bit-identical to the corresponding
sequence of blocking ``global_reduce``/``allreduce`` calls, for every
public operator, at a fraction of the message count and latency.
"""

import random

import numpy as np
import pytest

from repro import mpi
from repro.core.operator import state_equal
from repro.core.fusion import ReductionBucket, global_reduce_many
from repro.core.reduce import global_reduce
from repro.faults import FaultPlan, LinkFaults
from repro.faults.chaos import CHAOS_CASES
from repro.obs import Tracer
from repro.ops import MaxOp, MinOp, SumOp
from repro.runtime import spmd_run
from tests.conftest import block_split, run_all

SIZES = [1, 2, 4, 7, 8, 16]


class TestGlobalReduceMany:
    @pytest.mark.parametrize("p", SIZES)
    def test_matches_sequential_sum_max_min(self, p):
        def prog(comm):
            xs = np.arange(10.0) + comm.rank
            ops = [SumOp(), MaxOp(), MinOp()]
            fused = global_reduce_many(comm, [(op, xs) for op in ops])
            seq = [global_reduce(comm, op, xs) for op in ops]
            return fused == seq

        assert all(run_all(prog, p))

    @pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
    def test_every_operator(self, case):
        """K=3 fused copies of each public operator match sequential
        blocking calls (the operators differ in state shape, mutability,
        commutativity — the wave must preserve all of it)."""
        p = 4
        op = case.make_op()
        datasets = [
            case.make_data(random.Random(1000 + k), 12) for k in range(3)
        ]

        def prog(comm):
            items = [
                (case.make_op(), block_split(d, comm.size, comm.rank))
                for d in datasets
            ]
            fused = global_reduce_many(comm, items)
            seq = [
                global_reduce(
                    comm, case.make_op(), block_split(d, comm.size, comm.rank)
                )
                for d in datasets
            ]
            return all(state_equal(f, s) for f, s in zip(fused, seq))

        assert all(run_all(prog, p)), f"fusion mismatch for {op.name}"

    def test_saves_messages_and_time(self):
        K, p = 8, 16
        datasets = [np.arange(6.0) * (k + 1) for k in range(K)]

        def fused(comm):
            return global_reduce_many(
                comm, [(SumOp(), d + comm.rank) for d in datasets]
            )

        def sequential(comm):
            return [
                global_reduce(comm, SumOp(), d + comm.rank) for d in datasets
            ]

        rf = spmd_run(fused, p)
        rs = spmd_run(sequential, p)
        assert rf.returns == rs.returns
        assert rf.summary_trace.n_sends * 2 <= rs.summary_trace.n_sends
        assert rf.time <= 0.75 * rs.time


class TestReductionBucket:
    def test_context_manager_and_results(self):
        def prog(comm):
            with comm.fused() as bucket:
                a = bucket.allreduce(float(comm.rank), mpi.SUM)
                b = bucket.allreduce(float(comm.rank), mpi.MAX)
            return a.result(), b.result()

        p = 4
        assert run_all(prog, p) == [(6.0, 3.0)] * p

    def test_result_flushes_implicitly(self):
        def prog(comm):
            bucket = comm.fused()
            h = bucket.allreduce(comm.rank + 1, mpi.SUM)
            assert not h.done
            return h.result()  # must flush + wait on its own

        assert run_all(prog, 4) == [10] * 4

    def test_matches_comm_allreduce(self):
        def prog(comm):
            vals = [float(comm.rank + k) for k in range(4)]
            with comm.fused() as bucket:
                handles = [bucket.allreduce(v, mpi.SUM) for v in vals]
            fused = [h.result() for h in handles]
            seq = [comm.allreduce(v, mpi.SUM) for v in vals]
            return fused == seq

        assert all(run_all(prog, 8))

    def test_byte_threshold_autoflush(self):
        """Crossing max_bytes flushes mid-stream: more than one wave,
        results still exact."""
        tracer = Tracer()

        def prog(comm):
            xs = np.arange(64.0) + comm.rank  # 512 B per entry
            with comm.fused(max_bytes=600) as bucket:
                handles = [bucket.allreduce(xs, mpi.SUM) for _ in range(4)]
            return [h.result().tolist() for h in handles]

        res = spmd_run(prog, 4, tracer=tracer)
        expected = (np.arange(64.0) * 4 + 6).tolist()
        assert res.returns == [[expected] * 4] * 4
        waves = tracer.metrics.counter("fusion.waves").value
        assert waves == 2 * 4  # two waves of two entries per rank

    def test_large_splittable_dispatches_alone(self):
        """An entry whose auto algorithm segments (large array) must not
        join a wave — it goes out as its own collective, and the result
        still matches blocking."""

        def prog(comm):
            big = np.arange(65536.0) + comm.rank  # 512 KiB: ring/rab range
            small = float(comm.rank)
            with comm.fused() as bucket:
                hb = bucket.allreduce(big, mpi.SUM)
                hs = bucket.allreduce(small, mpi.SUM)
            return (
                np.array_equal(hb.result(), comm.allreduce(big, mpi.SUM)),
                hs.result() == comm.allreduce(small, mpi.SUM),
            )

        assert all(all(pair) for pair in run_all(prog, 4))

    def test_mixed_operator_wave(self):
        """Different combine fns in one wave use the product-state path."""

        def prog(comm):
            with comm.fused() as bucket:
                a = bucket.allreduce(float(comm.rank + 1), mpi.SUM)
                b = bucket.allreduce(float(comm.rank + 1), mpi.PROD)
                c = bucket.allreduce((float(comm.rank), comm.rank), mpi.MAXLOC)
            return a.result(), b.result(), c.result()

        p = 4
        out = run_all(prog, p)
        assert out == [(10.0, 24.0, (3.0, 3))] * p

    def test_waves_saved_metric(self):
        tracer = Tracer()

        def prog(comm):
            global_reduce_many(
                comm, [(SumOp(), np.arange(4.0) + comm.rank) for _ in range(5)]
            )

        spmd_run(prog, 4, tracer=tracer)
        # 5 entries, 1 wave per rank -> 4 saved per rank, 4 ranks
        assert tracer.metrics.counter("fusion.waves_saved").value == 16
        assert tracer.metrics.counter("fusion.waves").value == 4


class TestFusionFaults:
    def test_lossy_matches_fault_free(self):
        def prog(comm):
            xs = np.arange(8.0) + comm.rank
            return global_reduce_many(
                comm, [(SumOp(), xs), (MaxOp(), xs), (MinOp(), xs)]
            )

        clean = spmd_run(prog, 4)
        lossy = spmd_run(
            prog, 4,
            fault_plan=FaultPlan(
                seed=3,
                link=LinkFaults(drop_rate=0.3, dup_rate=0.2, reorder_rate=0.2),
            ),
            timeout=60.0,
        )
        for a, b in zip(clean.returns, lossy.returns):
            for x, y in zip(a, b):
                assert np.array_equal(x, y)
