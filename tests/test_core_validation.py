"""Tests that the operator-law validator catches real operator bugs."""

import numpy as np
import pytest

from repro.core import check_operator, make_op, sequential_reduce, sequential_scan
from repro.core.validation import (
    check_associativity,
    check_commutativity,
    check_identity_law,
    check_split_consistency,
)
from repro.errors import OperatorLawError
from repro.ops import (
    AllOp,
    AnyOp,
    CountsOp,
    DishonestCommutativeSortedOp,
    HistogramOp,
    MaxiOp,
    MeanVarOp,
    MiniOp,
    MinKOp,
    SegmentedOp,
    SortedOp,
    SumOp,
    TopKOp,
)

SAMPLES = [7, 3, 9, 1, 4, 4, 8, 2, 6, 5, 0, 9]


class TestGoodOperatorsPass:
    @pytest.mark.parametrize(
        "op,values",
        [
            (SumOp(), SAMPLES),
            (MinKOp(3, np.iinfo(np.int64).max), SAMPLES),
            (CountsOp(10, base=0), SAMPLES),
            (SortedOp(), SAMPLES),
            (SortedOp(), sorted(SAMPLES)),
            (MeanVarOp(), [float(v) for v in SAMPLES]),
            (TopKOp(4), SAMPLES),
            (MiniOp(), [(v, i) for i, v in enumerate(SAMPLES)]),
            (MaxiOp(), [(v, i) for i, v in enumerate(SAMPLES)]),
            (AllOp(), [v % 2 == 0 for v in SAMPLES]),
            (AnyOp(), [v > 7 for v in SAMPLES]),
            (HistogramOp([0.0, 3.0, 6.0, 10.0]), [float(v) for v in SAMPLES]),
            (
                SegmentedOp(lambda a, b: a + b, 0),
                [(v, i % 4 == 0) for i, v in enumerate(SAMPLES)],
            ),
        ],
    )
    def test_passes(self, op, values):
        check_operator(op, values, n_trials=15)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            check_operator(SumOp(), [1])


class TestBrokenOperatorsCaught:
    def test_wrong_identity(self):
        op = make_op(
            ident=lambda: 1,  # wrong: 1 is not the additive identity
            accum=lambda s, x: s + x,
            combine=lambda a, b: a + b,
        )
        with pytest.raises(OperatorLawError, match="identity"):
            check_operator(op, SAMPLES)

    def test_nonassociative_combine(self):
        op = make_op(
            ident=lambda: 0.0,
            accum=lambda s, x: (s + x) / 2,  # averaging is not a monoid
            combine=lambda a, b: (a + b) / 2,
        )
        with pytest.raises(OperatorLawError):
            check_operator(op, [float(v) for v in SAMPLES])

    def test_dishonest_commutative_flag(self):
        with pytest.raises(OperatorLawError, match="commutative"):
            check_operator(DishonestCommutativeSortedOp(), SAMPLES)

    def test_accum_not_homomorphic(self):
        # accum counts elements but combine multiplies: split-inconsistent
        op = make_op(
            ident=lambda: 0,
            accum=lambda s, x: s + 1,
            combine=lambda a, b: a * b,
        )
        with pytest.raises(OperatorLawError):
            check_operator(op, SAMPLES)

    def test_split_inconsistency_detected_directly(self):
        op = make_op(
            ident=lambda: 0,
            accum=lambda s, x: s + x,
            combine=lambda a, b: a + b + 1,  # combine adds junk
        )
        with pytest.raises(OperatorLawError, match="split"):
            check_split_consistency(op, SAMPLES, 5)


class TestIndividualChecks:
    def test_identity_law_direct(self):
        check_identity_law(SumOp(), 42)
        bad = make_op(
            ident=lambda: 5,
            accum=lambda s, x: s + x,
            combine=lambda a, b: a + b,
        )
        with pytest.raises(OperatorLawError):
            check_identity_law(bad, 10)

    def test_associativity_direct(self):
        check_associativity(SumOp(), 1, 2, 3)
        bad = make_op(
            ident=lambda: 0.0,
            accum=lambda s, x: s - x,
            combine=lambda a, b: a - b,
        )
        with pytest.raises(OperatorLawError):
            check_associativity(bad, 1.0, 2.0, 3.0)

    def test_commutativity_skipped_for_noncommutative(self):
        # must NOT raise: the op declares non-commutativity honestly
        check_commutativity(SortedOp(), SortedOp().ident(), SortedOp().ident())

    def test_checks_do_not_mutate_inputs(self):
        op = MinKOp(3, np.iinfo(np.int64).max)
        s = op.accum_block(op.ident(), np.array(SAMPLES))
        snapshot = s.copy()
        check_identity_law(op, s)
        check_associativity(op, s, s.copy(), s.copy())
        assert np.array_equal(s, snapshot)


class TestSequentialReferences:
    def test_sequential_reduce(self):
        assert sequential_reduce(SumOp(), SAMPLES) == sum(SAMPLES)
        assert sequential_reduce(SumOp(), []) == 0

    def test_sequential_scan(self):
        inc = sequential_scan(SumOp(), [1, 2, 3])
        assert [int(v) for v in inc] == [1, 3, 6]
        exc = sequential_scan(SumOp(), [1, 2, 3], exclusive=True)
        assert [int(v) for v in exc] == [0, 1, 3]

    def test_sequential_scan_counts_ranking(self, paper_data):
        out = sequential_scan(CountsOp(8), paper_data)
        assert out == [1, 1, 2, 1, 1, 1, 2, 1, 3, 2]
