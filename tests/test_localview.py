"""Tests for the Section-2 local-view abstraction and the Listing-1 port."""

import numpy as np
import pytest

from repro import mpi
from repro.localview import (
    LOCAL_ALLREDUCE,
    LOCAL_REDUCE,
    LOCAL_SCAN,
    LOCAL_XSCAN,
    make_local_mink_op,
    mink_combine,
    mink_ident,
)
from repro.runtime import spmd_run
from tests.conftest import run_all

SIZES = [1, 2, 3, 5, 8, 13]


class TestLocalRoutines:
    @pytest.mark.parametrize("p", SIZES)
    def test_allreduce(self, p):
        out = run_all(
            lambda comm: LOCAL_ALLREDUCE(comm, lambda a, b: a + b, comm.rank + 1),
            p,
        )
        assert out == [p * (p + 1) // 2] * p

    @pytest.mark.parametrize("p", SIZES)
    def test_reduce_root_only(self, p):
        out = run_all(
            lambda comm: LOCAL_REDUCE(comm, lambda a, b: a * b, comm.rank + 1),
            p,
        )
        import math

        assert out[0] == math.factorial(p)
        assert all(v is None for v in out[1:])

    @pytest.mark.parametrize("p", SIZES)
    def test_scan_inclusive(self, p):
        out = run_all(
            lambda comm: LOCAL_SCAN(
                comm, lambda: 0, lambda a, b: a + b, comm.rank + 1
            ),
            p,
        )
        assert out == [(r + 1) * (r + 2) // 2 for r in range(p)]

    @pytest.mark.parametrize("p", SIZES)
    def test_xscan_exclusive_uses_identity(self, p):
        out = run_all(
            lambda comm: LOCAL_XSCAN(
                comm, lambda: 100, lambda a, b: a + b, comm.rank + 1
            ),
            p,
        )
        assert out[0] == 100  # rank 0 receives the identity
        # ranks > 0 get the genuine prefix (no identity folded in,
        # matching MPI_Exscan with a defined first slot)
        assert out[1:] == [r * (r + 1) // 2 for r in range(1, p)]

    def test_xscan_requires_identity(self):
        from repro.errors import SpmdError

        def prog(comm):
            LOCAL_XSCAN(comm, None, lambda a, b: a + b, 1)

        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 2, timeout=10)
        assert any(
            isinstance(e, TypeError) for e in ei.value.failures.values()
        )

    def test_op_instance_accepted(self):
        out = run_all(lambda comm: LOCAL_ALLREDUCE(comm, mpi.MAX, comm.rank), 5)
        assert out == [4] * 5

    @pytest.mark.parametrize("p", SIZES)
    def test_noncommutative_flag_respected(self, p):
        out = run_all(
            lambda comm: LOCAL_ALLREDUCE(
                comm, lambda a, b: a + b, [comm.rank], commutative=False
            ),
            p,
        )
        assert out == [list(range(p))] * p


class TestAggregation:
    """Paper §2.1: element-wise simultaneous reductions via arrays."""

    @pytest.mark.parametrize("p", SIZES)
    def test_aggregated_min(self, p):
        def prog(comm):
            vec = np.array([comm.rank + i for i in range(4)])
            return LOCAL_ALLREDUCE(comm, mpi.MIN, vec)

        out = run_all(prog, p)
        for v in out:
            assert v.tolist() == [0, 1, 2, 3]

    def test_aggregated_message_count_advantage(self):
        """One aggregated allreduce moves the same data in far fewer
        messages than k scalar allreduces (the point of aggregation)."""
        k, p = 32, 8

        def aggregated(comm):
            LOCAL_ALLREDUCE(comm, mpi.SUM, np.ones(k))

        def scalarized(comm):
            for _ in range(k):
                LOCAL_ALLREDUCE(comm, mpi.SUM, 1.0)

        agg = spmd_run(aggregated, p)
        sca = spmd_run(scalarized, p)
        assert agg.summary_trace.n_sends < sca.summary_trace.n_sends / (k / 2)
        assert agg.time < sca.time


class TestListing1MinK:
    def test_ident_is_intmax(self):
        v = mink_ident(4)
        assert (v == np.iinfo(np.int64).max).all()

    def test_combine_merges_sorted_high_to_low(self):
        v1 = np.array([50, 30, 10], dtype=np.int64)  # high to low
        v2 = np.array([40, 25, 5], dtype=np.int64)
        out = mink_combine(v1, v2)
        assert out is v2
        assert out.tolist() == [25, 10, 5]

    def test_combine_with_identity(self):
        v = np.array([9, 6, 3], dtype=np.int64)
        out = mink_combine(v.copy(), mink_ident(3))
        assert out.tolist() == [9, 6, 3]

    @pytest.mark.parametrize("p", SIZES)
    def test_distributed_mink_matches_sorted(self, p, rng):
        k = 5
        data = rng.integers(0, 10_000, 200)

        def prog(comm):
            ident, combine = make_local_mink_op(k)
            # the local-view burden: build the local k-vector by hand by
            # folding singleton states into the accumulator
            local = np.sort(data[comm.rank :: comm.size])
            state = ident()
            for x in local:
                single = mink_ident(k)
                single[0] = x
                state = combine(state, single)
            return LOCAL_ALLREDUCE(comm, combine, state)

        out = run_all(prog, p)
        expected = np.sort(data)[:k][::-1].tolist()
        for v in out:
            assert v.tolist() == expected


class TestScanDirectionAsymmetry:
    """Paper §2: inclusive derives from exclusive locally; the reverse
    needs a shift across processors."""

    @pytest.mark.parametrize("p", SIZES)
    def test_shift_matches_direct_exscan(self, p):
        from repro.localview import exclusive_from_inclusive_shift

        def prog(comm):
            v = comm.rank + 1
            inc = LOCAL_SCAN(comm, lambda: 0, lambda a, b: a + b, v)
            via_shift = exclusive_from_inclusive_shift(comm, inc, lambda: 0)
            direct = LOCAL_XSCAN(comm, lambda: 0, lambda a, b: a + b, v)
            return via_shift == direct

        assert all(run_all(prog, p))

    def test_shift_costs_one_neighbor_message(self):
        from repro.localview import exclusive_from_inclusive_shift

        def prog(comm):
            exclusive_from_inclusive_shift(comm, comm.rank, lambda: 0)

        res = spmd_run(prog, 6)
        # p-1 sends total: a ring-free chain, no collective
        assert res.summary_trace.n_sends == 5
        assert res.traces[0].collective_calls == {}

    def test_works_for_noninvertible_min(self):
        """min cannot be inverted (the paper's example): the shift is the
        only way back from inclusive to exclusive."""
        from repro.localview import exclusive_from_inclusive_shift

        vals = [5, 3, 7, 1, 9, 2]

        def prog(comm):
            v = vals[comm.rank]
            inc = LOCAL_SCAN(comm, lambda: 10**9, min, v)
            return exclusive_from_inclusive_shift(
                comm, inc, lambda: 10**9
            )

        out = run_all(prog, 6)
        expected = [10**9]
        for i in range(5):
            expected.append(min(vals[: i + 1]))
        assert out == expected
