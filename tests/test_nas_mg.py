"""Tests for the NAS MG substrate: 3-D blocks, the randlc fill, and the
two ZRAN3 variants."""

import numpy as np
import pytest

from repro.nas import mg_class
from repro.nas.callcounts import census
from repro.nas.common import MGClass
from repro.nas.mg import MM, Block3D, fill_zran_block, zran3_mpi, zran3_rsmpi
from repro.runtime import spmd_run
from repro.util.rng import randlc_array
from tests.conftest import run_all

TINY = MGClass("T", 8, 8, 8)
SIZES = [1, 2, 3, 4, 6, 8]


class TestBlock3D:
    @pytest.mark.parametrize("p", SIZES + [5, 7, 12])
    def test_blocks_partition_grid(self, p):
        blocks = [Block3D.create(8, 8, 8, p, r) for r in range(p)]
        seen = np.concatenate([b.local_positions() for b in blocks])
        assert sorted(seen.tolist()) == list(range(8 * 8 * 8))
        assert sum(b.n_local for b in blocks) == 512

    def test_coords_roundtrip(self):
        b = Block3D.create(8, 8, 8, 8, 5)
        cx, cy, cz = b.coords
        assert 0 <= cx < b.px and 0 <= cy < b.py and 0 <= cz < b.pz
        assert b.rank == cx + b.px * (cy + b.py * cz)

    def test_global_linear_fortran_order(self):
        b = Block3D.create(4, 3, 2, 1, 0)
        assert b.global_linear(0, 0, 0) == 0
        assert b.global_linear(1, 0, 0) == 1
        assert b.global_linear(0, 1, 0) == 4
        assert b.global_linear(0, 0, 1) == 12

    def test_local_positions_match_fill_order(self):
        """positions[i] must be the stream index of values[i]."""
        for p, r in [(4, 0), (4, 3), (6, 2)]:
            b = Block3D.create(8, 8, 8, p, r)
            vals = fill_zran_block(b)
            pos = b.local_positions()
            whole = randlc_array(512)
            assert np.array_equal(vals, whole[pos])


class TestFill:
    @pytest.mark.parametrize("p", SIZES)
    def test_fill_independent_of_p(self, p):
        whole = randlc_array(TINY.n_points)

        def prog(comm):
            b = Block3D.create(TINY.nx, TINY.ny, TINY.nz, comm.size, comm.rank)
            vals = fill_zran_block(b)
            out = np.full(TINY.n_points, np.nan)
            out[b.local_positions()] = vals
            return out

        parts = run_all(prog, p)
        merged = np.nanmax(np.vstack(parts), axis=0) if p > 1 else parts[0]
        assert np.array_equal(merged, whole)


class TestZran3Variants:
    @pytest.mark.parametrize("p", SIZES)
    def test_variants_identical(self, p):
        r_mpi = spmd_run(lambda comm: zran3_mpi(comm, TINY), p)
        r_rsm = spmd_run(lambda comm: zran3_rsmpi(comm, TINY), p)
        for a, b in zip(r_mpi.returns, r_rsm.returns):
            assert np.array_equal(a.top_positions, b.top_positions)
            assert np.array_equal(a.bot_positions, b.bot_positions)
            assert np.array_equal(a.local, b.local)

    @pytest.mark.parametrize("p", SIZES)
    def test_result_independent_of_p(self, p):
        base = spmd_run(lambda comm: zran3_rsmpi(comm, TINY), 1).returns[0]
        out = spmd_run(lambda comm: zran3_rsmpi(comm, TINY), p).returns[0]
        assert np.array_equal(out.top_positions, base.top_positions)
        assert np.array_equal(out.bot_positions, base.bot_positions)

    def test_extrema_are_true_extrema(self):
        whole = randlc_array(TINY.n_points)
        out = spmd_run(lambda comm: zran3_rsmpi(comm, TINY), 4).returns[0]
        order = np.argsort(whole)
        assert set(out.bot_positions.tolist()) == set(order[:MM].tolist())
        assert set(out.top_positions.tolist()) == set(order[-MM:].tolist())
        # ordered by extremity
        assert np.array_equal(out.bot_positions, order[:MM])
        assert np.array_equal(out.top_positions, order[::-1][:MM])

    @pytest.mark.parametrize("p", [1, 4, 8])
    def test_planted_grid(self, p):
        res = spmd_run(lambda comm: zran3_rsmpi(comm, TINY), p)
        total_plus = sum(float((r.local == 1.0).sum()) for r in res.returns)
        total_minus = sum(float((r.local == -1.0).sum()) for r in res.returns)
        total_zero = sum(float((r.local == 0.0).sum()) for r in res.returns)
        assert total_plus == MM and total_minus == MM
        assert total_zero == TINY.n_points - 2 * MM

    def test_forty_vs_one_reduction(self):
        r_mpi = spmd_run(lambda comm: zran3_mpi(comm, TINY), 4)
        r_rsm = spmd_run(lambda comm: zran3_rsmpi(comm, TINY), 4)
        assert census(r_mpi.traces).n_reductions == 40  # the paper's count
        assert census(r_rsm.traces).n_reductions == 1

    def test_rsmpi_faster_in_virtual_time(self):
        """Fewer log-depth latencies must show up as less simulated time
        (the Figure 3 effect, in miniature)."""
        r_mpi = spmd_run(lambda comm: zran3_mpi(comm, TINY), 8)
        r_rsm = spmd_run(lambda comm: zran3_rsmpi(comm, TINY), 8)
        assert r_rsm.time < r_mpi.time

    def test_phase_timestamps(self):
        res = spmd_run(lambda comm: zran3_rsmpi(comm, TINY), 4)
        for r in res.returns:
            assert 0.0 <= r.t_fill_end <= r.t_done

    def test_real_class_shapes(self):
        cls = mg_class("S")
        assert (cls.nx, cls.ny, cls.nz) == (32, 32, 32)
        assert mg_class("C", full=True).nx == 512


class TestZran3EdgeCases:
    def test_duplicate_values_tie_to_smallest_position(self):
        """With engineered duplicates both variants must still agree."""
        cls = MGClass("T2", 4, 4, 4)
        for p in (1, 2, 4):
            a = spmd_run(lambda comm: zran3_mpi(comm, cls), p).returns[0]
            b = spmd_run(lambda comm: zran3_rsmpi(comm, cls), p).returns[0]
            assert np.array_equal(a.top_positions, b.top_positions)
            assert np.array_equal(a.bot_positions, b.bot_positions)

    def test_more_ranks_than_z_planes(self):
        cls = MGClass("T3", 4, 4, 2)
        res = spmd_run(lambda comm: zran3_rsmpi(comm, cls), 8)
        total = sum(float(np.abs(r.local).sum()) for r in res.returns)
        assert total == 2 * MM


class TestComm3:
    def test_halo_exchange_message_pattern(self):
        from repro.nas.mg import comm3

        def prog(comm):
            b = Block3D.create(8, 8, 8, comm.size, comm.rank)
            u = fill_zran_block(b)
            comm3(comm, b, u)

        res = spmd_run(prog, 8)
        tr = res.traces[0]
        # six faces per rank per call
        assert tr.p2p_calls["send"] == 6
        assert tr.p2p_calls["recv"] == 6

    def test_norms_independent_of_p(self):
        from repro.nas.mg import norm2u3

        def prog(comm):
            b = Block3D.create(8, 8, 8, comm.size, comm.rank)
            u = fill_zran_block(b)
            return norm2u3(comm, b, u)

        base = spmd_run(prog, 1).returns[0]
        for p in (2, 4, 6, 8):
            out = spmd_run(prog, p).returns[0]
            assert out[0] == pytest.approx(base[0], rel=1e-12)
            assert out[1] == pytest.approx(base[1], rel=1e-12)

    def test_vcycle_round_collective_profile(self):
        from repro.nas.mg import vcycle_communication_round

        def prog(comm):
            b = Block3D.create(8, 8, 8, comm.size, comm.rank)
            u = fill_zran_block(b)
            return vcycle_communication_round(comm, b, u, comm3_calls=5)

        res = spmd_run(prog, 4)
        tr = res.traces[0]
        assert tr.collective_calls["allreduce"] == 2  # the two norms
        assert tr.p2p_calls["send"] == 5 * 6

    def test_neighbor_is_periodic_and_symmetric(self):
        from repro.nas.mg.comm3 import _neighbor

        for p in (2, 4, 8, 12):
            for r in range(p):
                b = Block3D.create(8, 8, 8, p, r)
                for dim in range(3):
                    fwd = _neighbor(b, dim, +1)
                    b_fwd = Block3D.create(8, 8, 8, p, fwd)
                    assert _neighbor(b_fwd, dim, -1) == r
