"""Live telemetry export: /metrics endpoint, /snapshot.json, repro top.

Exercises the HTTP slice of the observability stack end to end on
ephemeral ports: a :class:`MetricsServer` over a real telemetry-enabled
engine, the ``repro top`` dashboard (renderer and CLI), and the
``python -m repro serve --metrics-port`` wiring.
"""

import json
import subprocess
import sys
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import global_reduce
from repro.engine import Engine
from repro.engine.metrics_http import MetricsServer
from repro.engine.top import fetch_snapshot, render_frame, run_top
from repro.obs.telemetry import NULL_ENGINE_TELEMETRY
from repro.ops import SumOp


def _job(comm):
    return global_reduce(comm, SumOp(), np.arange(8.0) + comm.rank)


def _get(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.read().decode()


@pytest.fixture
def busy_engine():
    with Engine(4, telemetry=True) as eng:
        for _ in range(5):
            eng.submit(_job, nprocs=2).result()
        yield eng


class TestMetricsServer:
    def test_metrics_endpoint(self, busy_engine):
        with MetricsServer(busy_engine.telemetry) as srv:
            assert srv.port > 0
            status, body = _get(f"{srv.url}/metrics")
        assert status == 200
        assert "repro_engine_jobs_submitted_total 5" in body
        assert 'repro_engine_job_e2e_seconds{quantile="0.5"}' in body
        assert "repro_engine_uptime_seconds" in body

    def test_root_serves_metrics_too(self, busy_engine):
        with MetricsServer(busy_engine.telemetry) as srv:
            status, body = _get(f"{srv.url}/")
        assert status == 200
        assert "repro_engine_jobs_submitted_total" in body

    def test_snapshot_endpoint(self, busy_engine):
        with MetricsServer(busy_engine.telemetry) as srv:
            status, body = _get(f"{srv.url}/snapshot.json")
        assert status == 200
        frame = json.loads(body)
        assert frame["type"] == "snapshot"
        assert frame["nprocs"] == 4
        assert frame["metrics"]["counters"]["engine.jobs.completed"] == 5
        # The serving engine's scheduler stats ride along.
        assert frame["engine"]["schedule_cache"]["hits"] >= 0

    def test_unknown_path_404(self, busy_engine):
        with MetricsServer(busy_engine.telemetry) as srv:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                _get(f"{srv.url}/nope")
        assert exc_info.value.code == 404

    def test_disabled_telemetry_serves_stub(self):
        with MetricsServer(NULL_ENGINE_TELEMETRY) as srv:
            _, metrics = _get(f"{srv.url}/metrics")
            _, snap = _get(f"{srv.url}/snapshot.json")
        assert metrics == "# telemetry disabled\n"
        assert json.loads(snap) == {"type": "snapshot", "enabled": False}

    def test_close_releases_port(self, busy_engine):
        srv = MetricsServer(busy_engine.telemetry)
        url = srv.url
        srv.close()
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(f"{url}/metrics", timeout=0.5)


class TestTopDashboard:
    def test_fetch_and_render_live(self, busy_engine):
        with MetricsServer(busy_engine.telemetry) as srv:
            frame = fetch_snapshot(srv.url)
        text = render_frame(frame)
        assert "repro engine top — pool 4 ranks" in text
        assert "5 submitted, 5 completed" in text
        assert "rank  0 [" in text
        assert "end-to-end" in text
        assert "schedule cache:" in text

    def test_run_top_once(self, busy_engine, capsys):
        with MetricsServer(busy_engine.telemetry) as srv:
            rc = run_top(["--url", srv.url, "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro engine top" in out
        assert "\x1b[2J" not in out  # --once must not clear the screen

    def test_run_top_unreachable(self, capsys):
        rc = run_top(["--url", "http://127.0.0.1:1", "--once"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "cannot reach" in err

    def test_render_disabled_frame(self):
        text = render_frame({"type": "snapshot", "enabled": False})
        assert "telemetry disabled" in text

    def test_render_reports_interval_drops(self, busy_engine):
        frame = busy_engine.telemetry.snapshot()
        frame["interval_drops"] = 12
        assert "dropped 12 intervals" in render_frame(frame)


class TestServeCli:
    def test_serve_with_metrics_and_exports(self, tmp_path):
        """serve --metrics-port end to end: run jobs, print the latency
        report, write the snapshot JSONL and the wall-clock trace."""
        snap_out = tmp_path / "frames.jsonl"
        trace_out = tmp_path / "session_trace.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve",
                "--ranks", "4", "--clients", "2", "--jobs-per-client", "6",
                "--metrics-port", "0",
                "--snapshot-interval", "0.05",
                "--snapshot-out", str(snap_out),
                "--trace-out", str(trace_out),
            ],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
        )
        assert proc.returncode == 0, proc.stderr
        assert "metrics:" in proc.stdout  # announces the bound endpoint
        assert "e2e" in proc.stdout      # latency tails printed
        records = [
            json.loads(line)
            for line in snap_out.read_text().splitlines()
        ]
        kinds = {r["type"] for r in records}
        assert {"job", "metrics"} <= kinds
        jobs = [r for r in records if r["type"] == "job"]
        assert len(jobs) == 2 * 6
        assert all(j["state"] == "completed" for j in jobs)
        trace = json.loads(trace_out.read_text())
        slices = [
            e for e in trace["traceEvents"] if e.get("ph") == "X"
        ]
        assert slices, "engine session trace has no busy intervals"
        assert trace["otherData"]["clock"] == "wall"

    def test_top_against_serving_engine(self):
        """A lingering serve process answers a live `repro top --once`."""
        port = _free_port()
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--ranks", "2", "--clients", "1", "--jobs-per-client", "2",
                "--metrics-port", str(port), "--linger", "20",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
        )
        try:
            url = f"http://127.0.0.1:{port}"
            frame = _poll_snapshot(url)
            assert frame["nprocs"] == 2
            top = subprocess.run(
                [
                    sys.executable, "-m", "repro", "top",
                    "--url", url, "--once",
                ],
                capture_output=True, text=True, timeout=30,
                env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
                cwd="/root/repo",
            )
            assert top.returncode == 0, top.stderr
            assert "repro engine top — pool 2 ranks" in top.stdout
        finally:
            proc.terminate()
            proc.wait(timeout=10)


def _free_port() -> int:
    import socket

    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _poll_snapshot(url: str, attempts: int = 100) -> dict:
    """Wait for the serve subprocess's endpoint to come up."""
    import time

    last: Exception | None = None
    for _ in range(attempts):
        try:
            return fetch_snapshot(url, timeout=1.0)
        except (urllib.error.URLError, OSError) as exc:
            last = exc
            time.sleep(0.2)
    raise AssertionError(f"metrics endpoint never came up: {last}")
