"""Regression tests for the poll-free mailbox wakeup and queue reuse.

The mailbox used to re-check a shared abort flag every 50 ms while
blocked; now a blocked ``collect`` sleeps until a delivery or an
explicit abort notification.  These tests pin down the three properties
that replacement relies on: wildcard matching stays correct under
concurrent delivery, aborts unblock receivers with far-sub-poll-interval
latency, and retired per-(source, tag) queues are recycled instead of
accumulating one dict entry per collective.
"""

import threading
import time

import numpy as np
import pytest

from repro import mpi
from repro.errors import RuntimeAbort, SpmdError
from repro.runtime import spmd_run
from repro.runtime.channels import ANY_SOURCE, ANY_TAG, Envelope, Mailbox
from repro.runtime.world import World


def _env(source, tag, payload=None):
    return Envelope(source, tag, payload, nbytes=8, available_at=0.0)


class TestWildcardUnderLoad:
    def test_any_source_under_concurrent_delivery(self):
        """Many sender threads hammer distinct (source, tag) keys while
        the owner drains with ANY_SOURCE wildcards; every message must be
        matched exactly once and nothing may blow up mid-iteration."""
        box = Mailbox(rank=0, abort_event=threading.Event())
        n_senders, per_sender = 8, 200

        def sender(src):
            for i in range(per_sender):
                box.deliver(_env(src, tag=("t", src, i), payload=(src, i)))

        threads = [
            threading.Thread(target=sender, args=(s,))
            for s in range(n_senders)
        ]
        for t in threads:
            t.start()
        got = [box.collect(ANY_SOURCE, ANY_TAG).payload
               for _ in range(n_senders * per_sender)]
        for t in threads:
            t.join()
        assert sorted(got) == sorted(
            (s, i) for s in range(n_senders) for i in range(per_sender)
        )
        assert box.pending_count() == 0

    def test_wildcard_source_specific_tag(self):
        box = Mailbox(rank=0, abort_event=threading.Event())
        box.deliver(_env(3, tag=7, payload="a"))
        box.deliver(_env(5, tag=9, payload="b"))
        assert box.collect(ANY_SOURCE, 9).payload == "b"
        assert box.collect(ANY_SOURCE, 7).payload == "a"


class TestAbortLatency:
    def test_blocked_collect_woken_immediately(self):
        """An abort must wake a blocked receiver well inside the old
        50 ms poll interval — the poll is gone, not shortened."""
        abort = threading.Event()
        box = Mailbox(rank=0, abort_event=abort)
        latency = {}
        started = threading.Event()

        def blocked_receiver():
            started.set()
            t0 = time.perf_counter()
            with pytest.raises(RuntimeAbort):
                box.collect(source=1, tag=42)
            latency["s"] = time.perf_counter() - t0

        t = threading.Thread(target=blocked_receiver)
        t.start()
        started.wait(timeout=5.0)
        time.sleep(0.05)  # let it actually block in cond.wait()
        abort.set()
        box.notify_abort()
        t.join(timeout=5.0)
        assert not t.is_alive()
        # generous CI budget, still far below one 50 ms poll tick
        assert latency["s"] - 0.05 < 0.025

    def test_world_abort_wakes_every_rank(self):
        world = World(nprocs=4)
        released = []
        barrier = threading.Barrier(4)

        def blocked(rank):
            barrier.wait()
            with pytest.raises(RuntimeAbort):
                world.mailboxes[rank].collect(source=(rank + 1) % 4, tag=0)
            released.append(rank)

        threads = [
            threading.Thread(target=blocked, args=(r,)) for r in range(1, 4)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        time.sleep(0.02)
        t0 = time.perf_counter()
        world.abort()
        for t in threads:
            t.join(timeout=5.0)
        elapsed = time.perf_counter() - t0
        assert sorted(released) == [1, 2, 3]
        assert elapsed < 0.025 * 3

    def test_aborting_run_unblocks_fast_end_to_end(self):
        """One rank raising must unwind peers blocked in a collective
        without any poll-interval stall."""

        def prog(comm):
            if comm.rank == 2:
                raise ValueError("injected")
            return comm.allreduce(np.ones(4), mpi.SUM)

        t0 = time.perf_counter()
        with pytest.raises(SpmdError) as ei:
            spmd_run(prog, 8, timeout=30)
        elapsed = time.perf_counter() - t0
        assert isinstance(ei.value.failures[2], ValueError)
        # pre-change this cost up to ~50 ms per blocked wait; allow a
        # generous margin for slow CI but stay under one poll tick
        assert elapsed < 2.0


class TestQueueReuse:
    def test_dict_does_not_grow_with_collective_tags(self):
        """Collective tags are unique per call; drained queues must be
        retired so the dict stays bounded."""
        box = Mailbox(rank=0, abort_event=threading.Event())
        for i in range(1000):
            tag = ("c", 0, i, "allreduce")
            box.deliver(_env(1, tag))
            box.collect(1, tag)
        assert len(box._queues) == 0
        assert box.pending_count() == 0

    def test_deque_objects_recycled(self):
        box = Mailbox(rank=0, abort_event=threading.Event())
        box.deliver(_env(1, "a"))
        box.collect(1, "a")
        spare = box._spares[0]
        box.deliver(_env(2, "b"))
        assert box._queues[(2, "b")] is spare

    def test_fifo_preserved_across_retire(self):
        box = Mailbox(rank=0, abort_event=threading.Event())
        for i in range(3):
            box.deliver(_env(1, "t", payload=i))
        assert [box.collect(1, "t").payload for _ in range(3)] == [0, 1, 2]
        # key retired only once empty
        box.deliver(_env(1, "t", payload=99))
        box.deliver(_env(1, "t", payload=100))
        assert box.collect(1, "t").payload == 99
        assert (1, "t") in box._queues  # still one message queued
        assert box.collect(1, "t").payload == 100
        assert (1, "t") not in box._queues
