"""Tests for the ReduceScanOp protocol, make_op, from_binary and
state_equal."""

import numpy as np
import pytest

from repro.core import from_binary, make_op
from repro.core.operator import ReduceScanOp, state_equal
from repro.errors import OperatorError


class TestProtocolDefaults:
    def test_required_methods_raise(self):
        class Incomplete(ReduceScanOp):
            pass

        op = Incomplete()
        with pytest.raises(NotImplementedError):
            op.ident()
        with pytest.raises(NotImplementedError):
            op.accum(None, 1)
        with pytest.raises(NotImplementedError):
            op.combine(None, None)

    def test_commutative_defaults_true(self):
        class Minimal(ReduceScanOp):
            def ident(self):
                return 0

            def accum(self, s, x):
                return s + x

            def combine(self, a, b):
                return a + b

        assert Minimal().commutative is True  # "assumed to be true"

    def test_pre_post_default_noop(self):
        class Minimal(ReduceScanOp):
            def ident(self):
                return 0

            def accum(self, s, x):
                return s + x

            def combine(self, a, b):
                return a + b

        op = Minimal()
        assert op.pre_accum(5, 99) == 5
        assert op.post_accum(5, 99) == 5

    def test_gen_defaults_to_state(self):
        class Minimal(ReduceScanOp):
            def ident(self):
                return 0

            def accum(self, s, x):
                return s + x

            def combine(self, a, b):
                return a + b

        op = Minimal()
        assert op.red_gen(42) == 42
        assert op.scan_gen(42, "ignored") == 42

    def test_accum_block_default_loops(self):
        class Minimal(ReduceScanOp):
            def ident(self):
                return 0

            def accum(self, s, x):
                return s + x

            def combine(self, a, b):
                return a + b

        assert Minimal().accum_block(10, [1, 2, 3]) == 16

    def test_scan_block_exclusive_vs_inclusive(self):
        class Minimal(ReduceScanOp):
            def ident(self):
                return 0

            def accum(self, s, x):
                return s + x

            def combine(self, a, b):
                return a + b

        op = Minimal()
        exc, final = op.scan_block(0, [1, 2, 3], exclusive=True)
        assert exc == [0, 1, 3] and final == 6
        inc, final = op.scan_block(0, [1, 2, 3], exclusive=False)
        assert inc == [1, 3, 6] and final == 6

    def test_repr_mentions_commutativity(self):
        class NC(ReduceScanOp):
            commutative = False

            def ident(self):
                return 0

            def accum(self, s, x):
                return s

            def combine(self, a, b):
                return a

        assert "non-commutative" in repr(NC())


class TestMakeOp:
    def test_minimal(self):
        op = make_op(
            ident=lambda: 1,
            accum=lambda s, x: s * x,
            combine=lambda a, b: a * b,
            name="prod",
        )
        assert op.ident() == 1
        assert op.accum_block(1, [2, 3, 4]) == 24
        assert op.name == "prod"

    def test_rejects_noncallables(self):
        with pytest.raises(OperatorError):
            make_op(ident=0, accum=lambda s, x: s, combine=lambda a, b: a)

    def test_all_hooks_wired(self):
        op = make_op(
            ident=lambda: [],
            accum=lambda s, x: s + [x],
            combine=lambda a, b: a + b,
            pre_accum=lambda s, x: s + ["pre"],
            post_accum=lambda s, x: s + ["post"],
            red_gen=lambda s: ("red", s),
            scan_gen=lambda s, x: ("scan", x),
            commutative=False,
            accum_rate="python_loop",
            combine_seconds=0.25,
        )
        assert op.pre_accum([], 0) == ["pre"]
        assert op.post_accum([], 0) == ["post"]
        assert op.red_gen([1]) == ("red", [1])
        assert op.scan_gen([1], 9) == ("scan", 9)
        assert op.commutative is False
        assert op.accum_rate == "python_loop"
        assert op.combine_seconds == 0.25

    def test_custom_accum_block(self):
        op = make_op(
            ident=lambda: 0,
            accum=lambda s, x: s + x,
            combine=lambda a, b: a + b,
            accum_block=lambda s, vs: s + int(np.sum(vs)),
        )
        assert op.accum_block(5, np.arange(10)) == 50


class TestFromBinary:
    def test_degenerate_operator(self):
        op = from_binary(lambda a, b: max(a, b), lambda: -1, name="max")
        assert op.ident() == -1
        assert op.accum_block(-1, [3, 9, 2]) == 9
        assert op.combine(4, 7) == 7

    def test_vectorized_uses_ufunc_reduce(self):
        op = from_binary(np.add, lambda: 0.0, vectorized=True)
        assert op.accum_block(1.0, np.arange(4.0)) == 7.0

    def test_vectorized_falls_back_pairwise(self):
        op = from_binary(lambda a, b: a + b, lambda: "", vectorized=True,
                         commutative=False)
        assert op.accum_block("x", np.array(["a", "b"], dtype=object)) == "xab"


class TestStateEqual:
    def test_scalars(self):
        assert state_equal(1, 1)
        assert not state_equal(1, 2)
        assert state_equal(1.5, 1.5)
        assert state_equal(float("nan"), float("nan"))

    def test_arrays(self):
        assert state_equal(np.arange(3), np.arange(3))
        assert not state_equal(np.arange(3), np.arange(4))
        assert state_equal(np.array([0.1 + 0.2]), np.array([0.3]))

    def test_containers(self):
        assert state_equal((1, [2, 3]), (1, [2, 3]))
        assert not state_equal((1,), (2,))
        assert state_equal({"a": np.zeros(2)}, {"a": np.zeros(2)})
        assert not state_equal({"a": 1}, {"b": 1})

    def test_objects_with_dict(self):
        class S:
            def __init__(self, v):
                self.v = v

        assert state_equal(S([1, 2]), S([1, 2]))
        assert not state_equal(S(1), S(2))

    def test_objects_with_slots(self):
        class S:
            __slots__ = ("a", "b")

            def __init__(self, a, b):
                self.a = a
                self.b = b

        assert state_equal(S(1, np.arange(2)), S(1, np.arange(2)))
        assert not state_equal(S(1, 2), S(1, 3))
