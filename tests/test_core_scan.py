"""Tests for the global-view scan drivers (Listing 3)."""

import numpy as np
import pytest

from repro.core import global_reduce, global_scan, global_xscan, make_op
from repro.ops import CountsOp, MinKOp, SortedOp, SumOp
from repro.runtime import spmd_run
from tests.conftest import PAPER_DATA, block_split, gather_scan, run_all

SIZES = [1, 2, 3, 4, 7, 10]


class TestPaperExamples:
    @pytest.mark.parametrize("p", SIZES)
    def test_inclusive_scan_paper_values(self, p):
        out = gather_scan(
            lambda comm: global_scan(
                comm, SumOp(), block_split(PAPER_DATA, comm.size, comm.rank)
            ),
            p,
        )
        assert [int(v) for v in out] == [6, 13, 19, 22, 30, 32, 40, 44, 52, 55]

    @pytest.mark.parametrize("p", SIZES)
    def test_exclusive_scan_paper_values(self, p):
        out = gather_scan(
            lambda comm: global_xscan(
                comm, SumOp(), block_split(PAPER_DATA, comm.size, comm.rank)
            ),
            p,
        )
        assert [int(v) for v in out] == [0, 6, 13, 19, 22, 30, 32, 40, 44, 52]

    @pytest.mark.parametrize("p", SIZES)
    def test_counts_ranking_scan(self, p):
        out = gather_scan(
            lambda comm: global_scan(
                comm, CountsOp(8), block_split(PAPER_DATA, comm.size, comm.rank)
            ),
            p,
        )
        assert out == [1, 1, 2, 1, 1, 1, 2, 1, 3, 2]

    @pytest.mark.parametrize("p", SIZES)
    def test_counts_exclusive_is_zero_based_rank(self, p):
        out = gather_scan(
            lambda comm: global_xscan(
                comm, CountsOp(8), block_split(PAPER_DATA, comm.size, comm.rank)
            ),
            p,
        )
        assert out == [0, 0, 1, 0, 0, 0, 1, 0, 2, 1]


class TestInvariants:
    @pytest.mark.parametrize("p", SIZES)
    def test_last_of_inclusive_equals_reduce(self, p, rng):
        data = rng.integers(0, 50, 41)

        def prog(comm):
            local = block_split(data, comm.size, comm.rank)
            inc = global_scan(comm, SumOp(), local)
            red = global_reduce(comm, SumOp(), local)
            return inc, red

        res = run_all(prog, p)
        flat = [v for inc, _ in res for v in inc]
        assert flat[-1] == res[0][1] == data.sum()

    @pytest.mark.parametrize("p", SIZES)
    def test_inclusive_from_exclusive_locally(self, p, rng):
        """Paper §1: inclusive[i] == exclusive[i] + a[i], elementwise —
        a purely local identity."""
        data = rng.integers(0, 50, 37)

        def prog(comm):
            local = block_split(data, comm.size, comm.rank)
            inc = global_scan(comm, SumOp(), local)
            exc = global_xscan(comm, SumOp(), local)
            return all(
                i == e + x for i, e, x in zip(inc, exc, local)
            )

        assert all(run_all(prog, p))

    @pytest.mark.parametrize("p", SIZES)
    def test_result_independent_of_p(self, p, rng):
        data = rng.integers(0, 9, 29)
        base = gather_scan(
            lambda comm: global_scan(
                comm, CountsOp(10, base=0),
                block_split(data, comm.size, comm.rank),
            ),
            1,
        )
        out = gather_scan(
            lambda comm: global_scan(
                comm, CountsOp(10, base=0),
                block_split(data, comm.size, comm.rank),
            ),
            p,
        )
        assert out == base

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_empty_ranks_ok(self, p):
        def prog(comm):
            local = PAPER_DATA if comm.rank == p // 2 else []
            return global_scan(comm, SumOp(), local)

        res = run_all(prog, p)
        flat = [int(v) for part in res for v in part]
        assert flat == [6, 13, 19, 22, 30, 32, 40, 44, 52, 55]


class TestSortedScan:
    """Scanning with sorted gives a 'sorted so far' prefix indicator."""

    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_sorted_so_far(self, p):
        data = [1, 2, 3, 10, 4, 5, 6, 7]  # violation at index 4

        def prog(comm):
            local = block_split(data, comm.size, comm.rank)
            return global_scan(comm, SortedOp(), local)

        flat = gather_scan(lambda comm: prog(comm), p)
        assert flat == [True, True, True, True, False, False, False, False]


class TestMinKScan:
    @pytest.mark.parametrize("p", [1, 3, 6])
    def test_running_minimums(self, p):
        data = [9, 4, 7, 1, 8, 2, 5]
        k = 2

        def prog(comm):
            op = MinKOp(k, np.iinfo(np.int64).max)
            local = block_split(data, comm.size, comm.rank)
            return [list(v) for v in global_scan(comm, op, local)]

        flat = gather_scan(lambda comm: prog(comm), p)
        M = np.iinfo(np.int64).max
        assert flat == [
            [M, 9],
            [9, 4],
            [7, 4],
            [4, 1],
            [4, 1],
            [2, 1],
            [2, 1],
        ]


class TestScanGenSharing:
    """Operators without scan_gen share gen between reduce and scan
    (paper: 'In many cases, reductions and scans can share the same
    generate functions')."""

    def test_default_gen_used_for_scan(self):
        op = make_op(
            ident=lambda: 0,
            accum=lambda s, x: s + x,
            combine=lambda a, b: a + b,
            gen=lambda s: f"<{s}>",
        )
        out = run_all(lambda comm: global_scan(comm, op, [1, 2, 3]), 1)[0]
        assert out == ["<1>", "<3>", "<6>"]

    def test_scan_gen_receives_input_element(self):
        op = make_op(
            ident=lambda: 0,
            accum=lambda s, x: s + x,
            combine=lambda a, b: a + b,
            scan_gen=lambda s, x: (s, x),
        )
        out = run_all(lambda comm: global_xscan(comm, op, [5, 6]), 1)[0]
        assert out == [(0, 5), (5, 6)]
