"""Round-trip property tests for the process-boundary transfer layer.

Every operator state the catalogue can produce must survive both
transports the process backend uses — validated pickle and the
shared-memory frame codec — **byte-identically**, not merely
``state_equal``-close: the backend identity grid compares virtual
times and message bytes downstream of these states, so a single
flipped mantissa bit would cascade.

Also covers the ndarray edge cases the codec must get right (0-d,
empty, non-contiguous, Fortran-order, bool/complex/datetime dtypes)
and the :class:`~repro.errors.TransferError` contract: unpicklable
payloads fail at the boundary with the offending type named.
"""

import pickle
import random
import struct

import numpy as np
import pytest

from repro.errors import TransferError
from repro.faults.chaos import CHAOS_CASES
from repro.runtime.channels import (
    FrameTooLarge,
    decode_frame,
    encode_frame,
)
from repro.runtime.procworld import _fold_state
from repro.util.sizing import copy_for_transfer, ensure_transferable

N_ELEMENTS = 7


def bytes_identical(a, b) -> bool:
    """Strict byte-level structural equality (no float tolerance)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and np.ascontiguousarray(a).tobytes()
            == np.ascontiguousarray(b).tobytes()
        )
    if isinstance(a, float) and isinstance(b, float):
        return struct.pack("<d", a) == struct.pack("<d", b)
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(bytes_identical(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            bytes_identical(v, b[k]) for k, v in a.items()
        )
    if type(a) is type(b) and hasattr(a, "__dict__"):
        return bytes_identical(vars(a), vars(b))
    if type(a) is type(b) and hasattr(type(a), "__slots__"):
        return all(
            bytes_identical(getattr(a, s), getattr(b, s))
            for s in type(a).__slots__
        )
    return type(a) is type(b) and a == b


def frame_roundtrip(obj, capacity=1 << 20):
    buf = memoryview(bytearray(capacity))
    end, kind = encode_frame(obj, buf, 0)
    out, end2 = decode_frame(buf, 0, copy=True)
    assert end2 == end
    return out


def _state_for(case):
    op = case.make_op()
    data = case.make_data(random.Random(42), N_ELEMENTS)
    return op, _fold_state(op, data)


@pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
def test_state_pickle_roundtrip(case):
    op, state = _state_for(case)
    try:
        blob = ensure_transferable(state)
    except TransferError:
        pytest.skip(f"{case.name} state is not picklable by contract")
    assert bytes_identical(pickle.loads(blob), state)


@pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
def test_state_frame_roundtrip(case):
    op, state = _state_for(case)
    try:
        out = frame_roundtrip(state)
    except TransferError:
        pytest.skip(f"{case.name} state is not picklable by contract")
    assert bytes_identical(out, state)


@pytest.mark.parametrize("case", CHAOS_CASES, ids=lambda c: c.name)
def test_operator_pickle_roundtrip(case):
    """Operators themselves cross the boundary once per offload; a
    pickled-and-revived operator must fold to the identical state."""
    op = case.make_op()
    data = case.make_data(random.Random(43), N_ELEMENTS)
    try:
        blob = ensure_transferable(op)
    except TransferError:
        pytest.skip(f"{case.name} operator is not picklable by contract")
    revived = pickle.loads(blob)
    assert bytes_identical(_fold_state(revived, data), _fold_state(op, data))


NDARRAY_CASES = {
    "zero_d": np.array(3.5),
    "empty_1d": np.empty((0,), dtype=np.float64),
    "empty_2d": np.empty((0, 3), dtype=np.int32),
    "contiguous": np.arange(100, dtype=np.float64),
    "non_contiguous": np.arange(24, dtype=np.float64).reshape(4, 6)[:, ::2],
    "fortran_order": np.asfortranarray(np.arange(12.0).reshape(3, 4)),
    "negative_stride": np.arange(10, dtype=np.int64)[::-1],
    "bool": np.array([True, False, True]),
    "complex": np.array([1 + 2j, 3 - 4j]),
    "float32": np.linspace(0, 1, 17, dtype=np.float32),
    "uint8": np.arange(256, dtype=np.uint8),
    "datetime": np.array(["2026-08-09", "1970-01-01"], dtype="datetime64[D]"),
    "nan_inf": np.array([np.nan, np.inf, -np.inf, -0.0]),
}


@pytest.mark.parametrize("arr", NDARRAY_CASES.values(), ids=NDARRAY_CASES.keys())
def test_ndarray_frame_roundtrip(arr):
    out = frame_roundtrip(arr)
    assert bytes_identical(out, arr)


def test_object_dtype_falls_back_to_pickle():
    arr = np.array([{"a": 1}, None, (2, 3)], dtype=object)
    buf = memoryview(bytearray(1 << 16))
    from repro.runtime.channels import FRAME_PICKLE

    _, kind = encode_frame(arr, buf, 0)
    assert kind == FRAME_PICKLE
    out, _ = decode_frame(buf, 0)
    assert list(out) == list(arr)


def test_zero_copy_decode_is_readonly_view():
    arr = np.arange(64, dtype=np.float64)
    buf = memoryview(bytearray(1 << 12))
    encode_frame(arr, buf, 0)
    view, _ = decode_frame(buf, 0)
    assert not view.flags.writeable
    assert not view.flags.owndata  # genuinely a view into the buffer
    assert bytes_identical(np.asarray(view).copy(), arr)


def test_frame_too_large():
    with pytest.raises(FrameTooLarge):
        encode_frame(np.arange(1024, dtype=np.float64), memoryview(bytearray(256)), 0)


def test_ensure_transferable_names_offending_type():
    class Unpicklable:
        def __reduce__(self):
            raise TypeError("nope")

    with pytest.raises(TransferError, match="Unpicklable"):
        ensure_transferable(Unpicklable())
    with pytest.raises(TransferError, match="lambda"):
        ensure_transferable(lambda x: x)


def test_copy_for_transfer_names_offending_type():
    class Undeepcopyable:
        def __deepcopy__(self, memo):
            raise TypeError("no address-space copy for you")

    with pytest.raises(TransferError, match="Undeepcopyable"):
        copy_for_transfer(Undeepcopyable())


def test_copy_for_transfer_transfer_safe_passthrough():
    class Frozen:
        __transfer_safe__ = True

    obj = Frozen()
    assert copy_for_transfer(obj) is obj
