"""Fault-plan construction, validation and reproducibility."""

import pytest

from repro.faults import FailStop, FaultPlan, LinkFaults, random_plan


class TestFailStopSpec:
    def test_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            FailStop(rank=0)
        with pytest.raises(ValueError):
            FailStop(rank=0, at_time=1.0, at_op=1)

    def test_at_op_is_one_based(self):
        with pytest.raises(ValueError):
            FailStop(rank=0, at_op=0)
        FailStop(rank=0, at_op=1)  # ok

    def test_one_failstop_per_rank(self):
        with pytest.raises(ValueError):
            FaultPlan(failstops=(
                FailStop(rank=1, at_op=1),
                FailStop(rank=1, at_time=5.0),
            ))


class TestLinkFaults:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            LinkFaults(dup_rate=1.5)
        with pytest.raises(ValueError):
            LinkFaults(drop_rate=-0.1)

    def test_certain_drop_rejected(self):
        # drop_rate == 1 would retransmit forever.
        with pytest.raises(ValueError):
            LinkFaults(drop_rate=1.0)

    def test_any_active(self):
        assert not LinkFaults().any_active
        assert LinkFaults(drop_rate=0.1).any_active
        assert LinkFaults(reorder_rate=0.1).any_active


class TestFaultPlan:
    def test_flags(self):
        assert not FaultPlan().can_fail
        assert not FaultPlan().lossy
        p = FaultPlan(failstops=(FailStop(rank=2, at_op=1),),
                      link=LinkFaults(drop_rate=0.2))
        assert p.can_fail and p.lossy

    def test_straggler_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(stragglers={0: 0.0})
        FaultPlan(stragglers={0: 2.5})

    def test_rank_streams_are_deterministic_and_independent(self):
        p = FaultPlan(seed=42)
        a1 = [p.rank_stream(0).random() for _ in range(5)]
        a2 = [p.rank_stream(0).random() for _ in range(5)]
        b = [p.rank_stream(1).random() for _ in range(5)]
        assert a1 == a2
        assert a1 != b

    def test_describe_mentions_everything(self):
        p = FaultPlan(
            seed=9,
            failstops=(FailStop(rank=1, at_time=2.0),),
            link=LinkFaults(drop_rate=0.25),
            stragglers={3: 4.0},
        )
        s = p.describe()
        assert "seed=9" in s and "failstop" in s
        assert "drop=0.25" in s and "3x4" in s


class TestRandomPlan:
    def test_reproducible(self):
        a, b = random_plan(7, 8), random_plan(7, 8)
        assert a == b
        assert random_plan(8, 8) != a

    def test_rank0_never_failstopped(self):
        for seed in range(50):
            p = random_plan(seed, 4)
            assert all(f.rank != 0 for f in p.failstops)

    def test_single_failure_model(self):
        for seed in range(20):
            assert len(random_plan(seed, 8).failstops) <= 1

    def test_drop_rate_bounded(self):
        for seed in range(20):
            p = random_plan(seed, 4, max_drop=0.3, max_dup=0.3)
            assert p.link.drop_rate <= 0.3
            assert p.link.dup_rate <= 0.3
