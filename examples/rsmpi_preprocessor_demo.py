#!/usr/bin/env python3
"""The RSMPI preprocessor in action: paper Listing 8 and friends.

Feeds the C-like operator DSL through the lexer/parser/code generator,
shows the generated Python, and runs the compiled operators on simulated
ranks — the full pipeline the paper implemented as "an experimental
prototype of an RSMPI preprocessor written in Perl".

Usage:  python examples/rsmpi_preprocessor_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.rsmpi import RSMPI_Reduceall, RSMPI_Scan, compile_operator
from repro.rsmpi.preprocessor import generate_python, parse_operator
from repro.runtime import spmd_run

LISTING_8 = """
rsmpi operator sorted {
  non-commutative
  state {
    int first, last;
    int status;
  }
  void ident(state s) {
    s->first = INT_MAX;
    s->last = INT_MIN;
    s->status = 1;
  }
  void pre_accum(state s, int i) {
    s->first = i;
  }
  void accum(state s, int i) {
    if (s->last > i)
      s->status = 0;
    s->last = i;
  }
  void combine(state s1, state s2) {
    s1->status &= s2->status &&
      (s1->last <= s2->first);
    s1->last = s2->last;
  }
  int generate(state s) {
    return s->status;
  }
}
"""

MINK_DSL = """
rsmpi operator mink {
  commutative
  param int k = 10;
  state { int v[k]; }
  void ident(state s) {
    int i;
    for (i = 0; i < k; i++)
      v_set(s, i);
  }
  void v_set(state s, int i) { s->v[i] = INT_MAX; }
  void accum(state s, int x) {
    int i, tmp;
    if (x < s->v[0]) {
      s->v[0] = x;
      for (i = 1; i < k; i++)
        if (s->v[i-1] < s->v[i]) {
          tmp = s->v[i];
          s->v[i] = s->v[i-1];
          s->v[i-1] = tmp;
        }
    }
  }
  void combine(state s1, state s2) {
    int i;
    for (i = 0; i < k; i++)
      accum(s1, s2->v[i]);
  }
  void generate(state s) { return s->v; }
}
"""


def main():
    # --- stage 1: parse -----------------------------------------------------
    decl = parse_operator(LISTING_8)
    print(f"parsed operator {decl.name!r}:")
    print(f"  commutative : {decl.commutative}")
    print(f"  state fields: {[f.name for f in decl.state_fields]}")
    print(f"  functions   : {list(decl.functions)}\n")

    # --- stage 2: code generation -------------------------------------------
    compiled = generate_python(decl)
    print("generated Python (the preprocessor's output):")
    for line in compiled.source.splitlines():
        print(f"  | {line}")
    print()

    # --- stage 3: run it -----------------------------------------------------
    sorted_op = compile_operator(LISTING_8)
    data = list(range(1000))

    def check(comm):
        lo = comm.rank * len(data) // comm.size
        hi = (comm.rank + 1) * len(data) // comm.size
        return RSMPI_Reduceall(sorted_op, data[lo:hi], comm)

    print(f"sorted(0..999) over 8 ranks  : {spmd_run(check, 8).returns[0]}")
    data[500], data[501] = data[501], data[500]
    print(f"after swapping two elements  : {spmd_run(check, 8).returns[0]}\n")

    # --- a parameterized operator with a helper function ---------------------
    mink = compile_operator(MINK_DSL, params={"k": 5})
    rng = np.random.default_rng(0)
    values = [int(v) for v in rng.integers(0, 10_000, 5000)]

    def find_mins(comm):
        lo = comm.rank * len(values) // comm.size
        hi = (comm.rank + 1) * len(values) // comm.size
        return RSMPI_Reduceall(mink, values[lo:hi], comm)

    result = spmd_run(find_mins, 4).returns[0]
    print(f"mink(k=5) via DSL            : {list(result)}")
    print(f"numpy cross-check            : {np.sort(values)[:5][::-1].tolist()}")

    # --- scans work too -------------------------------------------------------
    counts = compile_operator(
        """
        rsmpi operator counts {
          param int k = 8;
          state { int v[k]; }
          void ident(state s) { int i; for (i = 0; i < k; i++) s->v[i] = 0; }
          void accum(state s, int x) { s->v[x - 1] += 1; }
          void combine(state s1, state s2) {
            int i;
            for (i = 0; i < k; i++) s1->v[i] += s2->v[i];
          }
          int scan_generate(state s, int x) { return s->v[x - 1]; }
        }
        """
    )
    octants = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3]

    def rank_particles(comm):
        lo = comm.rank * len(octants) // comm.size
        hi = (comm.rank + 1) * len(octants) // comm.size
        return RSMPI_Scan(counts, octants[lo:hi], comm)

    parts = spmd_run(rank_particles, 3).returns
    flat = [v for part in parts for v in part]
    print(f"\ncounts scan via DSL          : {flat}")
    print("paper's expected rankings    : [1, 1, 2, 1, 1, 1, 2, 1, 3, 2]")


if __name__ == "__main__":
    main()
