#!/usr/bin/env python3
"""Particles in octants: the paper's §3.1.3 scenario at realistic scale.

"Given a list of particles with locations in one of eight octants, a
reduction could determine how many particles are in each location.  A
scan could determine a ranking of the particles within each octant."

We simulate 200k particles with 3-D positions distributed over 8 ranks,
classify each into its octant, then use ONE ``counts`` operator for both
questions — and use the resulting rankings to build, fully in parallel,
a per-octant contiguous numbering (the standard first step of a
bucketed particle sort).  A ``MeanVarOp`` reduction computes per-axis
statistics along the way, and a segmented scan computes per-octant
running energy once particles are octant-sorted.

Usage:  python examples/particle_octants.py
"""

from __future__ import annotations

import numpy as np

from repro import global_scan, spmd_run
from repro.core import global_reduce
from repro.ops import CountsOp, MeanVarOp, SegmentedOp
from repro.util.rng import randlc_array

N_PARTICLES = 200_000
NPROCS = 8


def octant_of(xyz: np.ndarray) -> np.ndarray:
    """Octant 1..8 from the signs of the coordinates (paper numbering)."""
    return (
        1
        + (xyz[:, 0] >= 0).astype(np.int64)
        + 2 * (xyz[:, 1] >= 0).astype(np.int64)
        + 4 * (xyz[:, 2] >= 0).astype(np.int64)
    )


def local_particles(comm) -> tuple[np.ndarray, np.ndarray]:
    """This rank's slice of the global particle stream (reproducible:
    the shared randlc stream + jump-ahead, like the NAS kernels)."""
    base, extra = divmod(N_PARTICLES, comm.size)
    lo = comm.rank * base + min(comm.rank, extra)
    count = base + (1 if comm.rank < extra else 0)
    raw = randlc_array(3 * count, skip=3 * lo).reshape(count, 3) * 2.0 - 1.0
    return raw, octant_of(raw)


def program(comm):
    xyz, octants = local_particles(comm)

    # Q1 (reduction): how many particles per octant?
    counts = global_reduce(comm, CountsOp(8), octants)

    # Q2 (scan): each particle's rank within its octant (1-based).
    rankings = np.array(global_scan(comm, CountsOp(8), octants))

    # Derived: a globally unique, per-octant-contiguous id for each
    # particle — offset of my octant + my rank within it.
    octant_offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    particle_ids = octant_offsets[octants - 1] + rankings - 1

    # Statistics of the x coordinate in the same framework.
    xstats = global_reduce(comm, MeanVarOp(), xyz[:, 0])

    # Segmented scan: per-octant running "energy" once octant-sorted
    # locally.  A segment head sits wherever the octant changes —
    # including across rank boundaries, so exchange the boundary octant
    # with the left neighbor first (the local-view chore the NAS IS
    # verifier also does).
    order = np.argsort(octants, kind="stable")
    sorted_oct = octants[order]
    energy = np.square(xyz[order]).sum(axis=1)
    if comm.rank < comm.size - 1:
        comm.send(int(sorted_oct[-1]), dest=comm.rank + 1, tag=42)
    prev_oct = comm.recv(source=comm.rank - 1, tag=42) if comm.rank > 0 else None
    heads = np.zeros(len(sorted_oct), dtype=bool)
    heads[1:] = sorted_oct[1:] != sorted_oct[:-1]
    heads[0] = prev_oct is None or prev_oct != sorted_oct[0]
    seg = SegmentedOp(lambda a, b: a + b, 0.0, name="energy")
    running_energy = global_scan(
        comm, seg, list(zip(energy.tolist(), heads.tolist()))
    )

    return {
        "counts": counts,
        "n_local": len(octants),
        "ids_min": int(particle_ids.min()) if len(particle_ids) else None,
        "ids_max": int(particle_ids.max()) if len(particle_ids) else None,
        "xstats": xstats,
        "running_energy_last": running_energy[-1] if running_energy else None,
    }


def main():
    res = spmd_run(program, NPROCS)
    out = res.returns[0]
    counts = out["counts"]
    print(f"{N_PARTICLES} particles over {NPROCS} ranks\n")
    print("octant populations (counts reduce):")
    for i, c in enumerate(counts, start=1):
        bar = "#" * int(60 * c / counts.max())
        print(f"  octant {i}: {c:7d} {bar}")
    assert counts.sum() == N_PARTICLES

    ids_max = max(r["ids_max"] for r in res.returns)
    ids_min = min(r["ids_min"] for r in res.returns)
    print(f"\nper-octant contiguous particle ids: {ids_min} .. {ids_max} "
          f"(dense: {ids_max - ids_min + 1 == N_PARTICLES})")

    st = out["xstats"]
    print(f"x-coordinate stats (one MeanVar reduction): "
          f"n={st.n}, mean={st.mean:+.4f}, std={st.std:.4f}")
    print(f"\nsimulated time on {NPROCS} ranks: {res.time * 1e3:.3f} ms "
          f"({res.summary_trace.n_sends} messages)")


if __name__ == "__main__":
    main()
