#!/usr/bin/env python3
"""NAS IS end-to-end: parallel bucket sort + the paper's three
verification variants (the Figure 2 scenario).

Sorts a full (scaled) IS class across simulated ranks, then verifies the
result three ways and contrasts their code shape and cost:

* the C+MPI idiom — boundary exchange, hand-written local check, sum
  reduction (what §4.1 calls "awkward compared to using the global-view
  abstraction");
* the RSMPI one-liner — a single non-commutative ``sorted`` reduction;
* the §4.1 ablation — the same reduction dishonestly flagged
  commutative, which "did fail to verify ... (as expected)".

Usage:  python examples/nas_is_demo.py [CLASS] [NPROCS]
        (defaults: class A, 16 ranks)
"""

from __future__ import annotations

import sys

from repro.nas import is_class
from repro.nas.callcounts import census
from repro.nas.intsort import bucket_sort, VERIFIERS
from repro.runtime import cluster_2006, spmd_run


def make_program(cls, verifier_name):
    verify = VERIFIERS[verifier_name]

    def program(comm):
        result = bucket_sort(comm, cls)
        comm.barrier()
        t_sorted = comm.context.clock.t
        ok = verify(comm, result.local_sorted)
        return ok, t_sorted, comm.context.clock.t - t_sorted

    return program


def main():
    cls_name = sys.argv[1] if len(sys.argv) > 1 else "A"
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    cls = is_class(cls_name)
    print(
        f"NAS IS class {cls.name}: {cls.n_keys} keys in [0, {cls.max_key}), "
        f"{nprocs} simulated ranks\n"
    )

    model = cluster_2006()
    for name in ("mpi", "rsmpi", "rsmpi_commutative"):
        res = spmd_run(make_program(cls, name), nprocs, cost_model=model)
        ok = all(r[0] for r in res.returns)
        verify_time = max(r[2] for r in res.returns)
        c = census(res.traces)
        verdict = "sorted" if ok else "NOT sorted"
        note = ""
        if name == "rsmpi_commutative":
            note = "   <- the paper's expected mis-verification"
        print(
            f"  verifier {name:<18s}: {verdict:<10s} "
            f"verify-phase {verify_time * 1e6:9.1f} us (simulated), "
            f"{c.n_reductions} reduction calls{note}"
        )

    print(
        "\nThe data IS sorted; only the dishonestly-commutative variant "
        "disagrees,\nbecause its combine tree is licensed to reorder the "
        "non-commutative boundary checks."
    )


if __name__ == "__main__":
    main()
