#!/usr/bin/env python3
"""Scan is enough: filtering, partitioning and sorting with nothing but
exclusive scans and routing (Blelloch's vector-model classics).

The paper's conclusion promises "the full power of the parallel prefix
technique"; this demo spends that power three ways on 100k elements over
8 simulated ranks — stream compaction, stable split, and a full LSD
radix sort — and counts exactly which collectives each one needed.

Usage:  python examples/scan_algorithms_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import radix_sort, split_by_flag, stream_compact
from repro.runtime import cluster_2006, spmd_run
from repro.util.rng import randlc_array

N = 100_000
NPROCS = 8


def my_block(comm):
    base, extra = divmod(N, comm.size)
    lo = comm.rank * base + min(comm.rank, extra)
    count = base + (1 if comm.rank < extra else 0)
    return (randlc_array(count, skip=lo) * 65536).astype(np.int64)


def compact_demo(comm):
    keys = my_block(comm)
    evens = stream_compact(comm, keys, keys % 2 == 0)
    return len(evens), comm.trace.collective_calls.copy()


def split_demo(comm):
    keys = my_block(comm)
    parted = split_by_flag(comm, keys, keys >= 32768)
    n_low_local = int(np.count_nonzero(parted < 32768))
    return len(parted), n_low_local, comm.trace.collective_calls.copy()


def sort_demo(comm):
    keys = my_block(comm)
    ordered = radix_sort(comm, keys)
    locally_sorted = bool(np.all(np.diff(ordered) >= 0))
    first = int(ordered[0]) if len(ordered) else None
    last = int(ordered[-1]) if len(ordered) else None
    return locally_sorted, first, last, comm.trace.collective_calls.copy()


def main():
    model = cluster_2006()
    print(f"{N} random 16-bit keys over {NPROCS} ranks\n")

    res = spmd_run(compact_demo, NPROCS, cost_model=model)
    n_even = sum(t[0] for t in res.returns)
    calls = res.returns[0][1]
    print(f"stream_compact (keep evens): kept {n_even} "
          f"[{dict(calls)}]")

    res = spmd_run(split_demo, NPROCS, cost_model=model)
    total = sum(t[0] for t in res.returns)
    # the low half must all sit in the earliest blocks
    lows = [t[1] for t in res.returns]
    print(f"split_by_flag (< 32768 first): {sum(lows)} low keys lead "
          f"the {total}-element result "
          f"[{dict(res.returns[0][2])}]")

    res = spmd_run(sort_demo, NPROCS, cost_model=model, timeout=300)
    boundaries_ok = True
    prev_last = None
    for ok, first, last, _ in res.returns:
        assert ok
        if prev_last is not None and first is not None:
            boundaries_ok &= prev_last <= first
        if last is not None:
            prev_last = last
    calls = res.returns[0][3]
    print(f"radix_sort: globally sorted = {boundaries_ok}; "
          f"collectives per rank: {dict(calls)}")
    print(f"  simulated time: {res.time * 1e3:.3f} ms "
          f"({res.summary_trace.n_sends} messages)")
    print("\n16 bits -> 16 stable splits; each split is one aggregated "
          "exscan,\none aggregated allreduce and one all-to-all. "
          "Scan really is enough.")


if __name__ == "__main__":
    main()
