#!/usr/bin/env python3
"""NAS EP: the whole benchmark as ONE user-defined reduction.

EP tallies gaussian deviates produced by the Marsaglia polar method:
sums sx and sy plus ten annulus counts.  The NPB formulation computes
locally and then issues three all-reduces; the global-view formulation
hands the *raw coordinate pairs* to a single fused operator whose
accumulate phase performs the acceptance test and transformation itself
— the strongest form of the paper's message that the per-processor code
belongs inside the abstraction.

Usage:  python examples/nas_ep_demo.py [CLASS] [NPROCS]
        (defaults: class A, 8 ranks)
"""

from __future__ import annotations

import sys

import numpy as np

from repro.nas.callcounts import census
from repro.nas.ep import ep_class, ep_mpi, ep_rsmpi
from repro.runtime import cluster_2006, spmd_run


def main():
    cls_name = sys.argv[1] if len(sys.argv) > 1 else "A"
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    cls = ep_class(cls_name)
    print(f"NAS EP class {cls.name}: {cls.n_pairs} pairs, {nprocs} ranks\n")

    model = cluster_2006()
    res_mpi = spmd_run(lambda comm: ep_mpi(comm, cls), nprocs,
                       cost_model=model)
    res_rsm = spmd_run(lambda comm: ep_rsmpi(comm, cls), nprocs,
                       cost_model=model)
    a, b = res_mpi.returns[0], res_rsm.returns[0]
    assert a.close_to(b), "the two formulations must agree exactly"

    print(f"  sums of deviates : sx = {a.sx:+.6f}   sy = {a.sy:+.6f}")
    print(f"  accepted pairs   : {a.n_accepted}  "
          f"(rate {a.n_accepted / cls.n_pairs:.4f}, pi/4 = {np.pi / 4:.4f})")
    print("  annulus counts   :")
    for i, c in enumerate(a.q):
        if c:
            bar = "#" * max(1, int(50 * c / a.q.max()))
            print(f"    |X|,|Y| in [{i},{i + 1}): {c:9d} {bar}")

    c_mpi, c_rsm = census(res_mpi.traces), census(res_rsm.traces)
    print(f"\n  NPB idiom        : {c_mpi.n_reductions} reductions, "
          f"t = {res_mpi.time * 1e6:8.1f} us (simulated)")
    print(f"  global-view idiom: {c_rsm.n_reductions} reduction,  "
          f"t = {res_rsm.time * 1e6:8.1f} us (simulated)")
    print("\nEP is embarrassingly parallel: reductions are its ONLY "
          "communication,\nand the global view folds all three into one "
          "fused operator.")


if __name__ == "__main__":
    main()
