#!/usr/bin/env python3
"""Quickstart: global-view user-defined reductions and scans in 5 minutes.

Runs the paper's running example (§1): the data set
``[6, 7, 6, 3, 8, 2, 8, 4, 8, 3]`` distributed over 4 simulated ranks,
with built-in and user-defined operators in both reduction and scan
form — including a brand-new operator defined three different ways
(class, functional, DSL).

Usage:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ReduceScanOp, global_reduce, global_scan, make_op, spmd_run
from repro.arrays import GlobalArray
from repro.ops import CountsOp, MinKOp, SortedOp, SumOp
from repro.rsmpi import RSMPI_Reduceall, compile_operator

PAPER_DATA = np.array([6, 7, 6, 3, 8, 2, 8, 4, 8, 3])
NPROCS = 4


# ---------------------------------------------------------------------------
# 1. The one-liner: Chapel's `op reduce A` as A.reduce(op)
# ---------------------------------------------------------------------------
def demo_builtins(comm):
    a = GlobalArray.from_global(comm, PAPER_DATA)
    total = a.reduce(SumOp())
    running = a.scan(SumOp()).to_global()
    if comm.rank == 0:
        print(f"sum reduce          : {total}")
        print(f"inclusive sum scan  : {[int(v) for v in running]}")
    return total


# ---------------------------------------------------------------------------
# 2. A user-defined operator, class style (the paper's mink, Listing 4)
# ---------------------------------------------------------------------------
def demo_mink(comm):
    a = GlobalArray.from_global(comm, PAPER_DATA)
    minimums = a.reduce(MinKOp(3, np.iinfo(np.int64).max))
    if comm.rank == 0:
        print(f"mink(3) reduce      : {minimums.tolist()}  (3 smallest, high-to-low)")
    return minimums


# ---------------------------------------------------------------------------
# 3. Different generate functions for reduce vs scan (counts, Listing 6)
# ---------------------------------------------------------------------------
def demo_counts(comm):
    a = GlobalArray.from_global(comm, PAPER_DATA)
    octant_counts = a.reduce(CountsOp(8))
    rankings = a.scan(CountsOp(8)).to_global()
    if comm.rank == 0:
        print(f"counts reduce       : {octant_counts.tolist()}")
        print(f"counts scan (ranks) : {rankings.tolist()}")
    return octant_counts


# ---------------------------------------------------------------------------
# 4. A non-commutative operator (sorted, Listing 7)
# ---------------------------------------------------------------------------
def demo_sorted(comm):
    a = GlobalArray.from_global(comm, PAPER_DATA)
    b = GlobalArray.from_global(comm, np.sort(PAPER_DATA))
    # note: reduce() is collective — every rank must call it
    original_sorted = a.reduce(SortedOp())
    sorted_sorted = b.reduce(SortedOp())
    if comm.rank == 0:
        print(f"sorted? (original)  : {original_sorted}")
        print(f"sorted? (sorted)    : {sorted_sorted}")


# ---------------------------------------------------------------------------
# 5. Rolling your own operator, three ways
# ---------------------------------------------------------------------------
class RangeOp(ReduceScanOp):
    """(min, max) of the data in one pass — class style."""

    def ident(self):
        return [np.inf, -np.inf]

    def accum(self, s, x):
        if x < s[0]:
            s[0] = x
        if x > s[1]:
            s[1] = x
        return s

    def combine(self, s1, s2):
        s1[0] = min(s1[0], s2[0])
        s1[1] = max(s1[1], s2[1])
        return s1

    def gen(self, s):
        return (s[0], s[1])


range_functional = make_op(  # functional style
    ident=lambda: [np.inf, -np.inf],
    accum=lambda s, x: [min(s[0], x), max(s[1], x)],
    combine=lambda a, b: [min(a[0], b[0]), max(a[1], b[1])],
    gen=lambda s: (s[0], s[1]),
    name="range",
)

range_dsl = compile_operator(  # RSMPI DSL style (paper Listing 8 syntax)
    """
    rsmpi operator range {
      state { double lo; double hi; }
      void ident(state s) { s->lo = DBL_MAX; s->hi = DBL_MIN; }
      void accum(state s, double x) {
        if (x < s->lo) s->lo = x;
        if (x > s->hi) s->hi = x;
      }
      void combine(state s1, state s2) {
        if (s2->lo < s1->lo) s1->lo = s2->lo;
        if (s2->hi > s1->hi) s1->hi = s2->hi;
      }
      void generate(state s) { return s; }
    }
    """
)


def demo_user_ops(comm):
    local = PAPER_DATA[comm.rank :: comm.size]  # any distribution works
    r1 = global_reduce(comm, RangeOp(), local)
    r2 = global_reduce(comm, range_functional, local)
    r3 = RSMPI_Reduceall(range_dsl, local, comm)
    if comm.rank == 0:
        print(f"range (class)       : {r1}")
        print(f"range (functional)  : {tuple(r2)}")
        print(f"range (DSL)         : ({r3.lo}, {r3.hi})")


def main():
    print(f"data = {PAPER_DATA.tolist()}, simulated ranks = {NPROCS}\n")
    for demo in (demo_builtins, demo_mink, demo_counts, demo_sorted,
                 demo_user_ops):
        result = spmd_run(demo, NPROCS)
        _ = result
    print("\nEvery result above is identical for any number of ranks —")
    print("that is the global-view abstraction's contract.")


if __name__ == "__main__":
    main()
