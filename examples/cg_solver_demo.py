#!/usr/bin/env python3
"""Conjugate gradients: reductions as an iterative solver's heartbeat.

Solves the 1-D Poisson problem across simulated ranks two ways — the
textbook recurrence with two dot-product all-reduces per iteration, and
the communication-fused recurrence with one — then shows where the
reduction latency bites as the processor count grows, with a per-rank
utilization breakdown.

Usage:  python examples/cg_solver_demo.py [N] [NPROCS]
        (defaults: n=65536, 16 ranks)
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import format_utilization
from repro.nas.callcounts import census
from repro.nas.cg import cg_solve, cg_solve_fused, random_rhs
from repro.runtime import cluster_2006, spmd_run


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 16
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    model = cluster_2006().with_rates(cg=8 * 2e-9)  # ~8 vector passes/iter
    print(f"1-D Poisson, n = {n}, {nprocs} simulated ranks\n")

    results = {}
    for label, solver in (("standard", cg_solve), ("fused", cg_solve_fused)):
        res = spmd_run(
            lambda comm: solver(
                comm, random_rhs(comm, n), max_iter=80, dot_rate="cg"
            ),
            nprocs,
            cost_model=model,
            timeout=600,
        )
        r = res.returns[0]
        c = census(res.traces)
        results[label] = (res, r, c)
        print(
            f"  {label:<9s}: {r.iterations} iterations, "
            f"{c.n_reductions} reductions "
            f"({c.n_reductions / max(r.iterations, 1):.2f}/iter), "
            f"simulated {res.time * 1e3:.3f} ms"
        )

    std, fused = results["standard"][0], results["fused"][0]
    print(f"\n  fused speedup: {std.time / fused.time:.2f}x "
          "(same iterates, half the reduction latency)")

    # residuals agree
    r1, r2 = results["standard"][1], results["fused"][1]
    print(f"  final residuals: {r1.residual_norm:.3e} vs "
          f"{r2.residual_norm:.3e}")

    print("\nwhere the time goes (standard CG):")
    print(format_utilization(std, max_rows=8))


if __name__ == "__main__":
    main()
