#!/usr/bin/env python3
"""Multidimensional scans: a distributed summed-area table.

The paper singles out the exclusive scan because it "enables the elegant
recursive definitions of multidimensional scans".  This example makes
that concrete: a 2048x1024 synthetic "image" is distributed by row
blocks over 8 ranks, and its summed-area table (2-D inclusive prefix) is
computed with exactly ONE exclusive scan collective — the per-rank
column-sum vectors are exscan-ed (aggregated: all 1024 columns in each
message) and folded back in locally.

The summed-area table then answers arbitrary box-sum queries in O(1),
which we verify against direct summation; a running 2-D maximum and
column statistics round out the tour.

Usage:  python examples/summed_area_table.py
"""

from __future__ import annotations

import numpy as np

from repro import spmd_run
from repro.arrays import GlobalMatrix
from repro.ops import MaxOp, MeanVarOp, SumOp
from repro.core import global_reduce
from repro.util.rng import randlc_array

ROWS, COLS = 2048, 1024
NPROCS = 8


def box_sum(sat: np.ndarray, r0: int, c0: int, r1: int, c1: int) -> float:
    """Inclusive box [r0..r1] x [c0..c1] from the summed-area table."""
    total = sat[r1, c1]
    if r0 > 0:
        total -= sat[r0 - 1, c1]
    if c0 > 0:
        total -= sat[r1, c0 - 1]
    if r0 > 0 and c0 > 0:
        total += sat[r0 - 1, c0 - 1]
    return float(total)


def program(comm):
    # Build this rank's rows of the image from the shared randlc stream.
    def image_rows(rows, cols):
        out = np.empty((rows.shape[0], COLS))
        for i, r in enumerate(rows[:, 0]):
            out[i] = randlc_array(COLS, skip=int(r) * COLS)
        return out * 100.0

    g = GlobalMatrix.from_function(comm, ROWS, COLS, image_rows)

    sat = g.prefix2d(SumOp(0.0))          # ONE exscan collective
    run_max = g.prefix2d(MaxOp(-np.inf))  # same trick, different monoid
    col_max = g.reduce_cols(MaxOp(-np.inf))
    stats = global_reduce(comm, MeanVarOp(), g.local.ravel())

    # to_global() is collective: every rank participates, rank 0 keeps it
    sat_full = sat.to_global()
    image_full = g.to_global()
    run_max_full = run_max.to_global()
    keep = comm.rank == 0
    return {
        "sat": sat_full if keep else None,
        "image": image_full if keep else None,
        "run_max_last": run_max_full[-1, -1] if keep else None,
        "col_max": col_max,
        "stats": stats,
        "exscan_calls": comm.trace.collective_calls.get("exscan", 0),
    }


def main():
    res = spmd_run(program, NPROCS)
    out = res.returns[0]
    sat, image = out["sat"], out["image"]

    print(f"{ROWS}x{COLS} image over {NPROCS} ranks")
    print(f"exclusive-scan collectives per 2-D prefix: "
          f"{out['exscan_calls'] // 2} (aggregated over {COLS} columns)\n")

    rng = np.random.default_rng(1)
    print("random box-sum queries, SAT vs direct:")
    for _ in range(5):
        r0, r1 = sorted(rng.integers(0, ROWS, 2))
        c0, c1 = sorted(rng.integers(0, COLS, 2))
        direct = image[r0 : r1 + 1, c0 : c1 + 1].sum()
        via_sat = box_sum(sat, r0, c0, r1, c1)
        ok = "ok" if abs(direct - via_sat) < 1e-6 * max(1.0, abs(direct)) else "MISMATCH"
        print(f"  [{r0:4d}..{r1:4d}] x [{c0:4d}..{c1:4d}]  "
              f"direct={direct:14.3f}  sat={via_sat:14.3f}  {ok}")

    st = out["stats"]
    print(f"\nglobal running max (corner of 2-D max-prefix): "
          f"{out['run_max_last']:.4f}")
    print(f"column-max vector head: {np.round(out['col_max'][:5], 3)}")
    print(f"pixel stats: n={st.n}, mean={st.mean:.4f}, std={st.std:.4f}")
    print(f"\nsimulated time: {res.time * 1e3:.3f} ms, "
          f"{res.summary_trace.n_sends} messages")


if __name__ == "__main__":
    main()
