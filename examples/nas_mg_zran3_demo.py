#!/usr/bin/env python3
"""NAS MG ZRAN3: forty reductions vs one user-defined reduction (the
Figure 3 scenario).

Fills a 3-D grid with the NAS random stream, finds the 10 largest and 10
smallest values with their locations both ways, shows they agree exactly,
and contrasts the communication profiles.

Usage:  python examples/nas_mg_zran3_demo.py [CLASS] [NPROCS]
        (defaults: class S, 8 ranks)
"""

from __future__ import annotations

import sys

import numpy as np

from repro.nas import mg_class
from repro.nas.callcounts import census
from repro.nas.mg import zran3_mpi, zran3_rsmpi
from repro.runtime import cluster_2006, spmd_run


def main():
    cls_name = sys.argv[1] if len(sys.argv) > 1 else "S"
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    cls = mg_class(cls_name)
    print(
        f"NAS MG ZRAN3, class {cls.name}: {cls.nx}x{cls.ny}x{cls.nz} grid, "
        f"{nprocs} simulated ranks\n"
    )
    model = cluster_2006()

    res_mpi = spmd_run(
        lambda comm: zran3_mpi(comm, cls), nprocs, cost_model=model,
        timeout=600,
    )
    res_rsm = spmd_run(
        lambda comm: zran3_rsmpi(comm, cls), nprocs, cost_model=model,
        timeout=600,
    )

    a, b = res_mpi.returns[0], res_rsm.returns[0]
    assert np.array_equal(a.top_positions, b.top_positions)
    assert np.array_equal(a.bot_positions, b.bot_positions)

    print("ten largest (position: value rank):")
    for j, pos in enumerate(a.top_positions):
        print(f"  #{j + 1}: grid position {int(pos)}")
    print(f"ten smallest at positions {a.bot_positions.tolist()}\n")

    c_mpi, c_rsm = census(res_mpi.traces), census(res_rsm.traces)
    t_mpi = max(r.t_done - r.t_fill_end for r in res_mpi.returns)
    t_rsm = max(r.t_done - r.t_fill_end for r in res_rsm.returns)
    print(
        f"  F+MPI   : {c_mpi.n_reductions:3d} reductions, extrema phase "
        f"{t_mpi * 1e6:9.1f} us (simulated)"
    )
    print(
        f"  F+RSMPI : {c_rsm.n_reductions:3d} reduction,  extrema phase "
        f"{t_rsm * 1e6:9.1f} us (simulated)  "
        f"-> {t_mpi / t_rsm:.1f}x faster"
    )
    print(
        "\nIdentical answers; the single user-defined reduction replaces "
        "forty\nlatency-bound all-reduces plus twenty re-scans of the grid "
        "(paper §4.2)."
    )


if __name__ == "__main__":
    main()
