"""Backend speedup: process rank workers vs GIL-bound threads.

The thread backend is the determinism oracle, but every rank shares one
Python interpreter lock, so compute-heavy accumulate phases serialize
no matter how many cores the host has.  The process backend (ISSUE 9)
offloads each rank's accumulate fold to a long-lived forked worker —
payloads travel through shared-memory frames, zero-copy on the way in —
so folds genuinely overlap across cores.

This benchmark measures exactly the workload that motivates the
backend: 1M-element float64 blocks per rank folded by **GIL-holding**
operators (chunked Python-dispatch NumPy work — many small ufunc calls
whose interpreter overhead dominates, the regime where threads cannot
overlap).  Large single-call ``ufunc.reduce`` folds release the GIL and
would show no contrast; the chunked shape is what user-defined
operators with per-chunk Python logic actually look like.

Acceptance target (ISSUE 9): **>= 2.5x** wall-clock speedup at 8 ranks
on a machine with 8+ usable cores; CI floor **>= 1.5x** with 4+ cores.
The gate is conditional on core count: process workers cannot beat the
GIL when the OS gives them one core to share, so on 1-2 core containers
the run records the measured ratio plus the core count and marks the
gate skipped instead of asserting noise.  Results always land in
``results/BENCH_backend_speedup.json``; byte-identity of every job
result across backends is asserted unconditionally — the perf gate may
be skipped, the correctness gate never is.

Run standalone or as a pytest benchmark::

    PYTHONPATH=src:. python benchmarks/bench_backend_speedup.py --smoke
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.core.operator import ReduceScanOp
from repro.core.reduce import global_reduce
from repro.engine import Engine
from repro.obs.tracer import NULL_TRACER

#: Elements per rank (float64) for the acceptance run: 8 MB/rank, well
#: above the backend's 64 KiB offload threshold and comfortably inside
#: the 16 MiB shm request ring.
FULL_ELEMS = 1_000_000
SMOKE_ELEMS = 100_000

#: Per-chunk Python dispatch is the point: each chunk costs several
#: interpreter-level ufunc calls, which hold the GIL.
CHUNK = 512

#: Quiet-host acceptance (8+ cores) and the CI floor (4+ cores).
ACCEPTANCE_SPEEDUP = 2.5
CI_FLOOR_SPEEDUP = 1.5
#: Below this many usable cores the perf gate is recorded, not asserted.
MIN_GATE_CORES = 4


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


class ChunkedPolySumOp(ReduceScanOp):
    """Sum of a degree-6 polynomial over the block, folded chunk by
    chunk with Horner's rule — 7 interpreter-dispatched ufunc calls per
    512-element chunk, so the accumulate phase holds the GIL nearly the
    whole time.  Picklable by construction (module-level, plain state).
    """

    commutative = True

    _coeffs = (0.5, -1.25, 2.0, 0.75, -0.5, 1.5, -2.0)

    @property
    def name(self) -> str:
        return "bench_polysum"

    def ident(self) -> float:
        return 0.0

    def _poly_sum(self, chunk: np.ndarray) -> float:
        acc = np.full_like(chunk, self._coeffs[0])
        for c in self._coeffs[1:]:
            acc = acc * chunk + c
        return float(acc.sum())

    def accum(self, state: float, x) -> float:
        return state + self._poly_sum(np.atleast_1d(np.float64(x)))

    def combine(self, s1: float, s2: float) -> float:
        return s1 + s2

    def accum_block(self, state: float, values) -> float:
        arr = np.asarray(values, dtype=np.float64)
        total = state
        for lo in range(0, len(arr), CHUNK):
            total += self._poly_sum(arr[lo : lo + CHUNK])
        return total


class ChunkedHistogramOp(ReduceScanOp):
    """Fixed-bin histogram folded chunk by chunk with ``np.bincount``.

    The state is an ndarray, so the reply frame exercises the shm
    zero-copy path in both directions; the per-chunk scale/cast/bincount
    dispatch holds the GIL in thread mode.
    """

    commutative = True

    BINS = 64

    @property
    def name(self) -> str:
        return "bench_hist"

    def ident(self) -> np.ndarray:
        return np.zeros(self.BINS, dtype=np.int64)

    def accum(self, state: np.ndarray, x) -> np.ndarray:
        return self.accum_block(state, np.atleast_1d(np.float64(x)))

    def combine(self, s1: np.ndarray, s2: np.ndarray) -> np.ndarray:
        return s1 + s2

    def accum_block(self, state: np.ndarray, values) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        out = state.copy()
        for lo in range(0, len(arr), CHUNK):
            chunk = arr[lo : lo + CHUNK]
            idx = np.minimum(
                (chunk * self.BINS).astype(np.int64), self.BINS - 1
            )
            out += np.bincount(idx, minlength=self.BINS)
        return out


def polysum_job(comm, nelems: int):
    rng = np.random.default_rng(1000 + comm.rank)
    local = rng.random(nelems)
    return global_reduce(comm, ChunkedPolySumOp(), local)


def hist_job(comm, nelems: int):
    rng = np.random.default_rng(2000 + comm.rank)
    local = rng.random(nelems)
    return global_reduce(comm, ChunkedHistogramOp(), local)


OPS = (
    ("polysum", polysum_job),
    ("histogram", hist_job),
)


@contextmanager
def _no_gc():
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _run_backend(
    backend: str, nranks: int, job, nelems: int, n_jobs: int
) -> tuple[float, list, dict]:
    """Best wall-clock for ``n_jobs`` back-to-back jobs on one engine;
    returns (seconds, job results, engine stats)."""
    with Engine(nranks, backend=backend) as engine:
        def submit():
            return engine.submit(
                job, args=(nelems,), tracer=NULL_TRACER
            ).result()

        results = [submit()]  # warm: pool resident, caches hot
        with _no_gc():
            t0 = time.perf_counter()
            for _ in range(n_jobs):
                results.append(submit())
            elapsed = time.perf_counter() - t0
        stats = engine.stats()
    return elapsed, results, stats


def _states_identical(a, b) -> bool:
    a, b = np.asarray(a), np.asarray(b)
    return a.dtype == b.dtype and a.shape == b.shape and (
        a.tobytes() == b.tobytes()
    )


def measure(nranks: int, nelems: int, n_jobs: int, repeats: int) -> dict:
    """Thread vs process wall-clock at ``nranks`` for both operators."""
    per_op = {}
    for op_name, job in OPS:
        thread_s, thread_res, _ = _run_backend(
            "thread", nranks, job, nelems, n_jobs
        )
        proc_s, proc_res, proc_stats = _run_backend(
            "process", nranks, job, nelems, n_jobs
        )
        for _ in range(repeats - 1):
            s, _, _ = _run_backend("thread", nranks, job, nelems, n_jobs)
            thread_s = min(thread_s, s)
            s, _, proc_stats = _run_backend(
                "process", nranks, job, nelems, n_jobs
            )
            proc_s = min(proc_s, s)

        # Correctness gate (never skipped): every job's per-rank returns
        # and virtual clocks must be byte-identical across backends.
        for rt, rp in zip(thread_res, proc_res):
            assert rt.clocks == rp.clocks
            assert rt.time == rp.time
            for vt, vp in zip(rt.returns, rp.returns):
                assert _states_identical(vt, vp), (
                    f"{op_name}@{nranks}: backend results differ"
                )
        ipc = proc_stats["ipc"]
        # The process run must actually have offloaded (shm, not pipe):
        # a silent threshold regression would make the "speedup" a
        # thread-vs-thread comparison.
        assert ipc["frames"] > 0 and ipc["shm_hits"] > 0, ipc

        per_op[op_name] = {
            "thread_s": thread_s,
            "process_s": proc_s,
            "thread_jobs_per_s": n_jobs / thread_s,
            "process_jobs_per_s": n_jobs / proc_s,
            "speedup": thread_s / proc_s,
            "ipc": ipc,
        }
    return {
        "nranks": nranks,
        "elems_per_rank": nelems,
        "n_jobs": n_jobs,
        "ops": per_op,
        "best_speedup": max(v["speedup"] for v in per_op.values()),
    }


def run(
    sizes: tuple[int, ...], nelems: int, n_jobs: int, repeats: int
) -> dict:
    cores = usable_cores()
    series = [measure(n, nelems, n_jobs, repeats) for n in sizes]
    gate_active = cores >= MIN_GATE_CORES
    return {
        "benchmark": "backend_speedup",
        "usable_cores": cores,
        "cpu_count": os.cpu_count(),
        "acceptance_speedup": ACCEPTANCE_SPEEDUP,
        "ci_floor_speedup": CI_FLOOR_SPEEDUP,
        "gate": (
            f"active ({cores} usable cores)"
            if gate_active
            else f"skipped ({cores} usable core(s) < {MIN_GATE_CORES}: "
            "process workers share the GIL-free fold across cores the "
            "host does not have; ratio recorded for the record only)"
        ),
        "gate_active": gate_active,
        "series": series,
    }


def render(report: dict) -> str:
    lines = [
        f"backend speedup (process vs thread, "
        f"{report['series'][0]['elems_per_rank']} float64/rank, "
        f"{report['usable_cores']} usable cores)",
    ]
    for m in report["series"]:
        for op_name, v in m["ops"].items():
            lines.append(
                f"  {m['nranks']:>2} ranks  {op_name:<10} "
                f"thread {v['thread_s']:7.3f}s  "
                f"process {v['process_s']:7.3f}s  "
                f"speedup {v['speedup']:5.2f}x  "
                f"(ipc: {v['ipc']['frames']} frames, "
                f"{v['ipc']['shm_hits']} shm hits, "
                f"{v['ipc']['pickle_fallbacks']} pickle)"
            )
    lines.append(f"  perf gate: {report['gate']}")
    return "\n".join(lines)


def _assert_floor(report: dict, floor: float) -> None:
    for m in report["series"]:
        best = m["best_speedup"]
        assert best >= floor, (
            f"process backend only {best:.2f}x thread backend at "
            f"{m['nranks']} ranks (floor {floor}x, "
            f"{report['usable_cores']} cores): {m}"
        )


class TestBackendSpeedup:
    def test_process_backend_speedup(self, results_dir):
        from benchmarks.conftest import write_result

        report = run(sizes=(4,), nelems=SMOKE_ELEMS, n_jobs=2, repeats=2)
        write_result(results_dir, "backend_speedup.txt", render(report))
        (results_dir / "BENCH_backend_speedup.json").write_text(
            json.dumps(report, indent=2) + "\n"
        )
        if report["gate_active"]:
            _assert_floor(report, CI_FLOOR_SPEEDUP)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller payloads and grid (CI-friendly)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help=f"assert the full {ACCEPTANCE_SPEEDUP}x acceptance target "
        "(8+ core machines only)",
    )
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()

    if args.smoke:
        sizes, nelems = (4,), SMOKE_ELEMS
        n_jobs = args.jobs or 2
        repeats = args.repeats or 2
    else:
        sizes, nelems = (4, 8), FULL_ELEMS
        n_jobs = args.jobs or 3
        repeats = args.repeats or 3

    report = run(sizes, nelems, n_jobs, repeats)
    print(render(report))

    results = Path(__file__).resolve().parent.parent / "results"
    results.mkdir(exist_ok=True)
    (results / "BENCH_backend_speedup.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    (results / "backend_speedup.txt").write_text(render(report) + "\n")

    if not report["gate_active"]:
        print(
            f"GATE SKIPPED: {report['gate']} — results recorded, "
            "identity asserted, perf floor not applicable"
        )
        return 0
    floor = ACCEPTANCE_SPEEDUP if args.strict else CI_FLOOR_SPEEDUP
    try:
        _assert_floor(report, floor)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    best = max(m["best_speedup"] for m in report["series"])
    print(f"PASS: best speedup {best:.2f}x >= {floor}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
