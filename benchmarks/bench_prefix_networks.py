"""EX-PREFIX — the parallel-prefix design space (§1 / reference [11]).

Scans "are efficiently implemented by the parallel-prefix algorithm":
this bench maps the depth/size trade-off of the classic networks and
relates it to simulated scan latency — depth costs rounds of latency,
size costs combine work — plus a wall-time micro-benchmark of circuit
evaluation.
"""

from __future__ import annotations

import operator

import numpy as np

from benchmarks.conftest import write_result
from repro.prefix import ALL_NETWORKS

NS = [64, 256, 1024]

#: A LogGP-flavored circuit latency model: every level costs one message
#: latency; every op costs one combine.
LATENCY = 5.0e-6
COMBINE = 2.0e-7


def _metrics():
    rows = []
    for n in NS:
        for name, ctor in sorted(ALL_NETWORKS.items()):
            c = ctor(n)
            t_model = c.depth * LATENCY + c.size * COMBINE / max(
                1, n // 8
            )  # combines spread over n/8 lanes
            rows.append((n, name, c.depth, c.size, t_model))
    return rows


def test_prefix_design_space(benchmark, results_dir):
    rows = _metrics()
    lines = [
        "EX-PREFIX — prefix-network depth/size and modeled scan latency",
        f"{'n':>6s}  {'network':<18s}  {'depth':>5s}  {'size':>7s}  "
        f"{'t_model':>10s}",
    ]
    for n, name, depth, size, t in rows:
        lines.append(f"{n:>6d}  {name:<18s}  {depth:>5d}  {size:>7d}  {t:>10.3e}")
    write_result(results_dir, "prefix_networks.txt", "\n".join(lines))

    by = {(n, name): (d, s) for n, name, d, s, _ in rows}
    for n in NS:
        k = int(np.log2(n))
        assert by[(n, "kogge_stone")][0] == k
        assert by[(n, "serial")][0] == n - 1
        # Brent–Kung does the least work of the parallel networks
        sizes = {
            name: by[(n, name)][1]
            for name in ("kogge_stone", "sklansky", "brent_kung")
        }
        assert sizes["brent_kung"] < sizes["sklansky"] < sizes["kogge_stone"]

    # micro-benchmark: evaluate the work-efficient network on real data
    vals = list(range(1024))
    circuit = ALL_NETWORKS["brent_kung"](1024)
    result = benchmark(lambda: circuit.evaluate(vals, operator.add))
    assert result[-1] == sum(vals)
