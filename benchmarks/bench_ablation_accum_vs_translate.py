"""EX-ACC — accumulate-style vs translate-style operators (paper §3).

"The accumulate function often has a substantially faster implementation
than the combine function, and it should be optimized at the combine
function's expense. ...  Alternative functions that translate the input
values into state values rather than accumulate the input values into
state values would result in worse performance."

Measures real wall time of the two mink designs on identical data (this
ablation is about *local* compute, so wall time — not the virtual
clock — is the honest metric), plus the vectorized accumulate for scale.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.ops import MinKOp, TranslateMinKOp

K = 10
N = 20_000


def _data():
    return np.random.default_rng(3).integers(0, 1_000_000, N)


def _accumulate_style_loop(data):
    """Per-element accum (interpreted, but one insert per element)."""
    op = MinKOp(K, np.iinfo(np.int64).max)
    state = op.ident()
    for x in data:
        state = op.accum(state, x)
    return state


def _translate_style_loop(data):
    """Translate each element to a k-state, then combine k-states."""
    op = TranslateMinKOp(K, np.iinfo(np.int64).max)
    state = op.ident()
    for x in data:
        state = op.accum(state, x)
    return state


def _accumulate_style_block(data):
    op = MinKOp(K, np.iinfo(np.int64).max)
    return op.accum_block(op.ident(), data)


def test_translate_style_slower(benchmark, results_dir):
    data = _data()
    expected = np.sort(data)[:K][::-1]

    t0 = time.perf_counter()
    s_acc = _accumulate_style_loop(data)
    t_acc = time.perf_counter() - t0

    t0 = time.perf_counter()
    s_tr = _translate_style_loop(data)
    t_tr = time.perf_counter() - t0

    t0 = time.perf_counter()
    s_blk = _accumulate_style_block(data)
    t_blk = time.perf_counter() - t0

    # identical results
    assert np.array_equal(s_acc, expected)
    assert np.array_equal(s_tr, expected)
    assert np.array_equal(s_blk, expected)

    lines = [
        f"EX-ACC — mink(k={K}) over {N} values, single rank, wall time",
        f"  accumulate (per-element)   {t_acc:10.4f} s",
        f"  translate  (per-element)   {t_tr:10.4f} s"
        f"   ({t_tr / t_acc:.1f}x slower)",
        f"  accumulate (vectorized)    {t_blk:10.4f} s"
        f"   ({t_acc / max(t_blk, 1e-9):.0f}x faster than per-element)",
        "paper: translate-style 'would result in worse performance'",
    ]
    write_result(results_dir, "ablation_accum_vs_translate.txt",
                 "\n".join(lines))

    # the paper's claim, on this machine:
    assert t_tr > t_acc * 1.5
    assert t_blk < t_acc

    # and give pytest-benchmark a stable micro-measurement of the
    # accumulate-style fast path
    benchmark(lambda: _accumulate_style_block(data))
