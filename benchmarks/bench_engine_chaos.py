"""Engine chaos soak: self-healing under sustained fault injection.

The self-healing layer (``repro.engine.resilience``) exists so a
persistent engine survives rank deaths without operator intervention:
jobs submitted with a :class:`~repro.engine.resilience.RetryPolicy` are
re-run on fresh isolated worlds, dead pool ranks are quarantined and
probed back to life, and healthy tenants keep completing while the
chaos tenant churns.  This benchmark soaks exactly that contract:

* a **chaos tenant** submits N reduction jobs over the *non-resilient*
  allreduce path (so an injected fail-stop fails the attempt instead of
  being absorbed by the restartable driver), each under a
  :func:`repro.faults.transient_plan` — per-attempt fail-stop presence
  and lossy links drawn from a seeded RNG — with a RetryPolicy;
* a **healthy tenant** submits M fault-free jobs concurrently, which
  must all complete first-try while ranks die and revive around them.

Acceptance (ISSUE 8): **>= 99% of chaos jobs eventually succeed**, every
eventual success is **bit-identical** to the fault-free baseline run of
the same job, the healthy tenant never sees a failure, and the soak
drains without wedging.  All fault draws come from string-seeded RNGs,
so the outcome is a pure function of ``--seed`` — the CI smoke floor is
deterministic, not statistical.

Run as a pytest benchmark (writes ``results/BENCH_*.json`` via the
benchmarks conftest) or standalone::

    PYTHONPATH=src:. python benchmarks/bench_engine_chaos.py --smoke

``--smoke`` shrinks the job counts for CI and asserts the acceptance
floor; the full run (default) writes the acceptance record to
``results/BENCH_engine_chaos.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.engine import Engine, RetryPolicy
from repro.errors import SpmdError
from repro.faults import transient_plan
from repro.obs.telemetry import EngineTelemetry
from repro.ops import SumOp

POOL_RANKS = 8
JOB_RANKS = 4
PAYLOAD = 64  # float64 elements per rank

#: Acceptance floor: fraction of chaos jobs that must eventually succeed.
SUCCESS_FLOOR = 0.99

#: Per-job fail-stop probability per attempt.  With max_attempts=8 the
#: expected exhaustion rate is 0.6^8 ~ 1.7% per job, but the draws are
#: deterministic per seed — the recorded run is what the floor holds on.
FAILSTOP_RATE = 0.6
MAX_ATTEMPTS = 8


def chaos_job(comm):
    """A reduction over the raw allreduce path.  ``global_reduce`` would
    absorb fail-stops (the restartable driver shrinks the group and
    carries on), which is the wrong lane here: the engine's RetryPolicy
    is what's under test, so the attempt must *fail* when a rank dies
    mid-collective."""
    from repro.core.reduce import accumulate_local, wire_op

    op = SumOp()
    local = np.arange(
        comm.rank, PAYLOAD * comm.size, comm.size, dtype=np.float64
    )
    acc = accumulate_local(comm, op, local)
    return op.red_gen(comm.allreduce(acc, wire_op(op)))


def run_soak(
    n_chaos: int,
    n_healthy: int,
    seed: int = 0,
    failstop_rate: float = FAILSTOP_RATE,
    max_attempts: int = MAX_ATTEMPTS,
) -> dict:
    """One soak pass; returns the acceptance record as a dict."""
    telemetry = EngineTelemetry(POOL_RANKS)
    policy = RetryPolicy(
        max_attempts=max_attempts, backoff_base=0.002, seed=seed
    )
    with Engine(POOL_RANKS, telemetry=telemetry) as engine:
        # Fault-free baseline: the byte-identity reference every eventual
        # success is compared against.  Same engine, fresh JobWorld —
        # per-job isolation makes this equivalent to a standalone run.
        baseline = engine.submit(chaos_job, nprocs=JOB_RANKS).result()

        t0 = time.perf_counter()
        chaos_handles = [
            engine.submit(
                chaos_job,
                nprocs=JOB_RANKS,
                fault_plan=transient_plan(
                    seed * 100_003 + k, JOB_RANKS,
                    failstop_rate=failstop_rate,
                ),
                retry_policy=policy,
                timeout=60.0,
                label=f"chaos-{k}",
            )
            for k in range(n_chaos)
        ]
        healthy_handles = [
            engine.submit(
                chaos_job, nprocs=JOB_RANKS, label=f"healthy-{k}",
                timeout=60.0,
            )
            for k in range(n_healthy)
        ]

        succeeded = failed = retries = 0
        identical = True
        for h in chaos_handles:
            try:
                res = h.result(timeout=120.0)
                succeeded += 1
                if res.returns != baseline.returns:
                    identical = False
            except SpmdError:
                failed += 1
            retries += h.attempt - 1

        healthy_ok = 0
        for h in healthy_handles:
            res = h.result(timeout=120.0)
            if res.returns == baseline.returns and h.attempt == 1:
                healthy_ok += 1
        wall = time.perf_counter() - t0

        engine.drain()
        stats = engine.stats()
    latency = telemetry.latency_summary()

    e2e = latency["e2e_s"]
    return {
        "nprocs": POOL_RANKS,
        "job_ranks": JOB_RANKS,
        "payload_elems": PAYLOAD,
        "seed": seed,
        "failstop_rate": failstop_rate,
        "max_attempts": max_attempts,
        "chaos_jobs": n_chaos,
        "healthy_jobs": n_healthy,
        "wall_seconds": wall,
        "eventual_success": succeeded,
        "exhausted": failed,
        "success_rate": succeeded / n_chaos if n_chaos else 1.0,
        "bit_identical": identical,
        "healthy_first_try_ok": healthy_ok,
        "retries": retries,
        "engine_retried": stats["retried"],
        "quarantines": stats["quarantines"],
        "revivals": stats["revivals"],
        "reaped": stats["reaped"],
        "shrunk": stats["shrunk"],
        "leaked_messages_drained": stats["leaked_messages_drained"],
        "revival_swept_messages": stats["revival_swept_messages"],
        "quarantined_at_end": stats["quarantined_ranks"],
        "status_at_end": stats["status"],
        "e2e_p50_s": e2e["p50"],
        "e2e_p99_s": e2e["p99"],
    }


def check(m: dict) -> list[str]:
    """The acceptance asserts, as a list of failure strings (empty = pass)."""
    problems = []
    if m["success_rate"] < SUCCESS_FLOOR:
        problems.append(
            f"eventual success {m['success_rate']:.3f} below the "
            f"{SUCCESS_FLOOR:.2f} floor ({m['exhausted']} exhausted)"
        )
    if not m["bit_identical"]:
        problems.append(
            "an eventual success differed from the fault-free baseline"
        )
    if m["healthy_first_try_ok"] != m["healthy_jobs"]:
        problems.append(
            f"only {m['healthy_first_try_ok']}/{m['healthy_jobs']} healthy "
            "jobs completed first-try with the right answer"
        )
    if m["retries"] == 0:
        problems.append("no retries happened — the chaos plan injected nothing")
    if m["quarantines"] == 0:
        problems.append("no quarantines — fail-stops never hit the pool")
    if m["revivals"] < m["quarantines"] and m["quarantined_at_end"]:
        # Some quarantined ranks may still be awaiting probe at shutdown;
        # what must never happen is a rank quarantined and never probed
        # while the engine keeps running (covered by revivals > 0).
        if m["revivals"] == 0:
            problems.append("quarantined ranks were never revived")
    return problems


def render(m: dict) -> str:
    def _ms(v):
        return "-" if v is None else f"{v * 1e3:.1f}ms"

    return "\n".join([
        f"engine chaos soak ({m['chaos_jobs']} chaos + {m['healthy_jobs']} "
        f"healthy jobs, pool {m['nprocs']}, {m['job_ranks']} ranks/job, "
        f"seed {m['seed']})",
        f"  fault plan        : fail-stop rate {m['failstop_rate']:.2f}"
        f"/attempt, lossy links, max {m['max_attempts']} attempts",
        f"  eventual success  : {m['eventual_success']}/{m['chaos_jobs']} "
        f"({100.0 * m['success_rate']:.1f}%), {m['exhausted']} exhausted",
        f"  bit-identical     : {m['bit_identical']}",
        f"  healthy tenant    : {m['healthy_first_try_ok']}/"
        f"{m['healthy_jobs']} first-try OK",
        f"  self-heal         : {m['retries']} retries, "
        f"{m['quarantines']} quarantines, {m['revivals']} revivals, "
        f"{m['reaped']} reaped, {m['shrunk']} shrunk",
        f"  leaked msgs swept : {m['leaked_messages_drained']} at finalize, "
        f"{m['revival_swept_messages']} at revival",
        f"  e2e latency       : p50 {_ms(m['e2e_p50_s'])}, "
        f"p99 {_ms(m['e2e_p99_s'])}",
        f"  wall              : {m['wall_seconds']:.2f}s, end status "
        f"{m['status_at_end']} (quarantined at end: "
        f"{m['quarantined_at_end']})",
    ])


class TestEngineChaos:
    def test_chaos_soak(self, results_dir):
        from benchmarks.conftest import write_result

        m = run_soak(n_chaos=24, n_healthy=16)
        write_result(results_dir, "engine_chaos.txt", render(m))
        (results_dir / "BENCH_engine_chaos.json").write_text(
            json.dumps(m, indent=2) + "\n"
        )
        problems = check(m)
        assert not problems, f"{problems}: {m}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer jobs (CI-friendly) and assert the acceptance floor",
    )
    parser.add_argument("--chaos-jobs", type=int, default=None)
    parser.add_argument("--healthy-jobs", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="acceptance record path "
        "(default: results/BENCH_engine_chaos.json)",
    )
    args = parser.parse_args()

    n_chaos = args.chaos_jobs if args.chaos_jobs is not None else (
        24 if args.smoke else 64
    )
    n_healthy = args.healthy_jobs if args.healthy_jobs is not None else (
        16 if args.smoke else 32
    )
    m = run_soak(n_chaos, n_healthy, seed=args.seed)
    print(render(m))

    results = Path(__file__).resolve().parent.parent / "results"
    results.mkdir(exist_ok=True)
    out = Path(args.out) if args.out else results / "BENCH_engine_chaos.json"
    out.write_text(json.dumps(m, indent=2) + "\n")
    (results / "engine_chaos.txt").write_text(render(m) + "\n")

    problems = check(m)
    for p in problems:
        print(f"FAIL: {p}")
    if not problems:
        print(
            f"PASS: {100.0 * m['success_rate']:.1f}% eventual success "
            f"(floor {100.0 * SUCCESS_FLOOR:.0f}%), bit-identical, "
            "healthy tenant clean"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
