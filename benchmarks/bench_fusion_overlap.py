"""EX-FUSION — bucketed fusion and nonblocking overlap of concurrent
reductions (extension).

The paper's aggregation argument (§2.1) batches many values into one
reduction *of one operator*.  Bucketed fusion generalizes it across
operators and call sites: K reductions issued together share combine
waves, and the nonblocking request layer overlaps whatever cannot fuse.
This benchmark measures both levers on K=8 concurrent small reductions
— the shape of a solver's per-iteration diagnostics block — plus the
chunked accumulate/combine pipeline on one large reduction.

Acceptance floor (CI perf smoke): at 16 ranks, fused must cut the
virtual makespan by >= 25% and the message count by >= 2x versus
sequential blocking calls.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import PROC_GRID, write_result
from repro.analysis import Series, format_series_csv
from repro.core.fusion import global_reduce_many
from repro.core.reduce import global_reduce
from repro.mpi import waitall
from repro.ops import MaxOp, MinOp, SumOp
from repro.runtime import spmd_run

K = 8  # concurrent reductions per round
N_LOCAL = 64  # elements per rank per reduction (latency-bound regime)
ROUNDS = 4


def _ops():
    return [SumOp(), MaxOp(), MinOp(), SumOp(), MaxOp(), MinOp(),
            SumOp(), MaxOp()][:K]


def _data(rank: int):
    rng = np.random.default_rng(31337 + rank)
    return [rng.standard_normal(N_LOCAL) for _ in range(K)]


def _sequential(comm):
    data = _data(comm.rank)
    out = []
    for _ in range(ROUNDS):
        out = [
            global_reduce(comm, op, d) for op, d in zip(_ops(), data)
        ]
    return out


def _fused(comm):
    data = _data(comm.rank)
    out = []
    for _ in range(ROUNDS):
        out = global_reduce_many(comm, list(zip(_ops(), data)))
    return out


def _nonblocking(comm):
    from repro.core.reduce import accumulate_local, wire_op

    data = _data(comm.rank)
    out = []
    for _ in range(ROUNDS):
        ops = _ops()
        states = [
            accumulate_local(comm, op, d) for op, d in zip(ops, data)
        ]
        reqs = [
            comm.iallreduce(s, wire_op(op)) for s, op in zip(states, ops)
        ]
        out = [
            op.red_gen(total) for op, total in zip(ops, waitall(reqs))
        ]
    return out


def _run(fn, p, cost_model):
    return spmd_run(fn, p, cost_model=cost_model, timeout=600)


def test_fusion_k8_makespan_and_messages(benchmark, cost_model, results_dir):
    """The headline numbers: K=8 concurrent reductions at 16 ranks."""

    def measure():
        seq = _run(_sequential, 16, cost_model)
        fused = _run(_fused, 16, cost_model)
        nonblk = _run(_nonblocking, 16, cost_model)
        return seq, fused, nonblk

    seq, fused, nonblk = benchmark.pedantic(measure, rounds=1, iterations=1)

    # all three paths produce identical results
    for a, b, c in zip(seq.returns, fused.returns, nonblk.returns):
        for x, y, z in zip(a, b, c):
            assert np.array_equal(x, y) and np.array_equal(x, z)

    s_sends = seq.summary_trace.n_sends
    f_sends = fused.summary_trace.n_sends
    n_sends = nonblk.summary_trace.n_sends
    lines = [
        f"EX-FUSION — K={K} concurrent reductions, 16 ranks, "
        f"{ROUNDS} rounds, n_local={N_LOCAL}",
        f"{'variant':>22s}  {'makespan':>12s}  {'sends':>8s}  {'vs seq':>8s}",
        f"{'sequential blocking':>22s}  {seq.time:>12.3e}  {s_sends:>8d}  "
        f"{'1.00x':>8s}",
        f"{'nonblocking overlap':>22s}  {nonblk.time:>12.3e}  {n_sends:>8d}  "
        f"{seq.time / nonblk.time:>7.2f}x",
        f"{'bucketed fusion':>22s}  {fused.time:>12.3e}  {f_sends:>8d}  "
        f"{seq.time / fused.time:>7.2f}x",
    ]
    write_result(results_dir, "fusion_overlap.txt", "\n".join(lines))

    # acceptance floor: >=25% makespan cut, >=2x fewer messages
    assert fused.time <= 0.75 * seq.time
    assert f_sends * 2 <= s_sends
    # nonblocking-without-fusion also beats sequential (overlap alone)
    assert nonblk.time < seq.time


def test_fusion_scaling_sweep(benchmark, cost_model, results_dir):
    """Makespan of the K=8 block across the processor grid."""

    def sweep():
        seq = Series("sequential blocking")
        fused = Series("bucketed fusion")
        nonblk = Series("nonblocking overlap")
        for p in PROC_GRID:
            seq.add(p, _run(_sequential, p, cost_model).time)
            fused.add(p, _run(_fused, p, cost_model).time)
            nonblk.add(p, _run(_nonblocking, p, cost_model).time)
        return seq, fused, nonblk

    seq, fused, nonblk = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"EX-FUSION — K={K} reductions x {ROUNDS} rounds, varying p",
        f"{'p':>4s}  {'sequential':>12s}  {'nonblocking':>12s}  "
        f"{'fused':>12s}  {'fuse gain':>9s}",
    ]
    for i, p in enumerate(seq.procs):
        gain = (
            f"{seq.times[i] / fused.times[i]:>8.2f}x"
            if fused.times[i] > 0 else f"{'-':>9s}"  # p=1: no communication
        )
        lines.append(
            f"{p:>4d}  {seq.times[i]:>12.3e}  {nonblk.times[i]:>12.3e}  "
            f"{fused.times[i]:>12.3e}  {gain}"
        )
    write_result(results_dir, "fusion_scaling.txt", "\n".join(lines))
    (results_dir / "fusion_scaling.csv").write_text(
        format_series_csv([seq, nonblk, fused]) + "\n"
    )
    # fusion's advantage grows with p (log-depth latency dominates)
    for i, p in enumerate(seq.procs):
        if p >= 4:
            assert fused.times[i] < seq.times[i]


def test_chunked_overlap_pipeline(benchmark, cost_model, results_dir):
    """One large elementwise reduction: the accumulate/combine pipeline
    (``overlap="auto"``) versus the phase-sequential path."""
    n_rows, n_cols = 48, 1 << 15  # 256 KiB state per rank

    def body(overlap):
        def prog(comm):
            rng = np.random.default_rng(9000 + comm.rank)
            vals = rng.standard_normal((n_rows, n_cols))
            return global_reduce(
                comm, SumOp(), vals,
                accum_rate="np_check", overlap=overlap,
            )
        return prog

    def sweep():
        off = Series("phase-sequential")
        auto = Series("chunked overlap")
        for p in [2, 4, 8, 16]:
            r_off = spmd_run(body("off"), p, cost_model=cost_model,
                             timeout=600)
            r_auto = spmd_run(body("auto"), p, cost_model=cost_model,
                              timeout=600)
            for a, b in zip(r_off.returns, r_auto.returns):
                assert np.array_equal(a, b)
            off.add(p, r_off.time)
            auto.add(p, r_auto.time)
        return off, auto

    off, auto = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"EX-FUSION — chunked accumulate/combine overlap, "
        f"{n_rows}x{n_cols} float64 per rank",
        f"{'p':>4s}  {'sequential':>12s}  {'overlapped':>12s}  {'gain':>6s}",
    ]
    for i, p in enumerate(off.procs):
        lines.append(
            f"{p:>4d}  {off.times[i]:>12.3e}  {auto.times[i]:>12.3e}  "
            f"{off.times[i] / auto.times[i]:>5.2f}x"
        )
    write_result(results_dir, "chunked_overlap.txt", "\n".join(lines))
    (results_dir / "chunked_overlap.csv").write_text(
        format_series_csv([off, auto]) + "\n"
    )
    for t_off, t_auto in zip(off.times, auto.times):
        assert t_auto < t_off
