"""EX-COMM — the paper's §4.1 commutative-flag experiment.

"In an experiment to see whether any gains would be made if the
user-defined reduction were commutative, we flagged the reduction as
commutative.  This resulted in no speedup, though the program did fail
to verify that the array was sorted (as expected)."

We flag ``sorted`` commutative, run the IS verification across processor
counts, and measure (a) the virtual time relative to the honest
non-commutative reduction and (b) whether verification still succeeds.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_result
from repro.nas import is_class
from repro.nas.intsort import (
    generate_keys,
    verify_rsmpi,
    verify_rsmpi_commutative,
)
from repro.runtime import spmd_run

PROCS = [2, 4, 8, 16, 32]
CLS = is_class("A")


def _run(cost_model):
    whole = np.sort(generate_keys(CLS))
    rows = []
    for p in PROCS:
        bounds = [r * len(whole) // p for r in range(p + 1)]
        blocks = [whole[bounds[r] : bounds[r + 1]] for r in range(p)]

        honest = spmd_run(
            lambda comm: verify_rsmpi(
                comm, blocks[comm.rank], check_rate="is_check_scalar"
            ),
            p,
            cost_model=cost_model,
        )
        flagged = spmd_run(
            lambda comm: verify_rsmpi_commutative(
                comm, blocks[comm.rank], check_rate="is_check_scalar"
            ),
            p,
            cost_model=cost_model,
        )
        rows.append(
            (
                p,
                honest.time,
                flagged.time,
                all(honest.returns),
                all(flagged.returns),
            )
        )
    return rows


def test_commutative_flag_no_speedup_and_misverify(
    benchmark, cost_model, results_dir
):
    rows = benchmark.pedantic(_run, args=(cost_model,), rounds=1, iterations=1)
    lines = [
        "EX-COMM — sorted reduction flagged commutative (class A)",
        f"{'p':>4s}  {'t_honest':>12s}  {'t_flagged':>12s}  "
        f"{'speedup':>8s}  {'honest_ok':>9s}  {'flagged_ok':>10s}",
    ]
    for p, th, tf, okh, okf in rows:
        lines.append(
            f"{p:>4d}  {th:>12.3e}  {tf:>12.3e}  {th / tf:>8.2f}  "
            f"{str(okh):>9s}  {str(okf):>10s}"
        )
    lines.append(
        "paper: 'no speedup, though the program did fail to verify'"
    )
    write_result(results_dir, "ablation_commutative.txt", "\n".join(lines))

    for p, th, tf, okh, okf in rows:
        assert okh, f"honest verification must pass (p={p})"
        # "no speedup": the flag buys < 20% even where it is licensed to
        # reorder (and the honest run must not be slower than ~that).
        assert tf > th * 0.8, (p, th, tf)
        if p > 5:  # deep enough combining tree to actually reorder
            assert not okf, (
                f"p={p}: flagged-commutative verification unexpectedly "
                "passed — the reordered combine should break it"
            )
