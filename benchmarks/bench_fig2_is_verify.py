"""FIG2 — NAS IS verification phase: C+MPI vs scalar-optimized C+MPI vs
C+RSMPI (paper Figure 2).

For classes A, B and C, sweeps the processor count and reports the
speedup of the verification phase for the three variants:

* ``MPI (2-ref)`` — the provided NAS idiom: boundary exchange + local
  check making two memory references per element + sum all-reduce;
* ``MPI (scalar)`` — same message structure, the scalar-optimized local
  check (one reference per element);
* ``RSMPI`` — the one-line non-commutative ``sorted`` reduction.

Paper-claimed shape (§4.1): RSMPI beats the original MPI "based on a
scalar improvement"; the scalar-optimized MPI "closed the performance
gap entirely"; the parallel structures are otherwise comparable.  The
assertions at the bottom pin exactly that shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import PROC_GRID, write_result
from repro.analysis import Series, format_series_csv
from repro.nas import is_class
from repro.nas.intsort import generate_keys, verify_mpi, verify_rsmpi
from repro.runtime import spmd_run

CLASSES = ["A", "B", "C"]


_WHOLE_CACHE: dict[str, np.ndarray] = {}


def _sorted_blocks(cls, p):
    whole = _WHOLE_CACHE.get(cls.name)
    if whole is None:
        whole = _WHOLE_CACHE[cls.name] = np.sort(generate_keys(cls))
    bounds = [r * len(whole) // p for r in range(p + 1)]
    return [whole[bounds[r] : bounds[r + 1]] for r in range(p)]


def _verify_time(cls, p, variant, cost_model) -> float:
    blocks = _sorted_blocks(cls, p)

    def prog(comm):
        local = blocks[comm.rank]
        if variant == "mpi_2ref":
            ok = verify_mpi(comm, local, check_rate="is_check_tworef")
        elif variant == "mpi_scalar":
            ok = verify_mpi(comm, local, check_rate="is_check_scalar")
        else:
            ok = verify_rsmpi(comm, local, check_rate="is_check_scalar")
        assert ok
        return ok

    return spmd_run(prog, p, cost_model=cost_model).time


def _sweep_class(cls_name, cost_model):
    cls = is_class(cls_name)
    series = {
        "MPI (2-ref)": Series("MPI (2-ref)"),
        "MPI (scalar)": Series("MPI (scalar)"),
        "RSMPI": Series("RSMPI"),
    }
    key = {"MPI (2-ref)": "mpi_2ref", "MPI (scalar)": "mpi_scalar",
           "RSMPI": "rsmpi"}
    for p in PROC_GRID:
        for label, s in series.items():
            s.add(p, _verify_time(cls, p, key[label], cost_model))
    return series


@pytest.mark.parametrize("cls_name", CLASSES)
def test_fig2_class(benchmark, cls_name, cost_model, results_dir):
    series = benchmark.pedantic(
        _sweep_class, args=(cls_name, cost_model), rounds=1, iterations=1
    )
    mpi2, mpis, rsm = (
        series["MPI (2-ref)"], series["MPI (scalar)"], series["RSMPI"],
    )
    base = mpi2.t1  # common base: the original NAS code on 1 processor
    lines = [
        f"Figure 2 — class {cls_name}: verification-phase times and "
        f"speedups (base = MPI 2-ref at p=1)",
        f"{'p':>4s}  {'MPI(2-ref)':>12s}  {'MPI(scalar)':>12s}  "
        f"{'RSMPI':>12s}  {'S_2ref':>7s}  {'S_scal':>7s}  {'S_rsmpi':>7s}",
    ]
    for i, p in enumerate(mpi2.procs):
        lines.append(
            f"{p:>4d}  {mpi2.times[i]:>12.3e}  {mpis.times[i]:>12.3e}  "
            f"{rsm.times[i]:>12.3e}  {base / mpi2.times[i]:>7.2f}  "
            f"{base / mpis.times[i]:>7.2f}  {base / rsm.times[i]:>7.2f}"
        )
    write_result(results_dir, f"fig2_class{cls_name}.txt", "\n".join(lines))
    (results_dir / f"fig2_class{cls_name}.csv").write_text(
        format_series_csv([mpi2, mpis, rsm]) + "\n"
    )

    # ---- paper-shape assertions -------------------------------------------
    # (1) RSMPI never slower than the original 2-ref MPI.
    for t_r, t_m in zip(rsm.times, mpi2.times):
        assert t_r <= t_m * 1.05
    # (2) the scalar optimization closes the gap ("closed the performance
    #     gap entirely"): RSMPI and scalar-MPI within 15% wherever local
    #     compute dominates (small p).  At large p the message structures
    #     differ (RSMPI has no neighbor exchange), so only require RSMPI
    #     to stay at least as good.
    for p, t_r, t_m in zip(rsm.procs, rsm.times, mpis.times):
        if p <= 8:
            assert abs(t_r - t_m) / max(t_r, t_m) < 0.15
        else:
            assert t_r <= t_m * 1.10
    # (3) at p=1 the 2-ref variant is measurably slower (the scalar
    #     improvement is real on this machine).
    assert mpi2.t1 > rsm.t1 * 1.1
    # (4) everything still parallelizes: time at the largest p beats p=1.
    assert rsm.times[-1] < rsm.t1
    assert mpi2.times[-1] < mpi2.t1
