"""Shared benchmark infrastructure.

Every figure benchmark uses one session-scoped cost model whose
communication parameters follow the paper's cluster era
(:func:`repro.runtime.cluster_2006`) and whose per-element compute rates
are **calibrated on this machine** from the real kernels (the honest
part of the substitution documented in DESIGN.md §2/§5).

Results (tables + CSV) are written under ``results/`` so EXPERIMENTS.md
can cite them.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import numpy as np
import pytest

from repro.obs import Tracer, active_tracer, phase_summary, profiling

from repro.nas.intsort.kernels import (
    sorted_check_scalar,
    sorted_check_tworef,
)
from repro.ops.extrema import ExtremaKLocOp
from repro.runtime import CostModel, calibrate_rate, cluster_2006

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Processor counts for the figure sweeps (the paper's cluster had up to
#: 92 nodes; powers of two up to 64 cover the same regime).
PROC_GRID = [1, 2, 4, 8, 16, 32, 64]


def _calibrated_model() -> CostModel:
    """cluster_2006 communication + rates measured from our kernels."""
    rng = np.random.default_rng(7)
    sample_list = np.sort(rng.integers(0, 10_000, 20_000)).tolist()
    sample_arr = np.sort(rng.random(200_000))
    pairs = np.column_stack([rng.random(200_000), np.arange(200_000.0)])

    rate_tworef = calibrate_rate(
        lambda n: sorted_check_tworef(sample_list[:n]), 20_000
    )
    rate_scalar = calibrate_rate(
        lambda n: sorted_check_scalar(sample_list[:n]), 20_000
    )
    rate_np_check = calibrate_rate(
        lambda n: bool(np.all(sample_arr[1:n] >= sample_arr[: n - 1])),
        200_000,
    )
    op = ExtremaKLocOp(10)
    rate_extrema = calibrate_rate(
        lambda n: op.accum_block(op.ident(), pairs[:n]), 200_000
    )
    rate_masked_scan = calibrate_rate(
        lambda n: int(
            np.argmax(np.where(np.zeros(n, dtype=bool), -np.inf, sample_arr[:n]))
        ),
        200_000,
    )
    return cluster_2006().with_rates(
        is_check_tworef=rate_tworef,
        is_check_scalar=rate_scalar,
        np_check=rate_np_check,
        mg_accum=rate_extrema,
        mg_scan=rate_masked_scan,
    )


@pytest.fixture(scope="session")
def cost_model() -> CostModel:
    return _calibrated_model()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Print a result block and persist it under results/."""
    print(f"\n{text}\n")
    (results_dir / name).write_text(text + "\n")


def _bench_json_name(nodeid: str) -> str:
    """``benchmarks/bench_x.py::TestY::test_z[8]`` -> ``BENCH_bench_x.test_z_8``."""
    stem = nodeid.split("::", 1)
    file_part = Path(stem[0]).stem
    test_part = re.sub(r"[^A-Za-z0-9_.-]+", "_", stem[1] if len(stem) > 1 else "")
    return f"BENCH_{file_part}.{test_part}".rstrip("_.")


@pytest.fixture(autouse=True)
def phase_metrics(request, results_dir):
    """Trace every benchmark's simulated runs and persist the per-phase
    breakdown as ``results/BENCH_<file>.<test>.json``.

    Reuses an already-installed profile (``python -m repro profile
    benchmarks/...``) when present; otherwise installs a fresh tracer
    for the duration of the test.  Tests that never enter ``spmd_run``
    produce no file.
    """
    shared = active_tracer()
    tracer = shared if shared is not None else Tracer()
    start = len(tracer.runs)
    if shared is None:
        with profiling(tracer):
            yield
    else:
        yield
    runs = tracer.runs[start:]
    if not runs:
        return
    summary = phase_summary(runs)
    if shared is None:
        summary["metrics"] = tracer.metrics.snapshot()
    out = results_dir / f"{_bench_json_name(request.node.nodeid)}.json"
    out.write_text(json.dumps(summary, indent=2, allow_nan=False) + "\n")
