"""FIG3 — NAS MG ZRAN3: 40 reductions (F+MPI) vs 1 user-defined
reduction (F+RSMPI) — paper Figure 3.

For classes A, B and C, sweeps the processor count and reports the
speedup of the ZRAN3 extrema-finding phase (fill excluded, exactly as
the paper times the subroutine's reduction overhead) for:

* ``MPI (40 red.)`` — per extremum, one MAX/MIN all-reduce plus one
  MINLOC owner-resolution all-reduce, re-scanning the masked local
  block each iteration (the F+MPI original);
* ``RSMPI (1 red.)`` — a single ``extrema`` operator: one accumulate
  pass, one combine tree.

Paper-claimed shape (§4.2): "The overhead of not using the single
user-defined reduction is seen more sharply in smaller problem classes
since the reduction accounts for more of the time.  In larger class
sizes ... the efficiency is more comparable."  The assertions pin that:
RSMPI always wins, and its advantage (time ratio) is larger for class A
than for class C at every processor count above 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import PROC_GRID, write_result
from repro.analysis import Series, format_series_csv
from repro.nas import mg_class
from repro.nas.mg import zran3_mpi, zran3_rsmpi
from repro.runtime import spmd_run

CLASSES = ["A", "B", "C"]


def _phase_time(cls, p, variant, cost_model) -> float:
    """Virtual time of the extrema phase (t_done - t_fill_end, max over
    ranks)."""
    fn = zran3_mpi if variant == "mpi" else zran3_rsmpi

    def prog(comm):
        r = fn(comm, cls, scan_rate="mg_scan" if variant == "mpi" else "mg_accum")
        return r.t_done - r.t_fill_end

    res = spmd_run(prog, p, cost_model=cost_model, timeout=600)
    return max(res.returns)


def _sweep_class(cls_name, cost_model):
    cls = mg_class(cls_name)
    mpi_s = Series("MPI (40 red.)")
    rsm_s = Series("RSMPI (1 red.)")
    for p in PROC_GRID:
        mpi_s.add(p, _phase_time(cls, p, "mpi", cost_model))
        rsm_s.add(p, _phase_time(cls, p, "rsmpi", cost_model))
    return mpi_s, rsm_s


_RATIOS: dict[str, list[float]] = {}


@pytest.mark.parametrize("cls_name", CLASSES)
def test_fig3_class(benchmark, cls_name, cost_model, results_dir):
    mpi_s, rsm_s = benchmark.pedantic(
        _sweep_class, args=(cls_name, cost_model), rounds=1, iterations=1
    )
    base = mpi_s.t1
    lines = [
        f"Figure 3 — class {cls_name}: ZRAN3 extrema-phase times and "
        f"speedups (base = MPI at p=1)",
        f"{'p':>4s}  {'MPI(40red)':>12s}  {'RSMPI(1red)':>12s}  "
        f"{'S_mpi':>7s}  {'S_rsmpi':>8s}  {'ratio':>6s}",
    ]
    ratios = []
    for i, p in enumerate(mpi_s.procs):
        ratio = mpi_s.times[i] / rsm_s.times[i]
        ratios.append(ratio)
        lines.append(
            f"{p:>4d}  {mpi_s.times[i]:>12.3e}  {rsm_s.times[i]:>12.3e}  "
            f"{base / mpi_s.times[i]:>7.2f}  {base / rsm_s.times[i]:>8.2f}  "
            f"{ratio:>6.2f}"
        )
    _RATIOS[cls_name] = ratios
    write_result(results_dir, f"fig3_class{cls_name}.txt", "\n".join(lines))
    (results_dir / f"fig3_class{cls_name}.csv").write_text(
        format_series_csv([mpi_s, rsm_s]) + "\n"
    )

    # ---- paper-shape assertions -------------------------------------------
    # (1) the single user-defined reduction never loses.
    for t_m, t_r in zip(mpi_s.times, rsm_s.times):
        assert t_r <= t_m
    # (2) the win grows with p for the MPI variant's latency term:
    #     at the largest p the ratio must be clearly above 1.
    assert ratios[-1] > 1.5
    # (3) cross-class shape: checked by test_fig3_cross_class_shape.


def test_fig3_cross_class_shape(cost_model, results_dir, benchmark):
    """"Seen more sharply in smaller problem classes": the MPI/RSMPI time
    ratio at every p > 1 must be at least as large for class A as for
    class C."""

    def collect():
        for cls_name in ("A", "C"):
            if cls_name not in _RATIOS:
                mpi_s, rsm_s = _sweep_class(cls_name, cost_model)
                _RATIOS[cls_name] = [
                    m / r for m, r in zip(mpi_s.times, rsm_s.times)
                ]
        return _RATIOS["A"], _RATIOS["C"]

    ratios_a, ratios_c = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = ["Figure 3 cross-class check: MPI/RSMPI time ratio",
             f"{'p':>4s}  {'class A':>8s}  {'class C':>8s}"]
    for i, p in enumerate(PROC_GRID):
        lines.append(f"{p:>4d}  {ratios_a[i]:>8.2f}  {ratios_c[i]:>8.2f}")
    write_result(results_dir, "fig3_cross_class.txt", "\n".join(lines))
    for i, p in enumerate(PROC_GRID):
        if p == 1:
            continue
        assert ratios_a[i] >= ratios_c[i] * 0.95, (
            f"p={p}: class-A ratio {ratios_a[i]:.2f} < class-C "
            f"ratio {ratios_c[i]:.2f}"
        )
