"""EX-FANOUT — combining-tree fan-out for commutative operators (§1).

"If the branching factor on the log tree is greater than two (common for
many parallel machines), then reductions of commutative operators can
immediately combine whichever partial results are available whereas
reductions on non-commutative operators must stick to a predefined
order."

Sweeps the fan-out of the commutative combine tree at several processor
counts and payload sizes, reporting simulated reduction time.  Wider
trees trade tree depth (fewer rounds of latency) against serialization
at the parent (more receives per node); with per-combine cost attached,
the sweet spot moves — which is the ablation's point.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_result
from repro import mpi
from repro.runtime import spmd_run

PROCS = [16, 64]
FANOUTS = [2, 4, 8, 16]
PAYLOAD = 64  # doubles


def _reduce_time(p, fanout, cost_model, combine_seconds=0.0):
    def prog(comm):
        comm.reduce(
            np.full(PAYLOAD, float(comm.rank)),
            mpi.SUM,
            root=0,
            fanout=fanout,
            combine_seconds=combine_seconds,
        )

    return spmd_run(prog, p, cost_model=cost_model).time


def _sweep(cost_model):
    rows = []
    for p in PROCS:
        for fanout in FANOUTS:
            cheap = _reduce_time(p, fanout, cost_model)
            costly = _reduce_time(p, fanout, cost_model,
                                  combine_seconds=2e-5)
            rows.append((p, fanout, cheap, costly))
    return rows


def test_fanout_tradeoff(benchmark, cost_model, results_dir):
    rows = benchmark.pedantic(_sweep, args=(cost_model,), rounds=1,
                              iterations=1)
    lines = [
        "EX-FANOUT — commutative SUM reduce, k-ary combine-as-available "
        "tree",
        f"{'p':>4s}  {'fanout':>6s}  {'t (cheap combine)':>18s}  "
        f"{'t (costly combine)':>18s}",
    ]
    for p, fanout, cheap, costly in rows:
        lines.append(
            f"{p:>4d}  {fanout:>6d}  {cheap:>18.3e}  {costly:>18.3e}"
        )
    write_result(results_dir, "ablation_tree_fanout.txt", "\n".join(lines))

    by = {(p, f): (cheap, costly) for p, f, cheap, costly in rows}
    # With cheap combines, a wider tree (fewer latency rounds) helps at
    # p=64: fanout 8 beats binary.
    assert by[(64, 8)][0] < by[(64, 2)][0]
    # With costly combines, extreme fan-out serializes the root's
    # combine work: fanout 16 must be worse than fanout 2 at p=16
    # (15 serialized combines vs 4 parallelizable rounds).
    assert by[(16, 16)][1] > by[(16, 2)][1]
