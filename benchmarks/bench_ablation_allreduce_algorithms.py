"""EX-RING — all-reduce algorithm choice (extension ablation).

The paper's reductions ride on whatever all-reduce the MPI layer
provides; this ablation maps when that choice matters.  Recursive
doubling moves the full payload log2(p) times (latency-optimal); the
ring moves 2(p-1) segments of 1/p each (bandwidth-optimal, commutative
only); Rabenseifner's reduce-scatter + allgather pays 2·log2(p) rounds
for ring-class bandwidth.  The crossover is the classic small/large-
message boundary — relevant to the paper's aggregated reductions, whose
payloads grow with the aggregation factor.

The ``auto`` rows exercise the tuned selection layer
(:mod:`repro.mpi.tuning`) end-to-end through ``LOCAL_ALLREDUCE``: the
ablation doubles as the acceptance check that the decision table picks a
winner (or ties the winner) at *every* payload size, where any fixed
choice loses somewhere.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_result
from repro import mpi
from repro.localview import LOCAL_ALLREDUCE
from repro.runtime import spmd_run

P = 16
PAYLOADS = [1, 64, 1024, 16_384, 262_144]  # doubles

ALGORITHMS = ["recursive_doubling", "ring", "rabenseifner", "auto"]

#: Virtual-time slack for "auto ties the explicit winner": the tuner's
#: table is fitted on a grid, so at a grid-boundary payload it may pick
#: the runner-up; anything within 10% counts as a tie.
TIE = 1.10


def _time(n, algorithm, cost_model):
    def prog(comm):
        LOCAL_ALLREDUCE(comm, mpi.SUM, np.zeros(n), algorithm=algorithm)

    return spmd_run(prog, P, cost_model=cost_model).time


def _sweep(cost_model):
    return [
        (n, {a: _time(n, a, cost_model) for a in ALGORITHMS})
        for n in PAYLOADS
    ]


def test_allreduce_algorithm_crossover(benchmark, cost_model, results_dir):
    rows = benchmark.pedantic(_sweep, args=(cost_model,), rounds=1,
                              iterations=1)
    lines = [
        f"EX-RING — allreduce algorithms, p={P} (SUM of n doubles)",
        f"{'n':>8s}  " + "  ".join(f"{a:>17s}" for a in ALGORITHMS)
        + f"  {'winner':>17s}",
    ]
    for n, times in rows:
        winner = min(times, key=times.get)
        lines.append(
            f"{n:>8d}  "
            + "  ".join(f"{times[a]:>17.3e}" for a in ALGORITHMS)
            + f"  {winner:>17s}"
        )
    write_result(results_dir, "ablation_allreduce_algorithms.txt",
                 "\n".join(lines))

    by = {n: times for n, times in rows}
    # small payloads: latency dominates, recursive doubling wins
    assert by[1]["recursive_doubling"] < by[1]["ring"]
    assert by[1]["recursive_doubling"] < by[1]["rabenseifner"]
    # large payloads: bandwidth dominates, the segmenting algorithms win
    assert by[262_144]["ring"] < by[262_144]["recursive_doubling"]
    assert by[262_144]["rabenseifner"] < by[262_144]["recursive_doubling"]
    # and there is a crossover in between
    winners = [
        min(times, key=times.get) for _, times in rows
    ]
    assert winners[0] == "recursive_doubling" or winners[0] == "auto"
    assert winners[-1] in ("ring", "rabenseifner", "auto")

    # the tuned default beats each *fixed* choice somewhere:
    #  - the old fixed default (recursive doubling) at large payloads,
    #  - the fixed bandwidth choice (ring) at small payloads,
    # and never loses to the per-payload winner by more than the fit slack.
    assert by[262_144]["auto"] < by[262_144]["recursive_doubling"]
    assert by[1]["auto"] < by[1]["ring"]
    for n, times in rows:
        best = min(times[a] for a in ALGORITHMS if a != "auto")
        assert times["auto"] <= best * TIE, (n, times)


def _time_reduce(n, algorithm, cost_model):
    def prog(comm):
        comm.reduce(np.zeros(n), mpi.SUM, algorithm=algorithm)

    return spmd_run(prog, P, cost_model=cost_model).time


def test_reduce_pipelined_crossover(benchmark, cost_model, results_dir):
    """Rooted reduce: order-preserving binomial vs. the segmented
    pipelined ring, and the tuned default against both."""
    algos = ["binomial", "pipelined_ring", "auto"]

    def sweep(cm):
        return [
            (n, {a: _time_reduce(n, a, cm) for a in algos})
            for n in PAYLOADS
        ]

    rows = benchmark.pedantic(sweep, args=(cost_model,), rounds=1,
                              iterations=1)
    lines = [
        f"EX-RING — rooted reduce algorithms, p={P} (SUM of n doubles)",
        f"{'n':>8s}  " + "  ".join(f"{a:>15s}" for a in algos),
    ]
    for n, times in rows:
        lines.append(
            f"{n:>8d}  " + "  ".join(f"{times[a]:>15.3e}" for a in algos)
        )
    write_result(results_dir, "ablation_reduce_algorithms.txt",
                 "\n".join(lines))

    by = {n: times for n, times in rows}
    assert by[1]["binomial"] < by[1]["pipelined_ring"]
    assert by[262_144]["pipelined_ring"] < by[262_144]["binomial"]
    assert by[262_144]["auto"] < by[262_144]["binomial"]
    for n, times in rows:
        best = min(times["binomial"], times["pipelined_ring"])
        assert times["auto"] <= best * TIE, (n, times)
