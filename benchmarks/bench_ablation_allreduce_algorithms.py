"""EX-RING — all-reduce algorithm choice (extension ablation).

The paper's reductions ride on whatever all-reduce the MPI layer
provides; this ablation maps when that choice matters.  Recursive
doubling moves the full payload log2(p) times (latency-optimal); the
ring moves 2(p-1) segments of 1/p each (bandwidth-optimal, commutative
only).  The crossover is the classic small/large-message boundary —
relevant to the paper's aggregated reductions, whose payloads grow with
the aggregation factor.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_result
from repro import mpi
from repro.runtime import spmd_run

P = 16
PAYLOADS = [1, 64, 1024, 16_384, 262_144]  # doubles


def _time(n, algorithm, cost_model):
    def prog(comm):
        comm.allreduce(np.zeros(n), mpi.SUM, algorithm=algorithm)

    return spmd_run(prog, P, cost_model=cost_model).time


def _sweep(cost_model):
    rows = []
    for n in PAYLOADS:
        rd = _time(n, "recursive_doubling", cost_model)
        ring = _time(n, "ring", cost_model)
        rows.append((n, rd, ring))
    return rows


def test_allreduce_algorithm_crossover(benchmark, cost_model, results_dir):
    rows = benchmark.pedantic(_sweep, args=(cost_model,), rounds=1,
                              iterations=1)
    lines = [
        f"EX-RING — allreduce algorithms, p={P} (SUM of n doubles)",
        f"{'n':>8s}  {'recursive_dbl':>14s}  {'ring':>12s}  {'winner':>8s}",
    ]
    for n, rd, ring in rows:
        winner = "ring" if ring < rd else "rec.dbl"
        lines.append(f"{n:>8d}  {rd:>14.3e}  {ring:>12.3e}  {winner:>8s}")
    write_result(results_dir, "ablation_allreduce_algorithms.txt",
                 "\n".join(lines))

    by = {n: (rd, ring) for n, rd, ring in rows}
    # small payloads: latency dominates, recursive doubling wins
    assert by[1][0] < by[1][1]
    # large payloads: bandwidth dominates, ring wins
    assert by[262_144][1] < by[262_144][0]
    # and there is a crossover in between
    winners = ["ring" if ring < rd else "rd" for _, rd, ring in rows]
    assert winners[0] == "rd" and winners[-1] == "ring"
