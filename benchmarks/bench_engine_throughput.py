"""Engine throughput: persistent rank pool vs per-call ``spmd_run``.

The multi-tenant engine exists to amortize fixed per-job costs — thread
spawn/join, world construction, collective-algorithm tuning — across
many small jobs.  This benchmark measures exactly that: a stream of
small reduction jobs (8 ranks, 64 float64 elements each) executed

* **per-call**: one ``spmd_run`` per job (each call builds a transient
  engine, spawns 8 threads, runs the job, joins the pool), vs
* **engine**: one persistent :class:`repro.engine.Engine` whose resident
  ranks serve every job, with the schedule cache warm after job #1.

Acceptance target (ISSUE 5): the persistent engine sustains **>= 2x**
the per-call jobs/sec on this workload.  Measured on a quiet
development machine: 2.1-2.4x (best of five 50-job batches per path),
with a schedule-cache hit rate above 99%; the acceptance run is
recorded in ``results/BENCH_engine_throughput.json``.

Run as a pytest benchmark (writes ``results/BENCH_*.json`` via the
benchmarks conftest) or standalone::

    PYTHONPATH=src:. python benchmarks/bench_engine_throughput.py --smoke

Automated runs (pytest, ``--smoke``) assert a 1.4x floor: on shared
1-core CI containers host noise arrives in bursts and compresses the
measured ratio well below the quiet-host figure, so a hard 2x assert
would flake without measuring anything about the code.  Pass
``--strict`` on an unloaded machine to assert the full 2x acceptance
target.

The benchmark also runs the engine path a third time with
:class:`repro.obs.telemetry.EngineTelemetry` enabled.  That pass yields
the service-level latency series (queue-wait and end-to-end p50/p95/p99
per job, straight from the telemetry histograms) recorded in
``results/BENCH_engine_throughput.json``, plus the telemetry-on /
telemetry-off throughput ratio.

``--overhead`` enforces the ≤5% telemetry budget (ISSUE 6) — the CI
telemetry-overhead smoke runs ``--smoke --overhead``.  The asserted
quantity is the **hook fraction**: the telemetry work one job induces
(measured deterministically by driving the full per-job hook sequence
in a tight loop) over the measured per-job engine time.  The end-to-end
on/off ratio is recorded too, but two ~tens-of-ms wall-clock windows on
a shared CI container differ by ±10% from scheduler noise alone — an
assert on that ratio would flake without measuring anything about the
code, while the hook fraction is stable to a fraction of a percent.
"""

from __future__ import annotations

import argparse
import gc
import json
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro import global_reduce
from repro.engine import Engine
from repro.obs.telemetry import EngineTelemetry
from repro.obs.tracer import NULL_TRACER
from repro.ops import SumOp
from repro.runtime import spmd_run

POOL_RANKS = 8
PAYLOAD = 64  # float64 elements per rank

#: Per-job telemetry hook work may cost at most this fraction of the
#: per-job engine time (the ≤5% budget, asserted by ``--overhead``).
OVERHEAD_BUDGET_FRACTION = 0.05

#: Floor for automated asserts (pytest / --smoke).  The 2x acceptance
#: figure is a quiet-host number; shared CI containers lose 0.3-0.5
#: ms/job to noisy neighbours on *both* paths, which compresses the
#: ratio (the engine's denominator is the smaller one).  1.4x still
#: proves real amortization; --strict asserts the full 2x.
NOISE_TOLERANT_FLOOR = 1.4
STRICT_FLOOR = 2.0


def reduce_job(comm):
    """The unit job: a small dense allreduce, the paper's bread and
    butter shape (NPB verification sums are this size)."""
    local = np.arange(comm.rank, PAYLOAD * comm.size, comm.size, dtype=np.float64)
    return global_reduce(comm, SumOp(), local)


def _expected() -> float:
    # SumOp folds each rank's block to a scalar; the global answer is
    # the sum of 0 .. PAYLOAD*POOL_RANKS-1.
    n = PAYLOAD * POOL_RANKS
    return float(n * (n - 1) // 2)


@contextmanager
def _no_gc():
    """Standard microbenchmark hygiene: a cyclic-GC pass landing inside
    one timed region but not the other (likelier under pytest's large
    heap) skews the ratio; collect up front, then keep GC out of the
    timed window."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def run_per_call(n_jobs: int, backend: str = "thread") -> tuple[float, list]:
    """n_jobs back-to-back spmd_run calls; returns (seconds, results).

    Tracing is pinned off (NULL_TRACER) in both paths: the comparison
    isolates executor overhead, and an ambient profiling session (the
    benchmarks conftest installs one) would add an identical per-job
    tracing cost to both sides, masking part of the amortization this
    benchmark exists to measure.
    """
    with _no_gc():
        t0 = time.perf_counter()
        results = [
            spmd_run(reduce_job, POOL_RANKS, tracer=NULL_TRACER,
                     backend=backend)
            for _ in range(n_jobs)
        ]
        return time.perf_counter() - t0, results


def run_engine(
    n_jobs: int, telemetry: bool = False, backend: str = "thread"
) -> tuple[float, list, dict, dict | None]:
    """n_jobs submitted up-front to one persistent engine; returns
    (seconds, results, engine stats, latency summary or None).

    With ``telemetry=True`` the engine stamps per-job lifecycles, and
    the returned latency summary carries the queue-wait / e2e
    p50/p95/p99 over exactly the timed jobs (minus the warm-up job)."""
    tel = EngineTelemetry(POOL_RANKS) if telemetry else False
    with Engine(POOL_RANKS, telemetry=tel, backend=backend) as engine:
        # Warm the pool and the schedule cache outside the timed region,
        # mirroring a resident service that has already handled traffic.
        engine.submit(reduce_job, tracer=NULL_TRACER).result()
        if telemetry:
            # Fresh series after warm-up: the latency histograms must
            # cover exactly the timed jobs.
            tel = EngineTelemetry(POOL_RANKS)
            engine.set_telemetry(tel)
        with _no_gc():
            t0 = time.perf_counter()
            handles = [
                engine.submit(reduce_job, tracer=NULL_TRACER)
                for _ in range(n_jobs)
            ]
            results = [h.result() for h in handles]
            elapsed = time.perf_counter() - t0
        stats = engine.stats()
        latency = tel.latency_summary() if telemetry else None
    return elapsed, results, stats, latency


def hook_cost_per_job(n: int = 8000) -> float:
    """Seconds of telemetry hook work one engine job induces.

    Drives the exact per-job hook sequence the engine emits — admitted,
    assembled (8 members), running, done (8 members) — against a real
    :class:`EngineTelemetry` in a tight loop, and takes the best of
    several passes (hook work is deterministic; host noise only ever
    adds).  Quantile estimation never runs on this path — histogram
    observes append to a bounded buffer that is drained on scrape-time
    reads — so the loop measures what the engine's threads actually
    pay."""
    tel = EngineTelemetry(POOL_RANKS)
    members = tuple(range(POOL_RANKS))
    best = float("inf")
    with _no_gc():
        for _ in range(5):
            t0 = time.perf_counter()
            for i in range(n):
                lc = tel.job_admitted(
                    i, "job", None, POOL_RANKS, False, tel.now(), 1
                )
                tel.job_assembled(lc, members, 0, 1, 0)
                tel.job_running(lc)
                tel.job_done(lc, "done", 1e-6, members, 0, 0, POOL_RANKS)
            best = min(best, (time.perf_counter() - t0) / n)
    return best


def measure(n_jobs: int, repeats: int = 5, backend: str = "thread") -> dict:
    """Best-of-``repeats`` for each path: the minimum elapsed time is the
    least scheduler-noise-contaminated estimate of the true cost, which
    keeps the ratio stable run to run.  Host noise arrives in bursts on
    small CI containers, so each path needs several chances at a quiet
    window.

    The telemetry-on/off ratio compares two near-identical ~n_jobs·ms
    windows, so it is far more noise-sensitive than the headline
    speedup: both engine paths get extra interleaved repeats, and the
    best-of minima are what the overhead budget is asserted on."""
    per_call_s, per_call_results = run_per_call(n_jobs, backend)
    engine_s, engine_results, stats = run_engine(n_jobs, backend=backend)[:3]
    tel_s, tel_results, _, latency = run_engine(
        n_jobs, telemetry=True, backend=backend
    )
    engine_repeats = max(repeats, 9)
    for i in range(engine_repeats - 1):
        if i < repeats - 1:
            s, _ = run_per_call(n_jobs, backend)
            per_call_s = min(per_call_s, s)
        s, _, stats, _ = run_engine(n_jobs, backend=backend)
        engine_s = min(engine_s, s)
        s, _, _, lat = run_engine(n_jobs, telemetry=True, backend=backend)
        if s < tel_s:
            tel_s, latency = s, lat

    hook_s = hook_cost_per_job()

    expected = _expected()
    for res in (per_call_results[0], engine_results[0], engine_results[-1],
                tel_results[-1]):
        assert float(res.returns[0]) == expected
    # Identical simulated makespans: the engine must not change the model.
    assert engine_results[0].time == per_call_results[0].time
    assert tel_results[0].time == per_call_results[0].time

    def _tail(summary: dict) -> dict:
        count = summary["count"]
        return {
            "count": count,
            "mean": summary["sum"] / count if count else None,
            "min": summary["min"],
            "max": summary["max"],
            "p50": summary["p50"],
            "p95": summary["p95"],
            "p99": summary["p99"],
        }

    return {
        "n_jobs": n_jobs,
        "nprocs": POOL_RANKS,
        "backend": backend,
        "payload_elems": PAYLOAD,
        "per_call_jobs_per_s": n_jobs / per_call_s,
        "engine_jobs_per_s": n_jobs / engine_s,
        "per_call_ms_per_job": 1e3 * per_call_s / n_jobs,
        "engine_ms_per_job": 1e3 * engine_s / n_jobs,
        "speedup": per_call_s / engine_s,
        "engine_telemetry_jobs_per_s": n_jobs / tel_s,
        "telemetry_overhead_ratio": tel_s / engine_s,
        "telemetry_hook_us_per_job": hook_s * 1e6,
        "telemetry_hook_fraction": hook_s / (engine_s / n_jobs),
        "latency": {
            "queue_wait_s": _tail(latency["queue_wait_s"]),
            "e2e_s": _tail(latency["e2e_s"]),
        },
        "schedule_cache": stats["schedule_cache"],
        "leaked_messages_drained": stats["leaked_messages_drained"],
    }


def render(m: dict) -> str:
    def _us(v):
        return "-" if v is None else f"{v * 1e6:.0f}us"

    qw, e2e = m["latency"]["queue_wait_s"], m["latency"]["e2e_s"]
    lines = [
        f"engine throughput ({m['n_jobs']} jobs, {m['nprocs']} ranks, "
        f"{m['payload_elems']} float64/rank, "
        f"{m.get('backend', 'thread')} backend)",
        f"  per-call spmd_run : {m['per_call_jobs_per_s']:8.1f} jobs/s "
        f"({m['per_call_ms_per_job']:.2f} ms/job)",
        f"  persistent engine : {m['engine_jobs_per_s']:8.1f} jobs/s "
        f"({m['engine_ms_per_job']:.2f} ms/job)",
        f"  speedup           : {m['speedup']:.2f}x",
        f"  with telemetry    : {m['engine_telemetry_jobs_per_s']:8.1f} "
        f"jobs/s (e2e {100.0 * (m['telemetry_overhead_ratio'] - 1):+.1f}%, "
        f"hook work {m['telemetry_hook_us_per_job']:.1f} us/job = "
        f"{100.0 * m['telemetry_hook_fraction']:.2f}%)",
        f"  queue wait        : p50 {_us(qw['p50'])}, p95 {_us(qw['p95'])}, "
        f"p99 {_us(qw['p99'])}",
        f"  e2e latency       : p50 {_us(e2e['p50'])}, p95 {_us(e2e['p95'])}, "
        f"p99 {_us(e2e['p99'])}",
        f"  schedule cache    : {m['schedule_cache']['hits']} hits / "
        f"{m['schedule_cache']['misses']} misses "
        f"(hit rate {m['schedule_cache']['hit_rate']:.3f})",
        f"  leaked msgs swept : {m['leaked_messages_drained']}",
    ]
    return "\n".join(lines)


class TestEngineThroughput:
    def test_engine_2x_per_call(self, results_dir):
        from benchmarks.conftest import write_result

        m = measure(n_jobs=50)
        write_result(
            results_dir, "engine_throughput.txt", render(m)
        )
        (results_dir / "BENCH_engine_throughput.json").write_text(
            json.dumps(m, indent=2) + "\n"
        )
        assert m["speedup"] >= NOISE_TOLERANT_FLOOR, (
            f"persistent engine only {m['speedup']:.2f}x per-call spmd_run "
            f"(floor {NOISE_TOLERANT_FLOOR}x; quiet-host acceptance 2x): {m}"
        )
        assert m["schedule_cache"]["hit_rate"] > 0.9
        assert m["leaked_messages_drained"] == 0
        # The latency series must cover every timed job with real tails.
        for key in ("queue_wait_s", "e2e_s"):
            tail = m["latency"][key]
            assert tail["count"] == m["n_jobs"]
            assert tail["p50"] is not None and tail["p99"] is not None
            assert tail["p50"] <= tail["p99"] * (1 + 1e-9)
        # The ≤5% telemetry budget, on the deterministic hook fraction
        # (the e2e on/off ratio is recorded but too noisy to assert on
        # shared CI containers — see the module docstring).
        assert m["telemetry_hook_fraction"] <= OVERHEAD_BUDGET_FRACTION, m


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer jobs (CI-friendly)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="assert the full 2x acceptance floor (quiet machines only)",
    )
    parser.add_argument(
        "--overhead",
        action="store_true",
        help="also assert the per-job telemetry hook work stays within "
        f"{100.0 * OVERHEAD_BUDGET_FRACTION:.0f}% of per-job engine time "
        "(CI telemetry smoke)",
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="engine world backend for both paths (default: thread). "
        "The 64-element payload sits below the process backend's "
        "offload threshold, so `--backend process` measures the "
        "backend's *idle* cost on engine-bound workloads — it should "
        "track the thread figures closely (offload wins are measured "
        "by bench_backend_speedup.py, which uses payloads large "
        "enough to cross the threshold).",
    )
    parser.add_argument("--jobs", type=int, default=None)
    args = parser.parse_args()

    n_jobs = args.jobs if args.jobs is not None else (20 if args.smoke else 50)
    floor = STRICT_FLOOR if args.strict else NOISE_TOLERANT_FLOOR
    m = measure(n_jobs, backend=args.backend)
    print(render(m))

    results = Path(__file__).resolve().parent.parent / "results"
    results.mkdir(exist_ok=True)
    suffix = "" if args.backend == "thread" else f"_{args.backend}"
    (results / f"BENCH_engine_throughput{suffix}.json").write_text(
        json.dumps(m, indent=2) + "\n"
    )
    (results / f"engine_throughput{suffix}.txt").write_text(render(m) + "\n")

    if m["speedup"] < floor:
        print(f"FAIL: speedup {m['speedup']:.2f}x below {floor}x floor")
        return 1
    print(f"PASS: speedup {m['speedup']:.2f}x >= {floor}x")
    if args.overhead:
        fraction = m["telemetry_hook_fraction"]
        if fraction > OVERHEAD_BUDGET_FRACTION:
            print(
                f"FAIL: telemetry hook work is {100.0 * fraction:.2f}% of "
                f"per-job engine time "
                f"({m['telemetry_hook_us_per_job']:.1f} us/job), over the "
                f"{100.0 * OVERHEAD_BUDGET_FRACTION:.0f}% budget"
            )
            return 1
        print(
            f"PASS: telemetry hook work {100.0 * fraction:.2f}% of per-job "
            f"engine time ({m['telemetry_hook_us_per_job']:.1f} us/job), "
            f"within the {100.0 * OVERHEAD_BUDGET_FRACTION:.0f}% budget "
            f"(e2e ratio {m['telemetry_overhead_ratio']:.3f}, informational)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
