"""Engine throughput: persistent rank pool vs per-call ``spmd_run``.

The multi-tenant engine exists to amortize fixed per-job costs — thread
spawn/join, world construction, collective-algorithm tuning — across
many small jobs.  This benchmark measures exactly that: a stream of
small reduction jobs (8 ranks, 64 float64 elements each) executed

* **per-call**: one ``spmd_run`` per job (each call builds a transient
  engine, spawns 8 threads, runs the job, joins the pool), vs
* **engine**: one persistent :class:`repro.engine.Engine` whose resident
  ranks serve every job, with the schedule cache warm after job #1.

Acceptance target (ISSUE 5): the persistent engine sustains **>= 2x**
the per-call jobs/sec on this workload.  Measured on a quiet
development machine: 2.1-2.4x (best of five 50-job batches per path),
with a schedule-cache hit rate above 99%; the acceptance run is
recorded in ``results/BENCH_engine_throughput.json``.

Run as a pytest benchmark (writes ``results/BENCH_*.json`` via the
benchmarks conftest) or standalone::

    PYTHONPATH=src:. python benchmarks/bench_engine_throughput.py --smoke

Automated runs (pytest, ``--smoke``) assert a 1.4x floor: on shared
1-core CI containers host noise arrives in bursts and compresses the
measured ratio well below the quiet-host figure, so a hard 2x assert
would flake without measuring anything about the code.  Pass
``--strict`` on an unloaded machine to assert the full 2x acceptance
target.
"""

from __future__ import annotations

import argparse
import gc
import json
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro import global_reduce
from repro.engine import Engine
from repro.obs.tracer import NULL_TRACER
from repro.ops import SumOp
from repro.runtime import spmd_run

POOL_RANKS = 8
PAYLOAD = 64  # float64 elements per rank

#: Floor for automated asserts (pytest / --smoke).  The 2x acceptance
#: figure is a quiet-host number; shared CI containers lose 0.3-0.5
#: ms/job to noisy neighbours on *both* paths, which compresses the
#: ratio (the engine's denominator is the smaller one).  1.4x still
#: proves real amortization; --strict asserts the full 2x.
NOISE_TOLERANT_FLOOR = 1.4
STRICT_FLOOR = 2.0


def reduce_job(comm):
    """The unit job: a small dense allreduce, the paper's bread and
    butter shape (NPB verification sums are this size)."""
    local = np.arange(comm.rank, PAYLOAD * comm.size, comm.size, dtype=np.float64)
    return global_reduce(comm, SumOp(), local)


def _expected() -> float:
    # SumOp folds each rank's block to a scalar; the global answer is
    # the sum of 0 .. PAYLOAD*POOL_RANKS-1.
    n = PAYLOAD * POOL_RANKS
    return float(n * (n - 1) // 2)


@contextmanager
def _no_gc():
    """Standard microbenchmark hygiene: a cyclic-GC pass landing inside
    one timed region but not the other (likelier under pytest's large
    heap) skews the ratio; collect up front, then keep GC out of the
    timed window."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def run_per_call(n_jobs: int) -> tuple[float, list]:
    """n_jobs back-to-back spmd_run calls; returns (seconds, results).

    Tracing is pinned off (NULL_TRACER) in both paths: the comparison
    isolates executor overhead, and an ambient profiling session (the
    benchmarks conftest installs one) would add an identical per-job
    tracing cost to both sides, masking part of the amortization this
    benchmark exists to measure.
    """
    with _no_gc():
        t0 = time.perf_counter()
        results = [
            spmd_run(reduce_job, POOL_RANKS, tracer=NULL_TRACER)
            for _ in range(n_jobs)
        ]
        return time.perf_counter() - t0, results


def run_engine(n_jobs: int) -> tuple[float, list, dict]:
    """n_jobs submitted up-front to one persistent engine; returns
    (seconds, results, engine stats)."""
    with Engine(POOL_RANKS) as engine:
        # Warm the pool and the schedule cache outside the timed region,
        # mirroring a resident service that has already handled traffic.
        engine.submit(reduce_job, tracer=NULL_TRACER).result()
        with _no_gc():
            t0 = time.perf_counter()
            handles = [
                engine.submit(reduce_job, tracer=NULL_TRACER)
                for _ in range(n_jobs)
            ]
            results = [h.result() for h in handles]
            elapsed = time.perf_counter() - t0
        stats = engine.stats()
    return elapsed, results, stats


def measure(n_jobs: int, repeats: int = 5) -> dict:
    """Best-of-``repeats`` for each path: the minimum elapsed time is the
    least scheduler-noise-contaminated estimate of the true cost, which
    keeps the ratio stable run to run.  Host noise arrives in bursts on
    small CI containers, so each path needs several chances at a quiet
    window."""
    per_call_s, per_call_results = run_per_call(n_jobs)
    engine_s, engine_results, stats = run_engine(n_jobs)
    for _ in range(repeats - 1):
        s, _ = run_per_call(n_jobs)
        per_call_s = min(per_call_s, s)
        s, _, stats = run_engine(n_jobs)
        engine_s = min(engine_s, s)

    expected = _expected()
    for res in (per_call_results[0], engine_results[0], engine_results[-1]):
        assert float(res.returns[0]) == expected
    # Identical simulated makespans: the engine must not change the model.
    assert engine_results[0].time == per_call_results[0].time

    return {
        "n_jobs": n_jobs,
        "nprocs": POOL_RANKS,
        "payload_elems": PAYLOAD,
        "per_call_jobs_per_s": n_jobs / per_call_s,
        "engine_jobs_per_s": n_jobs / engine_s,
        "per_call_ms_per_job": 1e3 * per_call_s / n_jobs,
        "engine_ms_per_job": 1e3 * engine_s / n_jobs,
        "speedup": per_call_s / engine_s,
        "schedule_cache": stats["schedule_cache"],
        "leaked_messages_drained": stats["leaked_messages_drained"],
    }


def render(m: dict) -> str:
    lines = [
        f"engine throughput ({m['n_jobs']} jobs, {m['nprocs']} ranks, "
        f"{m['payload_elems']} float64/rank)",
        f"  per-call spmd_run : {m['per_call_jobs_per_s']:8.1f} jobs/s "
        f"({m['per_call_ms_per_job']:.2f} ms/job)",
        f"  persistent engine : {m['engine_jobs_per_s']:8.1f} jobs/s "
        f"({m['engine_ms_per_job']:.2f} ms/job)",
        f"  speedup           : {m['speedup']:.2f}x",
        f"  schedule cache    : {m['schedule_cache']['hits']} hits / "
        f"{m['schedule_cache']['misses']} misses "
        f"(hit rate {m['schedule_cache']['hit_rate']:.3f})",
        f"  leaked msgs swept : {m['leaked_messages_drained']}",
    ]
    return "\n".join(lines)


class TestEngineThroughput:
    def test_engine_2x_per_call(self, results_dir):
        from benchmarks.conftest import write_result

        m = measure(n_jobs=50)
        write_result(
            results_dir, "engine_throughput.txt", render(m)
        )
        (results_dir / "BENCH_engine_throughput.json").write_text(
            json.dumps(m, indent=2) + "\n"
        )
        assert m["speedup"] >= NOISE_TOLERANT_FLOOR, (
            f"persistent engine only {m['speedup']:.2f}x per-call spmd_run "
            f"(floor {NOISE_TOLERANT_FLOOR}x; quiet-host acceptance 2x): {m}"
        )
        assert m["schedule_cache"]["hit_rate"] > 0.9
        assert m["leaked_messages_drained"] == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer jobs (CI-friendly)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="assert the full 2x acceptance floor (quiet machines only)",
    )
    parser.add_argument("--jobs", type=int, default=None)
    args = parser.parse_args()

    n_jobs = args.jobs if args.jobs is not None else (20 if args.smoke else 50)
    floor = STRICT_FLOOR if args.strict else NOISE_TOLERANT_FLOOR
    m = measure(n_jobs)
    print(render(m))

    results = Path(__file__).resolve().parent.parent / "results"
    results.mkdir(exist_ok=True)
    (results / "BENCH_engine_throughput.json").write_text(
        json.dumps(m, indent=2) + "\n"
    )
    (results / "engine_throughput.txt").write_text(render(m) + "\n")

    if m["speedup"] < floor:
        print(f"FAIL: speedup {m['speedup']:.2f}x below {floor}x floor")
        return 1
    print(f"PASS: speedup {m['speedup']:.2f}x >= {floor}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
