"""EX-SORT — two parallel sorts from this library's primitives
(extension): IS's bucket sort vs. scan-based radix sort.

Same keys (a scaled NAS IS class), same verification (the paper's sorted
reduction), radically different communication budgets: bucket sort pays
one aggregated allreduce plus ONE all-to-all; radix sort pays one
aggregated exscan + allreduce + all-to-all PER BIT.  The comparison
quantifies how far "scan is enough" is from "scan is optimal" — the
practical footnote to Blelloch's thesis that the paper's NAS IS case
study embodies.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_result
from repro.algorithms import radix_sort, sample_sort
from repro.nas import is_class
from repro.nas.intsort import bucket_sort, local_key_block, verify_rsmpi
from repro.runtime import spmd_run

PROCS = [2, 4, 8, 16]
CLS = is_class("S")  # 2^16 keys in [0, 2^11): 11 radix passes


def _bucket_time(p, cost_model):
    def prog(comm):
        r = bucket_sort(comm, CLS, sort_rate="np_check")
        assert verify_rsmpi(comm, r.local_sorted)

    res = spmd_run(prog, p, cost_model=cost_model, timeout=600)
    return res.time, res.summary_trace.n_sends


def _radix_time(p, cost_model):
    def prog(comm):
        keys, _ = local_key_block(comm, CLS)
        out = radix_sort(comm, keys)
        comm.charge_elements("np_check", len(out) * 11, "radix:passes")
        assert verify_rsmpi(comm, out)

    res = spmd_run(prog, p, cost_model=cost_model, timeout=600)
    return res.time, res.summary_trace.n_sends


def _sample_time(p, cost_model):
    def prog(comm):
        keys, _ = local_key_block(comm, CLS)
        out = sample_sort(comm, keys)
        comm.charge_elements("np_check", len(out) * 2, "sample:sorts")
        assert verify_rsmpi(comm, out)

    res = spmd_run(prog, p, cost_model=cost_model, timeout=600)
    return res.time, res.summary_trace.n_sends


def test_bucket_vs_radix_vs_sample(benchmark, cost_model, results_dir):
    def sweep():
        rows = []
        for p in PROCS:
            tb, mb = _bucket_time(p, cost_model)
            tr, mr = _radix_time(p, cost_model)
            ts, ms = _sample_time(p, cost_model)
            rows.append((p, tb, tr, ts, mb, mr, ms))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"EX-SORT — bucket vs scan-based radix vs sample sort, class "
        f"{CLS.name} ({CLS.n_keys} keys, {CLS.max_key.bit_length() - 1}-bit)",
        f"{'p':>4s}  {'bucket':>12s}  {'radix':>12s}  {'sample':>12s}  "
        f"{'msgs_b':>7s}  {'msgs_r':>7s}  {'msgs_s':>7s}",
    ]
    for p, tb, tr, ts, mb, mr, ms in rows:
        lines.append(
            f"{p:>4d}  {tb:>12.3e}  {tr:>12.3e}  {ts:>12.3e}  "
            f"{mb:>7d}  {mr:>7d}  {ms:>7d}"
        )
    lines.append(
        "all verified sorted by the paper's non-commutative reduction"
    )
    write_result(results_dir, "sorting_comparison.txt", "\n".join(lines))

    for p, tb, tr, ts, mb, mr, ms in rows:
        # single-pass sorts beat the per-bit scans, in time and messages
        assert tb < tr and ts < tr
        assert mb < mr / 3 and ms < mr / 3
