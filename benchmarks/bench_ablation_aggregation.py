"""EX-AGG — aggregation (paper §2.1): one aggregated reduction of k
values vs k scalar reductions.

"Aggregation is an important extension to the local-view reduction.  It
allows the programmer to compute multiple reductions simultaneously,
thus saving the overhead of many smaller messages."

Sweeps k and reports simulated time and message counts for both idioms;
asserts the aggregated form wins by a growing factor.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_result
from repro import mpi
from repro.localview import LOCAL_ALLREDUCE
from repro.runtime import spmd_run

P = 16
KS = [1, 4, 16, 64, 256, 1024]


def _run(cost_model):
    rows = []
    for k in KS:
        def aggregated(comm):
            LOCAL_ALLREDUCE(comm, mpi.SUM, np.ones(k))

        def scalarized(comm):
            for _ in range(k):
                LOCAL_ALLREDUCE(comm, mpi.SUM, 1.0)

        agg = spmd_run(aggregated, P, cost_model=cost_model)
        sca = spmd_run(scalarized, P, cost_model=cost_model)
        rows.append(
            (
                k,
                agg.time,
                sca.time,
                agg.summary_trace.n_sends,
                sca.summary_trace.n_sends,
            )
        )
    return rows


def test_aggregation_beats_scalar_reductions(
    benchmark, cost_model, results_dir
):
    rows = benchmark.pedantic(_run, args=(cost_model,), rounds=1, iterations=1)
    lines = [
        f"EX-AGG — aggregated vs scalarized allreduce (p={P})",
        f"{'k':>5s}  {'t_agg':>12s}  {'t_scalar':>12s}  {'ratio':>7s}  "
        f"{'msgs_agg':>8s}  {'msgs_scal':>9s}",
    ]
    for k, ta, ts, ma, ms in rows:
        lines.append(
            f"{k:>5d}  {ta:>12.3e}  {ts:>12.3e}  {ts / ta:>7.1f}  "
            f"{ma:>8d}  {ms:>9d}"
        )
    write_result(results_dir, "ablation_aggregation.txt", "\n".join(lines))

    by_k = {k: (ta, ts, ma, ms) for k, ta, ts, ma, ms in rows}
    # message count: k scalar reductions send k times the messages
    _, _, ma, ms = by_k[64]
    assert ms == 64 * ma
    # time: the win grows with k and is large by k=64
    assert by_k[64][1] / by_k[64][0] > 10
    assert by_k[1024][1] / by_k[1024][0] > by_k[16][1] / by_k[16][0]
    # k=1 degenerates to (roughly) the same cost
    t1a, t1s, _, _ = by_k[1]
    assert abs(t1a - t1s) / max(t1a, t1s) < 0.2
