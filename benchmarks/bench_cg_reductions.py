"""EX-CG — reductions on an iterative solver's critical path (extension).

The paper motivates good reduction abstractions with their ubiquity; CG
shows the *latency* side of that story: every iteration runs dot-product
all-reduces that nothing can hide.  Sweeping the processor count at
fixed problem size (strong scaling) exposes the all-reduce latency floor
— and aggregating the two dots into one message (the §2.1 idea applied
inside a solver, a.k.a. pipelined CG) raises the achievable speedup.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import PROC_GRID, write_result
from repro.analysis import Series, format_series_csv
from repro.nas.cg import (
    cg_solve,
    cg_solve_fused,
    cg_solve_iallreduce,
    random_rhs,
)
from repro.runtime import spmd_run

N = 1 << 17  # unknowns
MAX_ITER = 60  # fixed work per run: time 60 iterations


#: A CG iteration streams the local vectors ~8 times (matvec, two dots,
#: three axpy-like updates); the dot_rate hook charges per element once,
#: so scale the calibrated single-pass rate by 8.
PASSES_PER_ITER = 8


def _time_per_iter(p, solver, cost_model):
    rate = cost_model.rates["np_check"] * PASSES_PER_ITER
    cm = cost_model.with_rates(cg_iter=rate)

    def prog(comm):
        b = random_rhs(comm, N)
        return solver(
            comm, b, max_iter=MAX_ITER, dot_rate="cg_iter"
        ).iterations

    res = spmd_run(prog, p, cost_model=cm, timeout=600)
    iters = res.returns[0]
    return res.time / max(iters, 1)


def test_cg_reduction_latency_floor(benchmark, cost_model, results_dir):
    def sweep():
        std = Series("CG (2 reductions/iter)")
        fused = Series("CG fused (1 reduction/iter)")
        nonblk = Series("CG fused nonblocking")
        for p in PROC_GRID:
            std.add(p, _time_per_iter(p, cg_solve, cost_model))
            fused.add(p, _time_per_iter(p, cg_solve_fused, cost_model))
            nonblk.add(
                p, _time_per_iter(p, cg_solve_iallreduce, cost_model)
            )
        return std, fused, nonblk

    std, fused, nonblk = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"EX-CG — time per CG iteration, n={N} (strong scaling)",
        f"{'p':>4s}  {'2 red/iter':>12s}  {'1 red/iter':>12s}  "
        f"{'1 red nonblk':>12s}  {'S_std':>6s}  {'S_fused':>8s}",
    ]
    for i, p in enumerate(std.procs):
        lines.append(
            f"{p:>4d}  {std.times[i]:>12.3e}  {fused.times[i]:>12.3e}  "
            f"{nonblk.times[i]:>12.3e}  "
            f"{std.t1 / std.times[i]:>6.2f}  {fused.t1 / fused.times[i]:>8.2f}"
        )
    write_result(results_dir, "cg_reductions.txt", "\n".join(lines))
    (results_dir / "cg_reductions.csv").write_text(
        format_series_csv([std, fused, nonblk]) + "\n"
    )

    # fused is never slower, and wins clearly where latency dominates
    for t_s, t_f in zip(std.times, fused.times):
        assert t_f <= t_s * 1.02
    assert fused.times[-1] < std.times[-1] * 0.8
    # the nonblocking variant overlaps the x-update under the reduce:
    # never slower than the blocking fused variant
    for t_f, t_n in zip(fused.times, nonblk.times):
        assert t_n <= t_f * 1.02
    # strong scaling helps at first...
    assert min(std.times) < std.t1
    # ...but both hit a latency floor: speedup at p=64 far below ideal,
    # and the fused variant's floor is lower (higher peak speedup)
    assert std.t1 / std.times[-1] < 32
    assert max(fused.speedup()) > max(std.speedup())
