"""TAB-NPB — the paper's motivating statistic: "In the NAS Parallel
Benchmarks (NPB) version 3.2, nearly 9% of the MPI calls are
reductions."

Reproduced methodology over our NAS kernels with their *real*
communication profiles:

* IS end-to-end: keygen + bucket sort (alltoall + aggregated allreduce)
  + MPI-style verification (neighbor exchange + allreduce);
* MG: ZRAN3 initialization (the 40-reduction MPI idiom) followed by 20
  V-cycle communication rounds — each ~10 ``comm3`` halo exchanges (6
  face sendrecvs apiece) plus the two ``norm2u3`` all-reduces.

The halo traffic dominates, reductions land in the single-digit-percent
range of all calls — the paper's point: reductions are few but worth
abstracting well.
"""

from __future__ import annotations

from collections import Counter

from benchmarks.conftest import write_result
from repro.nas import ep_class, is_class, mg_class
from repro.nas.callcounts import CallCensus, census
from repro.nas.intsort import run_is
from repro.nas.ep import ep_mpi
from repro.nas.mg import Block3D, vcycle_communication_round, zran3_mpi
from repro.runtime import spmd_run

P = 8
MG_ITERATIONS = 20  # NPB MG class A runs niter = 4..20 depending on class


def _mg_full_profile(comm):
    cls = mg_class("S")
    res = zran3_mpi(comm, cls)
    block = Block3D.create(cls.nx, cls.ny, cls.nz, comm.size, comm.rank)
    for _ in range(MG_ITERATIONS):
        vcycle_communication_round(comm, block, res.local)
    return None


def _combined_census(cost_model):
    is_res = spmd_run(
        lambda comm: run_is(comm, is_class("S"), verifier="mpi"),
        P,
        cost_model=cost_model,
    )
    mg_res = spmd_run(_mg_full_profile, P, cost_model=cost_model, timeout=600)
    ep_res = spmd_run(
        lambda comm: ep_mpi(comm, ep_class("S")), P, cost_model=cost_model
    )
    c_is = census(is_res.traces)
    c_mg = census(mg_res.traces)
    c_ep = census(ep_res.traces)
    coll = Counter(c_is.collective_calls)
    coll.update(c_mg.collective_calls)
    coll.update(c_ep.collective_calls)
    p2p = Counter(c_is.p2p_calls)
    p2p.update(c_mg.p2p_calls)
    p2p.update(c_ep.p2p_calls)
    return c_is, c_mg, c_ep, CallCensus(dict(coll), dict(p2p))


def test_npb_reduction_fraction(benchmark, cost_model, results_dir):
    c_is, c_mg, c_ep, combined = benchmark.pedantic(
        _combined_census, args=(cost_model,), rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            c_is.format(f"NAS IS (class S, p={P}) — MPI call census"),
            c_mg.format(
                f"NAS MG (class S, p={P}, zran3 + {MG_ITERATIONS} "
                "V-cycle comm rounds) — MPI call census"
            ),
            c_ep.format(f"NAS EP (class S, p={P}) — MPI call census"),
            combined.format("Combined (IS + MG + EP)"),
            "paper claim (NPB 3.2, all benchmarks): reductions ~ 9% of "
            "MPI calls",
        ]
    )
    write_result(results_dir, "npb_callcounts.txt", text)

    # The MG ZRAN3 idiom alone contributes its 40 reductions...
    assert c_mg.collective_calls["allreduce"] >= 40 + 2 * MG_ITERATIONS
    # ...yet halo exchanges dominate MG's call profile.
    assert sum(c_mg.p2p_calls.values()) > c_mg.n_reductions
    # IS's reductions: bucket-count allreduce + verification allreduce.
    assert c_is.n_reductions >= 2
    # EP: three reductions and nothing else (embarrassingly parallel).
    assert c_ep.n_reductions == 3
    assert sum(c_ep.p2p_calls.values()) == 0
    # Combined fraction lands in the paper's "nearly 9%" ballpark
    # (single-digit to low-double-digit percent).
    assert 0.03 <= combined.reduction_fraction <= 0.30
