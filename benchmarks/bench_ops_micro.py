"""EX-OPS — micro-benchmarks of the operator machinery itself.

Wall-time measurements (pytest-benchmark) of the pieces the figure
benchmarks charge for: vectorized accumulate phases of the paper's
operators, combine functions, the DSL-compiled operator vs. the
hand-written one, and a whole in-process global reduction.

Also runnable directly as ``python benchmarks/bench_ops_micro.py
--smoke``: measures the compiled-kernel tier against the scalar
``accum`` loop at 1M elements for the elementwise operators, asserts
the 5x floor, and writes ``results/BENCH_ops_micro_kernels.json`` —
the CI kernels-smoke gate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import global_reduce
from repro.ops import CountsOp, ExtremaKLocOp, MinKOp, SortedOp, SumOp
from repro.rsmpi import compile_operator
from repro.runtime import spmd_run

N = 100_000
INT_MAX = np.iinfo(np.int64).max


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    return rng.integers(0, 1_000_000, N)


@pytest.fixture(scope="module")
def sorted_data(data):
    return np.sort(data)


class TestAccumulatePhase:
    def test_sum_accum_block(self, benchmark, data):
        op = SumOp()
        total = benchmark(lambda: op.accum_block(0, data))
        assert total == data.sum()

    def test_mink_accum_block(self, benchmark, data):
        op = MinKOp(10, INT_MAX)
        out = benchmark(lambda: op.accum_block(op.ident(), data))
        assert out[-1] == data.min()

    def test_counts_accum_block(self, benchmark, data):
        op = CountsOp(1024, base=0)
        small = data % 1024
        out = benchmark(lambda: op.accum_block(op.ident(), small))
        assert out.sum() == N

    def test_sorted_accum_block(self, benchmark, sorted_data):
        op = SortedOp()
        out = benchmark(lambda: op.accum_block(op.ident(), sorted_data))
        assert out.status

    def test_extrema_accum_block(self, benchmark, data):
        op = ExtremaKLocOp(10)
        pairs = np.column_stack([data.astype(float), np.arange(float(N))])
        state = benchmark(lambda: op.accum_block(op.ident(), pairs))
        assert state.top[0, 0] == data.max()


class TestCombinePhase:
    def test_mink_combine(self, benchmark, data):
        op = MinKOp(10, INT_MAX)
        s1 = op.accum_block(op.ident(), data[: N // 2])
        s2 = op.accum_block(op.ident(), data[N // 2 :])
        benchmark(lambda: op.combine(s1.copy(), s2))

    def test_extrema_combine(self, benchmark, data):
        op = ExtremaKLocOp(10)
        pairs = np.column_stack([data.astype(float), np.arange(float(N))])
        s1 = op.accum_block(op.ident(), pairs[: N // 2])
        s2 = op.accum_block(op.ident(), pairs[N // 2 :])
        import copy

        benchmark(lambda: op.combine(copy.deepcopy(s1), s2))


class TestDSLOverhead:
    """The DSL-compiled sorted operator vs the hand-written class, on
    the per-element (interpreted) path where overhead would show."""

    SRC = """
    rsmpi operator sorted {
      non-commutative
      state { int first, last; int status; int seen; }
      void ident(state s) { s->first = 0; s->last = 0; s->status = 1;
                            s->seen = 0; }
      void accum(state s, int i) {
        if (!s->seen) { s->first = i; s->seen = 1; }
        else if (s->last > i) s->status = 0;
        s->last = i;
      }
      void combine(state s1, state s2) {
        if (s2->seen) {
          if (s1->seen) {
            s1->status &= s2->status && (s1->last <= s2->first);
            s1->last = s2->last;
          } else {
            s1->first = s2->first; s1->last = s2->last;
            s1->status = s2->status; s1->seen = 1;
          }
        }
      }
      int generate(state s) { return s->status; }
    }
    """

    def test_dsl_sorted_per_element(self, benchmark, sorted_data):
        op = compile_operator(self.SRC)
        chunk = sorted_data[:2000].tolist()

        def run():
            s = op.ident()
            for x in chunk:
                s = op.accum(s, x)
            return op.red_gen(s)

        assert benchmark(run) == 1

    def test_native_sorted_per_element(self, benchmark, sorted_data):
        op = SortedOp()
        chunk = sorted_data[:2000].tolist()

        def run():
            s = op.ident()
            for x in chunk:
                s = op.accum(s, x)
            return op.red_gen(s)

        assert benchmark(run) is True


class TestEndToEnd:
    @pytest.mark.parametrize("p", [1, 4])
    def test_global_reduce_wall(self, benchmark, data, p):
        op = MinKOp(10, INT_MAX)
        blocks = np.array_split(data, p)

        def run():
            return spmd_run(
                lambda comm: global_reduce(comm, op, blocks[comm.rank]), p
            ).returns[0]

        out = benchmark(run)
        assert out[-1] == data.min()


# ---------------------------------------------------------------------------
# Kernel-tier smoke (CLI entry point; no pytest/pytest-benchmark needed)
# ---------------------------------------------------------------------------

#: The elementwise operators the smoke gate times, with int64-friendly
#: identities (so scalar and kernel paths share dtypes exactly).
def _smoke_ops():
    from repro.ops import BandOp, BorOp, BxorOp, MaxOp, MinOp, SumOp

    return (
        ("sum", SumOp()),
        ("min", MinOp(np.iinfo(np.int64).max)),
        ("max", MaxOp(np.iinfo(np.int64).min)),
        ("band", BandOp()),
        ("bor", BorOp()),
        ("bxor", BxorOp()),
    )


def _time_best(fn, repeats=5):
    import time

    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_kernel_smoke(
    n: int = 1_000_000,
    floor: float = 5.0,
    scalar_probe: int = 65_536,
    out_path: str | None = "results/BENCH_ops_micro_kernels.json",
) -> dict:
    """Time the compiled kernel vs the scalar accum loop at ``n``
    elements per elementwise op.  The scalar loop is timed on a
    ``scalar_probe``-element prefix and scaled linearly (it is O(n)
    per-element dispatch; timing the full 1M in pure Python would just
    make CI slower, not the comparison fairer)."""
    import json
    from pathlib import Path

    from repro.core.kernels import compile_kernel, numba_available, numba_enabled

    rng = np.random.default_rng(33)
    data = rng.integers(1, 1 << 30, n, dtype=np.int64)
    probe = data[: min(scalar_probe, n)]
    scale = n / len(probe)

    per_op = []
    for name, op in _smoke_ops():
        kern = compile_kernel(op, data)
        state0 = op.ident()

        def scalar_run(op=op, state0=state0):
            s = state0
            for x in probe:
                s = op.accum(s, x)
            return s

        def kernel_run(op=op, kern=kern, state0=state0):
            return kern.accumulate(op, state0, data)

        expected = op.accum_block(op.ident(), data)
        got = kern.accumulate(op, op.ident(), data)
        assert np.asarray(expected).tobytes() == np.asarray(got).tobytes(), (
            f"{name}: kernel result diverges from accum_block"
        )

        scalar_s = _time_best(scalar_run) * scale
        kernel_s = _time_best(kernel_run)
        per_op.append(
            {
                "op": name,
                "kernel_kind": kern.kind,
                "scalar_s": scalar_s,
                "kernel_s": kernel_s,
                "speedup": scalar_s / kernel_s,
            }
        )

    report = {
        "n_elements": n,
        "dtype": "int64",
        "scalar_probe_elements": int(len(probe)),
        "floor": floor,
        "numba_available": numba_available(),
        "numba_enabled": numba_enabled(),
        "ops": per_op,
        "min_speedup": min(e["speedup"] for e in per_op),
    }
    if out_path is not None:
        out = Path(out_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Operator micro-benchmarks (kernel-tier smoke gate)."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the kernel-vs-scalar smoke comparison and assert the "
        "speedup floor",
    )
    parser.add_argument(
        "--n", type=int, default=1_000_000, metavar="ELEMS",
        help="elements per operator (default: 1M)",
    )
    parser.add_argument(
        "--floor", type=float, default=5.0, metavar="X",
        help="minimum acceptable kernel speedup over the scalar loop "
        "(default: 5.0)",
    )
    parser.add_argument(
        "--out", default="results/BENCH_ops_micro_kernels.json",
        metavar="PATH", help="JSON report destination",
    )
    ns = parser.parse_args(argv)
    if not ns.smoke:
        parser.error(
            "this entry point only implements --smoke; run the full "
            "suite via pytest benchmarks/bench_ops_micro.py"
        )
    report = run_kernel_smoke(n=ns.n, floor=ns.floor, out_path=ns.out)
    for entry in report["ops"]:
        print(
            f"  {entry['op']:>5}: scalar {entry['scalar_s'] * 1e3:9.1f} ms  "
            f"kernel {entry['kernel_s'] * 1e3:7.3f} ms  "
            f"{entry['speedup']:8.1f}x ({entry['kernel_kind']})"
        )
    print(
        f"kernel smoke: min speedup {report['min_speedup']:.1f}x over "
        f"{len(report['ops'])} ops at n={report['n_elements']} "
        f"(floor {report['floor']}x, numba="
        f"{'on' if report['numba_enabled'] else 'off'})"
    )
    if report["min_speedup"] < ns.floor:
        print(f"FAIL: below the {ns.floor}x floor")
        return 1
    print(f"OK: wrote {ns.out}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
