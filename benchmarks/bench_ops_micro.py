"""EX-OPS — micro-benchmarks of the operator machinery itself.

Wall-time measurements (pytest-benchmark) of the pieces the figure
benchmarks charge for: vectorized accumulate phases of the paper's
operators, combine functions, the DSL-compiled operator vs. the
hand-written one, and a whole in-process global reduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import global_reduce
from repro.ops import CountsOp, ExtremaKLocOp, MinKOp, SortedOp, SumOp
from repro.rsmpi import compile_operator
from repro.runtime import spmd_run

N = 100_000
INT_MAX = np.iinfo(np.int64).max


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    return rng.integers(0, 1_000_000, N)


@pytest.fixture(scope="module")
def sorted_data(data):
    return np.sort(data)


class TestAccumulatePhase:
    def test_sum_accum_block(self, benchmark, data):
        op = SumOp()
        total = benchmark(lambda: op.accum_block(0, data))
        assert total == data.sum()

    def test_mink_accum_block(self, benchmark, data):
        op = MinKOp(10, INT_MAX)
        out = benchmark(lambda: op.accum_block(op.ident(), data))
        assert out[-1] == data.min()

    def test_counts_accum_block(self, benchmark, data):
        op = CountsOp(1024, base=0)
        small = data % 1024
        out = benchmark(lambda: op.accum_block(op.ident(), small))
        assert out.sum() == N

    def test_sorted_accum_block(self, benchmark, sorted_data):
        op = SortedOp()
        out = benchmark(lambda: op.accum_block(op.ident(), sorted_data))
        assert out.status

    def test_extrema_accum_block(self, benchmark, data):
        op = ExtremaKLocOp(10)
        pairs = np.column_stack([data.astype(float), np.arange(float(N))])
        state = benchmark(lambda: op.accum_block(op.ident(), pairs))
        assert state.top[0, 0] == data.max()


class TestCombinePhase:
    def test_mink_combine(self, benchmark, data):
        op = MinKOp(10, INT_MAX)
        s1 = op.accum_block(op.ident(), data[: N // 2])
        s2 = op.accum_block(op.ident(), data[N // 2 :])
        benchmark(lambda: op.combine(s1.copy(), s2))

    def test_extrema_combine(self, benchmark, data):
        op = ExtremaKLocOp(10)
        pairs = np.column_stack([data.astype(float), np.arange(float(N))])
        s1 = op.accum_block(op.ident(), pairs[: N // 2])
        s2 = op.accum_block(op.ident(), pairs[N // 2 :])
        import copy

        benchmark(lambda: op.combine(copy.deepcopy(s1), s2))


class TestDSLOverhead:
    """The DSL-compiled sorted operator vs the hand-written class, on
    the per-element (interpreted) path where overhead would show."""

    SRC = """
    rsmpi operator sorted {
      non-commutative
      state { int first, last; int status; int seen; }
      void ident(state s) { s->first = 0; s->last = 0; s->status = 1;
                            s->seen = 0; }
      void accum(state s, int i) {
        if (!s->seen) { s->first = i; s->seen = 1; }
        else if (s->last > i) s->status = 0;
        s->last = i;
      }
      void combine(state s1, state s2) {
        if (s2->seen) {
          if (s1->seen) {
            s1->status &= s2->status && (s1->last <= s2->first);
            s1->last = s2->last;
          } else {
            s1->first = s2->first; s1->last = s2->last;
            s1->status = s2->status; s1->seen = 1;
          }
        }
      }
      int generate(state s) { return s->status; }
    }
    """

    def test_dsl_sorted_per_element(self, benchmark, sorted_data):
        op = compile_operator(self.SRC)
        chunk = sorted_data[:2000].tolist()

        def run():
            s = op.ident()
            for x in chunk:
                s = op.accum(s, x)
            return op.red_gen(s)

        assert benchmark(run) == 1

    def test_native_sorted_per_element(self, benchmark, sorted_data):
        op = SortedOp()
        chunk = sorted_data[:2000].tolist()

        def run():
            s = op.ident()
            for x in chunk:
                s = op.accum(s, x)
            return op.red_gen(s)

        assert benchmark(run) is True


class TestEndToEnd:
    @pytest.mark.parametrize("p", [1, 4])
    def test_global_reduce_wall(self, benchmark, data, p):
        op = MinKOp(10, INT_MAX)
        blocks = np.array_split(data, p)

        def run():
            return spmd_run(
                lambda comm: global_reduce(comm, op, blocks[comm.rank]), p
            ).returns[0]

        out = benchmark(run)
        assert out[-1] == data.min()
