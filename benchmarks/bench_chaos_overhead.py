"""EX-FAULTS — cost of fault injection and of recovering from it.

Three questions, each answered in virtual time (the currency of every
other figure) and persisted — fault counters included — into
``results/BENCH_bench_chaos_overhead.*.json`` by the shared
``phase_metrics`` fixture:

1. What does a fault *plan* cost when nothing goes wrong?  (Nothing:
   an all-zero-rate plan must leave the makespan bit-identical.)
2. What do lossy links cost?  (Retransmit backoff + delays, quantified
   as a makespan ratio; results stay bit-identical to fault-free.)
3. What does surviving a mid-combine fail-stop cost?  (The revoke /
   agree / shrink / re-combine round, quantified the same way.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import global_reduce
from repro.core.operator import state_equal
from repro.faults import FailStop, FaultPlan, LinkFaults
from repro.ops import SumOp
from repro.runtime import spmd_run

P = 8
N = 4_096

LOSSY = FaultPlan(
    seed=11,
    link=LinkFaults(drop_rate=0.2, dup_rate=0.2, delay_rate=0.2,
                    reorder_rate=0.2),
)
FAILSTOP = FaultPlan(seed=11, failstops=(FailStop(rank=5, at_op=1),))


def _blocks():
    rng = np.random.default_rng(23)
    return [rng.random(N) for _ in range(P)]


def _run(fault_plan=None):
    blocks = _blocks()

    def prog(comm):
        return global_reduce(comm, SumOp(), blocks[comm.rank])

    return spmd_run(prog, P, fault_plan=fault_plan)


class TestFaultOverhead:
    def test_null_plan_is_free(self, benchmark, results_dir):
        base = _run()
        nulled = benchmark(lambda: _run(FaultPlan(seed=11)))
        assert state_equal(nulled.returns, base.returns)
        assert nulled.time == base.time

    def test_lossy_links_cost_time_not_answers(self, benchmark, results_dir):
        base = _run()
        lossy = benchmark(lambda: _run(LOSSY))
        assert state_equal(lossy.returns, base.returns)
        assert lossy.time > base.time
        ratio = lossy.time / base.time
        print(f"\nlossy-link makespan overhead: {ratio:.2f}x "
              f"({base.time:.3e}s -> {lossy.time:.3e}s)")

    def test_failstop_recovery_cost(self, benchmark, results_dir):
        blocks = _blocks()
        survivors = [b for q, b in enumerate(blocks) if q != 5]

        def survivor_baseline(comm):
            return global_reduce(comm, SumOp(), survivors[comm.rank])

        base = spmd_run(survivor_baseline, P - 1)
        faulted = benchmark(lambda: _run(FAILSTOP))
        assert faulted.failed_ranks == {5}
        out = [r for q, r in enumerate(faulted.returns) if q != 5]
        assert state_equal(out, base.returns)
        # Recovery is pure overhead relative to having had the smaller
        # world from the start; the faults.recovery_vtime histogram in
        # the persisted metrics holds the per-run figure.
        ratio = faulted.time / base.time
        print(f"\nfail-stop recovery makespan overhead: {ratio:.2f}x "
              f"({base.time:.3e}s -> {faulted.time:.3e}s)")
