"""EX-HIER — flat vs hierarchical collectives on multi-tier fabrics.

The fabric layer (``repro.runtime.fabric``, docs/topology.md) prices
every message by the network tiers it crosses: intra-node links are
~10x faster than the inter-node tier.  The flat collective schedules
are blind to this — recursive doubling and Rabenseifner send a large
fraction of their traffic across the slow tier.  The hierarchical
schedules (``repro.mpi.collectives.allreduce_hierarchical`` /
``scan_hierarchical``) restructure the communication around the node
boundary: combine inside each node first, cross the slow tier once per
node (and, for splittable payloads, in parallel segment columns), then
redistribute on the fast tier.

This ablation sweeps rank counts {16, 32, 64} x ranks-per-node
{2, 4, 8} x payload sizes, measuring the **virtual makespan** of every
flat allreduce/scan schedule against the hierarchical one on the same
fabric, and writes ``results/BENCH_hierarchy.json``.

Acceptance (ISSUE 10), asserted by ``--smoke`` (the CI topology-smoke
job) and the full run alike:

* on ``multi_node(ranks_per_node=4)`` at 16 ranks the hierarchical
  allreduce beats the flat ring — and every other flat algorithm —
  for >= 1 MiB payloads;
* ``algorithm="auto"`` with a topology-fitted decision table selects
  the hierarchical schedule there (same makespan and message count as
  asking for it explicitly).

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_hierarchy.py [--smoke]

All numbers are virtual seconds from the deterministic simulator, so
results are exactly reproducible on any host.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.mpi import tuning as _tuning
from repro.mpi.op import SUM
from repro.runtime import spmd_run
from repro.runtime.fabric import multi_node
from repro.runtime.costmodel import CostModel

RANK_GRID = (16, 32, 64)
RANKS_PER_NODE_GRID = (2, 4, 8)
PAYLOAD_GRID = (8 * 1024, 256 * 1024, 1 << 20)  # 8 KiB .. 1 MiB
LARGE_PAYLOAD = 1 << 20

ALLREDUCE_FLAT = ("recursive_doubling", "ring", "rabenseifner")
SCAN_FLAT = ("binomial", "chain")


def _allreduce_prog(n_elems, algorithm):
    def prog(comm):
        arr = np.ones(n_elems, dtype=np.float64) * (comm.rank + 1)
        return comm.allreduce(arr, SUM, algorithm=algorithm)

    return prog


def _scan_prog(n_elems, algorithm):
    def prog(comm):
        arr = np.ones(n_elems, dtype=np.float64) * (comm.rank + 1)
        return comm.scan(arr, SUM, algorithm=algorithm)

    return prog


def _cell(kind, nbytes, nprocs, ranks_per_node):
    """Virtual makespans of every schedule for one grid cell."""
    n_elems = max(nprocs, nbytes // 8)
    topo = multi_node(ranks_per_node)
    flat_algos = ALLREDUCE_FLAT if kind == "allreduce" else SCAN_FLAT
    make = _allreduce_prog if kind == "allreduce" else _scan_prog
    times = {}
    for algo in flat_algos + ("hierarchical",):
        times[algo] = spmd_run(
            make(n_elems, algo), nprocs, topology=topo
        ).time
    best_flat = min(flat_algos, key=times.get)
    return {
        "kind": kind,
        "nprocs": nprocs,
        "ranks_per_node": ranks_per_node,
        "nbytes": nbytes,
        "times": times,
        "best_flat": best_flat,
        "hierarchical_speedup_vs_best_flat": (
            times[best_flat] / times["hierarchical"]
        ),
        "hierarchical_speedup_vs_ring": (
            times["ring"] / times["hierarchical"]
            if "ring" in times
            else None
        ),
    }


def run_grid(rank_grid, rpn_grid, payload_grid):
    cells = []
    for kind in ("allreduce", "scan"):
        for nprocs in rank_grid:
            for rpn in rpn_grid:
                for nbytes in payload_grid:
                    cells.append(_cell(kind, nbytes, nprocs, rpn))
    return cells


def check_auto_selects_hierarchical(nbytes=LARGE_PAYLOAD, nprocs=16, rpn=4):
    """Fit a per-fabric decision table and prove ``algorithm="auto"``
    routes the large-payload allreduce to the hierarchical schedule.

    Returns the evidence dict; restores the tuning registry afterwards
    so the ambient flat behavior is untouched.
    """
    topo = multi_node(rpn)
    sig = topo.signature
    table, _report = _tuning.fit_decision_table(
        rank_grid=(nprocs,),
        payload_grid=(4096, 65536, nbytes),
        topology=topo,
    )
    fitted_choice = _tuning.choose_allreduce(
        nbytes, nprocs, commutative=True, splittable=True,
        table=table,
    )
    n_elems = nbytes // 8
    _tuning.set_decision_table(table)
    try:
        auto = spmd_run(
            _allreduce_prog(n_elems, "auto"), nprocs, topology=topo
        )
        explicit = spmd_run(
            _allreduce_prog(n_elems, "hierarchical"), nprocs, topology=topo
        )
    finally:
        _tuning.set_decision_table(None, topology=sig)
    return {
        "topology": sig,
        "nprocs": nprocs,
        "nbytes": nbytes,
        "fitted_choice": fitted_choice,
        "auto_makespan": auto.time,
        "explicit_hierarchical_makespan": explicit.time,
        "auto_msgs": auto.summary_trace.n_sends,
        "explicit_msgs": explicit.summary_trace.n_sends,
        "auto_matches_explicit": (
            auto.time == explicit.time
            and auto.summary_trace.n_sends == explicit.summary_trace.n_sends
        ),
    }


def assert_acceptance(cells, auto_evidence):
    """The CI-enforced claims (raise AssertionError with evidence)."""
    gate = [
        c
        for c in cells
        if c["kind"] == "allreduce"
        and c["nprocs"] >= 16
        and c["ranks_per_node"] == 4
        and c["nbytes"] >= LARGE_PAYLOAD
    ]
    assert gate, "grid is missing the acceptance cell (16 ranks, rpn=4, 1 MiB)"
    for c in gate:
        t = c["times"]
        assert t["hierarchical"] < t["ring"], (
            f"hierarchical ({t['hierarchical']:.3e}s) does not beat the "
            f"flat ring ({t['ring']:.3e}s) at {c['nprocs']} ranks, "
            f"{c['nbytes']} B on multi_node:4"
        )
        assert t["hierarchical"] < t[c["best_flat"]], (
            f"hierarchical ({t['hierarchical']:.3e}s) does not beat the "
            f"best flat schedule {c['best_flat']} "
            f"({t[c['best_flat']]:.3e}s) at {c['nprocs']} ranks, "
            f"{c['nbytes']} B on multi_node:4"
        )
    assert auto_evidence["fitted_choice"] == "hierarchical", auto_evidence
    assert auto_evidence["auto_matches_explicit"], auto_evidence


def render(cells, auto_evidence) -> str:
    lines = ["flat vs hierarchical collectives (virtual seconds)"]
    for c in cells:
        t = c["times"]
        lines.append(
            f"  {c['kind']:<9} p={c['nprocs']:<3} rpn={c['ranks_per_node']} "
            f"{c['nbytes'] // 1024:>5} KiB: "
            f"hier {t['hierarchical']:.3e}s vs best-flat "
            f"{c['best_flat']} {t[c['best_flat']]:.3e}s "
            f"({c['hierarchical_speedup_vs_best_flat']:.2f}x)"
        )
    ev = auto_evidence
    lines.append(
        f"  auto on fitted {ev['topology']}: chose "
        f"{ev['fitted_choice']!r}, makespan matches explicit "
        f"hierarchical: {ev['auto_matches_explicit']}"
    )
    return "\n".join(lines)


def measure(smoke: bool) -> dict:
    if smoke:
        cells = run_grid((16,), (4,), (LARGE_PAYLOAD,))
    else:
        cells = run_grid(RANK_GRID, RANKS_PER_NODE_GRID, PAYLOAD_GRID)
    auto_evidence = check_auto_selects_hierarchical()
    cm = CostModel()
    return {
        "mode": "smoke" if smoke else "full",
        "cost_model": {
            "latency": cm.latency,
            "byte_time": cm.byte_time,
        },
        "grid": cells,
        "auto_selection": auto_evidence,
    }


class TestHierarchyBench:
    def test_hierarchical_beats_flat_on_acceptance_cell(self, results_dir):
        m = measure(smoke=True)
        assert_acceptance(m["grid"], m["auto_selection"])
        (results_dir / "BENCH_hierarchy_smoke.json").write_text(
            json.dumps(m, indent=2) + "\n"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="only the acceptance cell (16 ranks, 4 ranks/node, 1 MiB) "
        "plus the fitted-auto check (CI topology smoke)",
    )
    args = parser.parse_args()

    m = measure(args.smoke)
    print(render(m["grid"], m["auto_selection"]))
    assert_acceptance(m["grid"], m["auto_selection"])

    results = Path(__file__).resolve().parent.parent / "results"
    results.mkdir(exist_ok=True)
    suffix = "_smoke" if args.smoke else ""
    (results / f"BENCH_hierarchy{suffix}.json").write_text(
        json.dumps(m, indent=2) + "\n"
    )
    (results / f"hierarchy{suffix}.txt").write_text(
        render(m["grid"], m["auto_selection"]) + "\n"
    )
    print(
        f"PASS: hierarchical beats flat on the acceptance cell; "
        f"auto selects it on a fitted fabric "
        f"(results/BENCH_hierarchy{suffix}.json)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
