"""EX-SCANOH — the abstraction is free (extension ablation).

The paper's RSMPI discussion asserts "it is always possible to write MPI
that is as fast as RSMPI" — the abstraction adds convenience, not cost.
This ablation checks the converse direction for our implementation: the
global-view scan driver (Listing 3) must cost the same as hand-written
local-view code doing exactly what it does — local accumulate, one
exscan of the partials, local generate pass.

If these ever diverge, the driver has grown overhead the paper's design
does not license.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import PROC_GRID, write_result
from repro import mpi
from repro.core import global_scan
from repro.localview import LOCAL_XSCAN
from repro.ops import SumOp
from repro.runtime import spmd_run

N = 1 << 20  # total elements


def _blocks(p):
    whole = np.arange(N, dtype=np.float64)
    bounds = [r * N // p for r in range(p + 1)]
    return [whole[bounds[r] : bounds[r + 1]] for r in range(p)]


def _globalview_time(p, cost_model):
    blocks = _blocks(p)

    def prog(comm):
        return global_scan(
            comm, SumOp(0.0), blocks[comm.rank], accum_rate="np_check"
        )[-1]

    return spmd_run(prog, p, cost_model=cost_model).time


def _handwritten_time(p, cost_model):
    """The local-view chore: what RSMPI generates, written by hand."""
    blocks = _blocks(p)

    def prog(comm):
        local = blocks[comm.rank]
        partial = float(local.sum())  # accumulate phase by hand
        comm.charge_elements("np_check", len(local), "hand:accum")
        prefix = LOCAL_XSCAN(comm, lambda: 0.0, mpi.SUM, partial)
        out = prefix + np.cumsum(local)  # generate phase by hand
        comm.charge_elements("np_check", len(local), "hand:gen")
        return out[-1]

    return spmd_run(prog, p, cost_model=cost_model).time


def test_scan_abstraction_overhead(benchmark, cost_model, results_dir):
    def sweep():
        rows = []
        for p in PROC_GRID:
            gv = _globalview_time(p, cost_model)
            hw = _handwritten_time(p, cost_model)
            rows.append((p, gv, hw))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"EX-SCANOH — global-view scan vs hand-written local-view "
        f"({N} doubles, SUM)",
        f"{'p':>4s}  {'global-view':>12s}  {'hand-written':>12s}  "
        f"{'overhead':>9s}",
    ]
    for p, gv, hw in rows:
        lines.append(
            f"{p:>4d}  {gv:>12.3e}  {hw:>12.3e}  {gv / hw - 1:>8.1%}"
        )
    write_result(results_dir, "scan_abstraction_overhead.txt",
                 "\n".join(lines))

    # results identical, virtual times within 10% at every p
    for p, gv, hw in rows:
        assert abs(gv - hw) / hw < 0.10, (p, gv, hw)
