"""Chapel-style global-view distributed arrays.

A :class:`GlobalArray` gives SPMD code the paper's *global view*: the
program manipulates one conceptual array, and the per-processor blocks
live inside the abstraction.  The Chapel one-liners of §3.1 map directly::

    minimums = mink(integer, 10) reduce A;        # Chapel
    minimums = A.reduce(MinKOp(10, INT_MAX))      # here

    var (val, loc) = mini(integer) reduce [i in 1..n] (A(i), i);
    val, loc = A.reduce_with_index(MiniOp())

Scans and non-commutative reductions require an order-preserving
distribution (Block); commutative reductions accept any distribution —
enforcing the semantic distinction the paper draws in §1.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.arrays.distribution import BlockDist, Distribution
from repro.core.operator import ReduceScanOp
from repro.core.reduce import global_reduce
from repro.core.scan import global_scan, global_xscan
from repro.errors import DistributionError
from repro.mpi.comm import Communicator

__all__ = ["GlobalArray"]


class GlobalArray:
    """One conceptual array of ``n`` elements distributed over the ranks
    of a communicator.

    Every method is **collective**: all ranks of the communicator must
    call it with compatible arguments.  ``local`` exposes this rank's
    block as a NumPy array (mutable in place).
    """

    def __init__(
        self,
        comm: Communicator,
        local: np.ndarray,
        dist: Distribution,
    ):
        if dist.p != comm.size:
            raise DistributionError(
                f"distribution is over {dist.p} ranks but communicator has "
                f"{comm.size}"
            )
        expected = dist.local_count(comm.rank)
        if len(local) != expected:
            raise DistributionError(
                f"rank {comm.rank}: local block has {len(local)} elements, "
                f"distribution expects {expected}"
            )
        self.comm = comm
        self.local = local
        self.dist = dist

    # -- constructors -------------------------------------------------------

    @classmethod
    def zeros(
        cls,
        comm: Communicator,
        n: int,
        dtype=np.float64,
        dist_cls: type[Distribution] = BlockDist,
        **dist_kwargs: Any,
    ) -> "GlobalArray":
        dist = dist_cls(n, comm.size, **dist_kwargs)
        return cls(comm, np.zeros(dist.local_count(comm.rank), dtype=dtype), dist)

    @classmethod
    def from_function(
        cls,
        comm: Communicator,
        n: int,
        fn: Callable[[np.ndarray], np.ndarray],
        dtype=np.float64,
        dist_cls: type[Distribution] = BlockDist,
        **dist_kwargs: Any,
    ) -> "GlobalArray":
        """Build from a vectorized function of the global indices (each
        rank evaluates ``fn`` on the indices it owns — no communication)."""
        dist = dist_cls(n, comm.size, **dist_kwargs)
        idx = dist.global_indices(comm.rank)
        local = np.asarray(fn(idx), dtype=dtype)
        return cls(comm, local, dist)

    @classmethod
    def from_global(
        cls,
        comm: Communicator,
        data: np.ndarray | Sequence[Any],
        dist_cls: type[Distribution] = BlockDist,
        **dist_kwargs: Any,
    ) -> "GlobalArray":
        """Build from a replicated global array (every rank passes the
        same data and keeps only its slice; test/example convenience)."""
        data = np.asarray(data)
        dist = dist_cls(len(data), comm.size, **dist_kwargs)
        return cls(comm, data[dist.global_indices(comm.rank)].copy(), dist)

    # -- properties ------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.dist.n

    @property
    def dtype(self):
        return self.local.dtype

    def global_indices(self) -> np.ndarray:
        """Global indices of this rank's local elements."""
        return self.dist.global_indices(self.comm.rank)

    # -- global-view reductions and scans ---------------------------------------

    def _require_order(self, what: str, op: ReduceScanOp | None = None) -> None:
        if not self.dist.is_order_preserving:
            name = f" {op.name}" if op is not None else ""
            raise DistributionError(
                f"{what}{name} requires an order-preserving distribution "
                f"(e.g. BlockDist); {type(self.dist).__name__} interleaves "
                "ranks, so rank-order combining would not follow global order"
            )

    def reduce(self, op: ReduceScanOp, **kwargs: Any) -> Any:
        """``op reduce A``: global-view reduction over the whole array."""
        if not op.commutative:
            self._require_order("a non-commutative reduction with", op)
        return global_reduce(self.comm, op, self.local, **kwargs)

    def reduce_with_index(self, op: ReduceScanOp, **kwargs: Any) -> Any:
        """Reduce over ``(value, global index)`` pairs — the Chapel idiom
        ``op reduce [i in 1..n] (A(i), i)`` for mini/maxi/extrema."""
        if not op.commutative:
            self._require_order("a non-commutative reduction with", op)
        pairs = np.column_stack(
            [np.asarray(self.local, dtype=np.float64), self.global_indices()]
        )
        return global_reduce(self.comm, op, pairs, **kwargs)

    def scan(self, op: ReduceScanOp, **kwargs: Any) -> "GlobalArray":
        """``op scan A``: inclusive global-view scan; returns a new
        GlobalArray with the same distribution."""
        self._require_order("a scan with", op)
        out = global_scan(self.comm, op, self.local, **kwargs)
        return GlobalArray(self.comm, np.asarray(out), self.dist)

    def xscan(self, op: ReduceScanOp, **kwargs: Any) -> "GlobalArray":
        """Exclusive global-view scan; returns a new GlobalArray."""
        self._require_order("a scan with", op)
        out = global_xscan(self.comm, op, self.local, **kwargs)
        return GlobalArray(self.comm, np.asarray(out), self.dist)

    # -- data movement ------------------------------------------------------------

    def to_global(self) -> np.ndarray:
        """Collect the full array on every rank (collective; for
        verification and small results only)."""
        blocks = self.comm.allgather(self.local)
        out = np.empty(self.n, dtype=self.local.dtype)
        for rank, block in enumerate(blocks):
            out[self.dist.global_indices(rank)] = block
        return out

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "GlobalArray":
        """Element-wise transform (no communication)."""
        return GlobalArray(self.comm, np.asarray(fn(self.local)), self.dist)

    def sort(self) -> "GlobalArray":
        """Globally sort the array (sample sort); the result is a new
        GlobalArray over an :class:`ExplicitDist` — contiguous in rank
        order, approximately balanced."""
        from repro.algorithms import sample_sort
        from repro.arrays.distribution import ExplicitDist

        self._require_order("sort() on")
        out = sample_sort(self.comm, self.local)
        counts = self.comm.allgather(len(out))
        return GlobalArray(self.comm, out, ExplicitDist(counts))

    def filter(self, mask: np.ndarray) -> "GlobalArray":
        """Keep the elements whose local ``mask`` entry is True, in
        global order, rebalanced into blocks (scan-based compaction)."""
        from repro.algorithms import stream_compact

        self._require_order("filter() on")
        out = stream_compact(self.comm, self.local, mask)
        from repro.arrays.distribution import ExplicitDist

        counts = self.comm.allgather(len(out))
        return GlobalArray(self.comm, out, ExplicitDist(counts))

    # -- element-wise arithmetic (no communication) --------------------------

    def _binary(self, other: Any, fn) -> "GlobalArray":
        if isinstance(other, GlobalArray):
            if type(other.dist) is not type(self.dist) or other.n != self.n:
                raise DistributionError(
                    "element-wise operations need identically distributed "
                    f"arrays; got {self.dist} vs {other.dist}"
                )
            return GlobalArray(self.comm, fn(self.local, other.local), self.dist)
        return GlobalArray(self.comm, fn(self.local, other), self.dist)

    def __add__(self, other):
        return self._binary(other, np.add)

    def __radd__(self, other):
        return self._binary(other, lambda a, b: np.add(b, a))

    def __sub__(self, other):
        return self._binary(other, np.subtract)

    def __rsub__(self, other):
        return self._binary(other, lambda a, b: np.subtract(b, a))

    def __mul__(self, other):
        return self._binary(other, np.multiply)

    def __rmul__(self, other):
        return self._binary(other, lambda a, b: np.multiply(b, a))

    def __truediv__(self, other):
        return self._binary(other, np.divide)

    def __neg__(self):
        return GlobalArray(self.comm, -self.local, self.dist)

    def dot(self, other: "GlobalArray") -> Any:
        """Distributed inner product: one SUM all-reduce."""
        from repro import mpi as _mpi

        if not isinstance(other, GlobalArray):
            raise DistributionError("dot() needs another GlobalArray")
        prod = self._binary(other, np.multiply)
        local = float(prod.local.sum()) if len(prod.local) else 0.0
        return self.comm.allreduce(local, _mpi.SUM)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GlobalArray(n={self.n}, dtype={self.dtype}, "
            f"dist={type(self.dist).__name__}, rank={self.comm.rank}, "
            f"local={len(self.local)})"
        )
