"""Global-view distributed arrays and their distributions."""

from repro.arrays.distribution import (
    BlockCyclicDist,
    BlockDist,
    CyclicDist,
    Distribution,
    ExplicitDist,
)
from repro.arrays.global_array import GlobalArray
from repro.arrays.multidim import GlobalMatrix

__all__ = [
    "Distribution",
    "BlockDist",
    "CyclicDist",
    "BlockCyclicDist",
    "ExplicitDist",
    "GlobalArray",
    "GlobalMatrix",
]
