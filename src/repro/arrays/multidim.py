"""Multidimensional scans over distributed matrices.

The paper's definition section singles out the exclusive scan because
"it enables the elegant recursive definitions of multidimensional
scans".  This module realizes that remark: the 2-D prefix (summed-area
table and its min/max/product cousins) of a row-block-distributed
matrix decomposes into

1. a *local* 2-D prefix of each rank's row block,
2. **one exclusive scan over ranks** of the per-rank column-reduction
   vector (an aggregated exscan: a single message per tree edge carries
   all C columns — §2.1's aggregation), and
3. a local combine of the accumulated carry into every row.

No other communication is needed; the exclusive scan *is* the
multidimensional recursion step.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import DistributionError
from repro.localview.api import LOCAL_XSCAN
from repro.mpi.comm import Communicator
from repro.mpi.op import Op
from repro.ops.arithmetic import UfuncOp

__all__ = ["GlobalMatrix"]


class GlobalMatrix:
    """An (n_rows x n_cols) matrix distributed by row blocks.

    Every method is collective.  ``local`` is this rank's contiguous
    block of rows.
    """

    def __init__(self, comm: Communicator, local: np.ndarray, n_rows: int):
        local = np.asarray(local)
        if local.ndim != 2:
            raise DistributionError(
                f"GlobalMatrix local block must be 2-D, got {local.ndim}-D"
            )
        counts = comm.allgather(len(local))
        if sum(counts) != n_rows:
            raise DistributionError(
                f"local row counts {counts} sum to {sum(counts)}, "
                f"expected {n_rows}"
            )
        self.comm = comm
        self.local = local
        self.n_rows = n_rows
        self.n_cols = local.shape[1]
        self.row_offset = sum(counts[: comm.rank])

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_global(cls, comm: Communicator, data: np.ndarray) -> "GlobalMatrix":
        """Every rank passes the same full matrix; keeps its row block."""
        data = np.asarray(data)
        n = len(data)
        base, extra = divmod(n, comm.size)
        lo = comm.rank * base + min(comm.rank, extra)
        hi = lo + base + (1 if comm.rank < extra else 0)
        return cls(comm, data[lo:hi].copy(), n)

    @classmethod
    def from_function(
        cls, comm: Communicator, n_rows: int, n_cols: int, fn
    ) -> "GlobalMatrix":
        """Build from a vectorized function of (row, col) index arrays."""
        base, extra = divmod(n_rows, comm.size)
        lo = comm.rank * base + min(comm.rank, extra)
        hi = lo + base + (1 if comm.rank < extra else 0)
        rows = np.arange(lo, hi)[:, None]
        cols = np.arange(n_cols)[None, :]
        return cls(comm, np.asarray(fn(rows, cols)), n_rows)

    # -- collective operations -------------------------------------------------

    def _require_ufunc(self, op: Any) -> np.ufunc:
        if isinstance(op, UfuncOp):
            return op._ufunc
        raise DistributionError(
            "2-D prefix requires a UfuncOp (sum/prod/min/max family); "
            f"got {type(op).__name__}"
        )

    def prefix2d(self, op: UfuncOp) -> "GlobalMatrix":
        """Inclusive 2-D prefix: out[i, j] = op over the rectangle
        [0..i] x [0..j] (the summed-area table when op is SumOp).

        Exactly one aggregated exclusive scan over ranks.
        """
        ufunc = self._require_ufunc(op)
        # (1) local 2-D prefix
        if self.local.size:
            local_prefix = ufunc.accumulate(
                ufunc.accumulate(self.local, axis=0), axis=1
            )
            col_reduced = ufunc.reduce(self.local, axis=0)
        else:
            local_prefix = self.local.copy()
            col_reduced = np.full(
                self.n_cols, op.identity_value,
                dtype=np.result_type(self.local.dtype, type(op.identity_value)),
            )
        # (2) the multidimensional recursion step: ONE exclusive scan of
        # the column-reduction vectors (aggregated: all C columns in one
        # message per tree edge)
        carry = LOCAL_XSCAN(
            self.comm,
            lambda: np.full_like(col_reduced, op.identity_value),
            Op(ufunc, commutative=True, name=op.name),
            col_reduced,
        )
        # (3) fold the carry in locally: its horizontal prefix is the
        # "everything above and to the left" contribution
        if self.local.size:
            h = ufunc.accumulate(carry)
            out = ufunc(local_prefix, h[None, :])
        else:
            out = local_prefix
        return GlobalMatrix(self.comm, out, self.n_rows)

    def reduce_all(self, op: UfuncOp) -> Any:
        """Reduce every element to a single value (on all ranks)."""
        ufunc = self._require_ufunc(op)
        local = (
            ufunc.reduce(self.local, axis=None)
            if self.local.size
            else op.identity_value
        )
        return self.comm.allreduce(local, Op(ufunc, name=op.name))

    def reduce_cols(self, op: UfuncOp) -> np.ndarray:
        """Column-wise reduction (length n_cols, on all ranks): one
        aggregated all-reduce."""
        ufunc = self._require_ufunc(op)
        local = (
            ufunc.reduce(self.local, axis=0)
            if self.local.size
            else np.full(self.n_cols, op.identity_value)
        )
        return self.comm.allreduce(local, Op(ufunc, name=op.name))

    def reduce_rows(self, op: UfuncOp) -> np.ndarray:
        """Row-wise reduction of the local block (no communication —
        rows are local)."""
        ufunc = self._require_ufunc(op)
        if not self.local.size:
            return np.empty(0, dtype=self.local.dtype)
        return ufunc.reduce(self.local, axis=1)

    def to_global(self) -> np.ndarray:
        """Collect the full matrix on every rank (verification only)."""
        blocks = self.comm.allgather(self.local)
        return np.vstack([b for b in blocks if len(b)])

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GlobalMatrix({self.n_rows}x{self.n_cols}, rank="
            f"{self.comm.rank}, rows={len(self.local)})"
        )
