"""1-D data distributions for global-view arrays.

A distribution maps global indices ``0..n-1`` onto ``p`` ranks.  Three
classics are provided:

* :class:`BlockDist` — contiguous blocks (Chapel's default; the only
  distribution under which rank order equals global order, hence the
  only one non-commutative reductions and *all* scans accept);
* :class:`CyclicDist` — round-robin;
* :class:`BlockCyclicDist` — round-robin blocks of a given size.

The semantic interplay between distribution and operator commutativity
is itself one of the paper's points: a commutative reduction is
distribution-agnostic, a non-commutative one is meaningful only when the
per-rank runs concatenate in global order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DistributionError

__all__ = ["Distribution", "BlockDist", "CyclicDist", "BlockCyclicDist", "ExplicitDist"]


@dataclass(frozen=True)
class Distribution:
    """Base class; subclasses implement the index algebra."""

    n: int
    p: int

    def __post_init__(self):
        if self.n < 0:
            raise DistributionError(f"array size must be >= 0, got {self.n}")
        if self.p < 1:
            raise DistributionError(f"rank count must be >= 1, got {self.p}")

    # -- required ----------------------------------------------------------

    def owner(self, i: int) -> int:
        """Rank owning global index ``i``."""
        raise NotImplementedError

    def local_count(self, rank: int) -> int:
        """Number of elements on ``rank``."""
        raise NotImplementedError

    def global_indices(self, rank: int) -> np.ndarray:
        """Global indices owned by ``rank``, in local storage order."""
        raise NotImplementedError

    # -- derived -----------------------------------------------------------

    @property
    def is_order_preserving(self) -> bool:
        """True when concatenating local blocks in rank order yields the
        global order — the property scans and non-commutative reductions
        require."""
        return False

    def check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.p:
            raise DistributionError(
                f"rank {rank} out of range [0, {self.p})"
            )

    def check_index(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise DistributionError(
                f"global index {i} out of range [0, {self.n})"
            )


class BlockDist(Distribution):
    """Contiguous blocks, remainder spread over the first ranks.

    Rank r owns ``[r*base + min(r, extra), ...)`` of length ``base + 1``
    for the first ``extra = n % p`` ranks and ``base`` for the rest.
    """

    @property
    def is_order_preserving(self) -> bool:
        return True

    def bounds(self, rank: int) -> tuple[int, int]:
        """Half-open global range ``[lo, hi)`` owned by ``rank``."""
        self.check_rank(rank)
        base, extra = divmod(self.n, self.p)
        lo = rank * base + min(rank, extra)
        hi = lo + base + (1 if rank < extra else 0)
        return lo, hi

    def owner(self, i: int) -> int:
        self.check_index(i)
        base, extra = divmod(self.n, self.p)
        cutoff = (base + 1) * extra
        if i < cutoff:
            return i // (base + 1)
        if base == 0:
            raise DistributionError(
                f"index {i} beyond the populated ranks (n < p)"
            )  # pragma: no cover - check_index already guards
        return extra + (i - cutoff) // base

    def local_count(self, rank: int) -> int:
        lo, hi = self.bounds(rank)
        return hi - lo

    def global_indices(self, rank: int) -> np.ndarray:
        lo, hi = self.bounds(rank)
        return np.arange(lo, hi)

    def to_local(self, i: int) -> tuple[int, int]:
        """Map a global index to ``(owner, local offset)``."""
        r = self.owner(i)
        lo, _ = self.bounds(r)
        return r, i - lo


class CyclicDist(Distribution):
    """Round-robin: global index ``i`` lives on rank ``i % p``."""

    def owner(self, i: int) -> int:
        self.check_index(i)
        return i % self.p

    def local_count(self, rank: int) -> int:
        self.check_rank(rank)
        return max(0, (self.n - rank + self.p - 1) // self.p)

    def global_indices(self, rank: int) -> np.ndarray:
        self.check_rank(rank)
        return np.arange(rank, self.n, self.p)


class BlockCyclicDist(Distribution):
    """Round-robin blocks of ``block`` consecutive elements."""

    def __init__(self, n: int, p: int, block: int):
        super().__init__(n, p)
        if block < 1:
            raise DistributionError(f"block size must be >= 1, got {block}")
        object.__setattr__(self, "block", block)

    def owner(self, i: int) -> int:
        self.check_index(i)
        return (i // self.block) % self.p

    def global_indices(self, rank: int) -> np.ndarray:
        self.check_rank(rank)
        idx = np.arange(self.n)
        return idx[(idx // self.block) % self.p == rank]

    def local_count(self, rank: int) -> int:
        return len(self.global_indices(rank))

    @property
    def is_order_preserving(self) -> bool:
        # Degenerate case: one block per rank at most (block*p >= n means
        # each rank holds a single contiguous run in rank order).
        return self.block * self.p >= self.n


class ExplicitDist(Distribution):
    """Contiguous blocks with explicitly given per-rank counts.

    The result shape of data-dependent operations (sorting, filtering)
    whose blocks are contiguous in rank order but not balanced.  Order
    preserving, like :class:`BlockDist`.
    """

    def __init__(self, counts: "list[int] | tuple[int, ...]"):
        counts = tuple(int(c) for c in counts)
        if any(c < 0 for c in counts):
            raise DistributionError(f"negative counts: {counts}")
        super().__init__(sum(counts), len(counts))
        object.__setattr__(self, "counts", counts)
        starts = [0]
        for c in counts:
            starts.append(starts[-1] + c)
        object.__setattr__(self, "_starts", tuple(starts))

    @property
    def is_order_preserving(self) -> bool:
        return True

    def bounds(self, rank: int) -> tuple[int, int]:
        self.check_rank(rank)
        return self._starts[rank], self._starts[rank + 1]

    def owner(self, i: int) -> int:
        self.check_index(i)
        # binary search over the start offsets
        lo, hi = 0, self.p - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._starts[mid + 1] <= i:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def local_count(self, rank: int) -> int:
        self.check_rank(rank)
        return self.counts[rank]

    def global_indices(self, rank: int) -> np.ndarray:
        lo, hi = self.bounds(rank)
        return np.arange(lo, hi)
