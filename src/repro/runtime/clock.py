"""Per-rank virtual clocks for the simulated-time execution model.

Each rank of an SPMD run owns a :class:`VirtualClock`.  Local work advances
the clock by a modeled (or measured) duration; message receipt merges the
sender's timestamp so that causality is respected:

    t_recv' = max(t_recv, t_msg_available) + o_recv

The maximum over all ranks' final clocks is the simulated makespan, the
quantity reported as "time" by every figure-reproduction benchmark.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing virtual timestamp for one rank."""

    __slots__ = ("t",)

    def __init__(self, t: float = 0.0):
        self.t = float(t)

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds (must be >= 0); return t."""
        if dt < 0:
            raise ValueError(f"cannot advance a clock by a negative dt ({dt})")
        self.t += dt
        return self.t

    def merge(self, other_t: float) -> float:
        """Synchronize with an external timestamp: t = max(t, other_t)."""
        if other_t > self.t:
            self.t = other_t
        return self.t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(t={self.t:.9f})"
