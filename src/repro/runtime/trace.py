"""Per-rank execution traces: message counters and optional event logs.

Traces serve two distinct purposes in this reproduction:

* **Cost accounting** — the analysis layer reads message/byte counters to
  explain where simulated time went.
* **Call census** — ``repro.nas.callcounts`` reproduces the paper's
  "nearly 9% of MPI calls are reductions" statistic by classifying the
  collective-call counters recorded here.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["TraceEvent", "Trace", "merge_traces", "REDUCTION_CALLS"]

#: Collective names that count as "reductions" for the NPB call census
#: (MPI classifies scan as a reduction-family collective as well).
REDUCTION_CALLS = frozenset(
    {"reduce", "allreduce", "scan", "exscan", "reduce_scatter"}
)


@dataclass(frozen=True)
class TraceEvent:
    """A single timestamped event on one rank's timeline."""

    kind: str  # "send" | "recv" | "compute" | "collective"
    t: float  # virtual time at completion of the event
    detail: tuple[Any, ...] = ()
    #: Source rank of the event; only set on merged traces (a per-rank
    #: trace's events all belong to that trace's own rank).
    rank: int | None = None


@dataclass
class Trace:
    """Counters (always on) plus an optional event log for one rank."""

    rank: int = 0
    record_events: bool = False
    n_sends: int = 0
    n_recvs: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    compute_seconds: float = 0.0
    collective_calls: Counter = field(default_factory=Counter)
    p2p_calls: Counter = field(default_factory=Counter)
    events: list[TraceEvent] = field(default_factory=list)

    # -- recording hooks (called by the communicator/runtime) -------------

    def on_send(self, dest: int, tag: int, nbytes: int, t: float) -> None:
        """Record one outgoing message (called by the runtime)."""
        self.n_sends += 1
        self.bytes_sent += nbytes
        if self.record_events:
            self.events.append(TraceEvent("send", t, (dest, tag, nbytes)))

    def on_recv(self, source: int, tag: int, nbytes: int, t: float) -> None:
        """Record one received message (called by the runtime)."""
        self.n_recvs += 1
        self.bytes_received += nbytes
        if self.record_events:
            self.events.append(TraceEvent("recv", t, (source, tag, nbytes)))

    def on_compute(self, label: str, seconds: float, t: float) -> None:
        """Record charged local-compute time (called by the runtime)."""
        self.compute_seconds += seconds
        if self.record_events:
            self.events.append(TraceEvent("compute", t, (label, seconds)))

    def on_collective(self, name: str, t: float) -> None:
        """Record entry into a named collective (called by Communicator)."""
        self.collective_calls[name] += 1
        if self.record_events:
            self.events.append(TraceEvent("collective", t, (name,)))

    def on_p2p(self, name: str) -> None:
        """Record an explicit user point-to-point call (send/recv)."""
        self.p2p_calls[name] += 1

    # -- queries -----------------------------------------------------------

    @property
    def n_collective_calls(self) -> int:
        """Total collective calls recorded on this rank."""
        return sum(self.collective_calls.values())

    @property
    def n_reduction_calls(self) -> int:
        """Collective calls that are reductions (see REDUCTION_CALLS)."""
        return sum(
            count
            for name, count in self.collective_calls.items()
            if name in REDUCTION_CALLS
        )

    def reduction_fraction(self) -> float:
        """Fraction of all communication *calls* that are reductions,
        counting both collectives and explicit point-to-point calls."""
        total = self.n_collective_calls + sum(self.p2p_calls.values())
        if total == 0:
            return 0.0
        return self.n_reduction_calls / total


def merge_traces(traces: Iterable[Trace]) -> Trace:
    """Aggregate several ranks' traces into one summary trace.

    Counters sum; event logs concatenate (each event tagged with its
    source rank, the merged stream sorted by timestamp) and the
    ``record_events`` flag survives if any input recorded events.
    """
    out = Trace(rank=-1)
    merged_events: list[TraceEvent] = []
    for tr in traces:
        out.n_sends += tr.n_sends
        out.n_recvs += tr.n_recvs
        out.bytes_sent += tr.bytes_sent
        out.bytes_received += tr.bytes_received
        out.compute_seconds += tr.compute_seconds
        out.collective_calls.update(tr.collective_calls)
        out.p2p_calls.update(tr.p2p_calls)
        out.record_events = out.record_events or tr.record_events
        merged_events.extend(
            TraceEvent(ev.kind, ev.t, ev.detail,
                       rank=ev.rank if ev.rank is not None else tr.rank)
            for ev in tr.events
        )
    merged_events.sort(key=lambda ev: ev.t)
    out.events = merged_events
    return out
