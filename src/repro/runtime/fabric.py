"""Pluggable multi-tier network fabric model.

The original simulator charged every rank pair the same flat LogGP wire
time — a single switch with uniform links.  Real clusters (the paper's
IBM P655 included) are hierarchical: ranks share a node, nodes share a
rack switch, racks meet at a spine, and each tier has its own latency,
bandwidth and (for shared uplinks) oversubscription.  A
:class:`Topology` captures that shape and prices one message between two
ranks via :meth:`Topology.path_cost`, which
:meth:`repro.runtime.world.RankContext.send_raw` (and the lossy-link
layer in :mod:`repro.faults.reliable`) consult instead of calling
``CostModel.wire_time`` directly.

Three factories cover the useful shapes:

* :func:`flat` — one tier; ``path_cost`` delegates to the run's
  :class:`~repro.runtime.costmodel.CostModel` **bit-for-bit**, so the
  default topology reproduces every pre-fabric number exactly.
* :func:`multi_node` — ranks packed ``ranks_per_node`` per node inside
  one rack: fast intra-node links (shared memory/NVLink class), the
  cost model's parameters between nodes.
* :func:`fat_tree` — adds the rack tier: nodes grouped
  ``nodes_per_rack`` per ToR switch, inter-rack traffic crossing an
  oversubscribed spine (a static oversubscription factor multiplies the
  per-byte time — deterministic, so virtual times stay reproducible).

Topologies are *shapes*, not allocations: ``node_of``/``rack_of`` are
pure functions of the rank number, so one instance serves any world
size.  Non-flat topologies also keep per-tier traffic counters
(:meth:`Topology.stats`), surfaced as ``fabric.congestion.*`` telemetry
by the engine.
"""

from __future__ import annotations

import threading

__all__ = [
    "Topology",
    "FlatTopology",
    "HierarchicalTopology",
    "FLAT",
    "flat",
    "multi_node",
    "fat_tree",
    "parse_topology",
    "contiguous_node_groups",
]

#: Default intra-node link: sub-microsecond latency, ~10 GB/s — the
#: shared-memory class of transport (matches ``costmodel.modern_node``).
INTRA_NODE_LATENCY = 5.0e-7
INTRA_NODE_BYTE_TIME = 1.0 / 10.0e9


class Topology:
    """Base class: placement (rank → node → rack) plus per-tier pricing.

    ``path_cost(src, dst, nbytes, cost_model)`` returns the wire time a
    message pays between two world ranks; the caller's active
    :class:`~repro.runtime.costmodel.CostModel` is passed in so flat
    topologies (and unpinned inter-node tiers) follow per-job cost
    models exactly as the pre-fabric code did.  Self-sends are free at
    every tier.
    """

    kind: str = "topology"
    signature: str = "topology"
    is_flat: bool = False

    def path_cost(
        self, src: int, dst: int, nbytes: int, cost_model
    ) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def node_of(self, rank: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def rack_of(self, rank: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def nodes_spanned(self, ranks) -> int:
        """Distinct nodes under a set of world ranks (gang spread)."""
        return len({self.node_of(r) for r in ranks})

    def stats(self) -> dict[str, float]:
        """Per-tier traffic/congestion counters (empty when untracked)."""
        return {}

    def describe(self) -> str:
        return self.signature

    @staticmethod
    def flat() -> "FlatTopology":
        """The single-tier default (today's numbers, bit-for-bit)."""
        return FLAT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.signature!r})"


class FlatTopology(Topology):
    """One switch, uniform links: the pre-fabric cost path.

    ``path_cost`` literally evaluates ``cost_model.wire_time(nbytes)``
    (0.0 for self-sends), so every existing makespan, BENCH number and
    identity grid is reproduced to the last bit.  Stateless — the
    module-level :data:`FLAT` singleton is shared by every world that
    does not select a fabric, and keeps the hot path counter-free.
    """

    kind = "flat"
    signature = "flat"
    is_flat = True

    def path_cost(self, src: int, dst: int, nbytes: int, cost_model) -> float:
        return 0.0 if dst == src else cost_model.wire_time(nbytes)

    def node_of(self, rank: int) -> int:
        return 0

    def rack_of(self, rank: int) -> int:
        return 0


#: The shared default topology (see :class:`FlatTopology`).
FLAT = FlatTopology()


class HierarchicalTopology(Topology):
    """Ranks → nodes → racks with per-tier link parameters.

    Placement is arithmetic: rank ``r`` lives on node ``r //
    ranks_per_node``; node ``n`` lives in rack ``n // nodes_per_rack``
    (one rack when ``nodes_per_rack`` is ``None``).  Tier pricing:

    * same node: ``intra_latency + nbytes * intra_byte_time``;
    * same rack, different node (one ToR hop): ``inter_latency +
      nbytes * inter_byte_time`` — both default to the caller's cost
      model, so inter-node messages cost exactly what the flat fabric
      charged;
    * different rack (up through the spine): ``spine_latency + nbytes *
      inter_byte_time * oversubscription`` — the static
      oversubscription factor models contention on the shared uplinks
      deterministically (``spine_latency`` defaults to twice the
      inter-node latency: two extra switch hops).

    Traffic per tier (and the extra serialization seconds attributable
    to oversubscription) is counted under a lock and reported by
    :meth:`stats`; counters never feed back into costs, so they cannot
    perturb virtual time.
    """

    kind = "hierarchical"

    def __init__(
        self,
        ranks_per_node: int,
        *,
        nodes_per_rack: int | None = None,
        intra_latency: float = INTRA_NODE_LATENCY,
        intra_byte_time: float = INTRA_NODE_BYTE_TIME,
        inter_latency: float | None = None,
        inter_byte_time: float | None = None,
        spine_latency: float | None = None,
        oversubscription: float = 1.0,
        kind: str = "hierarchical",
        signature: str | None = None,
    ):
        if ranks_per_node < 1:
            raise ValueError(
                f"ranks_per_node must be >= 1, got {ranks_per_node}"
            )
        if nodes_per_rack is not None and nodes_per_rack < 1:
            raise ValueError(
                f"nodes_per_rack must be >= 1, got {nodes_per_rack}"
            )
        if oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1, got {oversubscription}"
            )
        self.ranks_per_node = int(ranks_per_node)
        self.nodes_per_rack = (
            None if nodes_per_rack is None else int(nodes_per_rack)
        )
        self.intra_latency = float(intra_latency)
        self.intra_byte_time = float(intra_byte_time)
        self.inter_latency = inter_latency
        self.inter_byte_time = inter_byte_time
        self.spine_latency = spine_latency
        self.oversubscription = float(oversubscription)
        self.kind = kind
        self.signature = signature if signature is not None else (
            f"{kind}:{self.ranks_per_node}"
        )
        self._lock = threading.Lock()
        self._counts = {
            "intra_msgs": 0, "intra_bytes": 0,
            "uplink_msgs": 0, "uplink_bytes": 0,
            "spine_msgs": 0, "spine_bytes": 0,
            "extra_seconds": 0.0,
        }

    # -- placement --------------------------------------------------------

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def rack_of(self, rank: int) -> int:
        if self.nodes_per_rack is None:
            return 0
        return self.node_of(rank) // self.nodes_per_rack

    # -- pricing ----------------------------------------------------------

    def path_cost(self, src: int, dst: int, nbytes: int, cost_model) -> float:
        if dst == src:
            return 0.0
        if self.node_of(src) == self.node_of(dst):
            with self._lock:
                self._counts["intra_msgs"] += 1
                self._counts["intra_bytes"] += nbytes
            return self.intra_latency + nbytes * self.intra_byte_time
        lat = (
            self.inter_latency if self.inter_latency is not None
            else cost_model.latency
        )
        bt = (
            self.inter_byte_time if self.inter_byte_time is not None
            else cost_model.byte_time
        )
        if self.rack_of(src) == self.rack_of(dst):
            with self._lock:
                self._counts["uplink_msgs"] += 1
                self._counts["uplink_bytes"] += nbytes
            return lat + nbytes * bt
        s_lat = self.spine_latency if self.spine_latency is not None else 2.0 * lat
        extra = nbytes * bt * (self.oversubscription - 1.0)
        with self._lock:
            self._counts["uplink_msgs"] += 1
            self._counts["uplink_bytes"] += nbytes
            self._counts["spine_msgs"] += 1
            self._counts["spine_bytes"] += nbytes
            self._counts["extra_seconds"] += extra
        return s_lat + nbytes * bt + extra

    # -- observability -----------------------------------------------------

    def stats(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counts)

    def reset_stats(self) -> None:
        with self._lock:
            for key in self._counts:
                self._counts[key] = type(self._counts[key])()


def flat() -> FlatTopology:
    """The single-tier default fabric (see :class:`FlatTopology`)."""
    return FLAT


def multi_node(
    ranks_per_node: int,
    *,
    intra_latency: float = INTRA_NODE_LATENCY,
    intra_byte_time: float = INTRA_NODE_BYTE_TIME,
    inter_latency: float | None = None,
    inter_byte_time: float | None = None,
) -> HierarchicalTopology:
    """Nodes of ``ranks_per_node`` ranks inside one rack: fast intra-node
    links, the run's cost-model parameters between nodes."""
    return HierarchicalTopology(
        ranks_per_node,
        intra_latency=intra_latency,
        intra_byte_time=intra_byte_time,
        inter_latency=inter_latency,
        inter_byte_time=inter_byte_time,
        kind="multi_node",
        signature=f"multi_node:{int(ranks_per_node)}",
    )


def fat_tree(
    ranks_per_node: int,
    nodes_per_rack: int,
    *,
    oversubscription: float = 2.0,
    intra_latency: float = INTRA_NODE_LATENCY,
    intra_byte_time: float = INTRA_NODE_BYTE_TIME,
    inter_latency: float | None = None,
    inter_byte_time: float | None = None,
    spine_latency: float | None = None,
) -> HierarchicalTopology:
    """Three tiers: node, rack (ToR), spine.  Inter-rack traffic pays two
    extra switch hops of latency and an ``oversubscription`` multiplier
    on per-byte time (the classic tapered fat tree)."""
    return HierarchicalTopology(
        ranks_per_node,
        nodes_per_rack=nodes_per_rack,
        intra_latency=intra_latency,
        intra_byte_time=intra_byte_time,
        inter_latency=inter_latency,
        inter_byte_time=inter_byte_time,
        spine_latency=spine_latency,
        oversubscription=oversubscription,
        kind="fat_tree",
        signature=(
            f"fat_tree:{int(ranks_per_node)}x{int(nodes_per_rack)}"
            f":o{oversubscription:g}"
        ),
    )


def parse_topology(spec: str) -> Topology:
    """Build a topology from a CLI spec string.

    ``"flat"``; ``"multi_node:R"`` (R ranks per node);
    ``"fat_tree:RxN"`` or ``"fat_tree:RxNxO"`` (R ranks/node, N
    nodes/rack, oversubscription O, default 2).
    """
    spec = spec.strip()
    if spec in ("flat", ""):
        return FLAT
    name, _, arg = spec.partition(":")
    try:
        if name == "multi_node" and arg:
            return multi_node(int(arg))
        if name == "fat_tree" and arg:
            parts = arg.split("x")
            if len(parts) == 2:
                return fat_tree(int(parts[0]), int(parts[1]))
            if len(parts) == 3:
                return fat_tree(
                    int(parts[0]), int(parts[1]),
                    oversubscription=float(parts[2]),
                )
    except ValueError as exc:
        raise ValueError(f"bad topology spec {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown topology spec {spec!r}; expected 'flat', 'multi_node:R' "
        "or 'fat_tree:RxN[xO]'"
    )


def contiguous_node_groups(
    topology: Topology | None, members
) -> tuple[tuple[int, ...], ...] | None:
    """Partition a communicator's members into node groups, as *group*
    ranks, for the hierarchical collectives.

    ``members`` is the group-rank-ordered tuple of world ranks.  Groups
    are built by run-length over consecutive members sharing a node, so
    they are contiguous group-rank ranges **by construction** — the
    property the order-preserving hierarchical schedules rely on (a
    node id that reappears non-contiguously simply becomes two virtual
    nodes).  Returns ``None`` when there is nothing to exploit: a flat
    (or absent) topology, or every member on one node.
    """
    if topology is None or topology.is_flat:
        return None
    groups: list[tuple[int, ...]] = []
    current: list[int] = []
    current_node: int | None = None
    for g, w in enumerate(members):
        node = topology.node_of(w)
        if current and node == current_node:
            current.append(g)
        else:
            if current:
                groups.append(tuple(current))
            current = [g]
            current_node = node
    if current:
        groups.append(tuple(current))
    if len(groups) <= 1:
        return None
    return tuple(groups)
