"""Shared SPMD world state and per-rank contexts.

A :class:`World` owns everything shared by the ranks of one SPMD run:
mailboxes, clocks, traces, the cost model, the abort flag, and — new with
the fault subsystem — the :class:`~repro.runtime.channels.Membership`
(perfect failure detector + hang watchdog) and an optional
:class:`~repro.faults.injection.FaultInjector` built from a seeded
:class:`~repro.faults.plan.FaultPlan`.  Each rank gets a
:class:`RankContext` — the object through which *all* simulated
communication and all simulated-time charging flows.

The context's ``send_raw``/``recv_raw`` are the only way bytes move
between ranks; every higher layer (MPI collectives, local-view routines,
global-view drivers) bottoms out here, so message counts, byte counts and
virtual-time causality are accounted for exactly once — and so fault
injection hooked here (fail-stop checks, lossy-link emulation, straggler
slowdown) covers every layer above without modification.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable

from repro.errors import CommunicatorError
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.channels import Envelope, Mailbox, Membership
from repro.runtime.clock import VirtualClock
from repro.runtime.costmodel import CostModel
from repro.runtime.trace import Trace
from repro.util.sizing import copy_for_transfer, payload_nbytes

__all__ = ["World", "RankContext"]


class World:
    """All state shared by the ranks of one SPMD run."""

    def __init__(
        self,
        nprocs: int,
        cost_model: CostModel | None = None,
        *,
        record_events: bool = False,
        isolate_payloads: bool = True,
        tracer: Tracer | None = None,
        fault_plan: Any | None = None,
    ):
        if nprocs < 1:
            raise CommunicatorError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.isolate_payloads = isolate_payloads
        self.abort_event = threading.Event()
        self.membership = Membership(nprocs)
        self.mailboxes = [
            Mailbox(r, self.abort_event, self.membership) for r in range(nprocs)
        ]
        self.clocks = [VirtualClock() for _ in range(nprocs)]
        self.membership.mailboxes = self.mailboxes
        self.membership.clocks = self.clocks
        self.traces = [
            Trace(rank=r, record_events=record_events) for r in range(nprocs)
        ]
        self.tracer = tracer
        if tracer is not None and tracer.enabled:
            self.run_capture = tracer.begin_run(nprocs, self.clocks)
            self.rank_tracers = self.run_capture.ranks
        else:
            self.run_capture = None
            self.rank_tracers = [NULL_TRACER] * nprocs
        if fault_plan is not None:
            from repro.faults.injection import FaultInjector

            metrics = (
                tracer.metrics
                if tracer is not None and tracer.enabled
                else NULL_METRICS
            )
            self.injector = FaultInjector(fault_plan, nprocs, metrics)
        else:
            self.injector = None
        self._cid_lock = threading.Lock()
        self._next_cid = 1

    def allocate_context_id(self) -> int:
        """Allocate a communicator context id (unique per World)."""
        with self._cid_lock:
            cid = self._next_cid
            self._next_cid += 1
            return cid

    @property
    def can_fail(self) -> bool:
        """True when the installed fault plan can fail-stop a rank —
        the condition under which the global-view drivers checkpoint
        states and run the commit/agree protocol around the combine."""
        return self.injector is not None and self.injector.can_fail

    def abort(self) -> None:
        """Tear the run down: set the abort flag and wake every rank
        blocked in a mailbox so it observes the flag immediately.

        Blocking receives are poll-free, so setting the event alone would
        leave blocked ranks asleep; the explicit notification replaces
        the old 50 ms abort-flag poll.
        """
        self.abort_event.set()
        for mailbox in self.mailboxes:
            mailbox.notify_abort()

    def mark_failed(self, rank: int) -> None:
        """Record a fail-stop of ``rank`` and wake every blocked peer so
        waits on the dead rank turn into
        :class:`~repro.errors.RankFailedError` instead of hangs."""
        self.membership.mark_dead(rank)
        for mailbox in self.mailboxes:
            mailbox.notify_abort()

    def retire_rank(self, rank: int) -> None:
        """Record that ``rank``'s SPMD function returned (or unwound).

        Blocked peers are woken so the hang watchdog can re-evaluate:
        a receive that was merely *pending* may have just become a
        guaranteed deadlock.
        """
        self.membership.mark_done(rank)
        for mailbox in self.mailboxes:
            mailbox.notify_abort()

    def revoke_cid(self, cid: Hashable) -> None:
        """Revoke a communicator context id and wake blocked members."""
        self.membership.revoke(cid)
        for mailbox in self.mailboxes:
            mailbox.notify_abort()

    def rank_states(self) -> list[dict]:
        """Per-rank diagnostics (status, blocked wait, clock, queue)."""
        return self.membership.rank_states()

    def context(self, rank: int) -> "RankContext":
        """The per-rank handle for ``rank`` (clock, trace, messaging)."""
        if not 0 <= rank < self.nprocs:
            raise CommunicatorError(
                f"rank {rank} out of range for world of size {self.nprocs}"
            )
        return RankContext(self, rank)

    @property
    def makespan(self) -> float:
        """Simulated completion time of the run: max over rank clocks."""
        return max(c.t for c in self.clocks)


class RankContext:
    """One rank's handle on the world: clock, trace, and raw messaging."""

    __slots__ = ("world", "rank", "clock", "trace", "tracer", "_progress",
                 "_send_seq", "_recv_next", "_recv_buf")

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank
        self.clock = world.clocks[rank]
        self.trace = world.traces[rank]
        self.tracer = world.rank_tracers[rank]
        # Lazily created per-rank progress engine for nonblocking
        # collectives (repro.mpi.request); None until the first request.
        self._progress = None
        # Reliable-delivery state, only touched under a lossy fault plan:
        # per-(dest, tag) send sequence numbers, per-(source, tag) next
        # expected sequence numbers, and the out-of-order hold-back buffer.
        self._send_seq: dict[tuple[int, Hashable], int] = {}
        self._recv_next: dict[tuple[int, Hashable], int] = {}
        self._recv_buf: dict[tuple[int, Hashable], dict[int, Envelope]] = {}

    @property
    def nprocs(self) -> int:
        """Total ranks in the world this context belongs to."""
        return self.world.nprocs

    @property
    def cost_model(self) -> CostModel:
        """The run's communication/computation cost parameters."""
        return self.world.cost_model

    # -- simulated computation --------------------------------------------

    def charge(self, seconds: float, label: str = "compute") -> None:
        """Advance this rank's virtual clock by a modeled compute time.

        Under a fault plan, straggler ranks pay a slowdown multiplier
        and scheduled fail-stops trigger here (virtual-time deaths land
        on the first charge that crosses the deadline).
        """
        inj = self.world.injector
        if inj is not None:
            inj.check_failstop(self.rank, self.clock.t, self.world)
            seconds *= inj.slowdown(self.rank)
        self.clock.advance(seconds)
        self.trace.on_compute(label, seconds, self.clock.t)
        if inj is not None:
            # A death whose deadline this charge just crossed fires now:
            # the next progress point at-or-after the scheduled time.
            inj.check_failstop(self.rank, self.clock.t, self.world)

    def charge_elements(self, rate_name: str, n_elements: float, label: str | None = None) -> None:
        """Charge ``n_elements`` of work at a named cost-model rate."""
        seconds = self.cost_model.compute_time(rate_name, n_elements)
        self.charge(seconds, label or rate_name)

    # -- raw point-to-point -------------------------------------------------

    def send_raw(self, dest: int, tag: Hashable, payload: Any) -> None:
        """Eagerly send ``payload`` to world-rank ``dest``.

        The sender pays its send overhead; the message becomes available
        to the receiver after wire latency plus per-byte time.  The payload
        is deep-copied to model distinct address spaces.

        Fault injection hooks here: the per-rank operation counter that
        drives nth-operation fail-stops ticks on every send, and lossy
        link plans route the message through the reliable-delivery layer
        (sender-modeled retransmit backoff for drops, sequence-numbered
        frames for duplicate suppression and reorder repair).
        """
        if not 0 <= dest < self.world.nprocs:
            raise CommunicatorError(
                f"send: destination rank {dest} out of range "
                f"[0, {self.world.nprocs})"
            )
        inj = self.world.injector
        if inj is not None:
            inj.on_send_op(self.rank, self.clock.t, self.world)
        cm = self.cost_model
        nbytes = payload_nbytes(payload)
        self.clock.advance(cm.send_overhead)
        if self.world.isolate_payloads:
            payload = copy_for_transfer(payload)
        if inj is not None and inj.lossy:
            from repro.faults.reliable import reliable_send

            reliable_send(self, inj, dest, tag, payload, nbytes)
            return
        available_at = self.clock.t + (0.0 if dest == self.rank else cm.wire_time(nbytes))
        self.trace.on_send(dest, tag, nbytes, self.clock.t)
        if self.tracer.enabled:
            self.tracer.on_send(dest, tag, nbytes, self.clock.t, available_at)
        self.world.mailboxes[dest].deliver(
            Envelope(self.rank, tag, payload, nbytes, available_at)
        )

    def recv_raw(self, source: int, tag: Hashable) -> Any:
        """Receive the next message matching ``(source, tag)``; blocks.

        The receiver's clock merges the message's availability time and
        then pays the receive overhead.
        """
        return self.recv_raw_envelope(source, tag).payload

    def recv_raw_envelope(self, source: int, tag: Hashable) -> Envelope:
        """Like :meth:`recv_raw` but returns the full envelope."""
        env = self.collect_envelope(source, tag)
        return self._account_recv(env)

    def _account_recv(self, env: Envelope) -> Envelope:
        t_arrive = self.clock.t
        self.clock.merge(env.available_at)
        self.clock.advance(self.cost_model.recv_overhead)
        self.trace.on_recv(env.source, env.tag, env.nbytes, self.clock.t)
        if self.tracer.enabled:
            self.tracer.on_recv(
                env.source, env.tag, env.nbytes,
                t_arrive, env.available_at, self.clock.t,
            )
        return env

    # -- deferred receives (deterministic "combine as available") ----------

    def collect_envelope(self, source: int, tag: Hashable) -> Envelope:
        """Dequeue a matching message *without* any clock or trace effect.

        Used by commutative reductions that want to process children in
        availability order rather than rank order: collect all envelopes
        first (thread-blocking only), sort by ``available_at``, then apply
        each with :meth:`apply_recv`.  Splitting collection from
        accounting keeps virtual time deterministic.

        Under a lossy fault plan this is also where the receive side of
        the reliable-delivery layer lives: duplicate frames are
        discarded and reordered frames held back until their sequence
        number is next, so every layer above sees exactly-once, in-order
        delivery.
        """
        eng = self._progress
        if eng is not None:
            # About to block: let outstanding nonblocking collectives
            # consume any already-delivered rounds first (no-op while the
            # engine itself is receiving).
            eng.on_block()
        inj = self.world.injector
        if inj is not None and inj.lossy:
            from repro.faults.reliable import reliable_collect

            return reliable_collect(self, inj, source, tag)
        return self.world.mailboxes[self.rank].collect(source, tag)

    def apply_recv(self, env: Envelope) -> Any:
        """Account for a previously collected envelope and return payload."""
        return self._account_recv(env).payload
