"""Shared SPMD world state and per-rank contexts.

A :class:`World` owns everything shared by the ranks of one SPMD run:
mailboxes, clocks, traces, the cost model, the abort flag, and — new with
the fault subsystem — the :class:`~repro.runtime.channels.Membership`
(perfect failure detector + hang watchdog) and an optional
:class:`~repro.faults.injection.FaultInjector` built from a seeded
:class:`~repro.faults.plan.FaultPlan`.  Each rank gets a
:class:`RankContext` — the object through which *all* simulated
communication and all simulated-time charging flows.

The context's ``send_raw``/``recv_raw`` are the only way bytes move
between ranks; every higher layer (MPI collectives, local-view routines,
global-view drivers) bottoms out here, so message counts, byte counts and
virtual-time causality are accounted for exactly once — and so fault
injection hooked here (fail-stop checks, lossy-link emulation, straggler
slowdown) covers every layer above without modification.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable

from repro.errors import CommunicatorError
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.channels import Envelope, Mailbox, Membership
from repro.runtime.clock import VirtualClock
from repro.runtime.costmodel import CostModel
from repro.runtime.fabric import FLAT, Topology
from repro.runtime.trace import Trace
from repro.util.sizing import copy_for_transfer, payload_nbytes

__all__ = ["World", "JobWorld", "RankContext", "cid_root"]


def cid_root(cid: Hashable) -> Hashable:
    """The base context id a (possibly derived) cid descends from.

    ``dup``/``split``/``shrink`` derive nested-tuple cids whose second
    element is the parent cid — ``("split", ("dup", 5, 1), 2, 0)`` roots
    at ``5``.  The engine allocates one base cid per job, so the root
    identifies which job's traffic a tag belongs to.
    """
    while isinstance(cid, tuple) and len(cid) >= 2:
        cid = cid[1]
    return cid


class World:
    """All state shared by the ranks of one SPMD run."""

    def __init__(
        self,
        nprocs: int,
        cost_model: CostModel | None = None,
        *,
        record_events: bool = False,
        isolate_payloads: bool = True,
        tracer: Tracer | None = None,
        fault_plan: Any | None = None,
        topology: Topology | None = None,
    ):
        if nprocs < 1:
            raise CommunicatorError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.cost_model = cost_model if cost_model is not None else CostModel()
        #: The network fabric every message is priced against.  The flat
        #: singleton (the default) delegates straight to the cost model,
        #: reproducing pre-fabric wire times bit-for-bit.
        self.topology = topology if topology is not None else FLAT
        self.isolate_payloads = isolate_payloads
        self.abort_event = threading.Event()
        self.membership = Membership(nprocs)
        self.mailboxes = [
            Mailbox(r, self.abort_event, self.membership) for r in range(nprocs)
        ]
        self.clocks = [VirtualClock() for _ in range(nprocs)]
        self.membership.mailboxes = self.mailboxes
        self.membership.clocks = self.clocks
        self.traces = [
            Trace(rank=r, record_events=record_events) for r in range(nprocs)
        ]
        self.tracer = tracer
        if tracer is not None and tracer.enabled:
            self.run_capture = tracer.begin_run(nprocs, self.clocks)
            self.rank_tracers = self.run_capture.ranks
        else:
            self.run_capture = None
            self.rank_tracers = [NULL_TRACER] * nprocs
        if fault_plan is not None:
            from repro.faults.injection import FaultInjector
            from repro.faults.plan import expand_rack_failures

            metrics = (
                tracer.metrics
                if tracer is not None and tracer.enabled
                else NULL_METRICS
            )
            # Rack-scoped fault domains are symbolic until bound to a
            # placement: lower them to per-rank fail-stops here.
            fault_plan = expand_rack_failures(
                fault_plan, self.topology, tuple(range(nprocs))
            )
            self.injector = FaultInjector(fault_plan, nprocs, metrics)
        else:
            self.injector = None
        self._cid_lock = threading.Lock()
        self._next_cid = 1
        # Cross-job memo for algorithm="auto" decisions.  Local import:
        # repro.mpi.comm imports this module at its top level, so the
        # reverse import must wait until both modules exist.
        from repro.mpi.schedule_cache import ScheduleCache

        self.schedule_cache = ScheduleCache()
        # Compiled accumulate kernels are operator/dtype artifacts, not
        # world state, so every world shares the process-wide cache.
        from repro.core.kernels import default_cache

        self.kernel_cache = default_cache()
        # Process-backend accumulate offload pool; installed by the
        # engine when it was built with backend="process", else None
        # (the threaded world folds in-process).
        self.proc_pool = None

    def allocate_context_id(self) -> int:
        """Allocate a communicator context id (unique per World).

        Thread-safe by a dedicated lock: the engine allocates one base
        cid per job, and submissions race from many client threads.
        """
        with self._cid_lock:
            cid = self._next_cid
            self._next_cid += 1
            return cid

    @property
    def can_fail(self) -> bool:
        """True when the installed fault plan can fail-stop a rank —
        the condition under which the global-view drivers checkpoint
        states and run the commit/agree protocol around the combine."""
        return self.injector is not None and self.injector.can_fail

    def abort(self) -> None:
        """Tear the run down: set the abort flag and wake every rank
        blocked in a mailbox so it observes the flag immediately.

        Blocking receives are poll-free, so setting the event alone would
        leave blocked ranks asleep; the explicit notification replaces
        the old 50 ms abort-flag poll.
        """
        self.abort_event.set()
        for mailbox in self.mailboxes:
            mailbox.notify_abort()

    def mark_failed(self, rank: int) -> None:
        """Record a fail-stop of ``rank`` and wake every blocked peer so
        waits on the dead rank turn into
        :class:`~repro.errors.RankFailedError` instead of hangs."""
        self.membership.mark_dead(rank)
        for mailbox in self.mailboxes:
            mailbox.notify_abort()

    def retire_rank(self, rank: int) -> None:
        """Record that ``rank``'s SPMD function returned (or unwound).

        Blocked peers are woken so the hang watchdog can re-evaluate:
        a receive that was merely *pending* may have just become a
        guaranteed deadlock.
        """
        self.membership.mark_done(rank)
        for mailbox in self.mailboxes:
            mailbox.notify_abort()

    def revoke_cid(self, cid: Hashable) -> None:
        """Revoke a communicator context id and wake blocked members."""
        self.membership.revoke(cid)
        for mailbox in self.mailboxes:
            mailbox.notify_abort()

    def revive_rank(self, rank: int) -> int:
        """Restore a pool rank to scheduling health after a fail-stop job.

        Called by the engine supervisor before probing a quarantined
        rank: clears any shared-membership record for the rank and
        sweeps every envelope still queued in its mailbox (a dead rank
        can be left holding messages no live job will ever receive —
        finalize sweeps only tags the *finished* job owns).  Returns the
        number of stale envelopes swept.  Job-scoped views
        (:class:`JobWorld` memberships) are untouched: a job that saw
        the rank die keeps that view forever.
        """
        if not 0 <= rank < self.nprocs:
            raise CommunicatorError(
                f"rank {rank} out of range for world of size {self.nprocs}"
            )
        self.membership.mark_alive(rank)
        return self.mailboxes[rank].drain_where(lambda src, tag: True)

    def rank_states(self) -> list[dict]:
        """Per-rank diagnostics (status, blocked wait, clock, queue)."""
        return self.membership.rank_states()

    def context(self, rank: int) -> "RankContext":
        """The per-rank handle for ``rank`` (clock, trace, messaging)."""
        if not 0 <= rank < self.nprocs:
            raise CommunicatorError(
                f"rank {rank} out of range for world of size {self.nprocs}"
            )
        return RankContext(self, rank)

    @property
    def makespan(self) -> float:
        """Simulated completion time of the run: max over rank clocks."""
        return max(c.t for c in self.clocks)


class JobWorld:
    """A job-scoped view of a shared :class:`World`.

    The persistent engine runs many jobs over one world: one set of
    mailboxes, one rank-thread pool, one context-id allocator, one
    schedule cache.  Everything *else* — clocks, traces, membership
    (failure detector + watchdog), abort flag, tracer capture, fault
    injector — is per job, so each job observes a fresh virtual-clock
    epoch and its results are bit-identical to a standalone run.

    A ``JobWorld`` satisfies the same interface :class:`RankContext`,
    the communicator and the fault layers consume (duck-typed ``world``),
    with two index conventions in play:

    * **world ranks** index shared structures (``mailboxes``, and the
      full-length ``clocks``/``traces``/``rank_tracers`` lists, which
      carry ``None``/null entries at non-member slots);
    * **group ranks** (0..job_size-1) label everything user-visible —
      trace ``rank`` fields, tracer captures, fault-plan targets,
      ``rank_states`` — which is what makes results independent of
      where in the pool the job was placed.
    """

    def __init__(
        self,
        parent: World,
        members: tuple[int, ...],
        *,
        cost_model: CostModel | None = None,
        record_events: bool = False,
        isolate_payloads: bool = True,
        tracer: Tracer | None = None,
        fault_plan: Any | None = None,
    ):
        job_size = len(members)
        if job_size < 1:
            raise CommunicatorError(f"nprocs must be >= 1, got {job_size}")
        self.parent = parent
        self.members = tuple(members)
        self.job_size = job_size
        self.nprocs = parent.nprocs  # pool size: world-rank address space
        self.cost_model = (
            cost_model if cost_model is not None else parent.cost_model
        )
        # The fabric is pool infrastructure, shared like the mailboxes:
        # a job pays for the links its placement actually crosses.
        self.topology = parent.topology
        self.isolate_payloads = isolate_payloads
        self.mailboxes = parent.mailboxes
        self.schedule_cache = parent.schedule_cache
        self.kernel_cache = parent.kernel_cache
        # Jobs inherit the engine's accumulate-offload pool: worker r
        # serves world rank r, so concurrent jobs on disjoint ranks
        # never contend for a worker.
        self.proc_pool = getattr(parent, "proc_pool", None)
        self.abort_event = threading.Event()
        self.membership = Membership(parent.nprocs, members=self.members)
        self.membership.mailboxes = parent.mailboxes
        #: The job's root communicator context id — allocated from the
        #: shared World, so two jobs' tags can never collide even while
        #: their lifetimes overlap on the same mailboxes.
        self.base_cid = parent.allocate_context_id()
        self.clocks: list[VirtualClock | None] = [None] * parent.nprocs
        self.traces: list[Trace | None] = [None] * parent.nprocs
        for g, w in enumerate(self.members):
            self.clocks[w] = VirtualClock()
            self.traces[w] = Trace(rank=g, record_events=record_events)
        self.membership.clocks = self.clocks
        self.tracer = tracer
        self.rank_tracers: list[Any] = [NULL_TRACER] * parent.nprocs
        if tracer is not None and tracer.enabled:
            self.run_capture = tracer.begin_run(
                job_size, [self.clocks[w] for w in self.members]
            )
            for g, w in enumerate(self.members):
                self.rank_tracers[w] = self.run_capture.ranks[g]
        else:
            self.run_capture = None
        if fault_plan is not None:
            from repro.faults.injection import FaultInjector
            from repro.faults.plan import expand_rack_failures

            metrics = (
                tracer.metrics
                if tracer is not None and tracer.enabled
                else NULL_METRICS
            )
            # Rack failures depend on where the pool placed the gang:
            # expand them against the actual members before binding.
            fault_plan = expand_rack_failures(
                fault_plan, self.topology, self.members
            )
            # Plans address ranks 0..job_size-1; the map translates the
            # pool placement back to plan coordinates so a chaos-seeded
            # job behaves identically wherever it lands.
            self.injector = FaultInjector(
                fault_plan, job_size, metrics,
                rank_map={w: g for g, w in enumerate(self.members)},
            )
        else:
            self.injector = None

    def allocate_context_id(self) -> int:
        """Delegate to the shared world's allocator (global uniqueness)."""
        return self.parent.allocate_context_id()

    @property
    def can_fail(self) -> bool:
        """See :attr:`World.can_fail`."""
        return self.injector is not None and self.injector.can_fail

    def _notify_members(self) -> None:
        for w in self.members:
            self.mailboxes[w].notify_abort()

    def abort(self) -> None:
        """Tear down *this job only*: its abort event, its members'
        wakeups.  Concurrent jobs on other pool ranks are untouched."""
        self.abort_event.set()
        self._notify_members()

    def mark_failed(self, rank: int) -> None:
        """Record a fail-stop of world-rank ``rank`` within this job."""
        self.membership.mark_dead(rank)
        self._notify_members()

    def retire_rank(self, rank: int) -> None:
        """Record that world-rank ``rank`` finished this job's function."""
        self.membership.mark_done(rank)
        self._notify_members()

    def revoke_cid(self, cid: Hashable) -> None:
        """Revoke a communicator context id and wake blocked members."""
        self.membership.revoke(cid)
        self._notify_members()

    def rank_states(self) -> list[dict]:
        """Per-member diagnostics, labeled with group ranks."""
        return self.membership.rank_states()

    def owns_tag(self, tag: Hashable) -> bool:
        """True when ``tag`` belongs to a communicator rooted at this
        job's base cid (used to sweep leaked envelopes at finalize)."""
        return (
            isinstance(tag, tuple)
            and len(tag) >= 2
            and cid_root(tag[1]) == self.base_cid
        )

    def context(self, rank: int) -> "RankContext":
        """The per-rank handle for world-rank ``rank`` (a member)."""
        if rank not in self.membership.members:
            raise CommunicatorError(
                f"world rank {rank} is not a member of this job"
            )
        return RankContext(self, rank)

    @property
    def makespan(self) -> float:
        """Simulated completion time of the job: max over member clocks."""
        return max(self.clocks[w].t for w in self.members)


class RankContext:
    """One rank's handle on the world: clock, trace, and raw messaging."""

    __slots__ = ("world", "rank", "clock", "trace", "tracer", "_progress",
                 "_send_seq", "_recv_next", "_recv_buf")

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank
        self.clock = world.clocks[rank]
        self.trace = world.traces[rank]
        self.tracer = world.rank_tracers[rank]
        # Lazily created per-rank progress engine for nonblocking
        # collectives (repro.mpi.request); None until the first request.
        self._progress = None
        # Reliable-delivery state, only touched under a lossy fault plan:
        # per-(dest, tag) send sequence numbers, per-(source, tag) next
        # expected sequence numbers, and the out-of-order hold-back buffer.
        self._send_seq: dict[tuple[int, Hashable], int] = {}
        self._recv_next: dict[tuple[int, Hashable], int] = {}
        self._recv_buf: dict[tuple[int, Hashable], dict[int, Envelope]] = {}

    @property
    def nprocs(self) -> int:
        """Total ranks in the world this context belongs to."""
        return self.world.nprocs

    @property
    def cost_model(self) -> CostModel:
        """The run's communication/computation cost parameters."""
        return self.world.cost_model

    # -- simulated computation --------------------------------------------

    def charge(self, seconds: float, label: str = "compute") -> None:
        """Advance this rank's virtual clock by a modeled compute time.

        Under a fault plan, straggler ranks pay a slowdown multiplier
        and scheduled fail-stops trigger here (virtual-time deaths land
        on the first charge that crosses the deadline).
        """
        inj = self.world.injector
        if inj is not None:
            inj.check_failstop(self.rank, self.clock.t, self.world)
            seconds *= inj.slowdown(self.rank)
        self.clock.advance(seconds)
        self.trace.on_compute(label, seconds, self.clock.t)
        if inj is not None:
            # A death whose deadline this charge just crossed fires now:
            # the next progress point at-or-after the scheduled time.
            inj.check_failstop(self.rank, self.clock.t, self.world)

    def charge_elements(self, rate_name: str, n_elements: float, label: str | None = None) -> None:
        """Charge ``n_elements`` of work at a named cost-model rate."""
        seconds = self.cost_model.compute_time(rate_name, n_elements)
        self.charge(seconds, label or rate_name)

    # -- raw point-to-point -------------------------------------------------

    def send_raw(self, dest: int, tag: Hashable, payload: Any) -> None:
        """Eagerly send ``payload`` to world-rank ``dest``.

        The sender pays its send overhead; the message becomes available
        to the receiver after wire latency plus per-byte time.  The payload
        is deep-copied to model distinct address spaces.

        Fault injection hooks here: the per-rank operation counter that
        drives nth-operation fail-stops ticks on every send, and lossy
        link plans route the message through the reliable-delivery layer
        (sender-modeled retransmit backoff for drops, sequence-numbered
        frames for duplicate suppression and reorder repair).
        """
        if not 0 <= dest < self.world.nprocs:
            raise CommunicatorError(
                f"send: destination rank {dest} out of range "
                f"[0, {self.world.nprocs})"
            )
        inj = self.world.injector
        if inj is not None:
            inj.on_send_op(self.rank, self.clock.t, self.world)
        cm = self.cost_model
        nbytes = payload_nbytes(payload)
        self.clock.advance(cm.send_overhead)
        if self.world.isolate_payloads:
            payload = copy_for_transfer(payload)
        if inj is not None and inj.lossy:
            from repro.faults.reliable import reliable_send

            reliable_send(self, inj, dest, tag, payload, nbytes)
            return
        # Wire time is a property of the *path*, not just the size: the
        # world's topology prices the tiers the message crosses.  The
        # flat default evaluates to exactly the old
        # ``cm.wire_time(nbytes)`` (0.0 for self-sends).
        available_at = self.clock.t + self.world.topology.path_cost(
            self.rank, dest, nbytes, cm
        )
        self.trace.on_send(dest, tag, nbytes, self.clock.t)
        if self.tracer.enabled:
            self.tracer.on_send(dest, tag, nbytes, self.clock.t, available_at)
        self.world.mailboxes[dest].deliver(
            Envelope(self.rank, tag, payload, nbytes, available_at)
        )

    def recv_raw(self, source: int, tag: Hashable) -> Any:
        """Receive the next message matching ``(source, tag)``; blocks.

        The receiver's clock merges the message's availability time and
        then pays the receive overhead.
        """
        return self.recv_raw_envelope(source, tag).payload

    def recv_raw_envelope(self, source: int, tag: Hashable) -> Envelope:
        """Like :meth:`recv_raw` but returns the full envelope."""
        env = self.collect_envelope(source, tag)
        return self._account_recv(env)

    def _account_recv(self, env: Envelope) -> Envelope:
        t_arrive = self.clock.t
        self.clock.merge(env.available_at)
        self.clock.advance(self.cost_model.recv_overhead)
        self.trace.on_recv(env.source, env.tag, env.nbytes, self.clock.t)
        if self.tracer.enabled:
            self.tracer.on_recv(
                env.source, env.tag, env.nbytes,
                t_arrive, env.available_at, self.clock.t,
            )
        return env

    # -- deferred receives (deterministic "combine as available") ----------

    def collect_envelope(self, source: int, tag: Hashable) -> Envelope:
        """Dequeue a matching message *without* any clock or trace effect.

        Used by commutative reductions that want to process children in
        availability order rather than rank order: collect all envelopes
        first (thread-blocking only), sort by ``available_at``, then apply
        each with :meth:`apply_recv`.  Splitting collection from
        accounting keeps virtual time deterministic.

        Under a lossy fault plan this is also where the receive side of
        the reliable-delivery layer lives: duplicate frames are
        discarded and reordered frames held back until their sequence
        number is next, so every layer above sees exactly-once, in-order
        delivery.
        """
        eng = self._progress
        if eng is not None:
            # About to block: let outstanding nonblocking collectives
            # consume any already-delivered rounds first (no-op while the
            # engine itself is receiving).
            eng.on_block()
        inj = self.world.injector
        if inj is not None and inj.lossy:
            from repro.faults.reliable import reliable_collect

            return reliable_collect(self, inj, source, tag)
        return self.world.mailboxes[self.rank].collect(source, tag)

    def apply_recv(self, env: Envelope) -> Any:
        """Account for a previously collected envelope and return payload."""
        return self._account_recv(env).payload
