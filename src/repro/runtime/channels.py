"""Deterministic point-to-point message channels between ranks.

Each rank owns one :class:`Mailbox`.  A message is addressed by its
``(source, tag)`` pair and queued FIFO within that pair, so matching is
deterministic regardless of the thread schedule — the property that makes
virtual-time results bit-reproducible.

``ANY_SOURCE`` / ``ANY_TAG`` wildcard receives are supported for
completeness (MPI has them) but matching order for wildcards depends on
arrival order and is therefore only deterministic when a single candidate
message can exist, which is how the library itself uses them.

Blocking receives are **poll-free**: a rank blocked in
:meth:`Mailbox.collect` sleeps on the mailbox condition until a sender
delivers a matching message or the run aborts.  Aborts wake every
blocked rank immediately via :meth:`Mailbox.notify_abort` (called by
``World.abort``); a coarse once-a-second recheck guards against code
that sets the shared abort event without notifying, but no fast
periodic poll remains on any path.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import RuntimeAbort

__all__ = ["ANY_SOURCE", "ANY_TAG", "Envelope", "Mailbox"]

ANY_SOURCE: int = -1
ANY_TAG: int = -1

#: Retired-deque pool size.  Collective tags are unique per call (context
#: id + sequence number), so without recycling the queue dict would grow
#: by one key per collective; a small pool of spare deques keeps the hot
#: path allocation-free and the dict bounded by the number of keys with
#: messages actually in flight.
_SPARE_QUEUES = 8

#: Safety-net recheck period for a blocked ``collect``.  The normal
#: wakeup is a notification (``deliver`` or ``notify_abort``); this
#: timeout only matters if the shared abort event is set directly
#: without ``notify_abort``, in which case the receiver still notices
#: within a second instead of sleeping forever.
_ABORT_RECHECK_SECONDS = 1.0


@dataclass(frozen=True)
class Envelope:
    """A delivered message: payload plus wire metadata."""

    source: int
    tag: int
    payload: Any
    nbytes: int
    available_at: float  # virtual time at which the message reaches the rank


class Mailbox:
    """Inbox for a single rank, with per-(source, tag) FIFO ordering."""

    def __init__(self, rank: int, abort_event: threading.Event):
        self.rank = rank
        self._abort = abort_event
        self._cond = threading.Condition()
        self._queues: dict[tuple[int, int], deque[Envelope]] = {}
        self._spares: list[deque[Envelope]] = []

    def deliver(self, env: Envelope) -> None:
        """Called by a sender thread to enqueue a message."""
        key = (env.source, env.tag)
        with self._cond:
            q = self._queues.get(key)
            if q is None:
                q = self._spares.pop() if self._spares else deque()
                self._queues[key] = q
            q.append(env)
            # Exactly one thread — the owning rank — ever blocks in
            # collect(), so a single wakeup suffices.
            self._cond.notify()

    def notify_abort(self) -> None:
        """Wake any blocked ``collect`` so it observes the abort flag.

        The abort *event* is shared and set once by the world; this hook
        exists because a poll-free ``collect`` sleeps until notified.
        """
        with self._cond:
            self._cond.notify_all()

    def _retire(self, key: tuple[int, int], q: deque) -> None:
        # Caller holds the lock and has just emptied q.
        del self._queues[key]
        if len(self._spares) < _SPARE_QUEUES:
            self._spares.append(q)

    def _match(self, source: int, tag: int) -> Envelope | None:
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (source, tag)
            q = self._queues.get(key)
            if q:
                env = q.popleft()
                if not q:
                    self._retire(key, q)
                return env
            return None
        # Wildcard path: snapshot the items — _retire mutates the dict
        # mid-scan, and defensiveness against future lock-free delivery
        # costs nothing here (wildcards are not the hot path).
        for key, q in list(self._queues.items()):
            if not q:
                continue
            src, tg = key
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, tg)):
                env = q.popleft()
                if not q:
                    self._retire(key, q)
                return env
        return None

    def collect(self, source: int, tag: int) -> Envelope:
        """Block until a matching message arrives; honor run aborts.

        Raises
        ------
        RuntimeAbort
            If the SPMD run is being torn down (another rank failed).
        """
        with self._cond:
            while True:
                if self._abort.is_set():
                    raise RuntimeAbort(
                        f"rank {self.rank}: run aborted while waiting for "
                        f"message (source={source}, tag={tag})"
                    )
                env = self._match(source, tag)
                if env is not None:
                    return env
                self._cond.wait(timeout=_ABORT_RECHECK_SECONDS)

    def probe(self, source: int, tag: int) -> bool:
        """Return True if a matching message is already queued."""
        with self._cond:
            if source != ANY_SOURCE and tag != ANY_TAG:
                q = self._queues.get((source, tag))
                return bool(q)
            return any(
                q
                and (source in (ANY_SOURCE, src))
                and (tag in (ANY_TAG, tg))
                for (src, tg), q in self._queues.items()
            )

    def pending_count(self) -> int:
        """Total queued messages (diagnostics; used by leak checks)."""
        with self._cond:
            return sum(len(q) for q in self._queues.values())
