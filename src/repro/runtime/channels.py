"""Deterministic point-to-point message channels between ranks.

Each rank owns one :class:`Mailbox`.  A message is addressed by its
``(source, tag)`` pair and queued FIFO within that pair, so matching is
deterministic regardless of the thread schedule — the property that makes
virtual-time results bit-reproducible.

``ANY_SOURCE`` / ``ANY_TAG`` wildcard receives are supported for
completeness (MPI has them) but matching order for wildcards depends on
arrival order and is therefore only deterministic when a single candidate
message can exist, which is how the library itself uses them.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import RuntimeAbort

__all__ = ["ANY_SOURCE", "ANY_TAG", "Envelope", "Mailbox"]

ANY_SOURCE: int = -1
ANY_TAG: int = -1

_POLL_INTERVAL = 0.05  # seconds between abort-flag checks while blocked


@dataclass(frozen=True)
class Envelope:
    """A delivered message: payload plus wire metadata."""

    source: int
    tag: int
    payload: Any
    nbytes: int
    available_at: float  # virtual time at which the message reaches the rank


class Mailbox:
    """Inbox for a single rank, with per-(source, tag) FIFO ordering."""

    def __init__(self, rank: int, abort_event: threading.Event):
        self.rank = rank
        self._abort = abort_event
        self._cond = threading.Condition()
        self._queues: dict[tuple[int, int], deque[Envelope]] = {}

    def deliver(self, env: Envelope) -> None:
        """Called by a sender thread to enqueue a message."""
        key = (env.source, env.tag)
        with self._cond:
            self._queues.setdefault(key, deque()).append(env)
            self._cond.notify_all()

    def _match(self, source: int, tag: int) -> Envelope | None:
        if source != ANY_SOURCE and tag != ANY_TAG:
            q = self._queues.get((source, tag))
            if q:
                return q.popleft()
            return None
        for (src, tg), q in self._queues.items():
            if not q:
                continue
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, tg)):
                return q.popleft()
        return None

    def collect(self, source: int, tag: int) -> Envelope:
        """Block until a matching message arrives; honor run aborts.

        Raises
        ------
        RuntimeAbort
            If the SPMD run is being torn down (another rank failed).
        """
        with self._cond:
            while True:
                if self._abort.is_set():
                    raise RuntimeAbort(
                        f"rank {self.rank}: run aborted while waiting for "
                        f"message (source={source}, tag={tag})"
                    )
                env = self._match(source, tag)
                if env is not None:
                    return env
                self._cond.wait(timeout=_POLL_INTERVAL)

    def probe(self, source: int, tag: int) -> bool:
        """Return True if a matching message is already queued."""
        with self._cond:
            if source != ANY_SOURCE and tag != ANY_TAG:
                q = self._queues.get((source, tag))
                return bool(q)
            return any(
                q
                and (source in (ANY_SOURCE, src))
                and (tag in (ANY_TAG, tg))
                for (src, tg), q in self._queues.items()
            )

    def pending_count(self) -> int:
        """Total queued messages (diagnostics; used by leak checks)."""
        with self._cond:
            return sum(len(q) for q in self._queues.values())
