"""Deterministic point-to-point message channels between ranks.

Each rank owns one :class:`Mailbox`.  A message is addressed by its
``(source, tag)`` pair and queued FIFO within that pair, so matching is
deterministic regardless of the thread schedule — the property that makes
virtual-time results bit-reproducible.

``ANY_SOURCE`` / ``ANY_TAG`` wildcard receives are supported for
completeness (MPI has them) but matching order for wildcards depends on
arrival order and is therefore only deterministic when a single candidate
message can exist, which is how the library itself uses them.

Blocking receives are **poll-free**: a rank blocked in
:meth:`Mailbox.collect` sleeps on the mailbox condition until a sender
delivers a matching message or the run aborts.  Aborts wake every
blocked rank immediately via :meth:`Mailbox.notify_abort` (called by
``World.abort``); a coarse once-a-second recheck guards against code
that sets the shared abort event without notifying, but no fast
periodic poll remains on any path.

Fault semantics live here too, via the shared :class:`Membership`:

* A blocked receive on a rank the failure detector knows to be dead
  raises :class:`~repro.errors.RankFailedError` instead of hanging
  (queued messages from the dead rank drain first — death does not
  destroy in-flight data).
* A blocked receive on a revoked communicator raises
  :class:`~repro.errors.RevokedError` so survivors can reach recovery.
* The **hang watchdog**: when every active rank is blocked in a receive
  with no matching message queued, no rank can ever deliver again (the
  ranks are the only senders), so the state is a guaranteed deadlock.
  The rank whose block completes the condition raises a
  :class:`~repro.errors.DeadlockError` naming every rank's pending
  ``(source, tag)`` wait.

Ordering inside :meth:`Mailbox.collect` matters: a matching queued
message is always drained *before* the abort / failure / revocation
checks, so a rank whose data already arrived completes its receive
instead of spuriously unwinding.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Hashable

from repro.errors import DeadlockError, RankFailedError, RevokedError, RuntimeAbort

__all__ = ["ANY_SOURCE", "ANY_TAG", "Envelope", "Mailbox", "Membership"]

ANY_SOURCE: int = -1
ANY_TAG: int = -1

#: Retired-deque pool size.  Collective tags are unique per call (context
#: id + sequence number), so without recycling the queue dict would grow
#: by one key per collective; a small pool of spare deques keeps the hot
#: path allocation-free and the dict bounded by the number of keys with
#: messages actually in flight.
_SPARE_QUEUES = 8

#: Safety-net recheck period for a blocked ``collect``.  The normal
#: wakeup is a notification (``deliver``, ``notify_abort``, or a
#: membership change); this timeout only matters if the shared abort
#: event is set directly without ``notify_abort``, in which case the
#: receiver still notices within a second instead of sleeping forever.
_ABORT_RECHECK_SECONDS = 1.0

#: Tag-tuple markers whose context id (element 1) is subject to
#: communicator revocation.  Fault-tolerance control traffic ("ft"/"ftr"
#: tags used by ``Communicator.agree``) is exempt — it must keep flowing
#: on a revoked communicator, exactly like ULFM's agreement.
_REVOCABLE_TAG_KINDS = ("c", "u")


def tag_is_wild(tag: Hashable) -> bool:
    """True for the bare ``ANY_TAG`` wildcard or a scoped one.

    A *scoped* wildcard is a tag tuple whose last element is ``ANY_TAG``
    — e.g. ``("u", cid, ANY_TAG)``, a ``Communicator.recv`` with the
    default tag.  It matches any concrete tag sharing its prefix, which
    keeps wildcard receives confined to their own communicator (and
    visible to that communicator's revocation), unlike a bare ``ANY_TAG``
    which matches traffic from *every* communicator and collective.
    """
    return tag == ANY_TAG or (
        isinstance(tag, tuple) and bool(tag) and tag[-1] == ANY_TAG
    )


def tag_matches(want: Hashable, have: Hashable) -> bool:
    """Match a requested tag (possibly wildcard) against a queued one."""
    if want == ANY_TAG:
        return True
    if isinstance(want, tuple) and want and want[-1] == ANY_TAG:
        return (
            isinstance(have, tuple)
            and len(have) == len(want)
            and have[:-1] == want[:-1]
        )
    return want == have


@dataclass(frozen=True)
class Envelope:
    """A delivered message: payload plus wire metadata."""

    source: int
    tag: int
    payload: Any
    nbytes: int
    available_at: float  # virtual time at which the message reaches the rank


class Membership:
    """Shared failure-detector and hang-watchdog state for one world.

    This is the simulator's *perfect failure detector*: fail-stop events
    record the dead rank here, so every survivor observes an identical,
    immediate view of the failure (the strongest detector in the
    literature, and the standard assumption under which ULFM-style
    ``shrink``/``agree`` protocols are specified).

    It also tracks which ranks are done (returned from the SPMD
    function) and which are currently blocked in a receive, which is
    exactly the information the hang watchdog needs: when
    ``len(blocked) == active count``, nobody can ever send again.
    """

    def __init__(self, nprocs: int, members: tuple[int, ...] | None = None):
        self.nprocs = nprocs
        #: The world ranks this membership covers.  A standalone run
        #: covers every rank; an engine job covers only the pool ranks it
        #: was placed on, so its watchdog and failure detector reason
        #: about the job's ranks alone.
        self.members: tuple[int, ...] = (
            tuple(range(nprocs)) if members is None else tuple(members)
        )
        self.lock = threading.Lock()
        self.dead: set[int] = set()
        self.done: set[int] = set()
        self.revoked: set = set()  # revoked communicator context ids
        self.blocked: dict[int, tuple[int, Hashable]] = {}
        #: Bumped on every successful un-block; lets the deadlock scan
        #: detect that a rank it saw as blocked actually made progress.
        self.version = 0
        #: Wired by the World after construction (avoids a circular
        #: constructor dependency between World, Mailbox and Membership).
        self.mailboxes: list[Mailbox] = []
        self.clocks: list[Any] = []

    # -- failure detector ---------------------------------------------------

    def mark_dead(self, rank: int) -> None:
        with self.lock:
            self.dead.add(rank)
            self.blocked.pop(rank, None)
            self.version += 1

    def mark_done(self, rank: int) -> None:
        with self.lock:
            if rank not in self.dead:
                self.done.add(rank)
            self.blocked.pop(rank, None)
            self.version += 1

    def mark_alive(self, rank: int) -> None:
        """Forget a recorded fail-stop of ``rank`` (rank revival).

        The engine supervisor calls this through
        :meth:`~repro.runtime.world.World.revive_rank` when a
        quarantined pool rank passes its health probe: the shared
        world's detector must stop reporting the rank dead before new
        jobs can be gang-scheduled onto it.  Job-scoped memberships are
        never revived — a job that watched a member die keeps that view
        for its whole lifetime (the ULFM model has no un-fail).
        """
        with self.lock:
            self.dead.discard(rank)
            self.done.discard(rank)
            self.blocked.pop(rank, None)
            self.version += 1

    def revoke(self, cid: Hashable) -> None:
        with self.lock:
            self.revoked.add(cid)
            self.version += 1  # invalidates any in-flight deadlock scan

    def is_revoked(self, cid: Hashable) -> bool:
        with self.lock:
            return cid in self.revoked

    def dead_snapshot(self) -> frozenset[int]:
        with self.lock:
            return frozenset(self.dead)

    def check_wait(self, source: int, tag: Hashable) -> None:
        """Raise if a receive for ``(source, tag)`` can never complete.

        Called by ``Mailbox.collect`` *after* the match attempt failed,
        so queued messages always win over failure errors.
        """
        with self.lock:
            if (
                self.revoked
                and isinstance(tag, tuple)
                and len(tag) >= 2
                and tag[0] in _REVOCABLE_TAG_KINDS
                and tag[1] in self.revoked
            ):
                raise RevokedError(tag[1])
            if source != ANY_SOURCE and source in self.dead:
                raise RankFailedError(
                    source, f"detected while waiting for tag {tag!r}"
                )

    # -- hang watchdog ------------------------------------------------------

    def on_block(self, rank: int, source: int, tag: Hashable) -> bool:
        """Register ``rank`` as blocked on ``(source, tag)``; return True
        when every active rank is now blocked (a deadlock candidate)."""
        with self.lock:
            self.blocked[rank] = (source, tag)
            active = len(self.members) - len(self.dead) - len(self.done)
            return len(self.blocked) >= active

    def on_wake(self, rank: int) -> None:
        """Unregister a blocked rank (matched a message or unwound)."""
        with self.lock:
            if self.blocked.pop(rank, None) is not None:
                self.version += 1

    def deadlock_diagnosis(self) -> str | None:
        """Confirm the all-blocked state and describe it, or return None.

        Runs **without** holding any mailbox lock (the caller released
        its own condition first), probing one mailbox at a time; the
        version counter detects any rank that made progress between the
        snapshot and the final confirmation, in which case this is not a
        deadlock after all.
        """
        with self.lock:
            active = len(self.members) - len(self.dead) - len(self.done)
            if active == 0 or len(self.blocked) < active:
                return None
            for source, tag in self.blocked.values():
                # A wait that check_wait will reject (dead source,
                # revoked communicator) is pending progress — that rank
                # raises on its next wakeup, so this is not a deadlock.
                if source != ANY_SOURCE and source in self.dead:
                    return None
                if (
                    self.revoked
                    and isinstance(tag, tuple)
                    and len(tag) >= 2
                    and tag[0] in _REVOCABLE_TAG_KINDS
                    and tag[1] in self.revoked
                ):
                    return None
            snapshot = dict(self.blocked)
            v = self.version
        for rank, (source, tag) in snapshot.items():
            if self.mailboxes[rank].probe(source, tag):
                return None  # someone's message is already there
        with self.lock:
            active = len(self.members) - len(self.dead) - len(self.done)
            if self.version != v or len(self.blocked) < active:
                return None  # progress happened mid-scan
        waits = ", ".join(
            f"rank {r} <- (source={s}, tag={t!r})"
            for r, (s, t) in sorted(snapshot.items())
        )
        return (
            f"deadlock: all {len(snapshot)} active rank(s) blocked with no "
            f"matching message queued [{waits}]"
        )

    # -- diagnostics --------------------------------------------------------

    def rank_states(self) -> list[dict]:
        """Per-rank diagnostic dicts for SpmdError/SpmdTimeout messages.

        One entry per *member*, labeled with the member's group rank
        (identical to the world rank for a standalone run, where the
        membership covers every rank); internal state is keyed by world
        rank, which is how the executor and engine record it.
        """
        with self.lock:
            dead, done = set(self.dead), set(self.done)
            blocked = dict(self.blocked)
        out = []
        for g, r in enumerate(self.members):
            if r in dead:
                status = "failed"
            elif r in done:
                status = "done"
            elif r in blocked:
                status = "blocked"
            else:
                status = "running"
            out.append({
                "rank": g,
                "status": status,
                "waiting_for": blocked.get(r),
                "clock": self.clocks[r].t if self.clocks else 0.0,
                "pending_count": (
                    self.mailboxes[r].pending_count() if self.mailboxes else 0
                ),
            })
        return out


class Mailbox:
    """Inbox for a single rank, with per-(source, tag) FIFO ordering."""

    def __init__(
        self,
        rank: int,
        abort_event: threading.Event,
        membership: Membership | None = None,
    ):
        self.rank = rank
        self._abort = abort_event
        self._membership = membership
        self._cond = threading.Condition()
        self._queues: dict[tuple[int, int], deque[Envelope]] = {}
        self._spares: list[deque[Envelope]] = []
        # Number of threads (0 or 1 — only the owning rank) currently
        # blocked in collect().  Maintained under the condition lock;
        # read without it by notify_abort's fast path.
        self._waiters = 0

    def deliver(self, env: Envelope, *, reorder: bool = False) -> None:
        """Called by a sender thread to enqueue a message.

        ``reorder=True`` (fault injection only) slots the message in
        *before* the current tail of its queue, modeling adjacent
        in-flight packets overtaking each other on the wire; the
        reliable-delivery layer's sequence numbers restore order at the
        receiver.
        """
        key = (env.source, env.tag)
        with self._cond:
            q = self._queues.get(key)
            if q is None:
                q = self._spares.pop() if self._spares else deque()
                self._queues[key] = q
            if reorder and q:
                q.insert(len(q) - 1, env)
            else:
                q.append(env)
            # Exactly one thread — the owning rank — ever blocks in
            # collect(), so a single wakeup suffices (and none at all
            # when the receiver has not blocked yet).
            if self._waiters:
                self._cond.notify()

    def notify_abort(self) -> None:
        """Wake any blocked ``collect`` so it observes the abort flag.

        The abort *event* is shared and set once by the world; this hook
        exists because a poll-free ``collect`` sleeps until notified.
        The same wakeup serves membership changes (a rank dying,
        finishing, or revoking a communicator).

        Fast path: when nobody is blocked (``_waiters == 0``, read
        without the lock) this is a no-op.  The unlocked read can miss
        a waiter only in the instant between its predicate check and
        its wait; that waiter still observes the state change within
        ``_ABORT_RECHECK_SECONDS`` via the timed wait, so the skip
        trades a bounded wakeup delay in a vanishingly rare race for
        making the common case (notify a rank that finished long ago)
        nearly free.
        """
        if not self._waiters:
            return
        with self._cond:
            self._cond.notify_all()

    # -- job-scoped binding (engine multiplexing) ---------------------------

    def bind_job(
        self,
        membership: Membership | None,
        abort_event: threading.Event,
    ) -> tuple[Membership | None, threading.Event]:
        """Swap in a job's membership and abort event; return the old pair.

        The persistent engine multiplexes jobs over one set of mailboxes.
        Only the *owning rank's thread* ever blocks in :meth:`collect`,
        and it calls ``bind_job`` before entering the job's SPMD function
        and restores the previous binding after — so the membership and
        abort flag a blocked ``collect`` consults are always the ones of
        the job that rank is currently running.  Senders never read
        either field (``deliver``/``probe`` touch only the queues), which
        is what makes the swap safe without extra synchronization beyond
        the mailbox condition lock.
        """
        with self._cond:
            previous = (self._membership, self._abort)
            self._membership = membership
            self._abort = abort_event
            return previous

    def drain_where(self, pred) -> int:
        """Remove every queued envelope whose ``(source, tag)`` satisfies
        ``pred(source, tag)``; return how many were removed.

        Engine job finalization uses this to sweep messages a finished
        job sent but never received (e.g. a re-root forward raced by an
        abort) so a long-lived world cannot accumulate leaked envelopes
        across thousands of jobs.  The predicate is tag-scoped to the
        finished job's context ids, so concurrent jobs' traffic is never
        touched.
        """
        removed = 0
        with self._cond:
            for key in list(self._queues):
                src, tag = key
                if not pred(src, tag):
                    continue
                q = self._queues[key]
                removed += len(q)
                q.clear()
                self._retire(key, q)
        return removed

    def _retire(self, key: tuple[int, int], q: deque) -> None:
        # Caller holds the lock and has just emptied q.
        del self._queues[key]
        if len(self._spares) < _SPARE_QUEUES:
            self._spares.append(q)

    def _match(self, source: int, tag: int) -> Envelope | None:
        if source != ANY_SOURCE and not tag_is_wild(tag):
            key = (source, tag)
            q = self._queues.get(key)
            if q:
                env = q.popleft()
                if not q:
                    self._retire(key, q)
                return env
            return None
        # Wildcard path: snapshot the items — _retire mutates the dict
        # mid-scan, and defensiveness against future lock-free delivery
        # costs nothing here (wildcards are not the hot path).
        for key, q in list(self._queues.items()):
            if not q:
                continue
            src, tg = key
            if (source in (ANY_SOURCE, src)) and tag_matches(tag, tg):
                env = q.popleft()
                if not q:
                    self._retire(key, q)
                return env
        return None

    def collect(self, source: int, tag: int) -> Envelope:
        """Block until a matching message arrives; honor faults/aborts.

        A matching queued message always completes the receive, even if
        the run is aborting or the sender has died — in-flight data is
        drained first.  With nothing queued, the checks run in order:
        run abort, communicator revocation, sender death, then the hang
        watchdog.

        Raises
        ------
        RuntimeAbort
            If the SPMD run is being torn down (another rank failed).
        RevokedError
            If the tag belongs to a revoked communicator.
        RankFailedError
            If the awaited source rank has fail-stopped.
        DeadlockError
            If every active rank is blocked with no matching message.
        """
        m = self._membership
        registered = False
        last_checked_version = None
        try:
            while True:
                run_watchdog = False
                with self._cond:
                    env = self._match(source, tag)
                    if env is not None:
                        if registered:
                            # Deregister *here*, under the mailbox lock,
                            # not in the finally: once the message is
                            # consumed a prober can no longer see it, so
                            # the version bump must land first or the
                            # watchdog could snapshot us as blocked,
                            # probe an already-drained queue, and call a
                            # live run a deadlock.
                            registered = False
                            m.on_wake(self.rank)
                        return env
                    if self._abort.is_set():
                        raise RuntimeAbort(
                            f"rank {self.rank}: run aborted while waiting for "
                            f"message (source={source}, tag={tag})"
                        )
                    if m is not None:
                        m.check_wait(source, tag)
                        full = m.on_block(self.rank, source, tag)
                        registered = True
                        # When our block completes the all-blocked set,
                        # scan for deadlock immediately (outside the
                        # lock) instead of sleeping; the version guard
                        # bounds this to one scan per state change, so a
                        # near-miss cannot busy-spin.
                        run_watchdog = full and m.version != last_checked_version
                    if not run_watchdog:
                        self._waiters += 1
                        try:
                            self._cond.wait(timeout=_ABORT_RECHECK_SECONDS)
                        finally:
                            self._waiters -= 1
                if run_watchdog:
                    last_checked_version = m.version
                    diagnosis = m.deadlock_diagnosis()
                    if diagnosis is not None:
                        raise DeadlockError(diagnosis)
        finally:
            if registered:
                m.on_wake(self.rank)

    def probe(self, source: int, tag: int) -> bool:
        """Return True if a matching message is already queued."""
        with self._cond:
            if source != ANY_SOURCE and not tag_is_wild(tag):
                q = self._queues.get((source, tag))
                return bool(q)
            return any(
                q
                and (source in (ANY_SOURCE, src))
                and tag_matches(tag, tg)
                for (src, tg), q in self._queues.items()
            )

    def pending_count(self) -> int:
        """Total queued messages (diagnostics; used by leak checks)."""
        with self._cond:
            return sum(len(q) for q in self._queues.values())


# --------------------------------------------------------------------------
# Shared-memory frame codec (process backend).
#
# The process-parallel world backend (repro.runtime.procworld) moves the
# accumulate phase's bulk data between the parent and its rank workers
# through multiprocessing.shared_memory ring buffers.  The unit of
# exchange is a *frame*: a small fixed header followed by either the raw
# bytes of an ndarray (decoded on the other side as a zero-copy,
# read-only view into the segment) or a validated pickle (the fallback
# for arbitrary operator states).  The codec lives here, next to the
# Envelope, because it is the wire format of the only other channel in
# the runtime.

import pickle as _pickle
import struct as _struct

import numpy as _np

from repro.errors import TransferError as _TransferError

#: Frame kinds.
FRAME_ND = 1  #: raw ndarray bytes, zero-copy decodable
FRAME_PICKLE = 2  #: pickled object bytes

#: Header: magic, kind (u8), reserved, payload offset (u32, from frame
#: start), payload nbytes (u64).  The payload offset lets the encoder
#: align ndarray bytes without the decoder re-deriving padding.
_FRAME_HEADER = _struct.Struct("<4sBxxxIQ")
_FRAME_MAGIC = b"RFR1"
#: ndarray sub-header: dtype-str length (u32), ndim (u32); followed by
#: the dtype string and ndim u64 dims.
_ND_HEADER = _struct.Struct("<II")
_DIM = _struct.Struct("<Q")
#: ndarray payloads start on a 64-byte boundary so decoded views are
#: cache-line (and always itemsize) aligned.
_ND_ALIGN = 64


class FrameTooLarge(Exception):
    """Internal: the frame does not fit the ring's capacity (the pool
    falls back to sending the payload through the command pipe)."""


def _nd_encodable(arr: "_np.ndarray") -> bool:
    """Can ``arr`` travel as raw bytes?  Object dtypes never can;
    exotic dtypes must round-trip through their ``str`` form."""
    if arr.dtype.hasobject:
        return False
    try:
        return _np.dtype(arr.dtype.str) == arr.dtype
    except TypeError:
        return False


def frame_nbytes_needed(obj: Any) -> int:
    """Upper bound on the frame size for ``obj`` (ndarray path only;
    pickle frames are sized exactly by encoding)."""
    if isinstance(obj, _np.ndarray) and _nd_encodable(obj):
        meta = _ND_HEADER.size + len(obj.dtype.str) + _DIM.size * obj.ndim
        return _FRAME_HEADER.size + meta + _ND_ALIGN + int(obj.nbytes)
    return 0


def encode_frame(obj: Any, buf: memoryview, offset: int) -> tuple[int, int]:
    """Encode ``obj`` as a frame into ``buf`` at ``offset``.

    Returns ``(end_offset, kind)``.  C- or F-contiguous *and* strided
    ndarrays of non-object dtype are written as raw C-order bytes
    (strided sources pay one gathering copy into the segment — still no
    intermediate allocation); everything else is pickled.  Raises
    :class:`FrameTooLarge` when the frame would overrun ``buf`` and
    :class:`~repro.errors.TransferError` when the object is neither an
    encodable ndarray nor picklable.
    """
    cap = len(buf)
    if isinstance(obj, _np.ndarray) and _nd_encodable(obj):
        dt = obj.dtype.str.encode("ascii")
        meta_off = offset + _FRAME_HEADER.size
        meta_end = meta_off + _ND_HEADER.size + len(dt) + _DIM.size * obj.ndim
        pay_off = -(-meta_end // _ND_ALIGN) * _ND_ALIGN
        end = pay_off + int(obj.nbytes)
        if end > cap:
            raise FrameTooLarge(end - offset)
        _FRAME_HEADER.pack_into(
            buf, offset, _FRAME_MAGIC, FRAME_ND, pay_off - offset,
            int(obj.nbytes),
        )
        _ND_HEADER.pack_into(buf, meta_off, len(dt), obj.ndim)
        pos = meta_off + _ND_HEADER.size
        buf[pos : pos + len(dt)] = dt
        pos += len(dt)
        for dim in obj.shape:
            _DIM.pack_into(buf, pos, dim)
            pos += _DIM.size
        if obj.nbytes:
            dest = _np.ndarray(
                obj.shape, dtype=obj.dtype, buffer=buf, offset=pay_off
            )
            _np.copyto(dest, obj)
        return end, FRAME_ND
    try:
        payload = _pickle.dumps(obj, protocol=_pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise _TransferError(
            f"payload of type {type(obj).__name__!r} cannot cross the "
            f"process boundary: it is neither a raw-encodable ndarray "
            f"nor picklable ({exc})"
        ) from exc
    pay_off = offset + _FRAME_HEADER.size
    end = pay_off + len(payload)
    if end > cap:
        raise FrameTooLarge(end - offset)
    _FRAME_HEADER.pack_into(
        buf, offset, _FRAME_MAGIC, FRAME_PICKLE, _FRAME_HEADER.size,
        len(payload),
    )
    buf[pay_off:end] = payload
    return end, FRAME_PICKLE


def decode_frame(
    buf: memoryview, offset: int, *, copy: bool = False
) -> tuple[Any, int]:
    """Decode the frame at ``offset``; returns ``(obj, end_offset)``.

    ndarray frames decode as **zero-copy read-only views** into ``buf``
    unless ``copy=True`` (the parent copies result states out of the
    ring before reusing it; workers read input views in place).
    """
    magic, kind, pay_rel, nbytes = _FRAME_HEADER.unpack_from(buf, offset)
    if magic != _FRAME_MAGIC:
        raise ValueError(
            f"corrupt frame at offset {offset}: bad magic {magic!r}"
        )
    pay_off = offset + pay_rel
    if kind == FRAME_PICKLE:
        return _pickle.loads(buf[pay_off : pay_off + nbytes]), pay_off + nbytes
    if kind != FRAME_ND:
        raise ValueError(f"corrupt frame at offset {offset}: kind {kind}")
    meta_off = offset + _FRAME_HEADER.size
    dt_len, ndim = _ND_HEADER.unpack_from(buf, meta_off)
    pos = meta_off + _ND_HEADER.size
    dtype = _np.dtype(bytes(buf[pos : pos + dt_len]).decode("ascii"))
    pos += dt_len
    shape = tuple(
        _DIM.unpack_from(buf, pos + i * _DIM.size)[0] for i in range(ndim)
    )
    arr = _np.ndarray(shape, dtype=dtype, buffer=buf, offset=pay_off)
    if copy:
        return arr.copy(), pay_off + nbytes
    arr.setflags(write=False)
    return arr, pay_off + nbytes
