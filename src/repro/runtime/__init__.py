"""SPMD runtime: simulated ranks, virtual time, cost models, traces."""

from repro.runtime.channels import ANY_SOURCE, ANY_TAG, Envelope, Mailbox, Membership
from repro.runtime.clock import VirtualClock
from repro.runtime.costmodel import (
    CostModel,
    DEFAULT_RATES,
    calibrate_rate,
    cluster_2006,
    modern_node,
)
from repro.runtime.executor import SpmdResult, spmd_run
from repro.runtime.trace import Trace, TraceEvent, merge_traces
from repro.runtime.world import RankContext, World

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Envelope",
    "Mailbox",
    "Membership",
    "VirtualClock",
    "CostModel",
    "DEFAULT_RATES",
    "calibrate_rate",
    "cluster_2006",
    "modern_node",
    "SpmdResult",
    "spmd_run",
    "Trace",
    "TraceEvent",
    "merge_traces",
    "RankContext",
    "World",
]
