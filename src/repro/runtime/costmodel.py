"""LogGP-style communication/computation cost model.

The paper's performance figures were measured on an IBM P655 cluster; this
reproduction replaces the cluster with a message-level simulator whose cost
parameters follow the LogGP family:

* ``send_overhead`` (o_s): CPU time the sender spends injecting a message.
* ``recv_overhead`` (o_r): CPU time the receiver spends extracting one.
* ``latency`` (L): wire time for the first byte.
* ``byte_time`` (G): wire time per additional byte (1/bandwidth).

A message of ``b`` bytes sent at sender-time ``t_s`` becomes available to
the receiver at ``t_s + o_s + L + b*G``; the sender's clock advances by
``o_s`` only (eager/asynchronous send).

``L + b*G`` (:meth:`CostModel.wire_time`) is the price of one *uniform*
link.  Worlds no longer call it directly: every send is priced through
the world's :class:`repro.runtime.fabric.Topology` via
``path_cost(src, dst, nbytes, cost_model)``, which on the default flat
topology evaluates exactly this formula — the model above is the flat
fabric — while multi-tier fabrics substitute per-tier parameters (see
``docs/topology.md``).  This object remains the single source of truth
for overheads, compute rates, and the inter-node tier's defaults.

Local computation is charged through named **rates** (seconds/element).
Rates can be fixed (the deterministic defaults below, loosely modeled on a
2000s-era cluster node so the compute/latency ratio is realistic) or
**calibrated** by timing the actual Python/NumPy kernels on the current
machine via :func:`calibrate_rate`.  Figure benchmarks calibrate the
kernels they charge for, so the reproduced curves reflect real relative
costs of this implementation, while communication follows the model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

__all__ = [
    "CostModel",
    "DEFAULT_RATES",
    "calibrate_rate",
    "cluster_2006",
    "modern_node",
]

#: Deterministic default per-element compute rates (seconds per element).
#:
#: ``python_loop``  — an interpreted per-element accumulate loop.
#: ``numpy_stream`` — a streaming vectorized pass (one read per element).
#: ``numpy_stream2``— a vectorized pass making two reads per element
#:                    (the "two memory references" NAS IS verifier).
#: ``compare``      — one compare+branch per element in compiled-like code.
DEFAULT_RATES: dict[str, float] = {
    "python_loop": 2.0e-7,
    "numpy_stream": 2.0e-9,
    "numpy_stream2": 4.0e-9,
    "compare": 1.0e-9,
    "flop": 1.0e-9,
}


@dataclass(frozen=True)
class CostModel:
    """Immutable bundle of communication and computation cost parameters."""

    latency: float = 5.0e-6
    byte_time: float = 1.0 / 500.0e6  # 500 MB/s
    send_overhead: float = 1.0e-6
    recv_overhead: float = 1.0e-6
    rates: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_RATES))

    def __post_init__(self) -> None:
        for name, value in (
            ("latency", self.latency),
            ("byte_time", self.byte_time),
            ("send_overhead", self.send_overhead),
            ("recv_overhead", self.recv_overhead),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    # -- communication ---------------------------------------------------

    def wire_time(self, nbytes: int) -> float:
        """Time from send-injection to receive-availability for nbytes."""
        return self.latency + nbytes * self.byte_time

    # -- computation -----------------------------------------------------

    def compute_time(self, rate_name: str, n_elements: float) -> float:
        """Modeled seconds for processing ``n_elements`` at a named rate."""
        try:
            rate = self.rates[rate_name]
        except KeyError:
            raise KeyError(
                f"unknown compute rate {rate_name!r}; known rates: "
                f"{sorted(self.rates)}"
            ) from None
        return rate * n_elements

    def with_rates(self, **rates: float) -> "CostModel":
        """Return a copy with the given named rates added/overridden."""
        merged = dict(self.rates)
        merged.update(rates)
        return replace(self, rates=merged)

    def with_params(self, **params: float) -> "CostModel":
        """Return a copy with communication parameters overridden."""
        return replace(self, **params)


def calibrate_rate(
    kernel: Callable[[int], None],
    n_elements: int,
    *,
    repeats: int = 3,
    min_time: float = 0.01,
) -> float:
    """Measure a per-element rate (seconds/element) for ``kernel``.

    ``kernel(n)`` must process ``n`` elements.  The kernel is timed over
    enough iterations to exceed ``min_time`` wall seconds, and the best of
    ``repeats`` runs is taken (standard noise-rejection practice).
    """
    if n_elements <= 0:
        raise ValueError(f"n_elements must be positive, got {n_elements}")
    # Warm up (first call may JIT numpy ufunc dispatch, touch caches).
    kernel(n_elements)
    iters = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(iters):
            kernel(n_elements)
        elapsed = time.perf_counter() - t0
        if elapsed >= min_time:
            break
        iters *= 2
    best = elapsed
    for _ in range(repeats - 1):
        t0 = time.perf_counter()
        for _ in range(iters):
            kernel(n_elements)
        best = min(best, time.perf_counter() - t0)
    return best / (iters * n_elements)


def cluster_2006() -> CostModel:
    """A cost model loosely matching the paper's IBM P655 interconnect:
    a few microseconds of latency, hundreds of MB/s of bandwidth."""
    return CostModel(
        latency=5.0e-6,
        byte_time=1.0 / 500.0e6,
        send_overhead=1.5e-6,
        recv_overhead=1.5e-6,
    )


def modern_node() -> CostModel:
    """A cost model resembling a modern multi-core node's shared memory
    (sub-microsecond latency, ~10 GB/s): useful for sensitivity checks."""
    return CostModel(
        latency=5.0e-7,
        byte_time=1.0 / 10.0e9,
        send_overhead=2.0e-7,
        recv_overhead=2.0e-7,
    )
