"""The SPMD executor: run one function on ``nprocs`` simulated ranks.

:func:`spmd_run` is the single entry point every example, test and
benchmark uses.  Each rank is a Python thread executing the same user
function with its own :class:`repro.mpi.Communicator`; message matching is
deterministic (per-(source, tag) FIFO), so results and virtual times do
not depend on the thread schedule.

Error handling follows "fail fast, unwind everyone": the first rank to
raise sets the world's abort flag, which wakes every rank blocked in a
receive with :class:`~repro.errors.RuntimeAbort`; the original exceptions
are re-raised in the caller wrapped in :class:`~repro.errors.SpmdError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import RankFailStop, RuntimeAbort, SpmdError, SpmdTimeout
from repro.obs.tracer import Tracer, active_profile
from repro.runtime.costmodel import CostModel
from repro.runtime.trace import Trace, merge_traces
from repro.runtime.world import World

__all__ = ["SpmdResult", "spmd_run"]


@dataclass
class SpmdResult:
    """Outcome of an SPMD run."""

    returns: list[Any]  # per-rank return values of the user function
    clocks: list[float]  # per-rank final virtual times
    traces: list[Trace]  # per-rank traces
    wall_seconds: float  # real elapsed wall-clock time of the whole run
    profile: Any = None  # RunCapture with spans, when a tracer was active
    failed_ranks: frozenset[int] = frozenset()  # ranks fail-stopped by a fault plan

    @property
    def nprocs(self) -> int:
        """Number of simulated ranks in the run."""
        return len(self.returns)

    @property
    def time(self) -> float:
        """Simulated makespan: the maximum final virtual time."""
        return max(self.clocks)

    @property
    def summary_trace(self) -> Trace:
        """All ranks' traces merged into one aggregate."""
        return merge_traces(self.traces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpmdResult(nprocs={self.nprocs}, time={self.time:.6e}s, "
            f"msgs={self.summary_trace.n_sends})"
        )


def spmd_run(
    fn: Callable[..., Any],
    nprocs: int,
    *,
    args: Sequence[Any] = (),
    cost_model: CostModel | None = None,
    record_events: bool = False,
    isolate_payloads: bool = True,
    timeout: float = 300.0,
    tracer: Tracer | None = None,
    fault_plan: Any | None = None,
) -> SpmdResult:
    """Execute ``fn(comm, *args)`` on ``nprocs`` simulated ranks.

    Parameters
    ----------
    fn:
        The SPMD program.  Called once per rank with that rank's
        :class:`repro.mpi.Communicator` as the first argument.
    nprocs:
        Number of ranks.
    args:
        Extra positional arguments passed to every rank (shared objects —
        treat them as read-only, exactly like command-line arguments of an
        ``mpiexec``-launched program).
    cost_model:
        Communication/computation cost parameters; defaults to
        :class:`repro.runtime.costmodel.CostModel()`.
    record_events:
        Keep full per-rank event timelines (memory-heavy; off by default).
    isolate_payloads:
        Deep-copy message payloads to model distinct address spaces.
        Leave on unless a benchmark has verified aliasing is safe.
    timeout:
        Wall-clock seconds after which the run is aborted and
        :class:`~repro.errors.SpmdTimeout` is raised (deadlock guard).
    tracer:
        A :class:`repro.obs.Tracer` to record phase-level spans into.
        Defaults to the active profiling session installed by
        :func:`repro.obs.profiling` (which may also override ``nprocs``),
        or to no tracing at all — the zero-overhead default.
    fault_plan:
        A :class:`repro.faults.FaultPlan` to inject seeded faults
        (fail-stop, lossy links, stragglers).  A rank fail-stopped by
        the plan does **not** abort the run: it is recorded in
        ``SpmdResult.failed_ranks`` (its return value stays ``None``)
        and survivors observe it through the failure detector as
        :class:`~repro.errors.RankFailedError`.

    Returns
    -------
    SpmdResult with per-rank return values, virtual clocks and traces.
    """
    import time as _time

    from repro.mpi.comm import Communicator  # local import: avoids cycle

    if tracer is None:
        tracer, forced_ranks = active_profile()
        if forced_ranks is not None:
            nprocs = forced_ranks

    world = World(
        nprocs,
        cost_model,
        record_events=record_events,
        isolate_payloads=isolate_payloads,
        tracer=tracer,
        fault_plan=fault_plan,
    )
    returns: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    failure_states: list[list[dict]] = []  # rank_states at first failure
    failures_lock = threading.Lock()

    def run_rank(rank: int) -> None:
        comm = Communicator(world.context(rank))
        try:
            returns[rank] = fn(comm, *args)
        except RankFailStop:
            # An *injected* fail-stop is part of the experiment, not a
            # program error: the rank silently dies (mark_failed already
            # ran at the raise site) and survivors carry on.
            pass
        except RuntimeAbort:
            pass  # unwound because another rank failed
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with failures_lock:
                failures[rank] = exc
                if not failure_states:
                    # Snapshot per-rank diagnostics while peers are still
                    # blocked — after the abort unwinds them, everyone
                    # would just read "done".
                    failure_states.append(world.rank_states())
            world.abort()
        finally:
            world.retire_rank(rank)

    t0 = _time.perf_counter()
    if nprocs == 1:
        # Single rank: run inline (cheaper, and keeps tracebacks direct).
        run_rank(0)
    else:
        threads = [
            threading.Thread(
                target=run_rank, args=(r,), name=f"spmd-rank-{r}", daemon=True
            )
            for r in range(nprocs)
        ]
        for t in threads:
            t.start()
        deadline = _time.perf_counter() + timeout
        for t in threads:
            remaining = deadline - _time.perf_counter()
            t.join(timeout=max(remaining, 0.0))
            if t.is_alive():
                stuck_states = world.rank_states()
                world.abort()
                for t2 in threads:
                    t2.join(timeout=5.0)
                raise SpmdTimeout(
                    f"SPMD run did not finish within {timeout} s "
                    f"(possible deadlock); aborted",
                    rank_states=stuck_states,
                )
    wall = _time.perf_counter() - t0

    clocks = [c.t for c in world.clocks]
    if world.run_capture is not None:
        # Finalize even on failure so a crashed program still leaves a
        # usable (partial) profile behind.
        tracer.finish_run(
            world.run_capture, clocks,
            label=getattr(fn, "__name__", None),
        )
    if failures:
        raise SpmdError(
            failures,
            rank_states=failure_states[0] if failure_states else None,
        )
    return SpmdResult(
        returns=returns,
        clocks=clocks,
        traces=world.traces,
        wall_seconds=wall,
        profile=world.run_capture,
        failed_ranks=world.membership.dead_snapshot(),
    )
