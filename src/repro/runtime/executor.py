"""The SPMD executor: run one function on ``nprocs`` simulated ranks.

:func:`spmd_run` is the single entry point every example, test and
benchmark uses.  Each rank is a Python thread executing the same user
function with its own :class:`repro.mpi.Communicator`; message matching is
deterministic (per-(source, tag) FIFO), so results and virtual times do
not depend on the thread schedule.

Since the :mod:`repro.engine` refactor, ``spmd_run`` is a thin **compat
shim** over a transient one-job :class:`~repro.engine.Engine`: the same
job machinery that serves the persistent multi-tenant engine runs the
one-shot case, so the two paths cannot drift apart.  Signature,
:class:`SpmdResult` and error contracts are unchanged.

Error handling follows "fail fast, unwind everyone": the first rank to
raise sets the job's abort flag, which wakes every rank blocked in a
receive with :class:`~repro.errors.RuntimeAbort`; the original exceptions
are re-raised in the caller wrapped in :class:`~repro.errors.SpmdError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.obs.tracer import Tracer, active_profile
from repro.runtime.costmodel import CostModel
from repro.runtime.trace import Trace, merge_traces

__all__ = ["SpmdResult", "spmd_run"]


@dataclass
class SpmdResult:
    """Outcome of an SPMD run."""

    returns: list[Any]  # per-rank return values of the user function
    clocks: list[float]  # per-rank final virtual times
    traces: list[Trace]  # per-rank traces
    wall_seconds: float  # real elapsed wall-clock time of the whole run
    profile: Any = None  # RunCapture with spans, when a tracer was active
    failed_ranks: frozenset[int] = frozenset()  # ranks fail-stopped by a fault plan
    # Memoized merge of `traces` (repr=False keeps debug output clean;
    # compare=False keeps dataclass equality over the real fields only).
    _summary_cache: Trace | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def nprocs(self) -> int:
        """Number of simulated ranks in the run."""
        return len(self.returns)

    @property
    def time(self) -> float:
        """Simulated makespan: the maximum final virtual time."""
        return max(self.clocks)

    @property
    def summary_trace(self) -> Trace:
        """All ranks' traces merged into one aggregate (computed once;
        repeated accesses return the same object — the per-rank traces
        are final by the time a result exists, so the merge is pure)."""
        if self._summary_cache is None:
            self._summary_cache = merge_traces(self.traces)
        return self._summary_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpmdResult(nprocs={self.nprocs}, time={self.time:.6e}s, "
            f"msgs={self.summary_trace.n_sends})"
        )


def spmd_run(
    fn: Callable[..., Any],
    nprocs: int,
    *,
    args: Sequence[Any] = (),
    cost_model: CostModel | None = None,
    record_events: bool = False,
    isolate_payloads: bool = True,
    timeout: float = 300.0,
    tracer: Tracer | None = None,
    fault_plan: Any | None = None,
    backend: str = "thread",
    backend_options: dict | None = None,
    topology: Any | None = None,
) -> SpmdResult:
    """Execute ``fn(comm, *args)`` on ``nprocs`` simulated ranks.

    Parameters
    ----------
    fn:
        The SPMD program.  Called once per rank with that rank's
        :class:`repro.mpi.Communicator` as the first argument.
    nprocs:
        Number of ranks.
    args:
        Extra positional arguments passed to every rank (shared objects —
        treat them as read-only, exactly like command-line arguments of an
        ``mpiexec``-launched program).
    cost_model:
        Communication/computation cost parameters; defaults to
        :class:`repro.runtime.costmodel.CostModel()`.
    record_events:
        Keep full per-rank event timelines (memory-heavy; off by default).
    isolate_payloads:
        Deep-copy message payloads to model distinct address spaces.
        Leave on unless a benchmark has verified aliasing is safe.
    timeout:
        Wall-clock seconds after which the run is aborted and
        :class:`~repro.errors.SpmdTimeout` is raised (deadlock guard).
    tracer:
        A :class:`repro.obs.Tracer` to record phase-level spans into.
        Defaults to the active profiling session installed by
        :func:`repro.obs.profiling` (which may also override ``nprocs``),
        or to no tracing at all — the zero-overhead default.
    fault_plan:
        A :class:`repro.faults.FaultPlan` to inject seeded faults
        (fail-stop, lossy links, stragglers).  A rank fail-stopped by
        the plan does **not** abort the run: it is recorded in
        ``SpmdResult.failed_ranks`` (its return value stays ``None``)
        and survivors observe it through the failure detector as
        :class:`~repro.errors.RankFailedError`.
    backend:
        ``"thread"`` (default) folds accumulate phases in-process;
        ``"process"`` offloads them to forked rank workers over
        shared-memory rings (``repro.runtime.procworld``) — results
        are byte-identical, wall-clock is parallel.  See
        ``docs/backends.md``.  ``backend_options`` forwards pool
        keywords (``ring_bytes``, ``min_offload_bytes``).
    topology:
        A :class:`repro.runtime.fabric.Topology` pricing each message by
        the network tiers it crosses.  Defaults to the flat fabric,
        which reproduces the plain cost-model wire times bit-for-bit.

    Returns
    -------
    SpmdResult with per-rank return values, virtual clocks and traces.
    """
    # Local import: repro.engine sits above the runtime layer (it builds
    # SpmdResult and Communicators), so the shim resolves it lazily.
    from repro.engine import Engine

    if tracer is None:
        tracer, forced_ranks = active_profile()
        if forced_ranks is not None:
            nprocs = forced_ranks

    engine = Engine(
        nprocs, cost_model=cost_model,
        backend=backend, backend_options=backend_options,
        topology=topology,
    )
    try:
        handle = engine.submit(
            fn,
            args=args,
            record_events=record_events,
            isolate_payloads=isolate_payloads,
            timeout=timeout,
            tracer=tracer,
            fault_plan=fault_plan,
        )
        return handle.result()
    finally:
        # Force mode: after result() everything is already finished, so
        # this just retires the pool; after a timeout it aborts the
        # stuck job and abandons (daemon) threads exactly as the
        # pre-engine executor did.
        engine.shutdown(drain=False, timeout=5.0)
