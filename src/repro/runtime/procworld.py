"""Process-parallel accumulate offload: the ``backend="process"`` pool.

The threaded virtual-time world is this project's bit-identity oracle,
but every accumulate phase it runs holds the GIL, so compute-heavy
operators serialize no matter how many ranks the pool has.  This module
adds a pool of long-lived **rank worker processes** that execute the
accumulate phase's fold concurrently across cores, while *everything
else* — virtual-time charging, tracer spans, fault injection, the
combine and generate phases, message matching — stays in the parent.
That split is what makes byte-identity provable rather than hoped for:

* The worker runs exactly the fold of
  :func:`repro.core.reduce._accumulate_impl` (``ident`` → ``pre_accum``
  → kernel/block fold → ``post_accum``) through the same
  :mod:`repro.core.kernels` tier, whose identity-oracle guarantee says
  every kernel routing produces byte-identical states.
* The parent applies the *same* virtual-time charge it would have
  applied for an in-process fold, so clocks, traces and message
  schedules cannot diverge.
* Any condition that prevents offload — unpicklable operator, dead
  worker, oversize frame with an unpicklable payload — degrades to the
  in-process fold (:data:`MISS`), never to a different answer.

Data moves through per-worker ``multiprocessing.shared_memory`` ring
buffers using the frame codec of :mod:`repro.runtime.channels`:
ndarray blocks are written once into the request ring and mapped on the
worker side as **zero-copy read-only views**; result states come back
through the response ring the same way (the parent copies them out
before the slot can be reused).  Payloads that are not raw-encodable
ndarrays — Python lists, tuple states, object dtypes — travel as
validated pickles over the command pipe instead (counted as
``pickle_fallbacks``).  One request is outstanding per worker at a
time, matching the engine's one-thread-per-pool-rank invariant, so the
rings need no cross-process locking.

Workers are forked (POSIX), so they inherit the parent's shared-memory
mappings, the compiled-kernel configuration and the operator classes
directly; each worker keeps its **own** :class:`~repro.core.kernels.
KernelCache` and resynchronizes it when the parent broadcasts a newer
configuration generation with a request.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import threading
import time
import weakref
from typing import Any

import numpy as np

from repro.errors import TransferError
from repro.runtime.channels import (
    FrameTooLarge,
    decode_frame,
    encode_frame,
    frame_nbytes_needed,
)
from repro.util.sizing import ensure_transferable, payload_nbytes

__all__ = ["MISS", "ProcPool", "DEFAULT_RING_BYTES", "DEFAULT_MIN_OFFLOAD_BYTES"]

#: Sentinel returned by :meth:`ProcPool.accumulate` when the request was
#: not (or could not be) offloaded; the caller must fold in-process.
MISS = object()

#: Capacity of each request/response ring (per worker, per direction).
#: Frames larger than this fall back to the command pipe — they are not
#: errors, just not zero-copy.
DEFAULT_RING_BYTES = 1 << 24  # 16 MiB

#: Blocks smaller than this are folded in-process: an IPC round trip
#: costs tens of microseconds, which only pays for itself on blocks
#: whose fold is slower than that.
DEFAULT_MIN_OFFLOAD_BYTES = 1 << 16  # 64 KiB

#: /dev/shm name prefix for this package's segments, so leak checks (and
#: humans) can attribute them.
SHM_PREFIX = "repro-pw"

_pool_registry: "weakref.WeakSet[ProcPool]" = weakref.WeakSet()


@atexit.register
def _reap_pools_at_exit() -> None:  # pragma: no cover - interpreter exit
    for pool in list(_pool_registry):
        try:
            pool.shutdown(timeout=0.5)
        except Exception:
            pass


def _fold_state(op: Any, values: Any) -> Any:
    """The accumulate fold, exactly as ``_accumulate_impl`` runs it
    (minus virtual-time charges, which stay in the parent).

    Byte-identity rests on the kernel tier's identity-oracle guarantee:
    ``kern.accumulate`` is bit-identical to every routing the threaded
    path could have chosen, so the worker does not need the parent's
    schedule-cache ``kernel`` decision to reproduce its answer.
    """
    from repro.core import kernels as _kernels

    state = op.ident()
    n = len(values)
    if n > 0:
        state = op.pre_accum(state, values[0])
        if _kernels.kernels_enabled():
            kern = _kernels.default_cache().get(op, values)
            state = kern.accumulate(op, state, values)
        else:
            state = op.accum_block(state, values)
        state = op.post_accum(state, values[n - 1])
    return state


def _worker_main(conn, req_shm, resp_shm) -> None:
    """Rank worker loop: recv command, fold, reply.  Runs in the child.

    The shared-memory segments arrive through fork inheritance — the
    child never attaches by name, so it owns no resource-tracker
    registration and must never unlink (the parent does both).
    """
    from repro.core import kernels as _kernels

    req_buf = req_shm.buf
    resp_buf = resp_shm.buf
    # The parent's kernel configuration generation at the time of the
    # last sync.  Fork copies the parent's module state, so the initial
    # value is already in sync.
    synced_gen = _kernels.cache_generation()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        except (KeyboardInterrupt, SystemExit):
            # A Ctrl-C delivered to the process group must terminate the
            # worker, not turn into an error reply the parent misreads.
            break
        if msg is None:
            break
        # Every request carries a sequence id, echoed in the reply, so
        # the parent can discard a reply it has stopped waiting for
        # (e.g. the late pong of a timed-out probe) instead of
        # attributing it to the next request.
        if msg[0] == "ping":
            try:
                conn.send((msg[1], True, "pong"))
            except (BrokenPipeError, OSError):
                break
            continue
        # ("accum", seq, op_bytes, ("shm", offset) | ("pipe", blob), kcfg)
        seq = msg[1]
        try:
            _, _, op_bytes, payload, kcfg = msg
            enabled, numba_req, gen = kcfg
            if gen != synced_gen:
                # Parent reconfigured the kernel tier since our last
                # sync: mirror it, flushing this worker's KernelCache.
                _kernels.configure(enabled=enabled, numba=numba_req)
                synced_gen = gen
            op = pickle.loads(op_bytes)
            if payload[0] == "shm":
                values, _ = decode_frame(req_buf, payload[1])
            else:
                values = pickle.loads(payload[1])
            state = _fold_state(op, values)
            try:
                encode_frame(state, resp_buf, 0)
                reply = (seq, True, ("shm", 0))
            except (FrameTooLarge, TransferError):
                reply = (seq, True, ("pipe", state))
        except (KeyboardInterrupt, SystemExit):
            break
        except Exception as exc:  # noqa: BLE001 - reported to parent
            reply = (seq, False, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
        except Exception:
            # The state itself refused to pickle through the pipe; the
            # parent is still waiting, so degrade to a miss report.
            try:
                conn.send((seq, False, "state not transferable"))
            except Exception:
                break
    os._exit(0)


class _Ring:
    """A per-worker shared-memory frame arena with a bump cursor.

    One request is outstanding per worker, so successive frames are
    placed back-to-back and the cursor wraps to zero whenever the next
    frame would not fit — a single-producer ring whose slots are
    implicitly freed by the request/reply handshake.
    """

    __slots__ = ("shm", "buf", "capacity", "cursor")

    def __init__(self, shm):
        self.shm = shm
        self.buf = shm.buf
        self.capacity = len(self.buf)
        self.cursor = 0

    def place(self, need: int) -> int:
        """Reserve ``need`` bytes; returns the write offset."""
        if need <= 0 or need > self.capacity:
            raise FrameTooLarge(need)
        if self.cursor + need > self.capacity:
            self.cursor = 0
        return self.cursor


class _Worker:
    __slots__ = ("rank", "proc", "conn", "req", "resp", "lock", "alive", "seq")

    def __init__(self, rank: int, req: _Ring, resp: _Ring):
        self.rank = rank
        self.req = req
        self.resp = resp
        self.lock = threading.Lock()
        self.proc = None
        self.conn = None
        self.alive = False
        self.seq = 0

    def spawn(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.req.shm, self.resp.shm),
            name=f"repro-procworld-{self.rank}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.alive = True
        self.seq = 0
        self.req.cursor = 0


class ProcPool:
    """A pool of forked rank workers executing accumulate folds.

    One worker per pool rank: the engine runs at most one job rank per
    world rank at a time, so worker ``r`` serves exactly the thread that
    owns world rank ``r`` and requests never queue behind each other.

    The pool is installed on a :class:`~repro.runtime.world.World` as
    ``world.proc_pool``; :func:`repro.core.reduce._accumulate_impl`
    consults it and falls back to the in-process fold whenever
    :meth:`accumulate` returns :data:`MISS`.
    """

    def __init__(
        self,
        nranks: int,
        *,
        ring_bytes: int = DEFAULT_RING_BYTES,
        min_offload_bytes: int = DEFAULT_MIN_OFFLOAD_BYTES,
    ):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        from multiprocessing import shared_memory

        self.nranks = nranks
        self.ring_bytes = ring_bytes
        self.min_offload_bytes = min_offload_bytes
        self._ctx = multiprocessing.get_context("fork")
        self._closed = False
        self._stats_lock = threading.Lock()
        self._frames = 0
        self._bytes = 0
        self._shm_hits = 0
        self._pickle_fallbacks = 0
        self._inline_fallbacks = 0
        self._worker_deaths = 0
        self._worker_restarts = 0
        self._shms: list[Any] = []
        self._workers: list[_Worker] = []
        # Pickled-operator memo: operators rarely change between
        # requests, so their bytes are cached per op instance instead of
        # re-pickled on every accumulate (weak keys — the memo never
        # keeps an operator alive).
        self._op_cache: "weakref.WeakKeyDictionary[Any, bytes]" = (
            weakref.WeakKeyDictionary()
        )
        try:
            for r in range(nranks):
                req = shared_memory.SharedMemory(
                    create=True, size=ring_bytes,
                    name=f"{SHM_PREFIX}-{os.getpid()}-{id(self) & 0xFFFF:x}-{r}-req",
                )
                resp = shared_memory.SharedMemory(
                    create=True, size=ring_bytes,
                    name=f"{SHM_PREFIX}-{os.getpid()}-{id(self) & 0xFFFF:x}-{r}-resp",
                )
                self._shms.extend((req, resp))
                w = _Worker(r, _Ring(req), _Ring(resp))
                w.spawn(self._ctx)
                self._workers.append(w)
        except Exception:
            self.shutdown(timeout=0.5)
            raise
        _pool_registry.add(self)

    # -- the hot path -------------------------------------------------------

    def accumulate(self, rank: int, op: Any, values: Any) -> Any:
        """Offload one accumulate fold to worker ``rank``.

        Returns the folded state, or :data:`MISS` when the request was
        not offloadable (small block, unpicklable operator, dead or
        missing worker) — the caller then folds in-process, which is
        always correct, just not parallel.
        """
        if self._closed or not 0 <= rank < len(self._workers):
            return MISS
        w = self._workers[rank]
        if not w.alive:
            return MISS
        if isinstance(values, np.ndarray):
            nbytes = int(values.nbytes)
        else:
            nbytes = payload_nbytes(values)
        if nbytes < self.min_offload_bytes:
            return MISS
        try:
            op_bytes = self._op_bytes(op)
        except TransferError:
            with self._stats_lock:
                self._inline_fallbacks += 1
            return MISS
        from repro.core import kernels as _kernels

        kcfg = (
            _kernels.kernels_enabled(),
            bool(_kernels.numba_requested()),
            _kernels.cache_generation(),
        )
        with w.lock:
            if not w.alive:
                return MISS
            try:
                return self._roundtrip(w, op_bytes, values, kcfg)
            except (BrokenPipeError, EOFError, OSError):
                self._mark_dead(w)
                return MISS
            except TransferError:
                with self._stats_lock:
                    self._inline_fallbacks += 1
                return MISS

    def _op_bytes(self, op: Any) -> bytes:
        """Pickle ``op`` for the process boundary, memoized per operator
        instance (raises :class:`TransferError` exactly as
        :func:`ensure_transferable` does)."""
        try:
            cached = self._op_cache.get(op)
        except TypeError:  # unhashable or non-weakrefable operator
            return ensure_transferable(op)
        if cached is not None:
            return cached
        blob = ensure_transferable(op)
        try:
            self._op_cache[op] = blob
        except TypeError:
            pass
        return blob

    @staticmethod
    def _matched_recv(w: _Worker, seq: int) -> tuple:
        """Receive the reply to request ``seq``, discarding any stale
        reply an abandoned earlier request (e.g. a timed-out probe) left
        queued on the pipe — the worker echoes every request's sequence
        id, so a late reply can never be attributed to the wrong
        request."""
        while True:
            reply = w.conn.recv()
            if reply[0] == seq:
                return reply[1], reply[2]

    def _roundtrip(self, w: _Worker, op_bytes, values, kcfg) -> Any:
        need = frame_nbytes_needed(values)
        payload = None
        if need:
            try:
                off = w.req.place(need)
                end, _ = encode_frame(values, w.req.buf, off)
                w.req.cursor = end
                payload = ("shm", off)
                shm_hit = True
                framed = end - off
            except FrameTooLarge:
                payload = None
        if payload is None:
            # Not a raw-encodable ndarray (or too big for the ring):
            # send the validated pickle bytes themselves over the
            # command pipe — the worker loads them, so the payload is
            # pickled exactly once.
            blob = ensure_transferable(values)
            payload = ("pipe", blob)
            shm_hit = False
            framed = len(blob)
        w.seq += 1
        seq = w.seq
        w.conn.send(("accum", seq, op_bytes, payload, kcfg))
        ok, result = self._matched_recv(w, seq)
        with self._stats_lock:
            self._frames += 2
            self._bytes += framed
            if shm_hit:
                self._shm_hits += 1
            else:
                self._pickle_fallbacks += 1
        if not ok:
            # The worker's fold raised.  Recompute in-process so the
            # genuine exception (with its real traceback) surfaces
            # exactly as the thread backend would raise it.
            with self._stats_lock:
                self._inline_fallbacks += 1
            return MISS
        kind, val = result
        if kind == "shm":
            state, end = decode_frame(w.resp.buf, val, copy=True)
            with self._stats_lock:
                self._bytes += end - val
                self._shm_hits += 1
            return state
        with self._stats_lock:
            self._bytes += payload_nbytes(val)
            self._pickle_fallbacks += 1
        return val

    # -- health -------------------------------------------------------------

    def _mark_dead(self, w: _Worker) -> None:
        w.alive = False
        with self._stats_lock:
            self._worker_deaths += 1

    def worker_alive(self, rank: int) -> bool:
        """True when worker ``rank`` is believed serviceable."""
        w = self._workers[rank]
        return w.alive and w.proc is not None and w.proc.is_alive()

    def dead_workers(self) -> list[int]:
        """Ranks whose worker process is dead or marked failed."""
        out = []
        for w in self._workers:
            if not w.alive or w.proc is None or not w.proc.is_alive():
                if w.alive:
                    self._mark_dead(w)
                out.append(w.rank)
        return out

    def ping(self, rank: int, timeout: float = 1.0) -> bool:
        """Liveness probe: one command-pipe round trip to worker
        ``rank``.  Non-blocking with respect to in-flight accumulates:
        a busy worker (lock held) counts as alive.

        A probe that times out marks the worker **dead**: its late
        reply would otherwise sit queued on the pipe in front of the
        next request's reply, so the pipe cannot be trusted again until
        :meth:`restart_worker` re-forks the worker with a fresh one.
        (The per-request sequence ids are a second line of defense: a
        stale reply that does reach a reader is discarded, never
        returned as a fold result.)"""
        if self._closed:
            return False
        w = self._workers[rank]
        if not w.alive:
            return False
        if not w.lock.acquire(timeout=timeout):
            return True  # busy folding == alive
        try:
            w.seq += 1
            seq = w.seq
            w.conn.send(("ping", seq))
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not w.conn.poll(remaining):
                    self._mark_dead(w)
                    return False
                reply = w.conn.recv()
                if reply[0] == seq:
                    return bool(reply[1]) and reply[2] == "pong"
                # Stale reply from an earlier abandoned request: discard
                # and keep waiting for our own pong.
        except (BrokenPipeError, EOFError, OSError):
            self._mark_dead(w)
            return False
        finally:
            w.lock.release()

    def restart_worker(self, rank: int) -> bool:
        """Re-fork a dead or unresponsive worker over its existing shm
        rings.

        An ``is_alive()`` process is not proof of a serviceable worker:
        the state a ping timeout leaves behind is alive-but-unresponsive
        with a desynced pipe.  So a seemingly healthy worker is trusted
        only after a fresh ping round trip; anything else is terminated
        and re-forked with a fresh pipe."""
        if self._closed:
            return False
        w = self._workers[rank]
        if w.alive and w.proc is not None and w.proc.is_alive():
            if self.ping(rank):
                return True
            # The ping failed and marked the worker dead: fall through
            # to the re-fork so the desynced pipe is replaced.
        with w.lock:
            if self._closed:
                return False
            try:
                if w.proc is not None:
                    w.proc.terminate()
                    w.proc.join(timeout=1.0)
                    if w.proc.is_alive():
                        # SIGTERM stays pending on a stopped process;
                        # SIGKILL does not.
                        w.proc.kill()
                        w.proc.join(timeout=1.0)
                if w.conn is not None:
                    w.conn.close()
                w.spawn(self._ctx)
            except Exception:
                w.alive = False
                return False
        with self._stats_lock:
            self._worker_restarts += 1
        return self.ping(rank)

    # -- lifecycle ----------------------------------------------------------

    def shm_names(self) -> list[str]:
        """The pool's segment names (leak-check hook for tests)."""
        return [shm.name for shm in self._shms]

    def shutdown(self, timeout: float = 2.0) -> None:
        """Stop every worker and reap every shared-memory segment.

        Idempotent.  Workers get a graceful stop command, then
        ``terminate()``; segments are closed and unlinked by the parent
        (the sole owner), so repeated engine create/shutdown cycles
        leak neither processes nor ``/dev/shm`` entries.
        """
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            w.alive = False
            try:
                if w.conn is not None:
                    w.conn.send(None)
            except Exception:
                pass
        for w in self._workers:
            p = w.proc
            if p is None:
                continue
            p.join(timeout=timeout)
            if p.is_alive():
                p.terminate()
                p.join(timeout=timeout)
            try:
                if w.conn is not None:
                    w.conn.close()
            except Exception:
                pass
        for shm in self._shms:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
        self._shms.clear()
        _pool_registry.discard(self)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- observability ------------------------------------------------------

    def ipc_stats(self) -> dict[str, int]:
        """IPC counters (see ``docs/backends.md``): ``frames`` and
        ``bytes`` count both directions; ``shm_hits`` are zero-copy
        shared-memory frames, ``pickle_fallbacks`` pipe-pickled ones;
        ``inline_fallbacks`` are requests that returned :data:`MISS`
        after an offload was attempted (unpicklable payload or worker
        error)."""
        with self._stats_lock:
            return {
                "frames": self._frames,
                "bytes": self._bytes,
                "shm_hits": self._shm_hits,
                "pickle_fallbacks": self._pickle_fallbacks,
                "inline_fallbacks": self._inline_fallbacks,
                "worker_deaths": self._worker_deaths,
                "worker_restarts": self._worker_restarts,
            }
