"""Prometheus text-exposition rendering for telemetry and metrics.

One function, no dependencies: :func:`render_prometheus` turns an
:class:`~repro.obs.telemetry.EngineTelemetry` (or a bare
:class:`~repro.obs.metrics.MetricsRegistry`) into the Prometheus text
format (version 0.0.4) that ``python -m repro serve --metrics-port``
exposes on ``/metrics``:

* counters → ``<name>_total`` with ``# TYPE ... counter``;
* gauges → ``<name>`` with ``# TYPE ... gauge``;
* histograms → Prometheus **summaries**: ``<name>{quantile="0.5"}``
  lines from the streaming P² estimates plus ``_sum``/``_count`` —
  exactly the p50/p95/p99 a scrape wants, without shipping buckets;
* per-rank utilization → ``repro_engine_rank_busy_fraction{rank="r"}``.

Metric names are dotted in the registry (``engine.jobs.submitted``) and
sanitized to Prometheus conventions here
(``repro_engine_jobs_submitted_total``).
"""

from __future__ import annotations

import math
import re
from typing import Any

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus", "prom_name"]

_PREFIX = "repro_"
_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def prom_name(name: str) -> str:
    """A registry metric name as a Prometheus metric name."""
    return _PREFIX + _INVALID.sub("_", name)


def _num(value: Any) -> str:
    """A metric value rendered the way Prometheus parsers expect."""
    if value is None:
        return "NaN"
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if value != int(value) else str(int(value))


def _render_registry(registry: MetricsRegistry, lines: list[str]) -> None:
    for name, inst in registry:
        pname = prom_name(name)
        if isinstance(inst, Counter):
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {_num(inst.value)}")
        elif isinstance(inst, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_num(inst.value)}")
        elif isinstance(inst, Histogram):
            summary = inst.summary()
            lines.append(f"# TYPE {pname} summary")
            for p in inst.tracked_quantiles:
                lines.append(
                    f'{pname}{{quantile="{p:g}"}} {_num(inst.quantile(p))}'
                )
            lines.append(f"{pname}_sum {_num(summary['sum'])}")
            lines.append(f"{pname}_count {_num(summary['count'])}")


def render_prometheus(source: Any) -> str:
    """Render ``source`` — an :class:`EngineTelemetry` or a
    :class:`MetricsRegistry` — as Prometheus text exposition."""
    lines: list[str] = []
    registry = source if isinstance(source, MetricsRegistry) else None
    telemetry = None if registry is not None else source
    if telemetry is not None:
        if not getattr(telemetry, "enabled", False):
            return "# telemetry disabled\n"
        # snapshot() refreshes the busy-fraction and schedule-cache
        # gauges before the registry is walked.
        frame = telemetry.snapshot()
        registry = telemetry.registry
        lines.append(f"# TYPE {_PREFIX}engine_uptime_seconds gauge")
        lines.append(
            f"{_PREFIX}engine_uptime_seconds {_num(frame['uptime_s'])}"
        )
        util = frame.get("utilization", [])
        if util:
            lines.append(f"# TYPE {_PREFIX}engine_rank_busy_fraction gauge")
            for rank, fraction in enumerate(util):
                lines.append(
                    f'{_PREFIX}engine_rank_busy_fraction{{rank="{rank}"}} '
                    f"{_num(fraction)}"
                )
            lines.append(f"# TYPE {_PREFIX}engine_rank_jobs_total counter")
            for rank, jobs in enumerate(frame.get("jobs_per_rank", [])):
                lines.append(
                    f'{_PREFIX}engine_rank_jobs_total{{rank="{rank}"}} '
                    f"{_num(jobs)}"
                )
    _render_registry(registry, lines)
    return "\n".join(lines) + "\n"
