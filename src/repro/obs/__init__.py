"""Observability: phase-level tracing, metrics, and profile exporters.

The paper's structural claim — a global-view reduction/scan is an
**accumulate** phase, a **combine** phase, and a **generate** phase —
becomes measurable here.  Enable a :class:`Tracer` (directly via
``spmd_run(..., tracer=...)`` or ambiently via :func:`profiling`) and
every driver call emits nested spans on the virtual clock; disable it
and the hot paths see only the no-op :data:`NULL_TRACER`.

Service-level telemetry for the persistent engine lives here too:
:class:`EngineTelemetry` stamps wall-clock job lifecycles and scheduler
gauges (:mod:`repro.obs.telemetry`), :class:`P2Quantile` /
:class:`QuantileSet` give every :class:`Histogram` streaming
p50/p95/p99 (:mod:`repro.obs.quantiles`), and
:func:`render_prometheus` serves it all as Prometheus text
(:mod:`repro.obs.promexport`).

>>> from repro import spmd_run, global_reduce
>>> from repro.obs import Tracer, phase_summary
>>> from repro.ops import SumOp
>>> tracer = Tracer()
>>> res = spmd_run(
...     lambda comm: global_reduce(comm, SumOp(), [1, 2, 3]),
...     4, tracer=tracer)
>>> sorted(phase_summary(tracer)["ops"]["sum"])
['accumulate', 'combine', 'generate']
"""

from repro.obs.critpath import CriticalPath, PathStep, critical_path
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.export import (
    dumps_jsonl,
    format_text_report,
    iter_jsonl_records,
    phase_summary,
    phase_topmost_spans,
    write_jsonl,
)
from repro.obs.promexport import prom_name, render_prometheus
from repro.obs.quantiles import DEFAULT_QUANTILES, P2Quantile, QuantileSet
from repro.obs.telemetry import (
    LIFECYCLE_STATES,
    NULL_ENGINE_TELEMETRY,
    EngineTelemetry,
    JobLifecycle,
    SnapshotRing,
)
from repro.obs.tracer import (
    NULL_TRACER,
    RankTracer,
    RecvEdge,
    RunCapture,
    SendEdge,
    Span,
    Tracer,
    active_profile,
    active_tracer,
    profiling,
)

__all__ = [
    "Span",
    "SendEdge",
    "RecvEdge",
    "RankTracer",
    "RunCapture",
    "Tracer",
    "NULL_TRACER",
    "profiling",
    "active_tracer",
    "active_profile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "CriticalPath",
    "PathStep",
    "critical_path",
    "phase_summary",
    "phase_topmost_spans",
    "iter_jsonl_records",
    "dumps_jsonl",
    "write_jsonl",
    "format_text_report",
    "P2Quantile",
    "QuantileSet",
    "DEFAULT_QUANTILES",
    "EngineTelemetry",
    "JobLifecycle",
    "SnapshotRing",
    "NULL_ENGINE_TELEMETRY",
    "LIFECYCLE_STATES",
    "render_prometheus",
    "prom_name",
]
