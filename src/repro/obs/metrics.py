"""Metrics registry: counters, gauges, and log-bucketed histograms.

Instruments are cheap named accumulators for facts that do not need a
full span timeline — collective round counts, combine latencies, tree
depths.  A :class:`MetricsRegistry` is shared by every rank of a run (the
ranks are threads, so instruments take a lock on mutation), and the
whole registry snapshots to a plain JSON-serializable dict.

Histograms use base-2 logarithmic buckets: an observation ``v`` falls in
the bucket whose upper bound is the smallest power of two ``>= v``
(bucket ``2**k`` covers ``(2**(k-1), 2**k]``).  Zero lands in a dedicated
zero bucket and infinity in an overflow bucket, so the edge cases of
"no latency charged" and "unbounded" stay visible instead of crashing
the log.  Every histogram additionally carries a
:class:`~repro.obs.quantiles.QuantileSet` (p50/p95/p99 by default), so
tail latency is readable straight off a snapshot without storing
observations.

The :data:`NULL_METRICS` registry accepts the same calls and does
nothing — it is what disabled tracing hands to the hot paths.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Iterable, Iterator

from repro.obs.quantiles import DEFAULT_QUANTILES, QuantileSet

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current value of the gauge.

        A single attribute store is atomic under the GIL, and
        last-write-wins is the gauge contract, so no lock is taken —
        gauges sit on the telemetry hot path."""
        self.value = value


#: Size of the bounded pending-observation buffer feeding the P²
#: estimators.  A histogram scraped at least once per this many
#: observations loses nothing; an unscraped one keeps the most recent
#: window (old pending observations are evicted, never burst-drained
#: on the writer's thread).
_QUANTILE_PENDING_CAP = 4096


class Histogram:
    """Log2-bucketed distribution of non-negative observations, with
    streaming p50/p95/p99 (P²) estimation on the side.

    The P² marker updates are deliberately **never** run inside
    :meth:`observe`: observations queue in a bounded pending buffer (a
    deque append under the lock — O(1) always) and are drained into the
    estimators on a quantile *read* — :meth:`quantile` or
    :meth:`summary`.  Reads are scrape-time events (snapshots,
    Prometheus, dashboards), so the estimation cost lands on the
    monitoring path, not on the engine's submit/complete hot path.  A
    histogram that is written but never scraped evicts its oldest
    pending observations instead of draining them: its eventual
    quantile estimates cover the most recent ``_QUANTILE_PENDING_CAP``
    observations — the window a monitoring read wants anyway — while
    the bucket counts, count/sum/min/max stay exact over everything.
    """

    __slots__ = ("_lock", "_buckets", "zero_count", "inf_count",
                 "count", "total", "min", "max", "_quantiles", "_pending")

    def __init__(self, quantiles: Iterable[float] = DEFAULT_QUANTILES) -> None:
        self._lock = threading.Lock()
        self._buckets: dict[int, int] = {}  # exponent k -> count in (2^(k-1), 2^k]
        self.zero_count = 0
        self.inf_count = 0
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._quantiles = QuantileSet(quantiles)
        self._pending: deque[float] = deque(maxlen=_QUANTILE_PENDING_CAP)

    @staticmethod
    def bucket_exponent(value: float) -> int:
        """The exponent ``k`` of the bucket ``(2**(k-1), 2**k]`` holding
        ``value`` (which must be positive and finite)."""
        mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
        # frexp keeps mantissa in [0.5, 1); exact powers of two are the
        # bucket's inclusive upper bound.
        return exponent - 1 if mantissa == 0.5 else exponent

    def observe(self, value: float) -> None:
        """Record one observation; negative values are rejected."""
        if value < 0:
            raise ValueError(f"histogram observations must be >= 0, got {value}")
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if value == 0:
                self.zero_count += 1
            elif math.isinf(value):
                self.inf_count += 1
            else:
                k = self.bucket_exponent(value)
                self._buckets[k] = self._buckets.get(k, 0) + 1
            if not math.isinf(value):
                # Bounded append: a full buffer evicts its oldest entry
                # instead of draining here — observe stays O(1).
                self._pending.append(value)

    def _drain_locked(self) -> None:
        """Feed queued observations to the P² estimators (lock held)."""
        if self._pending:
            observe = self._quantiles.observe
            for value in self._pending:
                observe(value)
            self._pending.clear()

    def buckets(self) -> list[tuple[float, int]]:
        """Sorted ``(upper_bound, count)`` pairs for the occupied buckets,
        with the zero bucket first and the overflow bucket last."""
        out: list[tuple[float, int]] = []
        if self.zero_count:
            out.append((0.0, self.zero_count))
        for k in sorted(self._buckets):
            out.append((float(2.0 ** k), self._buckets[k]))
        if self.inf_count:
            out.append((math.inf, self.inf_count))
        return out

    @property
    def tracked_quantiles(self) -> tuple[float, ...]:
        """Quantile levels this histogram estimates (default p50/p95/p99)."""
        return self._quantiles.quantiles

    def quantile(self, p: float) -> float | None:
        """Streaming estimate of the ``p`` quantile (P²; exact below five
        observations).  ``p`` must be one of :attr:`tracked_quantiles`."""
        with self._lock:
            self._drain_locked()
            return self._quantiles.value(p)

    def summary(self) -> dict[str, Any]:
        """JSON-serializable summary of the distribution."""
        with self._lock:
            self._drain_locked()
            quantiles = self._quantiles.summary()
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            **quantiles,
            "buckets": [
                ["inf" if math.isinf(le) else le, n] for le, n in self.buckets()
            ],
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as one dict."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls: type) -> Any:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls()
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(inst).__name__}, "
                    f"not a {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(
        self, name: str, quantiles: Iterable[float] | None = None
    ) -> Histogram:
        """The histogram named ``name`` (created on first use).

        ``quantiles`` customizes the tracked levels at creation time;
        it is ignored on later lookups of an existing histogram.
        """
        if quantiles is None:
            return self._get(name, Histogram)
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = Histogram(quantiles)
                self._instruments[name] = inst
            elif not isinstance(inst, Histogram):
                raise TypeError(
                    f"metric {name!r} is a {type(inst).__name__}, "
                    f"not a Histogram"
                )
            return inst

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        with self._lock:
            items = list(self._instruments.items())
        return iter(sorted(items))

    def snapshot(self) -> dict[str, Any]:
        """All instruments as a plain dict: ``{counters, gauges, histograms}``."""
        counters: dict[str, int] = {}
        gauges: dict[str, float | None] = {}
        histograms: dict[str, Any] = {}
        for name, inst in self:
            if isinstance(inst, Counter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[name] = inst.value
            else:
                histograms[name] = inst.summary()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


class _NullInstrument:
    """Accepts every instrument call and does nothing."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, p: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class _NullMetrics:
    """Registry stand-in used when tracing is disabled: all no-ops."""

    enabled = False
    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, quantiles: Iterable[float] | None = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT


#: Shared no-op registry (what the hot paths see when tracing is off).
NULL_METRICS = _NullMetrics()
