"""Metrics registry: counters, gauges, and log-bucketed histograms.

Instruments are cheap named accumulators for facts that do not need a
full span timeline — collective round counts, combine latencies, tree
depths.  A :class:`MetricsRegistry` is shared by every rank of a run (the
ranks are threads, so instruments take a lock on mutation), and the
whole registry snapshots to a plain JSON-serializable dict.

Histograms use base-2 logarithmic buckets: an observation ``v`` falls in
the bucket whose upper bound is the smallest power of two ``>= v``
(bucket ``2**k`` covers ``(2**(k-1), 2**k]``).  Zero lands in a dedicated
zero bucket and infinity in an overflow bucket, so the edge cases of
"no latency charged" and "unbounded" stay visible instead of crashing
the log.

The :data:`NULL_METRICS` registry accepts the same calls and does
nothing — it is what disabled tracing hands to the hot paths.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current value of the gauge."""
        with self._lock:
            self.value = value


class Histogram:
    """Log2-bucketed distribution of non-negative observations."""

    __slots__ = ("_lock", "_buckets", "zero_count", "inf_count",
                 "count", "total", "min", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets: dict[int, int] = {}  # exponent k -> count in (2^(k-1), 2^k]
        self.zero_count = 0
        self.inf_count = 0
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    @staticmethod
    def bucket_exponent(value: float) -> int:
        """The exponent ``k`` of the bucket ``(2**(k-1), 2**k]`` holding
        ``value`` (which must be positive and finite)."""
        mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
        # frexp keeps mantissa in [0.5, 1); exact powers of two are the
        # bucket's inclusive upper bound.
        return exponent - 1 if mantissa == 0.5 else exponent

    def observe(self, value: float) -> None:
        """Record one observation; negative values are rejected."""
        if value < 0:
            raise ValueError(f"histogram observations must be >= 0, got {value}")
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if value == 0:
                self.zero_count += 1
            elif math.isinf(value):
                self.inf_count += 1
            else:
                k = self.bucket_exponent(value)
                self._buckets[k] = self._buckets.get(k, 0) + 1

    def buckets(self) -> list[tuple[float, int]]:
        """Sorted ``(upper_bound, count)`` pairs for the occupied buckets,
        with the zero bucket first and the overflow bucket last."""
        out: list[tuple[float, int]] = []
        if self.zero_count:
            out.append((0.0, self.zero_count))
        for k in sorted(self._buckets):
            out.append((float(2.0 ** k), self._buckets[k]))
        if self.inf_count:
            out.append((math.inf, self.inf_count))
        return out

    def summary(self) -> dict[str, Any]:
        """JSON-serializable summary of the distribution."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [
                ["inf" if math.isinf(le) else le, n] for le, n in self.buckets()
            ],
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as one dict."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls: type) -> Any:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls()
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(inst).__name__}, "
                    f"not a {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        with self._lock:
            items = list(self._instruments.items())
        return iter(sorted(items))

    def snapshot(self) -> dict[str, Any]:
        """All instruments as a plain dict: ``{counters, gauges, histograms}``."""
        counters: dict[str, int] = {}
        gauges: dict[str, float | None] = {}
        histograms: dict[str, Any] = {}
        for name, inst in self:
            if isinstance(inst, Counter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[name] = inst.value
            else:
                histograms[name] = inst.summary()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


class _NullInstrument:
    """Accepts every instrument call and does nothing."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class _NullMetrics:
    """Registry stand-in used when tracing is disabled: all no-ops."""

    enabled = False
    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT


#: Shared no-op registry (what the hot paths see when tracing is off).
NULL_METRICS = _NullMetrics()
