"""Streaming quantile estimation (the P² algorithm).

Tail latency is the service-level signal — p50 says what a typical job
sees, p99 says what the unlucky ones see — but exact percentiles need
every observation kept and sorted, which an always-on telemetry layer
cannot afford.  :class:`P2Quantile` implements the P² algorithm of Jain
& Chlamtac (CACM 1985): five markers per tracked quantile, updated in
O(1) per observation with parabolic interpolation, no sample storage.

Accuracy is excellent for the smooth distributions latencies follow
(uniform, normal, exponential, lognormal): typically well under 1% of
the distribution's spread after a few hundred observations
(``tests/test_obs_quantiles.py`` checks against ``numpy.percentile`` on
known distributions).  For fewer than five observations the estimator
holds the raw samples and answers exactly.

:class:`QuantileSet` bundles several tracked quantiles behind one
``observe``; :class:`~repro.obs.metrics.Histogram` embeds one so every
latency histogram carries p50/p95/p99 for free.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Iterable

__all__ = ["P2Quantile", "QuantileSet", "DEFAULT_QUANTILES"]

#: The service-level trio every latency histogram tracks by default.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class P2Quantile:
    """One streaming quantile estimate via the P² marker algorithm."""

    __slots__ = ("p", "_n", "_q", "_pos", "_desired", "_inc", "_small")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self._small: list[float] = []  # exact buffer until 5 samples exist
        self._n: list[int] = []  # marker positions (1-based)
        self._q: list[float] = []  # marker heights
        self._pos: list[float] = []  # desired marker positions
        self._desired = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
        self._inc = self._desired  # position increments per observation

    @property
    def count(self) -> int:
        """Observations absorbed so far."""
        return self._n[4] if self._n else len(self._small)

    def observe(self, x: float) -> None:
        """Absorb one observation in O(1)."""
        if not self._n:
            insort(self._small, x)
            if len(self._small) == 5:
                self._q = list(self._small)
                self._n = [1, 2, 3, 4, 5]
                self._pos = [
                    1.0 + 4.0 * d for d in self._desired
                ]  # desired positions for n=5
                self._small = []
            return
        q, n = self._q, self._n
        # Locate the cell k with q[k] <= x < q[k+1], extending extremes.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and not (q[k] <= x < q[k + 1]):
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._pos[i] += self._inc[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = self._pos[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or (
                d <= -1.0 and n[i - 1] - n[i] < -1
            ):
                step = 1 if d >= 1.0 else -1
                cand = self._parabolic(i, step)
                if q[i - 1] < cand < q[i + 1]:
                    q[i] = cand
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    def value(self) -> float | None:
        """The current estimate (exact below five observations; None
        when nothing has been observed)."""
        if self._n:
            return self._q[2]
        if not self._small:
            return None
        # Exact linear-interpolated percentile over the tiny buffer
        # (numpy's default "linear" method).
        xs = self._small
        pos = self.p * (len(xs) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(xs) - 1)
        return xs[lo] + (pos - lo) * (xs[hi] - xs[lo])


class QuantileSet:
    """Several tracked quantiles over one observation stream."""

    __slots__ = ("_estimators",)

    def __init__(self, quantiles: Iterable[float] = DEFAULT_QUANTILES):
        self._estimators = tuple(P2Quantile(p) for p in quantiles)
        if not self._estimators:
            raise ValueError("QuantileSet needs at least one quantile")

    @property
    def quantiles(self) -> tuple[float, ...]:
        """The tracked quantile levels, in construction order."""
        return tuple(e.p for e in self._estimators)

    def observe(self, x: float) -> None:
        """Feed one observation to every tracked estimator."""
        for e in self._estimators:
            e.observe(x)

    def value(self, p: float) -> float | None:
        """The estimate for tracked level ``p`` (KeyError if untracked)."""
        for e in self._estimators:
            if e.p == p:
                return e.value()
        raise KeyError(f"quantile {p} is not tracked (have {self.quantiles})")

    def summary(self) -> dict[str, float | None]:
        """``{"p50": ..., "p95": ..., "p99": ...}``-style snapshot."""
        out: dict[str, Any] = {}
        for e in self._estimators:
            label = f"p{e.p * 100:g}".replace(".", "_")
            out[label] = e.value()
        return out
