"""Critical-path analysis over one run's send/recv edges.

The makespan of an SPMD run is decided by one dependency chain: the
last rank to finish was doing local work since its last *blocking*
receive; that message was sent by some rank, which was doing local work
since *its* last blocking receive; and so on back to virtual time zero.
This module walks that chain backwards and attributes every second of
the end-to-end virtual time to either

* a **phase** (the *outermost* enclosing span with a phase at that
  instant: ``accumulate``, ``combine``, ``generate``, ``collective`` for
  bare MPI-level collectives, ...),
* ``"untracked"`` local time not covered by any phased span, or
* ``"comm"`` — the stretch between a gating message's injection and its
  extraction (wire latency, per-byte time, receive overhead).

Message matching relies on the runtime's delivery discipline: per
``(source, tag)`` the mailbox is FIFO, so the i-th receive of a stream
pairs with the i-th send of that stream.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable

from repro.obs.tracer import RecvEdge, RunCapture, SendEdge

__all__ = ["PathStep", "CriticalPath", "critical_path"]


@dataclass(frozen=True)
class PathStep:
    """One backward-walk segment of the critical path."""

    rank: int  # rank the time was spent on (receiver for "comm" steps)
    t_start: float
    t_end: float
    kind: str  # "local" | "comm"

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class CriticalPath:
    """The walked chain plus the per-phase attribution of its time."""

    total: float  # end-to-end virtual time accounted for
    end_rank: int  # rank whose finish time defines the makespan
    steps: list[PathStep] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def fraction(self, phase: str) -> float:
        """Share of the critical path attributed to ``phase``."""
        if self.total <= 0:
            return 0.0
        return self.phase_seconds.get(phase, 0.0) / self.total


def _attribute_local(run: RunCapture, rank: int, t0: float, t1: float,
                     acc: dict[str, float]) -> None:
    """Attribute local interval [t0, t1] on ``rank`` to the outermost
    phased span covering each instant (``"untracked"`` where none does),
    matching the attribution rule of the phase summaries."""
    if t1 <= t0:
        return
    if rank >= len(run.ranks):
        # Partial capture: clocks name a rank the tracer never saw (an
        # empty or truncated RunCapture).  There is no span to charge,
        # so the whole interval is untracked time.
        acc["untracked"] = acc.get("untracked", 0.0) + (t1 - t0)
        return
    spans = [
        s for s in run.ranks[rank].spans
        if s.phase is not None and s.t_end > t0 and s.t_start < t1
    ]
    bounds = {t0, t1}
    for s in spans:
        bounds.add(min(max(s.t_start, t0), t1))
        bounds.add(min(max(s.t_end, t0), t1))
    cuts = sorted(bounds)
    for a, b in zip(cuts, cuts[1:]):
        if b <= a:
            continue
        mid = (a + b) / 2.0
        best = None
        for s in spans:
            if s.t_start <= mid < s.t_end:
                if best is None or s.depth < best.depth:
                    best = s
        key = best.phase if best is not None else "untracked"
        acc[key] = acc.get(key, 0.0) + (b - a)


def _index_messages(run: RunCapture) -> tuple[
    dict[int, list[RecvEdge]],
    dict[tuple[int, int, Hashable], list[SendEdge]],
]:
    """Receives per rank (in record order) and send streams keyed by
    ``(sender, dest, tag)`` in injection order."""
    recvs = {rt.rank: list(rt.recvs) for rt in run.ranks}
    sends: dict[tuple[int, int, Hashable], list[SendEdge]] = defaultdict(list)
    for rt in run.ranks:
        for e in rt.sends:
            sends[(rt.rank, e.dest, e.tag)].append(e)
    return recvs, sends


def critical_path(run: RunCapture) -> CriticalPath:
    """Walk the gating dependency chain of ``run`` backwards from the
    rank that finished last and attribute its time to phases."""
    if run.clocks is not None:
        ends = list(run.clocks)
    else:
        ends = [max((s.t_end for s in rt.spans), default=0.0)
                for rt in run.ranks]
    if not ends:
        return CriticalPath(total=0.0, end_rank=0)
    end_rank = max(range(len(ends)), key=lambda r: ends[r])
    cur_rank, cur_t = end_rank, ends[end_rank]
    result = CriticalPath(total=cur_t, end_rank=end_rank)

    recvs, sends = _index_messages(run)
    # Ordinal of each receive within its (source, tag) stream, for FIFO
    # matching against the sender's (sender, dest, tag) stream.
    ordinals: dict[int, list[int]] = {}
    for rank, edges in recvs.items():
        seen: dict[tuple[int, Hashable], int] = defaultdict(int)
        ords = []
        for e in edges:
            ords.append(seen[(e.source, e.tag)])
            seen[(e.source, e.tag)] += 1
        ordinals[rank] = ords

    max_hops = sum(len(v) for v in recvs.values()) + 1
    for _ in range(max_hops):
        # Latest blocking receive on cur_rank completed at or before cur_t.
        gate = None
        gate_ord = 0
        for i, e in enumerate(recvs.get(cur_rank, ())):
            if e.t_done <= cur_t and e.blocked:
                if gate is None or e.t_done > gate.t_done:
                    gate = e
                    gate_ord = ordinals[cur_rank][i]
        if gate is None:
            break
        result.steps.append(PathStep(cur_rank, gate.t_done, cur_t, "local"))
        _attribute_local(run, cur_rank, gate.t_done, cur_t,
                         result.phase_seconds)
        stream = sends.get((gate.source, cur_rank, gate.tag), [])
        if gate_ord >= len(stream):
            # Unmatched (partial capture): treat the rest as local time
            # on the receiver and stop.
            cur_t = gate.t_done
            break
        send = stream[gate_ord]
        result.steps.append(
            PathStep(cur_rank, send.t_send, gate.t_done, "comm")
        )
        result.phase_seconds["comm"] = (
            result.phase_seconds.get("comm", 0.0)
            + (gate.t_done - send.t_send)
        )
        cur_rank, cur_t = gate.source, send.t_send
        if cur_t <= 0.0:
            break
    if cur_t > 0.0:
        result.steps.append(PathStep(cur_rank, 0.0, cur_t, "local"))
        _attribute_local(run, cur_rank, 0.0, cur_t, result.phase_seconds)
    return result
