"""Profile exporters: phase summaries, JSONL, and a text report.

Three consumers, three formats:

* :func:`phase_summary` — a JSON-serializable per-operator, per-phase
  aggregate (span counts, virtual seconds, bytes, elements), used by the
  benchmark harness for ``BENCH_*.json`` files.
* :func:`iter_jsonl_records` / :func:`write_jsonl` / :func:`dumps_jsonl`
  — a structured line-per-record stream (runs, spans, metrics) for
  machine post-processing.
* :func:`format_text_report` — the human-readable breakdown printed by
  ``python -m repro profile ... --format text``.

**Double-counting rule.**  Spans nest, and an inner span may share its
ancestor's phase (``combine`` at the driver level contains ``combine``
at the local-view level contains the collective).  Aggregates therefore
count only *phase-topmost* spans — spans none of whose ancestors carry
the same phase — so each virtual second and each byte is attributed to
a phase exactly once.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator

from repro.obs.critpath import critical_path
from repro.obs.tracer import RunCapture, Span, Tracer

__all__ = [
    "phase_topmost_spans",
    "phase_summary",
    "iter_jsonl_records",
    "write_jsonl",
    "dumps_jsonl",
    "format_text_report",
]


def _as_runs(profile: Tracer | RunCapture | Iterable[RunCapture]) -> list[RunCapture]:
    if isinstance(profile, Tracer):
        return list(profile.runs)
    if isinstance(profile, RunCapture):
        return [profile]
    return list(profile)


def phase_topmost_spans(run: RunCapture) -> Iterator[Span]:
    """Spans whose phase is set and no ancestor of which carries a phase.

    These are the outermost phase attributions — a ``collective`` span
    under a driver's ``combine`` span is transport detail of time the
    combine phase already owns, so it is excluded.
    """
    by_id = run.span_parents()
    for span in run.spans():
        if span.phase is None:
            continue
        parent = by_id.get(span.parent_id) if span.parent_id else None
        shadowed = False
        while parent is not None:
            if parent.phase is not None:
                shadowed = True
                break
            parent = by_id.get(parent.parent_id) if parent.parent_id else None
        if not shadowed:
            yield span


def phase_summary(
    profile: Tracer | RunCapture | Iterable[RunCapture],
) -> dict[str, Any]:
    """Aggregate per-operator, per-phase metrics across runs.

    Returns ``{"runs", "total_virtual_seconds", "ops": {op: {phase:
    {"spans", "virtual_seconds", "bytes", "elements"}}}}``; spans with no
    operator aggregate under ``"(none)"``.
    """
    runs = _as_runs(profile)
    ops: dict[str, dict[str, dict[str, float]]] = {}
    for run in runs:
        for span in phase_topmost_spans(run):
            op = span.op or "(none)"
            cell = ops.setdefault(op, {}).setdefault(
                span.phase,
                {"spans": 0, "virtual_seconds": 0.0, "bytes": 0, "elements": 0},
            )
            cell["spans"] += 1
            cell["virtual_seconds"] += span.duration
            cell["bytes"] += span.nbytes
            cell["elements"] += span.elements
    return {
        "runs": len(runs),
        "total_virtual_seconds": sum(r.makespan or 0.0 for r in runs),
        "ops": ops,
    }


# -- JSONL -----------------------------------------------------------------


def iter_jsonl_records(tracer: Tracer) -> Iterator[dict[str, Any]]:
    """Yield one dict per record: runs, spans, then the metrics snapshot."""
    for run in tracer.runs:
        yield {
            "type": "run",
            "run": run.index,
            "label": run.label,
            "nprocs": run.nprocs,
            "makespan": run.makespan,
        }
        for span in run.spans():
            yield {
                "type": "span",
                "run": run.index,
                "rank": span.rank,
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "phase": span.phase,
                "op": span.op,
                "t_start": span.t_start,
                "t_end": span.t_end,
                "bytes": span.nbytes,
                "elements": span.elements,
            }
    yield {"type": "metrics", **tracer.metrics.snapshot()}


def dumps_jsonl(tracer: Tracer) -> str:
    """The whole profile as newline-delimited JSON."""
    return "\n".join(
        json.dumps(rec, allow_nan=False) for rec in iter_jsonl_records(tracer)
    ) + "\n"


def write_jsonl(tracer: Tracer, path: str) -> None:
    """Serialize :func:`iter_jsonl_records` to ``path``."""
    with open(path, "w") as f:
        f.write(dumps_jsonl(tracer))


# -- text report -----------------------------------------------------------


def _fmt_seconds(s: float) -> str:
    return f"{s * 1e6:12.1f}"


def format_text_report(tracer: Tracer) -> str:
    """Human-readable per-phase breakdown: one operator table per run
    set, per-rank phase totals, the critical path, and key metrics."""
    lines: list[str] = []
    if not tracer.runs:
        # An explicit empty report beats a zero-filled table: the usual
        # cause is a target that never entered spmd_run under the tracer.
        return (
            "profile: no runs captured (nothing entered spmd_run under "
            "this tracer)\n"
        )
    summary = phase_summary(tracer)
    lines.append(
        f"profile: {summary['runs']} run(s), "
        f"{summary['total_virtual_seconds'] * 1e6:.1f} us total virtual time"
    )
    for run in tracer.runs:
        label = f" [{run.label}]" if run.label else ""
        lines.append(
            f"  run {run.index}{label}: {run.nprocs} ranks, makespan "
            f"{(run.makespan or 0.0) * 1e6:.1f} us"
        )
    lines.append("")
    lines.append("per-operator phase breakdown (virtual rank-seconds, all runs)")
    header = (
        f"  {'operator':<20s} {'phase':<12s} {'spans':>7s} "
        f"{'us':>12s} {'bytes':>12s} {'elements':>10s}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for op in sorted(summary["ops"]):
        phases = summary["ops"][op]
        order = {"accumulate": 0, "combine": 1, "generate": 2}
        for phase in sorted(phases, key=lambda p: (order.get(p, 9), p)):
            cell = phases[phase]
            lines.append(
                f"  {op:<20s} {phase:<12s} {cell['spans']:>7d} "
                f"{_fmt_seconds(cell['virtual_seconds'])} "
                f"{cell['bytes']:>12d} {cell['elements']:>10d}"
            )
    if not summary["ops"]:
        lines.append("  (no phased spans recorded)")

    for run in tracer.runs:
        cp = critical_path(run)
        if cp.total <= 0:
            continue
        lines.append("")
        label = f" [{run.label}]" if run.label else ""
        lines.append(
            f"critical path, run {run.index}{label} "
            f"(ends on rank {cp.end_rank}, {cp.total * 1e6:.1f} us):"
        )
        for phase, seconds in sorted(
            cp.phase_seconds.items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"  {phase:<12s} {seconds * 1e6:12.1f} us "
                f"({100.0 * cp.fraction(phase):5.1f}%)"
            )

    snap = tracer.metrics.snapshot()
    if snap["counters"] or snap["histograms"] or snap["gauges"]:
        lines.append("")
        lines.append("metrics")
        for name, value in sorted(snap["counters"].items()):
            lines.append(f"  {name:<40s} {value}")
        for name, value in sorted(snap["gauges"].items()):
            lines.append(f"  {name:<40s} {value}")
        for name, h in sorted(snap["histograms"].items()):
            if not h["count"]:
                lines.append(f"  {name:<40s} n=0")
                continue
            tail = ""
            if h.get("p50") is not None:
                tail = f" p50={h['p50']:.3g} p99={h.get('p99', 0) or 0:.3g}"
            lines.append(
                f"  {name:<40s} n={h['count']} sum={h['sum']:.3g} "
                f"min={h['min']:.3g} max={h['max']:.3g}{tail}"
            )
    return "\n".join(lines) + "\n"
