"""Service-level engine telemetry: job lifecycle, scheduler state, tails.

:mod:`repro.obs` (tracing) answers *where did the virtual time of one
run go*; this module answers the operator's questions about the
persistent :class:`~repro.engine.Engine`: how deep is the queue, how
long do jobs wait, how busy is each pool rank, what do p50/p99 look
like under load.  Those signals live on the **wall clock** — queue wait
and gang-assembly stalls happen in real time, outside any job's virtual
clock — so an :class:`EngineTelemetry` stamps both: wall-clock
lifecycle transitions per job, plus the job's simulated makespan once
it finishes.

Lifecycle
---------
Every job walks ``submitted → queued → gang-assembled → running →
{completed | failed | cancelled}``; a submit rejected by admission
control records a terminal ``saturated`` lifecycle instead.  Each
transition is stamped on the telemetry's monotonic wall clock
(:class:`JobLifecycle`), labeled by session, job id, ``nprocs`` and
fault-plan presence, and the derived intervals feed three latency
histograms with streaming p50/p95/p99:

* ``engine.job.queue_wait_seconds`` — admission to gang assembly;
* ``engine.job.exec_seconds`` — gang assembly to completion;
* ``engine.job.e2e_seconds`` — submit entry to completion.

Cost discipline
---------------
Telemetry is designed to be left on in a service: the enabled path adds
a handful of counter/gauge updates and one small record per job —
**per job**, never per message or per collective round — and the
engine-throughput benchmark CI-enforces a ≤5% budget
(``benchmarks/bench_engine_throughput.py --overhead``).  The disabled
path is the shared :data:`NULL_ENGINE_TELEMETRY`, whose ``enabled``
attribute gates every hook call site, so a telemetry-off engine
allocates no telemetry objects at all on the submit/schedule hot path
(poison-tested like the disabled tracer).

Exports
-------
* :meth:`EngineTelemetry.snapshot` — one JSON-serializable frame:
  gauges, counters, histogram summaries with quantiles, per-rank
  utilization, schedule-cache stats, recent jobs.
* :class:`SnapshotRing` — a periodic snapshot thread writing frames
  into a bounded ring buffer, dumpable as JSONL.
* :meth:`EngineTelemetry.jsonl_records` — per-job lifecycle records as
  JSONL dicts.
* :func:`repro.obs.promexport.render_prometheus` — Prometheus text
  exposition (served by ``python -m repro serve --metrics-port``).
* :func:`repro.analysis.engine_session_to_chrome_trace` — the per-rank
  busy timeline as one Perfetto timeline for the whole engine session.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "JobLifecycle",
    "EngineTelemetry",
    "SnapshotRing",
    "NULL_ENGINE_TELEMETRY",
    "LIFECYCLE_STATES",
]

#: Lifecycle states in transition order; the last four are terminal.
#: "retrying" is the self-healing loop: a failed attempt re-enters
#: "queued" (with a bumped ``attempt``) after its backoff elapses.
LIFECYCLE_STATES = (
    "submitted", "queued", "gang-assembled", "running", "retrying",
    "completed", "failed", "cancelled", "saturated",
)

#: Terminal job status → counter attribute used by :meth:`job_done`.
_TERMINAL = {"done": "completed", "failed": "failed", "cancelled": "cancelled"}


class JobLifecycle:
    """Wall-clock lifecycle stamps of one engine job.

    Times are seconds on the telemetry's monotonic clock (zero at
    telemetry construction); unreached transitions are ``None``.  The
    final ``virtual_seconds`` is the job's simulated makespan — the
    bridge between service-level wall time and the model's virtual time.
    """

    __slots__ = (
        "job_id", "label", "session", "nprocs", "has_fault_plan",
        "t_submitted", "t_queued", "t_assembled", "t_running", "t_done",
        "state", "virtual_seconds", "attempt",
    )

    def __init__(
        self,
        job_id: int,
        label: str | None,
        session: str | None,
        nprocs: int,
        has_fault_plan: bool,
        t_submitted: float,
        attempt: int = 1,
    ):
        self.job_id = job_id
        self.label = label
        self.session = session
        self.nprocs = nprocs
        self.has_fault_plan = has_fault_plan
        self.t_submitted = t_submitted
        self.attempt = attempt
        self.t_queued: float | None = None
        self.t_assembled: float | None = None
        self.t_running: float | None = None
        self.t_done: float | None = None
        self.state = "submitted"
        self.virtual_seconds: float | None = None

    # -- derived intervals --------------------------------------------------

    @property
    def queue_wait(self) -> float | None:
        """Seconds from admission to gang assembly (None until assembled)."""
        if self.t_queued is None or self.t_assembled is None:
            return None
        return self.t_assembled - self.t_queued

    @property
    def exec_seconds(self) -> float | None:
        """Seconds from gang assembly to completion."""
        if self.t_assembled is None or self.t_done is None:
            return None
        return self.t_done - self.t_assembled

    @property
    def e2e_seconds(self) -> float | None:
        """Seconds from submit entry to completion (incl. admission wait)."""
        if self.t_done is None:
            return None
        return self.t_done - self.t_submitted

    def to_record(self) -> dict[str, Any]:
        """One JSONL-ready dict (``type: "job"``)."""
        return {
            "type": "job",
            "job_id": self.job_id,
            "label": self.label,
            "session": self.session,
            "nprocs": self.nprocs,
            "fault_plan": self.has_fault_plan,
            "state": self.state,
            "attempt": self.attempt,
            "t_submitted": self.t_submitted,
            "t_queued": self.t_queued,
            "t_assembled": self.t_assembled,
            "t_running": self.t_running,
            "t_done": self.t_done,
            "queue_wait_s": self.queue_wait,
            "exec_s": self.exec_seconds,
            "e2e_s": self.e2e_seconds,
            "virtual_s": self.virtual_seconds,
        }


class EngineTelemetry:
    """Always-on observability for one :class:`~repro.engine.Engine`.

    The engine calls the ``job_*``/``rank_*`` hooks from its submit,
    dispatch and completion paths (each hook is a few instrument
    updates); everything else — snapshots, Prometheus rendering, the
    dashboard — reads from here without touching the engine hot path.
    """

    enabled = True

    def __init__(
        self,
        nprocs: int,
        *,
        history: int = 256,
        max_intervals: int = 4096,
    ):
        self.nprocs = nprocs
        self.registry = MetricsRegistry()
        self._t0 = time.perf_counter()
        self._epoch = time.time()
        self._lock = threading.Lock()
        self._history: deque[JobLifecycle] = deque(maxlen=history)
        #: Closed per-rank busy intervals (rank, t0, t1, job_id, label),
        #: bounded so a long-lived engine cannot grow without limit.
        self._intervals: deque[tuple[int, float, float, int, str | None]] = (
            deque(maxlen=max_intervals)
        )
        # Per-rank state is only mutated from job_assembled/job_done,
        # both called with the engine lock held, so no telemetry lock
        # guards it; readers (utilization, snapshots) take lock-free
        # copies and tolerate a fraction of a job of skew, which is
        # harmless in monitoring data.
        self._busy = [0.0] * nprocs  # cumulative busy seconds per rank
        self._open: list[float | None] = [None] * nprocs
        self._jobs_per_rank = [0] * nprocs
        self._closed_per_rank = [0] * nprocs
        self._engine: Any = None
        reg = self.registry
        # Instruments are created once, here, so the hooks below touch
        # only pre-resolved references (no name lookups per job).
        self._c_submitted = reg.counter("engine.jobs.submitted")
        self._c_completed = reg.counter("engine.jobs.completed")
        self._c_failed = reg.counter("engine.jobs.failed")
        self._c_cancelled = reg.counter("engine.jobs.cancelled")
        self._c_rejected = reg.counter("engine.jobs.rejected")
        self._g_queue = reg.gauge("engine.queue.depth")
        self._g_inflight = reg.gauge("engine.jobs.inflight")
        self._g_free = reg.gauge("engine.ranks.free")
        self._g_busy_fraction = reg.gauge("engine.ranks.busy_fraction")
        self._h_queue_wait = reg.histogram("engine.job.queue_wait_seconds")
        self._h_exec = reg.histogram("engine.job.exec_seconds")
        self._h_e2e = reg.histogram("engine.job.e2e_seconds")
        self._h_virtual = reg.histogram("engine.job.virtual_seconds")
        # Self-healing instruments (PR 8): retries, leak sweeps, rank
        # quarantine/revival, degraded-capacity gauges.
        self._c_retried = reg.counter("engine.jobs.retried")
        self._c_reaped = reg.counter("engine.jobs.reaped")
        self._c_shrunk = reg.counter("engine.jobs.shrunk")
        self._c_leaked = reg.counter("engine.jobs.leaked_messages")
        self._c_quarantines = reg.counter("engine.ranks.quarantines")
        self._c_revivals = reg.counter("engine.ranks.revivals")
        self._g_quarantined = reg.gauge("engine.ranks.quarantined")
        self._g_effective = reg.gauge("engine.capacity.effective")
        self._g_degraded = reg.gauge("engine.capacity.degraded")
        self._g_queue.set(0)
        self._g_inflight.set(0)
        self._g_free.set(nprocs)
        self._g_quarantined.set(0)
        self._g_effective.set(nprocs)
        self._g_degraded.set(0)

    def bind(self, engine: Any) -> None:
        """Attach the owning engine (snapshot reads its scheduler stats)."""
        self._engine = engine

    def now(self) -> float:
        """Seconds on the telemetry's monotonic wall clock."""
        return time.perf_counter() - self._t0

    # -- engine hooks (hot path; each is O(instruments touched)) -----------

    def job_admitted(
        self,
        job_id: int,
        label: str | None,
        session: str | None,
        nprocs: int,
        has_fault_plan: bool,
        t_submitted: float,
        queue_depth: int,
        attempt: int = 1,
    ) -> JobLifecycle:
        """A job entered the pending queue; returns its lifecycle record.

        ``t_submitted`` is the hook-captured entry time into ``submit``
        — before any backpressure wait — so ``t_queued - t_submitted``
        is the admission stall.  A retried attempt re-enters here with
        ``attempt > 1`` (a fresh lifecycle per attempt; the failed
        attempt's record stays in the history with state "retrying").
        """
        lc = JobLifecycle(
            job_id, label, session, nprocs, has_fault_plan, t_submitted,
            attempt=attempt,
        )
        lc.t_queued = self.now()
        lc.state = "queued"
        if attempt == 1:
            self._c_submitted.inc()
        self._g_queue.set(queue_depth)
        return lc

    def job_rejected(
        self,
        label: str | None,
        session: str | None,
        nprocs: int,
        t_submitted: float,
    ) -> None:
        """A submit was refused by admission control (``EngineSaturated``)."""
        lc = JobLifecycle(-1, label, session, nprocs, False, t_submitted)
        lc.t_done = self.now()
        lc.state = "saturated"
        self._c_rejected.inc()
        with self._lock:
            self._history.append(lc)

    def job_assembled(
        self,
        lc: JobLifecycle,
        members: tuple[int, ...],
        queue_depth: int,
        inflight: int,
        free_ranks: int,
    ) -> None:
        """The job's gang was assembled and dispatched onto ``members``.

        Called (like :meth:`job_done`) with the engine lock held, which
        serializes the per-rank open/close bookkeeping without any lock
        of telemetry's own.
        """
        t = self.now()
        lc.t_assembled = t
        lc.state = "gang-assembled"
        for r in members:
            self._open[r] = t
            self._jobs_per_rank[r] += 1
        self._h_queue_wait.observe(max(t - (lc.t_queued or t), 0.0))
        self._g_queue.set(queue_depth)
        self._g_inflight.set(inflight)
        self._g_free.set(free_ranks)

    def job_running(self, lc: JobLifecycle) -> None:
        """The first member rank entered the job's function.

        The engine calls this once per job, guarded by ``lc.t_running is
        None`` at the call site — the busy timeline is stamped at gang
        granularity (see :meth:`job_done`), so member ranks pay no
        per-rank telemetry on their own execution path.
        """
        if lc.t_running is None:
            lc.t_running = self.now()
            lc.state = "running"

    def job_done(
        self,
        lc: JobLifecycle,
        status: str,
        virtual_seconds: float,
        members: tuple[int, ...],
        queue_depth: int,
        inflight: int,
        free_ranks: int,
        leaked: int = 0,
    ) -> None:
        """Terminal transition: ``status`` is the job's final engine state
        (``done``/``failed``/``cancelled``).  ``leaked`` is the number
        of envelopes the finalize sweep drained for this job (messages
        it sent but never received, e.g. unwound mid-collective).

        Closes the busy interval of every member rank at gang
        granularity — one ``(rank, t_start, t_done)`` slice per member,
        where ``t_start`` is the first member's entry (members of a gang
        start within microseconds of each other, so per-member begin/end
        stamps would buy precision the monitoring data cannot use at
        16 extra hook calls per job).
        """
        t = self.now()
        lc.t_done = t
        lc.state = _TERMINAL.get(status, status)
        lc.virtual_seconds = virtual_seconds
        counter = {
            "done": self._c_completed,
            "failed": self._c_failed,
            "cancelled": self._c_cancelled,
        }.get(status)
        if counter is not None:
            counter.inc()
        if leaked:
            self._c_leaked.inc(leaked)
        if lc.t_assembled is not None:
            t_start = lc.t_running if lc.t_running is not None else lc.t_assembled
            for r in members:
                self._open[r] = None
                self._busy[r] += t - t_start
                self._closed_per_rank[r] += 1
                self._intervals.append((r, t_start, t, lc.job_id, lc.label))
            self._h_exec.observe(max(t - lc.t_assembled, 0.0))
            self._h_virtual.observe(max(virtual_seconds, 0.0))
        self._h_e2e.observe(max(t - lc.t_submitted, 0.0))
        self._g_queue.set(queue_depth)
        self._g_inflight.set(inflight)
        self._g_free.set(free_ranks)
        with self._lock:
            self._history.append(lc)

    def job_retried(
        self,
        lc: JobLifecycle,
        attempt: int,
        delay: float,
        members: tuple[int, ...],
        leaked: int = 0,
    ) -> None:
        """Attempt ``attempt`` of a job failed and will be re-run after
        ``delay`` seconds of backoff.

        Called (like :meth:`job_done`) with the engine lock held.  The
        failed attempt's lifecycle goes terminal here with state
        "retrying"; the re-admitted attempt gets a *fresh* lifecycle
        from :meth:`job_admitted` with ``attempt + 1``, so per-attempt
        histories stay intact and the latency histograms measure each
        attempt's real execution.
        """
        t = self.now()
        lc.t_done = t
        lc.state = "retrying"
        self._c_retried.inc()
        if leaked:
            self._c_leaked.inc(leaked)
        if lc.t_assembled is not None:
            t_start = (
                lc.t_running if lc.t_running is not None else lc.t_assembled
            )
            for r in members:
                self._open[r] = None
                self._busy[r] += t - t_start
                self._closed_per_rank[r] += 1
                self._intervals.append((r, t_start, t, lc.job_id, lc.label))
        with self._lock:
            self._history.append(lc)

    def job_reaped(self, job_id: int) -> None:
        """The supervisor's stuck-job reaper cancelled+unwound a job
        that exceeded its deadline (escalation past the collective
        watchdog).  The terminal :meth:`job_done` still follows."""
        self._c_reaped.inc()

    def job_shrunk(self, lc: JobLifecycle, nprocs: int) -> None:
        """An ``allow_shrink=True`` job was gang-assembled onto
        ``nprocs`` ranks — fewer than requested — because the pool is
        running degraded.  Called with the engine lock held, just
        before :meth:`job_assembled`."""
        lc.nprocs = nprocs
        self._c_shrunk.inc()

    def rank_quarantined(
        self, rank: int, quarantined: int, effective: int
    ) -> None:
        """Pool ``rank`` died inside a job and was quarantined; the gang
        scheduler will skip it until a probe revives it."""
        self._c_quarantines.inc()
        self._g_quarantined.set(quarantined)
        self._g_effective.set(effective)

    def rank_revived(
        self, rank: int, quarantined: int, effective: int
    ) -> None:
        """A quarantined rank passed its health probe and rejoined the
        schedulable pool."""
        self._c_revivals.inc()
        self._g_quarantined.set(quarantined)
        self._g_effective.set(effective)

    def degraded_changed(self, degraded: bool, effective: int) -> None:
        """The engine crossed its capacity floor (either direction)."""
        self._g_degraded.set(1 if degraded else 0)
        self._g_effective.set(effective)

    # -- cold-path reads ----------------------------------------------------

    def utilization(self, now: float | None = None) -> list[float]:
        """Per-rank busy fraction since telemetry start, counting any
        interval still open (a rank mid-job is busy, not idle)."""
        t = self.now() if now is None else now
        if t <= 0.0:
            return [0.0] * self.nprocs
        busy = list(self._busy)
        for r, t0 in enumerate(list(self._open)):
            if t0 is not None:
                busy[r] += t - t0
        return [min(max(b, 0.0) / t, 1.0) for b in busy]

    def intervals(self) -> list[tuple[int, float, float, int, str | None]]:
        """Closed per-rank busy intervals ``(rank, t0, t1, job_id,
        label)``, oldest first (bounded; see ``interval_drops``)."""
        return list(self._intervals)

    @property
    def interval_drops(self) -> int:
        """Busy intervals evicted from the bounded ring so far."""
        return max(0, sum(self._closed_per_rank) - len(self._intervals))

    def recent_jobs(self, n: int = 16) -> list[JobLifecycle]:
        """The last ``n`` terminal job lifecycles, oldest first."""
        with self._lock:
            items = list(self._history)
        return items[-n:]

    def snapshot(self) -> dict[str, Any]:
        """One JSON-serializable telemetry frame.

        Schedule-cache hit/miss counts are pulled live from the bound
        engine's world and mirrored into registry gauges here — a
        snapshot-time sync, deliberately not a per-``choose()`` counter
        increment, so the cache's lock-free read path stays untouched.
        """
        t = self.now()
        util = self.utilization(t)
        self._g_busy_fraction.set(
            sum(util) / len(util) if util else 0.0
        )
        engine_stats: dict[str, Any] | None = None
        if self._engine is not None:
            engine_stats = self._engine.stats()
            cache = engine_stats["schedule_cache"]
            reg = self.registry
            reg.gauge("engine.schedule_cache.hits").set(cache["hits"])
            reg.gauge("engine.schedule_cache.misses").set(cache["misses"])
            reg.gauge("engine.schedule_cache.hit_rate").set(cache["hit_rate"])
            kcache = engine_stats.get("kernel_cache")
            if kcache is not None:
                reg.gauge("engine.kernel_cache.hits").set(kcache["hits"])
                reg.gauge("engine.kernel_cache.misses").set(kcache["misses"])
                reg.gauge("engine.kernel_cache.hit_rate").set(
                    kcache["hit_rate"]
                )
            ipc = engine_stats.get("ipc")
            if ipc is not None:
                # Process-backend IPC counters, so zero-copy coverage
                # is observable in Prometheus/top (docs/backends.md).
                reg.gauge("backend.ipc.frames").set(ipc["frames"])
                reg.gauge("backend.ipc.bytes").set(ipc["bytes"])
                reg.gauge("backend.ipc.shm_hits").set(ipc["shm_hits"])
                reg.gauge("backend.ipc.pickle_fallbacks").set(
                    ipc["pickle_fallbacks"]
                )
            placement = engine_stats.get("placement")
            if placement is not None:
                # Locality placement quality (docs/topology.md): how
                # many fabric nodes the average gang straddles, and how
                # often packing achieved the single-node ideal.
                reg.gauge("engine.placement.gangs").set(
                    placement["gangs_placed"]
                )
                reg.gauge("engine.placement.gang_spread").set(
                    placement["mean_gang_spread"]
                )
                reg.gauge("engine.placement.single_node_gangs").set(
                    placement["single_node_gangs"]
                )
            fabric = engine_stats.get("fabric")
            if fabric:
                # Multi-tier fabric traffic counters — only non-flat
                # topologies report any (FlatTopology.stats() is {}).
                for name, value in fabric.items():
                    reg.gauge(f"fabric.congestion.{name}").set(value)
        frame: dict[str, Any] = {
            "type": "snapshot",
            "ts": self._epoch + t,
            "uptime_s": t,
            "nprocs": self.nprocs,
            "utilization": util,
            "jobs_per_rank": list(self._jobs_per_rank),
            "interval_drops": self.interval_drops,
            "metrics": self.registry.snapshot(),
        }
        if engine_stats is not None:
            frame["engine"] = engine_stats
        return frame

    def latency_summary(self) -> dict[str, Any]:
        """Queue-wait / exec / end-to-end histogram summaries (with
        p50/p95/p99) keyed by short names — the BENCH-file shape."""
        return {
            "queue_wait_s": self._h_queue_wait.summary(),
            "exec_s": self._h_exec.summary(),
            "e2e_s": self._h_e2e.summary(),
            "virtual_s": self._h_virtual.summary(),
        }

    def jsonl_records(self) -> Iterator[dict[str, Any]]:
        """Per-job lifecycle records (``type: "job"``), oldest first,
        followed by one final ``type: "metrics"`` registry snapshot."""
        for lc in self.recent_jobs(len(self._history)):
            yield lc.to_record()
        yield {"type": "metrics", **self.registry.snapshot()}

    def dumps_jsonl(self) -> str:
        """The lifecycle records as newline-delimited JSON."""
        return "\n".join(
            json.dumps(rec, allow_nan=False) for rec in self.jsonl_records()
        ) + "\n"


class _NullEngineTelemetry:
    """Disabled stand-in: ``enabled`` gates every engine call site, so
    none of these methods run on the hot path; they exist so stray
    cold-path calls (snapshots of a disabled engine) degrade gracefully."""

    enabled = False
    nprocs = 0
    registry = None
    __slots__ = ()

    def bind(self, engine: Any) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def job_admitted(self, *a: Any, **k: Any) -> None:
        return None

    def job_rejected(self, *a: Any, **k: Any) -> None:
        pass

    def job_assembled(self, *a: Any, **k: Any) -> None:
        pass

    def job_running(self, *a: Any, **k: Any) -> None:
        pass

    def job_done(self, *a: Any, **k: Any) -> None:
        pass

    def job_retried(self, *a: Any, **k: Any) -> None:
        pass

    def job_reaped(self, *a: Any, **k: Any) -> None:
        pass

    def job_shrunk(self, *a: Any, **k: Any) -> None:
        pass

    def rank_quarantined(self, *a: Any, **k: Any) -> None:
        pass

    def rank_revived(self, *a: Any, **k: Any) -> None:
        pass

    def degraded_changed(self, *a: Any, **k: Any) -> None:
        pass

    def utilization(self, now: float | None = None) -> list[float]:
        return []

    def intervals(self) -> list:
        return []

    def recent_jobs(self, n: int = 16) -> list:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {"type": "snapshot", "enabled": False}


#: Shared no-op telemetry handed to engines constructed without it.
NULL_ENGINE_TELEMETRY = _NullEngineTelemetry()


class SnapshotRing:
    """Periodic JSONL snapshot ring buffer over one telemetry.

    A daemon thread calls :meth:`EngineTelemetry.snapshot` every
    ``interval`` seconds and keeps the last ``capacity`` frames; the
    ring is bounded, so leaving it running for days costs a fixed
    amount of memory.  ``write()`` dumps the frames plus the per-job
    lifecycle records as one JSONL file.
    """

    def __init__(
        self,
        telemetry: EngineTelemetry,
        *,
        interval: float = 1.0,
        capacity: int = 600,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.telemetry = telemetry
        self.interval = interval
        self._frames: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    def start(self) -> "SnapshotRing":
        """Start the sampler thread (idempotent); returns self."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="telemetry-snapshots", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def sample(self) -> dict[str, Any]:
        """Take one snapshot now (also usable without the thread)."""
        frame = self.telemetry.snapshot()
        with self._lock:
            self._frames.append(frame)
        return frame

    def stop(self) -> None:
        """Stop the sampler thread; frames already taken are kept."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def frames(self) -> list[dict[str, Any]]:
        """The buffered snapshot frames, oldest first."""
        with self._lock:
            return list(self._frames)

    def write(self, path: str) -> int:
        """Dump frames + per-job lifecycle records as JSONL; returns the
        number of lines written."""
        records = [*self.frames(), *self.telemetry.jsonl_records()]
        with open(path, "w") as f:
            for rec in records:
                f.write(json.dumps(rec, allow_nan=False) + "\n")
        return len(records)

    def __enter__(self) -> "SnapshotRing":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
