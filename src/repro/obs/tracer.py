"""Phase-level span tracing on the virtual clock.

A **span** is a named interval of one rank's virtual time — a
``global_reduce`` call, its ``accumulate``/``combine``/``generate``
phases, a collective underneath the combine.  Spans nest (each rank
keeps a stack), carry the operator name and byte/element counts, and are
timestamped from the rank's :class:`~repro.runtime.clock.VirtualClock`,
so a profile describes *simulated* time exactly.

Objects
-------
* :class:`Tracer` — one per profiling session; owns the shared
  :class:`~repro.obs.metrics.MetricsRegistry` and one
  :class:`RunCapture` per ``spmd_run``.
* :class:`RankTracer` — one per rank per run; the handle hot paths use
  (``with comm.tracer.span(...)``).  Single-threaded by construction
  (each rank is one thread), so recording takes no locks.
* :data:`NULL_TRACER` — the disabled stand-in.  Its ``span()`` returns a
  shared no-op context manager and its hooks do nothing, which is what
  makes tracing zero-overhead when off: the hot paths contain only an
  attribute load, a call, and an ``enabled`` check.

The module also maintains the **active profile**: a process-wide
``(tracer, ranks_override)`` installed by :func:`profiling`, which
``spmd_run`` consults when no tracer is passed explicitly.  This is how
``python -m repro profile`` traces example scripts it does not control.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

from repro.obs.metrics import NULL_METRICS, MetricsRegistry

__all__ = [
    "Span",
    "SendEdge",
    "RecvEdge",
    "RankTracer",
    "RunCapture",
    "Tracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "profiling",
    "active_tracer",
    "active_profile",
]

#: Canonical phase names used by the global-view drivers.
PHASES = ("accumulate", "combine", "generate")


@dataclass
class Span:
    """One named interval of one rank's virtual timeline."""

    span_id: str
    parent_id: str | None
    name: str
    rank: int
    t_start: float
    t_end: float = 0.0
    phase: str | None = None  # "accumulate" | "combine" | "generate" | ...
    op: str | None = None  # operator name, when the span belongs to one
    nbytes: int = 0
    elements: int = 0
    depth: int = 0

    @property
    def duration(self) -> float:
        """Virtual seconds covered by the span."""
        return self.t_end - self.t_start

    def add(self, nbytes: int = 0, elements: int = 0) -> None:
        """Accumulate byte/element counts onto the span."""
        self.nbytes += nbytes
        self.elements += elements


@dataclass(frozen=True)
class SendEdge:
    """One message injection, as seen by the sender."""

    dest: int
    tag: Hashable
    nbytes: int
    t_send: float  # sender clock after paying the send overhead
    available_at: float  # when the message becomes receivable


@dataclass(frozen=True)
class RecvEdge:
    """One message extraction, as seen by the receiver."""

    source: int
    tag: Hashable
    nbytes: int
    t_arrive: float  # receiver clock on reaching the receive
    available_at: float
    t_done: float  # receiver clock after merge + receive overhead

    @property
    def blocked(self) -> bool:
        """True if the receiver had to wait for the message."""
        return self.available_at > self.t_arrive


class _SpanContext:
    """Context manager opening/closing one span on a rank's stack."""

    __slots__ = ("_rt", "_name", "_phase", "_op", "_nbytes", "_elements", "_span")

    def __init__(self, rt: "RankTracer", name: str, phase: str | None,
                 op: str | None, nbytes: int, elements: int):
        self._rt = rt
        self._name = name
        self._phase = phase
        self._op = op
        self._nbytes = nbytes
        self._elements = elements

    def __enter__(self) -> Span:
        rt = self._rt
        parent = rt._stack[-1] if rt._stack else None
        span = Span(
            span_id=f"r{rt.rank}.{rt._seq}",
            parent_id=parent.span_id if parent else None,
            name=self._name,
            rank=rt.rank,
            t_start=rt._clock.t,
            phase=self._phase,
            op=self._op,
            nbytes=self._nbytes,
            elements=self._elements,
            depth=parent.depth + 1 if parent else 0,
        )
        rt._seq += 1
        rt._stack.append(span)
        self._span = span
        return span

    def __exit__(self, *exc: Any) -> bool:
        rt = self._rt
        span = rt._stack.pop()
        span.t_end = rt._clock.t
        rt.spans.append(span)
        return False


class _NullSpan:
    """Shared do-nothing span/context used when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def add(self, nbytes: int = 0, elements: int = 0) -> None:
        pass


#: Shared do-nothing span returned by every disabled ``span()`` call.
NULL_SPAN = _NULL_SPAN = _NullSpan()


class RankTracer:
    """Span/message recorder for one rank of one run (single-threaded)."""

    enabled = True
    __slots__ = ("rank", "metrics", "spans", "sends", "recvs", "_clock",
                 "_stack", "_seq")

    def __init__(self, rank: int, clock: Any, metrics: MetricsRegistry):
        self.rank = rank
        self.metrics = metrics
        self.spans: list[Span] = []  # completed spans, in completion order
        self.sends: list[SendEdge] = []
        self.recvs: list[RecvEdge] = []
        self._clock = clock
        self._stack: list[Span] = []
        self._seq = 0

    def span(self, name: str, *, phase: str | None = None,
             op: str | None = None, nbytes: int = 0,
             elements: int = 0) -> _SpanContext:
        """Open a span: ``with tracer.span("combine", phase="combine") as sp``.

        The span starts at the current virtual time on entry and ends at
        the virtual time on exit; it nests under the innermost open span.
        """
        return _SpanContext(self, name, phase, op, nbytes, elements)

    # -- message edges (called by RankContext when tracing is on) ---------

    def on_send(self, dest: int, tag: Hashable, nbytes: int,
                t_send: float, available_at: float) -> None:
        """Record one message injection (for the critical-path walk)."""
        self.sends.append(SendEdge(dest, tag, nbytes, t_send, available_at))

    def on_recv(self, source: int, tag: Hashable, nbytes: int,
                t_arrive: float, available_at: float, t_done: float) -> None:
        """Record one message extraction (for the critical-path walk)."""
        self.recvs.append(
            RecvEdge(source, tag, nbytes, t_arrive, available_at, t_done)
        )


class _NullRankTracer:
    """Disabled tracer: every hook is a no-op, ``span()`` allocates nothing."""

    enabled = False
    metrics = NULL_METRICS
    __slots__ = ()

    def span(self, name: str, **kwargs: Any) -> _NullSpan:
        return _NULL_SPAN

    def on_send(self, *args: Any) -> None:
        pass

    def on_recv(self, *args: Any) -> None:
        pass


#: Shared disabled tracer handed to every rank when no profiling is active.
NULL_TRACER = _NullRankTracer()


@dataclass
class RunCapture:
    """Everything one ``spmd_run`` recorded: per-rank tracers + metadata."""

    index: int
    nprocs: int
    ranks: list[RankTracer]
    label: str | None = None
    makespan: float | None = None
    clocks: list[float] | None = None

    def spans(self) -> Iterator[Span]:
        """All ranks' completed spans."""
        for rt in self.ranks:
            yield from rt.spans

    def span_parents(self) -> dict[str, Span]:
        """Map span_id -> span over every rank (for ancestry walks)."""
        return {s.span_id: s for s in self.spans()}


class Tracer:
    """A profiling session: shared metrics plus one capture per run."""

    enabled = True

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.runs: list[RunCapture] = []
        self._lock = threading.Lock()

    def begin_run(self, nprocs: int, clocks: list[Any],
                  label: str | None = None) -> RunCapture:
        """Create the per-rank tracers for one ``spmd_run`` (called by
        the :class:`~repro.runtime.world.World` constructor)."""
        ranks = [RankTracer(r, clocks[r], self.metrics) for r in range(nprocs)]
        with self._lock:
            run = RunCapture(index=len(self.runs), nprocs=nprocs,
                             ranks=ranks, label=label)
            self.runs.append(run)
        return run

    def finish_run(self, run: RunCapture, clocks: list[float],
                   label: str | None = None) -> None:
        """Seal a run with its final per-rank virtual times."""
        run.clocks = list(clocks)
        run.makespan = max(clocks) if clocks else 0.0
        if label is not None and run.label is None:
            run.label = label

    def spans(self) -> Iterator[Span]:
        """All spans across all runs."""
        for run in self.runs:
            yield from run.spans()


# -- the active profile (what `spmd_run` picks up when not passed a tracer) --

_active_lock = threading.Lock()
_active: tuple[Tracer, int | None] | None = None


def active_tracer() -> Tracer | None:
    """The tracer installed by :func:`profiling`, if any."""
    return _active[0] if _active is not None else None


def active_profile() -> tuple[Tracer | None, int | None]:
    """The installed ``(tracer, ranks_override)`` pair (both None if off)."""
    return _active if _active is not None else (None, None)


@contextmanager
def profiling(tracer: Tracer | None = None, *,
              ranks: int | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (a fresh one by default) as the active profile.

    While the context is open, every ``spmd_run`` in the process that is
    not given an explicit tracer records into it, and — if ``ranks`` is
    set — runs on that many simulated ranks regardless of the caller's
    ``nprocs``.  That override is what lets ``python -m repro profile
    --ranks N`` rescale workload scripts it does not control; leave it
    None everywhere else.
    """
    global _active
    if tracer is None:
        tracer = Tracer()
    with _active_lock:
        previous = _active
        _active = (tracer, ranks)
    try:
        yield tracer
    finally:
        with _active_lock:
            _active = previous
