"""Simulated MPI: communicators, the 12 built-in ops, user-defined ops."""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.op import (
    BAND,
    BOR,
    BUILTIN_OPS,
    BXOR,
    LAND,
    LOR,
    LXOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    Op,
    PROD,
    SUM,
    op_create,
)
from repro.mpi.topology import binomial_tree, dims_create, kary_tree, tree_depth

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Op",
    "op_create",
    "BUILTIN_OPS",
    "MAX",
    "MIN",
    "SUM",
    "PROD",
    "LAND",
    "BAND",
    "LOR",
    "BOR",
    "LXOR",
    "BXOR",
    "MAXLOC",
    "MINLOC",
    "binomial_tree",
    "kary_tree",
    "tree_depth",
    "dims_create",
]
