"""Simulated MPI: communicators, the 12 built-in ops, user-defined ops."""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.request import ProgressEngine, Request, waitall
from repro.mpi.op import (
    BAND,
    BOR,
    BUILTIN_OPS,
    BXOR,
    LAND,
    LOR,
    LXOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    Op,
    PROD,
    SUM,
    op_create,
)
from repro.mpi.topology import binomial_tree, dims_create, kary_tree, tree_depth
from repro.mpi.tuning import (
    DecisionTable,
    choose_allreduce,
    choose_reduce,
    choose_scan,
    get_decision_table,
    set_decision_table,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Request",
    "ProgressEngine",
    "waitall",
    "Op",
    "op_create",
    "BUILTIN_OPS",
    "MAX",
    "MIN",
    "SUM",
    "PROD",
    "LAND",
    "BAND",
    "LOR",
    "BOR",
    "LXOR",
    "BXOR",
    "MAXLOC",
    "MINLOC",
    "binomial_tree",
    "kary_tree",
    "tree_depth",
    "dims_create",
    "DecisionTable",
    "choose_allreduce",
    "choose_reduce",
    "choose_scan",
    "get_decision_table",
    "set_decision_table",
]
