"""Cross-job schedule cache for auto-tuned collective selection.

Every ``algorithm="auto"`` collective resolves its schedule through
:mod:`repro.mpi.tuning`: compute the payload's tuning inputs, then walk
the decision table's rank bands and byte cutoffs.  That walk is cheap
but not free, and under the persistent :class:`repro.engine.Engine` the
same (kind, nprocs, operand shape) questions repeat across thousands of
jobs — exactly the "schedules as reusable artifacts" observation of
Träff's optimality work.  A :class:`ScheduleCache` amortizes the lookup
across jobs sharing one :class:`~repro.runtime.world.World`.

Exactness
---------
The cache stores **constant-decision byte spans**, not point answers:
each entry is the maximal ``[lo, hi]`` interval around the queried size
on which the choice function is constant
(:func:`repro.mpi.tuning.constant_span`).  A hit anywhere inside the
span returns precisely what ``choose_*`` would have returned, so caching
can never move a crossover — the ``auto == explicit`` parity tests hold
with or without the cache.

Invalidation
------------
Entries key their validity on :func:`repro.mpi.tuning.table_generation`;
installing a new table (``set_decision_table``/``load_decision_table``)
bumps the generation and the next lookup drops every cached span.

Thread-safety
-------------
Reads are lock-free (a dict ``get`` of an immutable tuple); writes and
the generation flush take the cache lock.  The hit/miss counters are
best-effort under concurrency — they feed throughput reports, not
results.
"""

from __future__ import annotations

import threading

from repro.mpi import tuning as _tuning

__all__ = ["ScheduleCache"]

#: Log2 size-band granularity of cache keys.  Two payload sizes with the
#: same ``bit_length`` share an entry; the stored span still decides
#: correctness, the banding only bounds how many entries one (kind,
#: nprocs) pair can occupy.
def _size_band(nbytes: int) -> int:
    return nbytes.bit_length()


class ScheduleCache:
    """Memoized ``choose_allreduce``/``choose_reduce``/``choose_scan``.

    Keyed on ``(kind, nprocs, commutative, splittable, size_band,
    topology_signature)``;
    valued with the constant-decision span ``(lo, hi, algorithm)``.
    One instance lives on each :class:`~repro.runtime.world.World`;
    engine job worlds delegate to their parent's so the amortization is
    cross-job.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: dict[tuple, tuple[int, int, str]] = {}
        self._generation = _tuning.table_generation()
        self.hits = 0
        self.misses = 0

    def choose(
        self,
        kind: str,
        nbytes: int,
        nprocs: int,
        commutative: bool = True,
        splittable: bool = False,
        *,
        topology: str = "flat",
    ) -> str:
        """The algorithm ``tuning.choose_<kind>`` would pick — cached.

        ``topology`` is the world's fabric signature; it joins the cache
        key because per-fabric decision tables can place crossovers
        differently (a flat world and a ``multi_node:4`` world sharing
        one cache must never cross-contaminate answers)."""
        generation = _tuning.table_generation()
        if generation != self._generation:
            with self._lock:
                if generation != self._generation:
                    self._spans.clear()
                    self._generation = generation
        key = (
            kind, nprocs, commutative, splittable, _size_band(nbytes),
            topology,
        )
        span = self._spans.get(key)
        if span is not None and span[0] <= nbytes <= span[1]:
            self.hits += 1
            return span[2]
        self.misses += 1
        lo, hi, algorithm = _tuning.constant_span(
            kind, nbytes, nprocs, commutative, splittable,
            topology=topology,
        )
        with self._lock:
            if generation == self._generation:
                self._spans[key] = (lo, hi, algorithm)
        return algorithm

    def stats(self) -> dict[str, int | float]:
        """Hit/miss counters plus entry count (best-effort under load)."""
        total = self.hits + self.misses
        return {
            "entries": len(self._spans),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def clear(self) -> None:
        """Drop every cached span (counters are kept)."""
        with self._lock:
            self._spans.clear()
