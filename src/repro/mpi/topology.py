"""Communication-tree topologies used by the collective algorithms.

The collectives themselves (``repro.mpi.collectives``) are expressed over
abstract tree/schedule structures defined here, so the fan-out ablation
(paper §1: "if the branching factor on the log tree is greater than two
... reductions of commutative operators can immediately combine whichever
partial results are available") can swap topologies without touching the
algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CommunicatorError

__all__ = [
    "TreeNode",
    "binomial_tree",
    "kary_tree",
    "tree_depth",
    "dims_create",
]


@dataclass(frozen=True)
class TreeNode:
    """One rank's position in a reduction/broadcast tree.

    ``children`` are ordered by ascending rank; for an *order-preserving*
    (non-commutative) reduction each child's partial covers a contiguous
    rank range adjacent to the parent's.
    """

    rank: int
    parent: int | None
    children: tuple[int, ...]


def binomial_tree(size: int) -> list[TreeNode]:
    """The binomial reduction tree over ranks ``0..size-1`` rooted at 0.

    Rank ``r``'s parent clears its lowest set bit; its children are
    ``r + 2**k`` for each ``k`` below the lowest set bit of ``r`` (or below
    ``ceil(log2 size)`` for the root).  Every child subtree covers a
    contiguous rank range, which makes the tree safe for non-commutative
    operations when children are combined in ascending-rank order.
    """
    if size < 1:
        raise CommunicatorError(f"tree size must be >= 1, got {size}")
    nodes = []
    for r in range(size):
        if r == 0:
            parent = None
            low = size.bit_length()  # unlimited; bounded by size below
        else:
            lsb = r & -r
            parent = r - lsb
            low = int(math.log2(lsb))
        children = []
        k = 0
        while k < low:
            c = r + (1 << k)
            if c < size:
                children.append(c)
            k += 1
        nodes.append(TreeNode(r, parent, tuple(sorted(children))))
    return nodes


def kary_tree(size: int, fanout: int) -> list[TreeNode]:
    """A complete k-ary tree over ranks ``0..size-1`` rooted at 0.

    Rank ``r``'s children are ``fanout*r + 1 .. fanout*r + fanout`` (heap
    numbering).  Unlike the binomial tree, heap-numbered subtrees do *not*
    cover contiguous rank ranges, so this topology is only offered for
    **commutative** operations.
    """
    if fanout < 2:
        raise CommunicatorError(f"tree fanout must be >= 2, got {fanout}")
    if size < 1:
        raise CommunicatorError(f"tree size must be >= 1, got {size}")
    nodes = []
    for r in range(size):
        parent = None if r == 0 else (r - 1) // fanout
        children = tuple(
            c for c in range(fanout * r + 1, fanout * r + fanout + 1) if c < size
        )
        nodes.append(TreeNode(r, parent, children))
    return nodes


def tree_depth(nodes: list[TreeNode]) -> int:
    """Depth of the tree (edges on the longest root-to-leaf path)."""
    depth = {0: 0}
    # ranks are numbered so that parent < child in both constructions
    for node in nodes[1:]:
        depth[node.rank] = depth[node.parent] + 1
    return max(depth.values(), default=0)


def dims_create(nprocs: int, ndims: int) -> tuple[int, ...]:
    """Factor ``nprocs`` into ``ndims`` balanced dimensions (like
    ``MPI_Dims_create``): dimensions are as close to equal as possible,
    sorted in non-increasing order.

    Edge cases (matching the MPI standard, which requires ``nnodes`` to
    be positive): ``nprocs == 0`` is rejected with
    :class:`~repro.errors.CommunicatorError` rather than returning a
    degenerate all-zero shape, and ``nprocs == 1`` returns the trivial
    grid ``(1,) * ndims`` — a single rank occupies every dimension.
    """
    if nprocs < 1 or ndims < 1:
        raise CommunicatorError(
            f"dims_create needs nprocs >= 1 and ndims >= 1, got "
            f"({nprocs}, {ndims})"
        )
    dims = [1] * ndims
    remaining = nprocs
    # Repeatedly peel the largest prime factor onto the smallest dimension.
    factors: list[int] = []
    f = 2
    while f * f <= remaining:
        while remaining % f == 0:
            factors.append(f)
            remaining //= f
        f += 1
    if remaining > 1:
        factors.append(remaining)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    return tuple(sorted(dims, reverse=True))
