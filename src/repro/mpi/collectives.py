"""Collective algorithms over point-to-point channels.

Every collective is built from point-to-point messages on a
:class:`CollChannel`, so its simulated cost *emerges* from the actual
message pattern rather than from a closed-form formula — the property
that lets the figure benchmarks reproduce the paper's performance shapes
honestly.

Algorithm choices mirror common MPI implementations:

* reductions: order-preserving binomial tree (valid for non-commutative
  operations); optional k-ary "combine-as-available" tree for commutative
  operations (the paper's §1 fan-out observation); a segmented/pipelined
  ring for large splittable vectors (order-preserving);
* allreduce: recursive doubling with the MPICH non-power-of-two fold-in,
  order-preserving throughout; bandwidth-optimal ring and Rabenseifner
  (reduce-scatter + allgather) schedules for large splittable payloads;
* scan/exscan: simultaneous binomial (recursive doubling) parallel
  prefix, order-preserving; a linear-chain pipeline as the
  minimal-traffic alternative;
* broadcast/gather/scatter: binomial trees; allgather: gather+bcast;
  alltoall(v): shifted pairwise exchange; barrier: dissemination.

All rank arguments are *group* ranks; the channel translates to world
ranks.  Non-commutative operations always receive the lower-rank operand
as the left argument of ``op``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, NamedTuple, Protocol, Sequence

from repro.errors import CommunicatorError
from repro.mpi.op import Op
from repro.mpi.topology import kary_tree
from repro.obs.metrics import NULL_METRICS
from repro.util.sizing import copy_for_transfer

__all__ = [
    "CollChannel",
    "Recv",
    "run_plan",
    "SubgroupChannel",
    "reduce_binomial_ordered",
    "reduce_binomial_plan",
    "reduce_kary_available",
    "reduce_ring_pipelined",
    "reduce_ring_pipelined_plan",
    "allreduce_recursive_doubling",
    "allreduce_recursive_doubling_plan",
    "allreduce_ring",
    "allreduce_ring_plan",
    "allreduce_rabenseifner",
    "allreduce_rabenseifner_plan",
    "allreduce_hierarchical",
    "allreduce_hierarchical_plan",
    "reduce_scatter_ring",
    "reduce_scatter_ring_plan",
    "bcast_binomial",
    "bcast_binomial_plan",
    "scan_simultaneous_binomial",
    "scan_simultaneous_binomial_plan",
    "scan_linear_chain",
    "scan_linear_chain_plan",
    "scan_hierarchical",
    "scan_hierarchical_plan",
    "gather_binomial",
    "scatter_binomial",
    "barrier_dissemination",
    "barrier_dissemination_plan",
    "alltoall_pairwise",
]


class CollChannel(Protocol):
    """Point-to-point interface a collective algorithm runs over."""

    rank: int
    size: int

    def send(self, dest: int, payload: Any) -> None: ...
    def recv(self, source: int) -> Any: ...
    def collect(self, source: int): ...  # -> Envelope (no clock effect)
    def apply(self, env) -> Any: ...  # account for collected envelope
    def charge(self, seconds: float, label: str) -> None: ...


def _metrics(ch: CollChannel):
    """The channel's metrics registry; channels without one (tests with
    hand-rolled channels, disabled tracing) get the shared no-op."""
    return getattr(ch, "metrics", NULL_METRICS)


def _charge_combine(ch: CollChannel, seconds: float) -> None:
    if seconds > 0.0:
        ch.charge(seconds, "combine")
        _metrics(ch).histogram("combine.seconds").observe(seconds)


# --------------------------------------------------------------------------
# Resumable plans
# --------------------------------------------------------------------------
#
# Each schedulable collective below exists in two forms: a ``*_plan``
# generator that *yields* a :class:`Recv` marker wherever the schedule
# needs one incoming message (sends stay eager — they are fire-and-forget
# in this runtime), and a thin blocking wrapper that drives the plan with
# :func:`run_plan`.  The generator form is what makes nonblocking
# collectives possible: a ``Request`` holds the suspended generator and a
# progress engine resumes it one message at a time, interleaving the
# rounds of several outstanding collectives on the virtual clock.
#
# Because a plan performs *exactly* the sends, receives, combines, and
# charges of the original straight-line code — in the same program
# order — driving it with ``run_plan`` is bit-identical (results and
# virtual times) to the pre-refactor blocking algorithms.


class Recv(NamedTuple):
    """Yielded by a collective plan when its next step needs one message
    from group rank ``source``; the driver resumes the plan with the
    received payload."""

    source: int


Plan = Generator[Recv, Any, Any]


def run_plan(ch: CollChannel, plan: Plan) -> Any:
    """Drive a collective plan to completion with blocking receives and
    return the plan's result."""
    try:
        step = next(plan)
        while True:
            step = plan.send(ch.recv(step.source))
    except StopIteration as stop:
        return stop.value


# --------------------------------------------------------------------------
# Reductions
# --------------------------------------------------------------------------


def reduce_binomial_plan(
    ch: CollChannel, value: Any, op: Op | Callable[[Any, Any], Any],
    *, combine_seconds: float = 0.0,
) -> Plan:
    """Plan form of :func:`reduce_binomial_ordered`."""
    rank, size = ch.rank, ch.size
    partial = value
    rounds = 0
    mask = 1
    while mask < size:
        if rank & mask:
            ch.send(rank - mask, partial)
            return None
        src = rank + mask
        if src < size:
            theirs = yield Recv(src)
            partial = op(partial, theirs)
            _charge_combine(ch, combine_seconds)
        rounds += 1
        mask <<= 1
    # Only the root reaches here, having seen the tree's full depth.
    m = _metrics(ch)
    if m.enabled:
        m.counter("collective.reduce_binomial.calls").inc()
        m.histogram("collective.reduce_binomial.depth").observe(rounds)
    return partial


def reduce_binomial_ordered(
    ch: CollChannel, value: Any, op: Op | Callable[[Any, Any], Any],
    *, combine_seconds: float = 0.0,
) -> Any:
    """Reduce to group rank 0 over the order-preserving binomial tree.

    Safe for non-commutative operations: every partial covers a
    contiguous rank range and lower ranges are always the left operand.
    Returns the reduction on rank 0, ``None`` elsewhere.
    """
    return run_plan(
        ch, reduce_binomial_plan(ch, value, op, combine_seconds=combine_seconds)
    )


def reduce_kary_available(
    ch: CollChannel, value: Any, op: Op | Callable[[Any, Any], Any],
    *, fanout: int = 2, combine_seconds: float = 0.0,
) -> Any:
    """Reduce to group rank 0 over a k-ary tree, combining children in the
    order their messages *become available* rather than in rank order.

    Only valid for commutative operations (the k-ary heap numbering does
    not preserve contiguous rank ranges, and availability order is
    arbitrary).  Returns the reduction on rank 0, ``None`` elsewhere.
    """
    if isinstance(op, Op) and not op.commutative:
        raise CommunicatorError(
            f"reduce_kary_available requires a commutative op, got {op!r}"
        )
    tree = kary_tree(ch.size, fanout)
    node = tree[ch.rank]
    partial = value
    if node.children:
        envs = [ch.collect(c) for c in node.children]
        envs.sort(key=lambda e: e.available_at)
        for env in envs:
            theirs = ch.apply(env)
            partial = op(partial, theirs)
            _charge_combine(ch, combine_seconds)
    if node.parent is not None:
        ch.send(node.parent, partial)
        return None
    m = _metrics(ch)
    if m.enabled:
        m.counter("collective.reduce_kary.calls").inc()
        depth = 0
        probe = ch.size - 1  # deepest node of the heap-numbered k-ary tree
        while tree[probe].parent is not None:
            probe = tree[probe].parent
            depth += 1
        m.histogram("collective.reduce_kary.depth").observe(depth)
    return partial


def reduce_ring_pipelined_plan(
    ch: CollChannel,
    value,
    op: Op | Callable[[Any, Any], Any],
    *,
    segments: int | None = None,
    combine_seconds: float = 0.0,
) -> Plan:
    """Plan form of :func:`reduce_ring_pipelined`."""
    import numpy as np

    rank, size = ch.rank, ch.size
    arr = np.array(value, copy=True)
    scalar = arr.ndim == 0
    if scalar:
        arr = arr.reshape(1)
    if size == 1:
        return arr[0] if scalar else arr
    n = len(arr)
    if segments is None:
        # ~64 KiB per piece keeps pipeline-fill latency small relative to
        # per-piece byte time without flooding the run with tiny messages.
        segments = int(np.ceil(arr.nbytes / 65536)) if arr.nbytes else 1
    segments = max(1, min(int(segments), n))
    m = _metrics(ch)
    if m.enabled and rank == 0:
        m.counter("collective.reduce_ring_pipelined.calls").inc()
        m.histogram("collective.reduce_ring_pipelined.stages").observe(
            size - 2 + segments
        )
    bounds = np.linspace(0, n, segments + 1).astype(int)
    for s in range(segments):
        sl = slice(bounds[s], bounds[s + 1])
        if rank < size - 1:
            got = yield Recv(rank + 1)  # partial over ranks [rank+1, p-1]
            arr[sl] = op(arr[sl], got)  # own (lower ranks) on the left
            _charge_combine(ch, combine_seconds)
        if rank > 0:
            ch.send(rank - 1, arr[sl].copy())
    if rank > 0:
        return None
    return arr[0] if scalar else arr


def reduce_ring_pipelined(
    ch: CollChannel,
    value,
    op: Op | Callable[[Any, Any], Any],
    *,
    segments: int | None = None,
    combine_seconds: float = 0.0,
):
    """Reduce a splittable NumPy vector to group rank 0 by pipelining
    segments down the ring path ``p-1 -> p-2 -> ... -> 0``.

    Each link carries the full vector once, in ``segments`` pieces, and
    the pieces flow concurrently: the makespan is roughly
    ``(p - 2 + segments) * (latency + seg_bytes * G)`` instead of the
    binomial tree's ``log2(p) * (latency + n_bytes * G)`` — the win for
    large vectors.  Rank ``r`` always combines its own contribution as
    the *left* operand of the partial covering ranks ``r+1..p-1``, so the
    schedule is order-preserving and **non-commutative safe**; it does,
    however, require an *elementwise* operation (segments are combined
    independently — see :attr:`repro.mpi.op.Op.elementwise`).

    Returns the reduction on rank 0, ``None`` elsewhere.
    """
    return run_plan(
        ch,
        reduce_ring_pipelined_plan(
            ch, value, op, segments=segments, combine_seconds=combine_seconds
        ),
    )


def allreduce_recursive_doubling_plan(
    ch: CollChannel, value: Any, op: Op | Callable[[Any, Any], Any],
    *, combine_seconds: float = 0.0,
) -> Plan:
    """Plan form of :func:`allreduce_recursive_doubling`."""
    rank, size = ch.rank, ch.size
    if size == 1:
        return value
    pof2 = 1 << (size.bit_length() - 1)
    if pof2 == size:
        pof2 = size
    rem = size - pof2
    m = _metrics(ch)
    if m.enabled and rank == 0:
        m.counter("collective.allreduce_rd.calls").inc()
        m.histogram("collective.allreduce_rd.rounds").observe(
            (pof2 - 1).bit_length() + (2 if rem else 0)
        )

    partial = value
    # Fold the first 2*rem ranks pairwise so pof2 ranks remain.
    if rank < 2 * rem:
        if rank % 2 == 0:
            ch.send(rank + 1, partial)
            newrank = -1  # idle during the doubling phase
        else:
            theirs = yield Recv(rank - 1)
            partial = op(theirs, partial)  # lower rank on the left
            _charge_combine(ch, combine_seconds)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank >= 0:
        mask = 1
        while mask < pof2:
            partner = newrank ^ mask
            # translate back to real rank
            real = partner * 2 + 1 if partner < rem else partner + rem
            ch.send(real, partial)
            theirs = yield Recv(real)
            if partner > newrank:
                partial = op(partial, theirs)
            else:
                partial = op(theirs, partial)
            _charge_combine(ch, combine_seconds)
            mask <<= 1

    # Send results back to the folded-out even ranks.
    if rank < 2 * rem:
        if rank % 2 == 0:
            partial = yield Recv(rank + 1)
        else:
            ch.send(rank - 1, partial)
    return partial


def allreduce_recursive_doubling(
    ch: CollChannel, value: Any, op: Op | Callable[[Any, Any], Any],
    *, combine_seconds: float = 0.0,
) -> Any:
    """All-reduce by recursive doubling with the MPICH fold-in step for
    non-power-of-two sizes.  Order-preserving (non-commutative safe)."""
    return run_plan(
        ch,
        allreduce_recursive_doubling_plan(
            ch, value, op, combine_seconds=combine_seconds
        ),
    )


# --------------------------------------------------------------------------
# Scans
# --------------------------------------------------------------------------


def scan_simultaneous_binomial_plan(
    ch: CollChannel,
    value: Any,
    op: Op | Callable[[Any, Any], Any],
    *,
    exclusive: bool = False,
    identity: Callable[[], Any] | None = None,
    combine_seconds: float = 0.0,
) -> Plan:
    """Plan form of :func:`scan_simultaneous_binomial`."""
    rank, size = ch.rank, ch.size
    m = _metrics(ch)
    if m.enabled and rank == 0:
        m.counter("collective.scan_binomial.calls").inc()
        m.histogram("collective.scan_binomial.rounds").observe(
            max(size - 1, 0).bit_length()  # ceil(log2 size)
        )
    full = value
    partial = None if exclusive else value
    d = 1
    while d < size:
        if rank + d < size:
            ch.send(rank + d, full)
        if rank - d >= 0:
            theirs = yield Recv(rank - d)  # covers ranks [rank-2d+1 .. rank-d]
            # A combine may mutate its left operand (the Chapel/RSMPI
            # contract), and ``theirs`` feeds two combines — isolate one use.
            if partial is None:
                partial = theirs
                theirs_for_full = copy_for_transfer(theirs)
            else:
                theirs_for_full = copy_for_transfer(theirs)
                partial = op(theirs, partial)
                _charge_combine(ch, combine_seconds)
            full = op(theirs_for_full, full)
            _charge_combine(ch, combine_seconds)
        d <<= 1
    if exclusive and partial is None:
        # rank 0's exclusive prefix: the identity, if one is known
        # (MPI_Exscan leaves it undefined; the paper's LOCAL_XSCAN takes
        # the identity function so that it is well-defined).
        partial = identity() if identity is not None else None
    return partial


def scan_simultaneous_binomial(
    ch: CollChannel,
    value: Any,
    op: Op | Callable[[Any, Any], Any],
    *,
    exclusive: bool = False,
    identity: Callable[[], Any] | None = None,
    combine_seconds: float = 0.0,
) -> Any:
    """Parallel prefix over ranks by simultaneous binomial (recursive
    doubling): ceil(log2 p) rounds, order-preserving.

    For ``exclusive=True``, rank 0 returns ``identity()`` if an identity
    function is given, else ``None`` (the MPI_Exscan "undefined" slot —
    the paper's local-view abstraction requires the identity function
    precisely so that this slot is well-defined).
    """
    return run_plan(
        ch,
        scan_simultaneous_binomial_plan(
            ch, value, op, exclusive=exclusive, identity=identity,
            combine_seconds=combine_seconds,
        ),
    )


def scan_linear_chain_plan(
    ch: CollChannel,
    value: Any,
    op: Op | Callable[[Any, Any], Any],
    *,
    exclusive: bool = False,
    identity: Callable[[], Any] | None = None,
    combine_seconds: float = 0.0,
) -> Plan:
    """Plan form of :func:`scan_linear_chain`."""
    rank, size = ch.rank, ch.size
    m = _metrics(ch)
    if m.enabled and rank == 0:
        m.counter("collective.scan_chain.calls").inc()
        m.histogram("collective.scan_chain.hops").observe(max(size - 1, 0))
    if rank == 0:
        if size > 1:
            ch.send(1, value)
        if exclusive:
            return identity() if identity is not None else None
        return value
    prefix = yield Recv(rank - 1)  # inclusive prefix of ranks [0, rank-1]
    # The combine may mutate its left operand; keep the exclusive result
    # isolated from the inclusive value forwarded down the chain.
    mine = copy_for_transfer(prefix) if exclusive else None
    inclusive = op(prefix, value)
    _charge_combine(ch, combine_seconds)
    if rank + 1 < size:
        ch.send(rank + 1, inclusive)
    return mine if exclusive else inclusive


def scan_linear_chain(
    ch: CollChannel,
    value: Any,
    op: Op | Callable[[Any, Any], Any],
    *,
    exclusive: bool = False,
    identity: Callable[[], Any] | None = None,
    combine_seconds: float = 0.0,
) -> Any:
    """Prefix over ranks by a linear pipeline: rank ``r`` receives the
    inclusive prefix of ranks ``0..r-1`` from its left neighbor, combines
    once, and forwards.

    Minimal traffic (``p - 1`` messages and combines in total versus the
    simultaneous binomial's ``~p log2 p``) at the price of ``p - 1``
    serialized hops on the critical path — the trade Träff's exscan
    round/compute analysis maps out.  Order-preserving, any payload.
    """
    return run_plan(
        ch,
        scan_linear_chain_plan(
            ch, value, op, exclusive=exclusive, identity=identity,
            combine_seconds=combine_seconds,
        ),
    )


# --------------------------------------------------------------------------
# Data movement
# --------------------------------------------------------------------------


def bcast_binomial_plan(ch: CollChannel, value: Any, root: int = 0) -> Plan:
    """Plan form of :func:`bcast_binomial`."""
    rank, size = ch.rank, ch.size
    if not 0 <= root < size:
        raise CommunicatorError(f"bcast root {root} out of range [0, {size})")
    vr = (rank - root) % size
    mask = 1
    while mask < size:
        if vr & mask:
            src = (vr - mask + root) % size
            value = yield Recv(src)
            break
        mask <<= 1
    mask >>= 1
    while mask >= 1:
        if vr + mask < size and not (vr & mask):
            ch.send((vr + mask + root) % size, value)
        mask >>= 1
    return value


def bcast_binomial(ch: CollChannel, value: Any, root: int = 0) -> Any:
    """Broadcast from ``root`` over a binomial tree (rank-renamed)."""
    return run_plan(ch, bcast_binomial_plan(ch, value, root))


def gather_binomial(ch: CollChannel, value: Any, root: int = 0) -> list[Any] | None:
    """Gather one value per rank to ``root`` over a binomial tree.

    Returns the list ordered by group rank on the root, ``None`` elsewhere.
    """
    rank, size = ch.rank, ch.size
    if not 0 <= root < size:
        raise CommunicatorError(f"gather root {root} out of range [0, {size})")
    vr = (rank - root) % size
    # items[i] holds the value of virtual rank vr + i
    items: list[Any] = [value]
    mask = 1
    while mask < size:
        if vr & mask:
            dest = (vr - mask + root) % size
            ch.send(dest, items)
            return None
        src_vr = vr + mask
        if src_vr < size:
            theirs = ch.recv((src_vr + root) % size)
            items.extend(theirs)
        mask <<= 1
    # vr == 0 == root: rotate from virtual order back to group order
    return [items[(r - root) % size] for r in range(size)]


def scatter_binomial(
    ch: CollChannel, items: Sequence[Any] | None, root: int = 0
) -> Any:
    """Scatter ``items[i]`` (given on the root) to group rank ``i`` over a
    binomial tree; returns this rank's item."""
    rank, size = ch.rank, ch.size
    if not 0 <= root < size:
        raise CommunicatorError(f"scatter root {root} out of range [0, {size})")
    vr = (rank - root) % size
    my: list[Any] | None = None
    if vr == 0:
        if items is None or len(items) != size:
            raise CommunicatorError(
                f"scatter root must supply exactly {size} items, got "
                f"{'None' if items is None else len(items)}"
            )
        # reorder into virtual-rank order
        my = [items[(v + root) % size] for v in range(size)]
    lo, hi = 0, size
    while hi - lo > 1:
        half = 1 << ((hi - lo - 1).bit_length() - 1)
        mid = lo + half
        if vr < mid:
            if vr == lo:
                assert my is not None
                ch.send((mid + root) % size, my[mid - lo :])
                my = my[: mid - lo]
            hi = mid
        else:
            if vr == mid:
                my = ch.recv((lo + root) % size)
            lo = mid
    assert my is not None and len(my) == 1
    return my[0]


def barrier_dissemination_plan(ch: CollChannel) -> Plan:
    """Plan form of :func:`barrier_dissemination`."""
    rank, size = ch.rank, ch.size
    d = 1
    while d < size:
        ch.send((rank + d) % size, None)
        yield Recv((rank - d) % size)
        d <<= 1


def barrier_dissemination(ch: CollChannel) -> None:
    """Dissemination barrier: ceil(log2 p) rounds of shifted token passing."""
    return run_plan(ch, barrier_dissemination_plan(ch))


def alltoall_pairwise(ch: CollChannel, items: Sequence[Any]) -> list[Any]:
    """All-to-all personalized exchange: ``items[i]`` goes to rank ``i``;
    returns the list received (indexed by source rank).  Uses the shifted
    pairwise schedule (size-1 rounds)."""
    rank, size = ch.rank, ch.size
    if len(items) != size:
        raise CommunicatorError(
            f"alltoall needs exactly {size} items per rank, got {len(items)}"
        )
    out: list[Any] = [None] * size
    out[rank] = items[rank]
    for shift in range(1, size):
        dest = (rank + shift) % size
        src = (rank - shift) % size
        ch.send(dest, items[dest])
        out[src] = ch.recv(src)
    return out


def allreduce_ring_plan(
    ch: CollChannel,
    value,
    op: Op | Callable[[Any, Any], Any],
    *,
    combine_seconds: float = 0.0,
) -> Plan:
    """Plan form of :func:`allreduce_ring`."""
    import numpy as np

    if isinstance(op, Op) and not op.commutative:
        raise CommunicatorError(
            f"allreduce_ring requires a commutative op, got {op!r}"
        )
    rank, size = ch.rank, ch.size
    m = _metrics(ch)
    if m.enabled and rank == 0:
        m.counter("collective.allreduce_ring.calls").inc()
        m.histogram("collective.allreduce_ring.steps").observe(2 * (size - 1))
    arr = np.array(value, copy=True)
    if arr.ndim == 0:
        arr = arr.reshape(1)
        scalar = True
    else:
        scalar = False
    if size == 1:
        out = op(arr, arr[:0]) if False else arr  # no-op; keep dtype
        return out[0] if scalar else out

    bounds = np.linspace(0, len(arr), size + 1).astype(int)

    def seg(i: int) -> slice:
        i %= size
        return slice(bounds[i], bounds[i + 1])

    right = (rank + 1) % size
    left = (rank - 1) % size

    # reduce-scatter: after this, segment (rank+1)%size is fully reduced
    for t in range(size - 1):
        ch.send(right, arr[seg(rank - t)].copy())
        got = yield Recv(left)
        s = seg(rank - t - 1)
        arr[s] = op(got, arr[s])
        _charge_combine(ch, combine_seconds)

    # all-gather: circulate the finished segments
    for t in range(size - 1):
        ch.send(right, arr[seg(rank + 1 - t)].copy())
        got = yield Recv(left)
        arr[seg(rank - t)] = got

    return arr[0] if scalar else arr


def allreduce_ring(
    ch: CollChannel,
    value,
    op: Op | Callable[[Any, Any], Any],
    *,
    combine_seconds: float = 0.0,
):
    """Bandwidth-optimal ring all-reduce for NumPy arrays.

    Reduce-scatter around the ring (p-1 steps, each moving 1/p of the
    data) followed by a ring all-gather (another p-1 steps): every rank
    sends ~2n/p * (p-1) bytes total versus recursive doubling's
    n * log2(p).  The combining order is a ring rotation, not rank
    order, so this schedule requires a **commutative** operation.
    """
    return run_plan(
        ch, allreduce_ring_plan(ch, value, op, combine_seconds=combine_seconds)
    )


def reduce_scatter_ring_plan(
    ch: CollChannel,
    value,
    op: Op | Callable[[Any, Any], Any],
    *,
    combine_seconds: float = 0.0,
) -> Plan:
    """Plan form of :func:`reduce_scatter_ring`."""
    import numpy as np

    if isinstance(op, Op) and not op.commutative:
        raise CommunicatorError(
            f"reduce_scatter_ring requires a commutative op, got {op!r}"
        )
    rank, size = ch.rank, ch.size
    m = _metrics(ch)
    if m.enabled and rank == 0:
        m.counter("collective.reduce_scatter_ring.calls").inc()
        m.histogram("collective.reduce_scatter_ring.steps").observe(size - 1)
    arr = np.array(value, copy=True)
    bounds = np.linspace(0, len(arr), size + 1).astype(int)

    def seg(i: int) -> slice:
        i %= size
        return slice(bounds[i], bounds[i + 1])

    if size == 1:
        return arr, (0, len(arr))

    right = (rank + 1) % size
    left = (rank - 1) % size
    # Shifted by -1 relative to allreduce_ring so the final fully
    # reduced segment at rank r is segment r (MPI_Reduce_scatter_block).
    for t in range(size - 1):
        ch.send(right, arr[seg(rank - t - 1)].copy())
        got = yield Recv(left)
        s = seg(rank - t - 2)
        arr[s] = op(got, arr[s])
        _charge_combine(ch, combine_seconds)
    lo, hi = int(bounds[rank]), int(bounds[rank + 1])
    return arr[lo:hi], (lo, hi)


def reduce_scatter_ring(
    ch: CollChannel,
    value,
    op: Op | Callable[[Any, Any], Any],
    *,
    combine_seconds: float = 0.0,
):
    """Ring reduce-scatter: rank r ends up with segment r of the
    element-wise reduction, having moved only (p-1)/p of the data.

    Returns ``(segment, (lo, hi))`` where ``[lo, hi)`` is the global
    index range of the segment.  Commutative operations only (ring
    order).
    """
    return run_plan(
        ch,
        reduce_scatter_ring_plan(ch, value, op, combine_seconds=combine_seconds),
    )


def allreduce_rabenseifner_plan(
    ch: CollChannel,
    value,
    op: Op | Callable[[Any, Any], Any],
    *,
    combine_seconds: float = 0.0,
) -> Plan:
    """Plan form of :func:`allreduce_rabenseifner`."""
    import numpy as np

    if isinstance(op, Op) and not op.commutative:
        raise CommunicatorError(
            f"allreduce_rabenseifner requires a commutative op, got {op!r}"
        )
    rank, size = ch.rank, ch.size
    arr = np.array(value, copy=True)
    scalar = arr.ndim == 0
    if scalar:
        arr = arr.reshape(1)
    if size == 1:
        return arr[0] if scalar else arr

    pof2 = 1 << (size.bit_length() - 1)
    rem = size - pof2
    m = _metrics(ch)
    if m.enabled and rank == 0:
        m.counter("collective.allreduce_rab.calls").inc()
        m.histogram("collective.allreduce_rab.rounds").observe(
            2 * (pof2 - 1).bit_length() + (2 if rem else 0)
        )

    # Fold the first 2*rem ranks pairwise so a power of two remains.
    if rank < 2 * rem:
        if rank % 2 == 0:
            ch.send(rank + 1, arr)
            newrank = -1  # idle until the final un-fold
        else:
            theirs = yield Recv(rank - 1)
            arr = op(theirs, arr)  # lower rank on the left
            _charge_combine(ch, combine_seconds)
            newrank = rank // 2
    else:
        newrank = rank - rem

    def real(nr: int) -> int:
        """Translate a folded rank back to its group rank."""
        return nr * 2 + 1 if nr < rem else nr + rem

    if newrank >= 0:
        bounds = np.linspace(0, len(arr), pof2 + 1).astype(int)
        slo, shi = 0, pof2  # my current segment block, in segment units
        steps: list[tuple[int, int, int]] = []  # (partner, sent_lo, sent_hi)
        dist = pof2 >> 1
        # Recursive halving reduce-scatter: each round exchanges half of
        # the current block with the partner and combines the kept half.
        while dist >= 1:
            partner = newrank ^ dist
            mid = (slo + shi) // 2
            if newrank < partner:  # I am in the lower half: keep low segs
                sent_lo, sent_hi = mid, shi
                keep = slice(int(bounds[slo]), int(bounds[mid]))
                slo, shi = slo, mid
            else:
                sent_lo, sent_hi = slo, mid
                keep = slice(int(bounds[mid]), int(bounds[shi]))
                slo, shi = mid, shi
            ch.send(real(partner), arr[bounds[sent_lo] : bounds[sent_hi]].copy())
            got = yield Recv(real(partner))
            if partner < newrank:
                arr[keep] = op(got, arr[keep])
            else:
                arr[keep] = op(arr[keep], got)
            _charge_combine(ch, combine_seconds)
            steps.append((partner, sent_lo, sent_hi))
            dist >>= 1
        # Recursive doubling allgather: replay the exchanges in reverse;
        # the partner of each round owns exactly the block sent away then.
        for partner, sent_lo, sent_hi in reversed(steps):
            ch.send(real(partner), arr[bounds[slo] : bounds[shi]].copy())
            got = yield Recv(real(partner))
            arr[bounds[sent_lo] : bounds[sent_hi]] = got
            slo, shi = min(slo, sent_lo), max(shi, sent_hi)

    # Un-fold: odd folded ranks forward the full result to their pair.
    if rank < 2 * rem:
        if rank % 2 == 0:
            arr = yield Recv(rank + 1)
        else:
            ch.send(rank - 1, arr)
    return arr[0] if scalar else arr


def allreduce_rabenseifner(
    ch: CollChannel,
    value,
    op: Op | Callable[[Any, Any], Any],
    *,
    combine_seconds: float = 0.0,
):
    """Rabenseifner-style all-reduce: recursive-*halving* reduce-scatter
    followed by recursive-*doubling* allgather over the same pairs.

    Moves ~``2 n (p-1)/p`` bytes per rank like the ring, but in
    ``2 log2(p)`` rounds instead of ``2(p-1)`` — the classic large-payload
    schedule when latency still matters.  Non-power-of-two sizes fold the
    first ``2*(p - pof2)`` ranks pairwise first (the MPICH approach).
    Segments are combined independently, so the operation must be
    **commutative and elementwise** over splittable NumPy payloads.
    """
    return run_plan(
        ch,
        allreduce_rabenseifner_plan(ch, value, op, combine_seconds=combine_seconds),
    )


# --------------------------------------------------------------------------
# Hierarchical (topology-aware) collectives
# --------------------------------------------------------------------------
#
# On a multi-tier fabric (see ``repro.runtime.fabric``) not all links are
# equal: ranks sharing a node talk over memory-class links while
# inter-node messages pay network latency and bandwidth.  The schedules
# below exploit that by confining the bulky phases to intra-node links
# and crossing the slow tier as few times — and as *concurrently* — as
# possible.  They are composed from the flat plans above running over
# :class:`SubgroupChannel` views, so every message still bottoms out in
# the same point-to-point machinery and costs stay emergent.
#
# ``groups`` is the node partition as *group-rank* tuples, contiguous and
# ascending (``repro.runtime.fabric.contiguous_node_groups`` builds it
# from a communicator's placement).  Contiguity is what keeps the leader
# phase order-preserving for non-commutative operations: each node's
# partial covers a contiguous rank range and lower ranges stay the left
# operand.  With ``groups=None`` (or all-singleton groups) the schedules
# degrade gracefully to their flat counterparts.


class SubgroupChannel:
    """A :class:`CollChannel` view onto a subset of a channel's ranks.

    ``ranks`` lists the parent group ranks belonging to the subgroup, in
    subgroup rank order; the calling rank must be among them.  Sends,
    receives and collects translate subgroup ranks to parent ranks, so
    any flat plan runs unmodified over the subgroup — the composition
    trick the hierarchical schedules are built on.  Plans written
    against a subgroup yield :class:`Recv` markers in *subgroup*
    coordinates; :func:`_drive_sub` re-yields them translated so the
    outer driver sees parent group ranks.
    """

    __slots__ = ("parent", "ranks", "rank", "size")

    def __init__(self, parent: CollChannel, ranks: Sequence[int]):
        self.parent = parent
        self.ranks = tuple(ranks)
        self.rank = self.ranks.index(parent.rank)
        self.size = len(self.ranks)

    @property
    def metrics(self):
        return getattr(self.parent, "metrics", NULL_METRICS)

    def send(self, dest: int, payload: Any) -> None:
        self.parent.send(self.ranks[dest], payload)

    def recv(self, source: int) -> Any:
        return self.parent.recv(self.ranks[source])

    def collect(self, source: int):
        return self.parent.collect(self.ranks[source])

    def apply(self, env) -> Any:
        return self.parent.apply(env)

    def charge(self, seconds: float, label: str) -> None:
        self.parent.charge(seconds, label)


def _drive_sub(plan: Plan, ranks: Sequence[int]) -> Plan:
    """Relay a subgroup plan, translating its Recv sources to parent ranks."""
    try:
        step = next(plan)
        while True:
            got = yield Recv(ranks[step.source])
            step = plan.send(got)
    except StopIteration as stop:
        return stop.value


def _locate_group(
    groups: Sequence[Sequence[int]], rank: int
) -> tuple[int, tuple[int, ...], int]:
    """Find ``rank``'s ``(group_index, group, local_index)`` in a partition."""
    for j, grp in enumerate(groups):
        if rank in grp:
            return j, tuple(grp), tuple(grp).index(rank)
    raise CommunicatorError(
        f"rank {rank} missing from hierarchical groups {groups!r}"
    )


def _singleton_groups(size: int) -> tuple[tuple[int, ...], ...]:
    return tuple((r,) for r in range(size))


def allreduce_hierarchical_plan(
    ch: CollChannel,
    value: Any,
    op: Op | Callable[[Any, Any], Any],
    *,
    groups: Sequence[Sequence[int]] | None = None,
    combine_seconds: float = 0.0,
) -> Plan:
    """Plan form of :func:`allreduce_hierarchical`."""
    import numpy as np

    rank, size = ch.rank, ch.size
    if groups is None:
        groups = _singleton_groups(size)
    _, g, li = _locate_group(groups, rank)
    nnodes = len(groups)
    m = _metrics(ch)
    if m.enabled and rank == 0:
        m.counter("collective.allreduce_hier.calls").inc()
        m.histogram("collective.allreduce_hier.nodes").observe(nnodes)
    commutative = isinstance(op, Op) and op.commutative
    elementwise = getattr(op, "elementwise", False)
    nlocal = len(g)
    sub = SubgroupChannel(ch, g)
    # The 2-D schedule needs every rank to own a distinct segment, which
    # requires equal-size node groups (segment l of node j pairs with
    # segment l of every other node) and a vector long enough to split.
    uniform = all(len(grp) == nlocal for grp in groups)
    if (
        uniform and nlocal > 1 and nnodes > 1 and commutative and elementwise
        and isinstance(value, np.ndarray) and value.ndim == 1
        and len(value) >= size
    ):
        # 2-D SMP-aware schedule: (1) intra-node ring reduce-scatter on
        # the cheap links leaves local rank l holding segment l of the
        # node sum; (2) the "column" of same-index ranks across nodes
        # allreduces its segment — all nlocal columns cross the slow
        # tier concurrently, each moving only n/nlocal bytes; (3) an
        # intra-node ring allgather reassembles the vector.  Inter-node
        # bytes per rank drop from ~2n (leader schedules) to ~2n/nlocal.
        seg_val, (lo, hi) = yield from _drive_sub(
            reduce_scatter_ring_plan(
                sub, value, op, combine_seconds=combine_seconds
            ),
            g,
        )
        col = tuple(grp[li] for grp in groups)
        seg_val = yield from _drive_sub(
            allreduce_rabenseifner_plan(
                SubgroupChannel(ch, col), seg_val, op,
                combine_seconds=combine_seconds,
            ),
            col,
        )
        out = np.empty(len(value), dtype=np.asarray(seg_val).dtype)
        out[lo:hi] = seg_val
        bounds = np.linspace(0, len(value), nlocal + 1).astype(int)
        right, left = g[(li + 1) % nlocal], g[(li - 1) % nlocal]
        for t in range(nlocal - 1):
            si = (li - t) % nlocal
            ch.send(right, out[bounds[si] : bounds[si + 1]].copy())
            got = yield Recv(left)
            di = (li - t - 1) % nlocal
            out[bounds[di] : bounds[di + 1]] = got
        return out
    # Leader schedule (any operation, any payload): order-preserving
    # intra-node binomial reduce to the node leader, an allreduce among
    # leaders, then an intra-node broadcast.  Node partials cover
    # contiguous rank ranges, so non-commutative ops stay correct.
    partial = yield from _drive_sub(
        reduce_binomial_plan(sub, value, op, combine_seconds=combine_seconds),
        g,
    )
    if li == 0 and nnodes > 1:
        leaders = tuple(grp[0] for grp in groups)
        lsub = SubgroupChannel(ch, leaders)
        if (
            commutative and elementwise
            and isinstance(partial, np.ndarray) and partial.ndim == 1
            and len(partial) >= nnodes
        ):
            lplan = allreduce_rabenseifner_plan(
                lsub, partial, op, combine_seconds=combine_seconds
            )
        else:
            lplan = allreduce_recursive_doubling_plan(
                lsub, partial, op, combine_seconds=combine_seconds
            )
        partial = yield from _drive_sub(lplan, leaders)
    result = yield from _drive_sub(bcast_binomial_plan(sub, partial, root=0), g)
    return result


def allreduce_hierarchical(
    ch: CollChannel,
    value: Any,
    op: Op | Callable[[Any, Any], Any],
    *,
    groups: Sequence[Sequence[int]] | None = None,
    combine_seconds: float = 0.0,
) -> Any:
    """Topology-aware all-reduce over a node partition of the group.

    For commutative elementwise operations on sufficiently long vectors
    with equal-size groups, runs the 2-D SMP-aware schedule (intra-node
    reduce-scatter, concurrent per-segment inter-node allreduce,
    intra-node allgather), cutting slow-tier traffic per rank by the
    node size.  Everything else takes the leader schedule (intra-node
    binomial reduce, leader allreduce, intra-node bcast), which is
    order-preserving and non-commutative safe because groups are
    contiguous rank ranges.  With ``groups=None`` degrades to the flat
    recursive-doubling/Rabenseifner schedules.
    """
    return run_plan(
        ch,
        allreduce_hierarchical_plan(
            ch, value, op, groups=groups, combine_seconds=combine_seconds
        ),
    )


def _scan_both_plan(
    ch: CollChannel,
    value: Any,
    op: Op | Callable[[Any, Any], Any],
    *,
    combine_seconds: float = 0.0,
) -> Plan:
    """Simultaneous binomial prefix returning ``(exclusive, inclusive)``.

    Identical message pattern to :func:`scan_simultaneous_binomial_plan`;
    the hierarchical scan needs both prefixes at once (the node total is
    the last local rank's *inclusive* prefix while its result needs the
    exclusive one), so this variant keeps the pair.  Rank 0's exclusive
    slot is ``None``.
    """
    rank, size = ch.rank, ch.size
    full = value
    partial = None
    d = 1
    while d < size:
        if rank + d < size:
            ch.send(rank + d, full)
        if rank - d >= 0:
            theirs = yield Recv(rank - d)
            # ``theirs`` feeds two combines and a combine may mutate its
            # left operand — isolate one use (same as the flat scan).
            if partial is None:
                partial = theirs
                theirs_for_full = copy_for_transfer(theirs)
            else:
                theirs_for_full = copy_for_transfer(theirs)
                partial = op(theirs, partial)
                _charge_combine(ch, combine_seconds)
            full = op(theirs_for_full, full)
            _charge_combine(ch, combine_seconds)
        d <<= 1
    return partial, full


def scan_hierarchical_plan(
    ch: CollChannel,
    value: Any,
    op: Op | Callable[[Any, Any], Any],
    *,
    groups: Sequence[Sequence[int]] | None = None,
    exclusive: bool = False,
    identity: Callable[[], Any] | None = None,
    combine_seconds: float = 0.0,
) -> Plan:
    """Plan form of :func:`scan_hierarchical`."""
    rank, size = ch.rank, ch.size
    if groups is None:
        groups = _singleton_groups(size)
    _, g, li = _locate_group(groups, rank)
    nnodes = len(groups)
    m = _metrics(ch)
    if m.enabled and rank == 0:
        m.counter("collective.scan_hier.calls").inc()
        m.histogram("collective.scan_hier.nodes").observe(nnodes)
    sub = SubgroupChannel(ch, g)
    # Intra-node prefix on the cheap links.  The last local rank's
    # inclusive prefix *is* the node total — no extra combine needed.
    excl, incl = yield from _drive_sub(
        _scan_both_plan(sub, value, op, combine_seconds=combine_seconds), g
    )
    prev = None  # combined total of all preceding nodes
    if nnodes > 1:
        if li == len(g) - 1:
            reps = tuple(grp[-1] for grp in groups)
            prev, _ = yield from _drive_sub(
                _scan_both_plan(
                    SubgroupChannel(ch, reps), incl, op,
                    combine_seconds=combine_seconds,
                ),
                reps,
            )
        # Node j's rep now holds T_0 op ... op T_{j-1} (None for node 0);
        # share it with the node.  Group contiguity makes prev op local
        # an order-preserving contiguous prefix.
        prev = yield from _drive_sub(
            bcast_binomial_plan(sub, prev, root=len(g) - 1), g
        )
    mine = excl if exclusive else incl
    if prev is None:
        if mine is None:  # global rank 0, exclusive
            return identity() if identity is not None else None
        return mine
    if mine is None:  # first rank of a later node, exclusive
        return prev
    # ``prev`` may be shared with other ranks of the node (broadcast
    # payload) and a combine may mutate its left operand — isolate it.
    out = op(copy_for_transfer(prev), mine)
    _charge_combine(ch, combine_seconds)
    return out


def scan_hierarchical(
    ch: CollChannel,
    value: Any,
    op: Op | Callable[[Any, Any], Any],
    *,
    groups: Sequence[Sequence[int]] | None = None,
    exclusive: bool = False,
    identity: Callable[[], Any] | None = None,
    combine_seconds: float = 0.0,
) -> Any:
    """Topology-aware prefix scan/exscan over a node partition.

    Three phases: a simultaneous-binomial prefix *within* each node
    (cheap links), an exclusive prefix of node totals among the node
    representatives (the only inter-node rounds — ``ceil(log2 nodes)``
    versus the flat scan's inter-node majority), and an intra-node
    broadcast of each node's predecessor total, combined once into every
    local prefix.  Order-preserving for non-commutative operations
    because node groups are contiguous rank ranges.  ``exclusive=True``
    gives the exscan; global rank 0 returns ``identity()`` if given,
    else ``None`` (the MPI_Exscan convention).
    """
    return run_plan(
        ch,
        scan_hierarchical_plan(
            ch, value, op, groups=groups, exclusive=exclusive,
            identity=identity, combine_seconds=combine_seconds,
        ),
    )
